(* The resident rewriting service: canonical cache keys (Normalize),
   catalog generations, the LRU cache, and hit-vs-fresh equivalence —
   including under concurrent dispatch. *)

open Vplan
open Helpers
module Gen = QCheck2.Gen

let seed =
  match int_of_string_opt (try Sys.getenv "QCHECK_SEED" with Not_found -> "") with
  | Some s -> s
  | None -> 0x5eed

let make_qcheck ?(count = 100) ~name gen print prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name ~print gen prop)

let key_exn query =
  match Normalize.cache_key query with
  | Some k -> k
  | None -> Alcotest.fail "cache_key returned None on a small query"

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)

(* Regression (ISSUE 3): canonicalization must be deterministic under
   subgoal reordering — a permuted alpha-variant of Example 4.1 must
   produce the same cache key. *)
let canonical_key_permuted_example41 () =
  let original = Example_4_1.query in
  (* Z renamed to W, body reversed and rotated *)
  let permuted = q "q(X, Y) :- b(W, Y), a(X, W), a(W, W)." in
  check_bool "same key" true (String.equal (key_exn original) (key_exn permuted));
  let renamed_head = q "q(U, V) :- a(W, W), b(W, V), a(U, W)." in
  check_bool "same key under head renaming too" true
    (String.equal (key_exn original) (key_exn renamed_head))

let canonical_key_separates () =
  let q1 = q "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)." in
  (* same predicate multiset, different join structure *)
  let q2 = q "q(X, Y) :- a(X, Z), a(Z, X), b(Z, Y)." in
  check_bool "different keys" false (String.equal (key_exn q1) (key_exn q2));
  (* head order matters: q(X,Y) vs q(Y,X) are different queries *)
  let q3 = q "q(Y, X) :- a(X, Z), a(Z, Z), b(Z, Y)." in
  check_bool "head order separates" false (String.equal (key_exn q1) (key_exn q3))

let canonicalize_sigma_witnesses () =
  let query = Car_loc_part.query in
  match Normalize.canonicalize query with
  | None -> Alcotest.fail "canonicalize failed"
  | Some (canon, sigma) ->
      check_bool "sigma maps the query onto its canonical form" true
        (Containment.isomorphic (Query.apply sigma query) canon);
      (* idempotence: the canonical form is its own canonical form *)
      check_bool "idempotent" true (String.equal (key_exn canon) (key_exn query))

let canonical_key_qcheck =
  let gen = Qcheck_gens.gen_query in
  make_qcheck ~count:250 ~name:"cache key invariant under renaming + permutation"
    gen Qcheck_gens.print_query (fun query ->
      let vars = Query.vars query in
      let sigma =
        Subst.of_list (List.mapi (fun i x -> (x, Term.Var ("Y" ^ string_of_int i))) vars)
      in
      let renamed = Query.apply sigma query in
      let permuted =
        Query.make_exn renamed.Query.head (List.rev renamed.Query.body)
      in
      match (Normalize.cache_key query, Normalize.cache_key permuted) with
      | Some k1, Some k2 -> String.equal k1 k2
      | None, None -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)

let lru_eviction () =
  let c = Rewrite_cache.create ~capacity:2 in
  Rewrite_cache.add c "a" 1;
  Rewrite_cache.add c "b" 2;
  (* touch "a" so "b" is least recently used *)
  check_bool "a hits" true (Rewrite_cache.find c "a" = Some 1);
  Rewrite_cache.add c "c" 3;
  check_bool "b evicted" true (Rewrite_cache.find c "b" = None);
  check_bool "a survives" true (Rewrite_cache.find c "a" = Some 1);
  check_bool "c present" true (Rewrite_cache.find c "c" = Some 3);
  let k = Rewrite_cache.counters c in
  check_int "hits" 3 k.Rewrite_cache.hits;
  check_int "misses" 1 k.Rewrite_cache.misses;
  check_int "evictions" 1 k.Rewrite_cache.evictions;
  check_int "size" 2 k.Rewrite_cache.size

let lru_replace_is_not_eviction () =
  let c = Rewrite_cache.create ~capacity:2 in
  Rewrite_cache.add c "a" 1;
  Rewrite_cache.add c "a" 2;
  check_bool "replaced" true (Rewrite_cache.find c "a" = Some 2);
  check_int "no eviction" 0 (Rewrite_cache.counters c).Rewrite_cache.evictions;
  check_int "size 1" 1 (Rewrite_cache.counters c).Rewrite_cache.size

(* ------------------------------------------------------------------ *)
(* Catalog generations                                                 *)

let sorted_classes classes =
  List.map (fun cls -> List.sort Query.compare cls) classes
  |> List.sort (fun c1 c2 ->
         match (c1, c2) with
         | q1 :: _, q2 :: _ -> Query.compare q1 q2
         | _ -> compare c1 c2)

let same_partition c1 c2 = sorted_classes c1 = sorted_classes c2

let catalog_incremental_add () =
  let all = Car_loc_part.views in
  let first, rest = (List.filteri (fun i _ -> i < 2) all, List.filteri (fun i _ -> i >= 2) all) in
  let scratch = Catalog.create_exn all in
  let grown =
    match Catalog.add_views (Catalog.create_exn first) rest with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  check_int "generation bumped" 2 (Catalog.generation grown);
  check_int "all views present" (List.length all) (Catalog.num_views grown);
  check_bool "incremental = from scratch (as classes, in order)" true
    (Catalog.view_classes scratch = Catalog.view_classes grown);
  (* v1 and v5 are equivalent: 5 views, 4 classes *)
  check_int "classes" 4 (Catalog.num_classes scratch)

let catalog_remove () =
  let cat = Catalog.create_exn Car_loc_part.views in
  let without =
    match Catalog.remove_views cat [ "v1" ] with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  check_int "generation bumped" 2 (Catalog.generation without);
  check_int "member gone" 4 (Catalog.num_views without);
  let scratch = Catalog.create_exn (List.filter (fun v -> View.name v <> "v1") Car_loc_part.views) in
  check_bool "partition equal to from-scratch grouping" true
    (same_partition (Catalog.view_classes without) (Catalog.view_classes scratch));
  (match Catalog.remove_views cat [ "nope" ] with
  | Ok _ -> Alcotest.fail "removing an unknown view must fail"
  | Error _ -> ());
  match Catalog.add_views cat [ q "v1(A) :- car(A, B)." ] with
  | Ok _ -> Alcotest.fail "adding a duplicate name must fail"
  | Error _ -> ()

let catalog_classes_drive_corecover () =
  let cat = Catalog.create_exn Car_loc_part.views in
  let with_catalog =
    Corecover.gmrs ~view_classes:(Catalog.view_classes cat) ~query:Car_loc_part.query
      ~views:(Catalog.views cat) ()
  in
  let without = Corecover.gmrs ~query:Car_loc_part.query ~views:Car_loc_part.views () in
  check_bool "same rewritings" true
    (List.for_all2 Query.equal with_catalog.Corecover.rewritings
       without.Corecover.rewritings)

(* ------------------------------------------------------------------ *)
(* Service: cache correctness                                          *)

let service () = Service.create (Catalog.create_exn Car_loc_part.views)

let service_hit_identical () =
  let s = service () in
  let o1 = Service.rewrite s Car_loc_part.query in
  check_bool "first is a miss" true (o1.Service.source = Service.Miss);
  let o2 = Service.rewrite s Car_loc_part.query in
  check_bool "second is a hit" true (o2.Service.source = Service.Hit);
  (* observationally identical: same rewritings, same completeness *)
  check_bool "same rewritings" true
    (List.for_all2 Query.equal o1.Service.rewritings o2.Service.rewritings);
  check_query "same minimized query" o1.Service.minimized_query o2.Service.minimized_query

let service_hit_renames_back () =
  let s = service () in
  let (_ : Service.outcome) = Service.rewrite s Car_loc_part.query in
  (* permuted alpha-variant: the hit must come back in ITS variables *)
  let variant = q "q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson)." in
  let o = Service.rewrite s variant in
  check_bool "alpha-variant is a hit" true (o.Service.source = Service.Hit);
  let fresh = Service.rewrite (service ()) variant in
  check_bool "hit = fresh service run, exactly" true
    (List.for_all2 Query.equal o.Service.rewritings fresh.Service.rewritings);
  (* every rewriting is a genuine equivalent rewriting of the variant *)
  List.iter
    (fun p ->
      check_bool "sound" true
        (Expansion.is_equivalent_rewriting ~views:Car_loc_part.views ~query:variant p))
    o.Service.rewritings

let service_truncated_not_cached () =
  let s = service () in
  let o1 = Service.rewrite ~budget:(Budget.create ~max_steps:1 ()) s Car_loc_part.query in
  (match o1.Service.completeness with
  | Corecover.Truncated _ -> ()
  | Corecover.Complete -> Alcotest.fail "expected a truncated result");
  check_bool "truncated bypasses the cache" true (o1.Service.source = Service.Bypass);
  (* the truncated run must not have been stored: the next request is a
     miss and computes the real (complete) result *)
  let o2 = Service.rewrite s Car_loc_part.query in
  check_bool "next request is a miss" true (o2.Service.source = Service.Miss);
  check_bool "and complete" true (o2.Service.completeness = Corecover.Complete);
  check_bool "with rewritings" true (o2.Service.rewritings <> []);
  let o3 = Service.rewrite s Car_loc_part.query in
  check_bool "now cached" true (o3.Service.source = Service.Hit)

let service_generation_invalidates () =
  let s = service () in
  let o1 = Service.rewrite s Car_loc_part.query in
  let cat' =
    match Catalog.remove_views (Service.catalog s) [ "v4" ] with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Service.set_catalog s cat';
  let o2 = Service.rewrite s Car_loc_part.query in
  check_bool "cache cleared on catalog swap" true (o2.Service.source = Service.Miss);
  (* v4 gone: the single-view rewriting disappears *)
  check_bool "answers reflect the new generation" true
    (List.length o2.Service.rewritings < List.length o1.Service.rewritings
    || not (List.for_all2 Query.equal o1.Service.rewritings o2.Service.rewritings))

let service_stats_consistent () =
  let s = service () in
  let queries =
    [ Car_loc_part.query; Car_loc_part.query; Example_4_1.query ]
  in
  List.iter (fun query -> ignore (Service.rewrite s query)) queries;
  let st = Service.stats s in
  check_int "requests" 3 st.Service.requests;
  check_int "identity: hits+misses+bypasses" st.Service.requests
    (st.Service.hits + st.Service.misses + st.Service.bypasses);
  check_int "one hit" 1 st.Service.hits;
  check_int "latency count" 3 st.Service.latency.Service.count

(* Lifetime counters survive a catalog swap; only the generation-resets
   counter records it (regression: they used to be conflated with the
   per-catalog state). *)
let service_stats_survive_catalog_swap () =
  let s = service () in
  ignore (Service.rewrite s Car_loc_part.query);
  ignore (Service.rewrite s Car_loc_part.query);
  let before = Service.stats s in
  check_int "no resets yet" 0 before.Service.generation_resets;
  Service.set_catalog s (Catalog.create_exn Car_loc_part.views);
  let after = Service.stats s in
  check_int "requests survive" before.Service.requests after.Service.requests;
  check_int "hits survive" before.Service.hits after.Service.hits;
  check_int "misses survive" before.Service.misses after.Service.misses;
  check_int "latency count survives" before.Service.latency.Service.count
    after.Service.latency.Service.count;
  check_int "one reset recorded" 1 after.Service.generation_resets;
  Service.set_catalog s (Catalog.create_exn Car_loc_part.views);
  check_int "resets accumulate" 2 (Service.stats s).Service.generation_resets

(* A cache hit (alpha-renamed, permuted resubmission) returns a rewriting
   set equal, up to renaming, to a fresh Corecover run on the resubmitted
   query.  "Up to renaming" is per-rewriting isomorphism; the sets are
   compared as multisets. *)
let same_up_to_iso ps qs =
  let rec consume remaining = function
    | [] -> remaining = []
    | p :: rest -> (
        match List.partition (fun p' -> Containment.isomorphic p p') remaining with
        | _ :: dups, others -> consume (dups @ others) rest
        | [], _ -> false)
  in
  List.length ps = List.length qs && consume qs ps

let service_hit_vs_fresh_qcheck =
  let gen = Gen.pair Qcheck_gens.gen_query (Qcheck_gens.gen_views ~max_views:3 ~max_atoms:2) in
  make_qcheck ~count:100 ~name:"cache hit = fresh Corecover up to renaming" gen
    Qcheck_gens.print_instance (fun (query, views) ->
      let s = Service.create (Catalog.create_exn views) in
      let o1 = Service.rewrite s query in
      let vars = Query.vars query in
      let sigma =
        Subst.of_list (List.mapi (fun i x -> (x, Term.Var ("Y" ^ string_of_int i))) vars)
      in
      let renamed = Query.apply sigma query in
      let variant = Query.make_exn renamed.Query.head (List.rev renamed.Query.body) in
      let o2 = Service.rewrite s variant in
      let fresh = Corecover.gmrs ~query:variant ~views () in
      o1.Service.source = Service.Miss
      && o2.Service.source = Service.Hit
      && same_up_to_iso o2.Service.rewritings fresh.Corecover.rewritings)

(* ------------------------------------------------------------------ *)
(* Concurrent dispatch                                                 *)

let stress_concurrent_vs_sequential () =
  (* a workload with repeats and alpha-variants against one shared
     catalog: the pool must produce exactly the sequential answers *)
  let variants =
    [
      Car_loc_part.query;
      q "q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).";
      Example_4_1.query;
      q "q(U, V) :- b(W, V), a(U, W), a(W, W).";
    ]
  in
  let workload = List.concat (List.init 4 (fun _ -> variants)) in
  let sequential =
    let s = service () in
    List.map (fun query -> Service.rewrite s query) workload
  in
  let concurrent =
    let s = service () in
    Service.rewrite_batch ~domains:4 s workload
  in
  List.iter2
    (fun (a : Service.outcome) (b : Service.outcome) ->
      check_bool "same rewritings under concurrency" true
        (List.for_all2 Query.equal a.Service.rewritings b.Service.rewritings);
      check_bool "same completeness" true
        (a.Service.completeness = b.Service.completeness))
    sequential concurrent;
  let s = service () in
  let (_ : Service.outcome list) = Service.rewrite_batch ~domains:4 s workload in
  let st = Service.stats s in
  check_int "every request accounted" (List.length workload) st.Service.requests;
  check_int "identity holds under concurrency" st.Service.requests
    (st.Service.hits + st.Service.misses + st.Service.bypasses)

let suite =
  [
    Alcotest.test_case "canonical key: permuted Example 4.1" `Quick
      canonical_key_permuted_example41;
    Alcotest.test_case "canonical key separates queries" `Quick canonical_key_separates;
    Alcotest.test_case "canonicalize: sigma witnesses isomorphism" `Quick
      canonicalize_sigma_witnesses;
    canonical_key_qcheck;
    Alcotest.test_case "lru: eviction order and counters" `Quick lru_eviction;
    Alcotest.test_case "lru: replace is not eviction" `Quick lru_replace_is_not_eviction;
    Alcotest.test_case "catalog: incremental add = from scratch" `Quick
      catalog_incremental_add;
    Alcotest.test_case "catalog: remove and errors" `Quick catalog_remove;
    Alcotest.test_case "catalog classes drive corecover" `Quick
      catalog_classes_drive_corecover;
    Alcotest.test_case "service: hit is observationally identical" `Quick
      service_hit_identical;
    Alcotest.test_case "service: hit renames into caller variables" `Quick
      service_hit_renames_back;
    Alcotest.test_case "service: truncated results are never cached" `Quick
      service_truncated_not_cached;
    Alcotest.test_case "service: catalog swap invalidates cache" `Quick
      service_generation_invalidates;
    Alcotest.test_case "service: stats identity" `Quick service_stats_consistent;
    Alcotest.test_case "service: stats survive catalog swap" `Quick
      service_stats_survive_catalog_swap;
    service_hit_vs_fresh_qcheck;
    Alcotest.test_case "service: concurrent = sequential" `Quick
      stress_concurrent_vs_sequential;
  ]
