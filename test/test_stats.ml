(* The statistics subsystem (Vplan_stats): histogram boundary estimates
   and collection over a database. *)

open Vplan

let test_histogram_boundaries () =
  (* values 0..99, 10 buckets of width 10 *)
  let h =
    match Histogram.create ~buckets:10 (List.init 100 Fun.id) with
    | Some h -> h
    | None -> Alcotest.fail "histogram on non-empty values"
  in
  Alcotest.(check int) "lo" 0 h.Histogram.lo;
  Alcotest.(check int) "hi" 99 (Histogram.hi h);
  Alcotest.(check int) "total" 100 h.Histogram.total;
  (* the exact boundaries land in their buckets *)
  Alcotest.(check (option int)) "first value" (Some 0) (Histogram.bucket_of h 0);
  Alcotest.(check (option int)) "last of first bucket" (Some 0) (Histogram.bucket_of h (h.Histogram.width - 1));
  Alcotest.(check (option int)) "first of second bucket" (Some 1) (Histogram.bucket_of h h.Histogram.width);
  Alcotest.(check (option int)) "last value" (Some (Histogram.nbuckets h - 1)) (Histogram.bucket_of h 99);
  (* outside the observed range: no bucket, zero selectivity *)
  Alcotest.(check (option int)) "below range" None (Histogram.bucket_of h (-1));
  Alcotest.(check (option int)) "above range" None (Histogram.bucket_of h 100);
  Alcotest.(check (float 1e-9)) "eq below range" 0.0 (Histogram.eq_fraction ~distinct:100 h (-1));
  Alcotest.(check (float 1e-9)) "eq above range" 0.0 (Histogram.eq_fraction ~distinct:100 h 100);
  (* uniform data: the equality fraction is 1/distinct *)
  Alcotest.(check (float 1e-9)) "uniform eq fraction" 0.01 (Histogram.eq_fraction ~distinct:100 h 42)

let test_histogram_skew () =
  (* heavy head: value 0 occurs 90 times, 10..19 once each *)
  let values = List.init 90 (fun _ -> 0) @ List.init 10 (fun i -> 10 + i) in
  let h =
    match Histogram.create ~buckets:10 values with
    | Some h -> h
    | None -> Alcotest.fail "histogram on non-empty values"
  in
  let f_head = Histogram.eq_fraction ~distinct:11 h 0 in
  let f_tail = Histogram.eq_fraction ~distinct:11 h 15 in
  Alcotest.(check bool) "head estimated more frequent than tail" true (f_head > f_tail)

let test_histogram_empty_and_single () =
  Alcotest.(check bool) "empty values: no histogram" true (Histogram.create [] = None);
  match Histogram.create [ 7; 7; 7 ] with
  | None -> Alcotest.fail "constant column has a histogram"
  | Some h ->
      Alcotest.(check int) "single-value lo" 7 h.Histogram.lo;
      Alcotest.(check (option int)) "single value bucket" (Some 0) (Histogram.bucket_of h 7);
      Alcotest.(check (float 1e-9)) "all rows equal" 1.0 (Histogram.eq_fraction ~distinct:1 h 7)

let test_collect () =
  let db =
    Database.of_facts
      [
        ("r", [ Term.Int 1; Term.Int 10 ]);
        ("r", [ Term.Int 1; Term.Int 20 ]);
        ("r", [ Term.Int 2; Term.Int 10 ]);
        ("s", [ Term.Str "a" ]);
        ("s", [ Term.Str "a" ]);
      ]
  in
  let stats = Stats.collect db in
  Alcotest.(check int) "relations" 2 (Stats.num_relations stats);
  Alcotest.(check int) "total rows" 4 (Stats.total_rows stats);
  (match Stats.find "r" stats with
  | None -> Alcotest.fail "r profiled"
  | Some tbl ->
      Alcotest.(check int) "r card" 3 tbl.Stats.card;
      Alcotest.(check int) "r col0 distinct" 2 tbl.Stats.columns.(0).Stats.distinct;
      Alcotest.(check int) "r col1 distinct" 2 tbl.Stats.columns.(1).Stats.distinct;
      Alcotest.(check bool) "r col0 has histogram" true
        (tbl.Stats.columns.(0).Stats.hist <> None));
  match Stats.find "s" stats with
  | None -> Alcotest.fail "s profiled"
  | Some tbl ->
      Alcotest.(check int) "s card (dedup)" 1 tbl.Stats.card;
      Alcotest.(check bool) "string column has no histogram" true
        (tbl.Stats.columns.(0).Stats.hist = None)

let test_collect_matches_estimate_analyze () =
  (* per-column distinct counts agree with what Estimate.analyze uses as
     ground truth: both scan the same relations *)
  let rng = Prng.create 11 in
  let db =
    Datagen.random rng
      [ { Datagen.predicate = "p"; arity = 2; tuples = 200; domain = 20 } ]
  in
  let stats = Stats.collect db in
  match (Stats.find "p" stats, Database.find "p" db) with
  | Some tbl, Some r ->
      Alcotest.(check int) "card matches relation" (Relation.cardinality r) tbl.Stats.card
  | _ -> Alcotest.fail "p present in both"

let suite =
  [
    Alcotest.test_case "histogram boundary estimates" `Quick test_histogram_boundaries;
    Alcotest.test_case "histogram skew ordering" `Quick test_histogram_skew;
    Alcotest.test_case "histogram empty/single" `Quick test_histogram_empty_and_single;
    Alcotest.test_case "collect profiles a database" `Quick test_collect;
    Alcotest.test_case "collect matches relation cardinality" `Quick test_collect_matches_estimate_analyze;
  ]
