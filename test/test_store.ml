(* The durability layer: codec roundtrips, journal torn-tail recovery,
   snapshot atomicity, degraded-mode serving, and the crash matrix —
   one child server per (failpoint site, occurrence), killed mid-write,
   whose recovered state must be the acked prefix. *)

open Vplan
open Helpers

let temp_dir () =
  let d = Filename.temp_file "vplan_store_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let codec_roundtrip () =
  let b = Buffer.create 64 in
  Codec.put_u8 b 0;
  Codec.put_u8 b 255;
  Codec.put_u32 b 0;
  Codec.put_u32 b 0xFFFF_FFFF;
  Codec.put_u63 b 0;
  Codec.put_u63 b max_int;
  Codec.put_i63 b min_int;
  Codec.put_i63 b (-1);
  Codec.put_i63 b max_int;
  Codec.put_string b "";
  Codec.put_string b "hello\nworld\x00\xff";
  Codec.put_list Codec.put_u8 b [ 1; 2; 3 ];
  let r = Codec.reader (Buffer.contents b) in
  let get what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" what e
  in
  check_int "u8 min" 0 (get "u8" (Codec.get_u8 r));
  check_int "u8 max" 255 (get "u8" (Codec.get_u8 r));
  check_int "u32 min" 0 (get "u32" (Codec.get_u32 r));
  check_int "u32 max" 0xFFFF_FFFF (get "u32" (Codec.get_u32 r));
  check_int "u63 min" 0 (get "u63" (Codec.get_u63 r));
  check_int "u63 max" max_int (get "u63" (Codec.get_u63 r));
  check_int "i63 min_int" min_int (get "i63" (Codec.get_i63 r));
  check_int "i63 -1" (-1) (get "i63" (Codec.get_i63 r));
  check_int "i63 max_int" max_int (get "i63" (Codec.get_i63 r));
  Alcotest.(check string) "empty string" "" (get "str" (Codec.get_string r));
  Alcotest.(check string)
    "binary string" "hello\nworld\x00\xff"
    (get "str" (Codec.get_string r));
  Alcotest.(check (list int))
    "list" [ 1; 2; 3 ]
    (get "list" (Codec.get_list Codec.get_u8 r));
  ok_exn "expect_end" (Codec.expect_end r);
  (* short reads are errors, not exceptions *)
  check_bool "short u32" true
    (Result.is_error (Codec.get_u32 (Codec.reader "\x00\x01")));
  check_bool "trailing bytes rejected" true
    (Result.is_error (Codec.expect_end (Codec.reader "\x00")))

let record_roundtrip () =
  let roundtrip op =
    let b = Buffer.create 64 in
    Record.put_op b op;
    let r = Codec.reader (Buffer.contents b) in
    let decoded = ok_exn "get_op" (Record.get_op r) in
    check_bool
      (Format.asprintf "roundtrip %a" Record.pp_op op)
      true (decoded = op);
    ok_exn "record end" (Codec.expect_end r)
  in
  roundtrip (Record.Add_view "v1(X, Y) :- car(X, Y).");
  roundtrip (Record.Remove_view "v1");
  roundtrip (Record.Load_data []);
  roundtrip
    (Record.Load_data
       [
         ("car", [ Term.Str "honda"; Term.Str "anderson" ]);
         ("n", [ Term.Int 0; Term.Int (-1); Term.Int max_int; Term.Int min_int ]);
       ])

(* ------------------------------------------------------------------ *)
(* Snapshot: QCheck roundtrip + corruption detection                   *)

module Gen = QCheck2.Gen

let gen_const =
  Gen.oneof
    [
      Gen.map (fun i -> Term.Int i) Gen.int;
      Gen.map (fun s -> Term.Str s) (Gen.string_size (Gen.int_range 0 6));
    ]

let gen_fact =
  let open Gen in
  let* pred = string_size (int_range 1 6) in
  let* args = list_size (int_range 0 3) gen_const in
  return (pred, args)

let gen_histogram =
  let open Gen in
  let* lo = int_range (-100) 100 in
  let* width = int_range 1 50 in
  let* counts = list_size (int_range 1 8) (int_range 0 1000) in
  let* total = int_range 0 10_000 in
  return { Vplan_stats.Histogram.lo; width; counts = Array.of_list counts; total }

let gen_table =
  let open Gen in
  let* name = string_size (int_range 1 6) in
  let* card = int_range 0 100_000 in
  let* columns =
    list_size (int_range 0 4)
      (let* distinct = int_range 0 1000 in
       let* hist = opt gen_histogram in
       return { Vplan_stats.Stats.distinct; hist })
  in
  return (name, { Vplan_stats.Stats.card; columns = Array.of_list columns })

(* Codec-level randomness: view "texts" are arbitrary bytes — the
   framing must not care whether they parse as rules. *)
let gen_snapshot =
  let open Gen in
  let* seq = int_range 0 1_000_000 in
  let* generation = int_range 1 10_000 in
  let* views = list_size (int_range 0 8) (string_size (int_range 0 24)) in
  let nviews = List.length views in
  let* classes =
    if nviews = 0 then return []
    else
      list_size (int_range 0 4)
        (let* signature = string_size (int_range 0 16) in
         let* members =
           list_size (int_range 0 nviews) (int_range 0 (nviews - 1))
         in
         return (signature, members))
  in
  let* base = opt (list_size (int_range 0 5) gen_fact) in
  let* stats = opt (list_size (int_range 0 3) gen_table) in
  return { Snapshot.seq; generation; views; classes; base; stats }

let snapshot_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"snapshot encode/decode roundtrip"
       gen_snapshot (fun s ->
         match Snapshot.decode (Snapshot.encode s) with
         | Ok s' -> s' = s
         | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e))

let snapshot_corruption_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"snapshot decode rejects any flipped bit"
       Gen.(triple gen_snapshot small_nat small_nat)
       (fun (s, at, bit) ->
         let data = Bytes.of_string (Snapshot.encode s) in
         let at = at mod Bytes.length data in
         let bit = bit mod 8 in
         Bytes.set data at
           (Char.chr (Char.code (Bytes.get data at) lxor (1 lsl bit)));
         match Snapshot.decode (Bytes.to_string data) with
         | Error _ -> true
         | Ok _ -> QCheck2.Test.fail_report "corrupt snapshot decoded"))

let snapshot_atomic_write () =
  with_temp_dir (fun dir ->
      let s1 =
        {
          Snapshot.seq = 3;
          generation = 2;
          views = [ "v1(X) :- p(X)." ];
          classes = [ ("sig1", [ 0 ]) ];
          base = Some [ ("p", [ Term.Str "a" ]) ];
          stats = None;
        }
      in
      ok_exn "write 1" (Snapshot.write ~dir ~file:"s.vps" s1);
      let s2 = { s1 with Snapshot.seq = 9; views = []; classes = [] } in
      ok_exn "write 2" (Snapshot.write ~dir ~file:"s.vps" s2);
      (match Snapshot.read (Filename.concat dir "s.vps") with
      | Ok (Some got) -> check_bool "latest snapshot wins" true (got = s2)
      | Ok None -> Alcotest.fail "snapshot missing"
      | Error e -> Alcotest.failf "read: %s" e);
      (* no temp residue after a successful replace *)
      check_bool "no tmp file left" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".tmp"))
           (Sys.readdir dir));
      match Snapshot.read (Filename.concat dir "absent.vps") with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom snapshot"
      | Error e -> Alcotest.failf "missing file must be Ok None: %s" e)

(* ------------------------------------------------------------------ *)
(* Journal: append/replay and torn-tail truncation                     *)

let journal_ops =
  [
    (1, Record.Add_view "v1(X) :- p(X).");
    (2, Record.Add_view "v2(X, Y) :- q(X, Y).");
    (3, Record.Remove_view "v1");
    (4, Record.Load_data [ ("p", [ Term.Int 42 ]) ]);
  ]

let journal_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.vpj" in
      (* a missing journal is an empty journal *)
      let r0 = ok_exn "replay missing" (Journal.replay path) in
      check_int "missing: no records" 0 (List.length r0.Journal.records);
      let j = ok_exn "open" (Journal.open_append path) in
      List.iter
        (fun (seq, op) -> ok_exn "append" (Journal.append j ~seq op))
        journal_ops;
      Journal.close j;
      let r = ok_exn "replay" (Journal.replay path) in
      check_bool "records roundtrip" true (r.Journal.records = journal_ops);
      check_int "no torn tail" r.Journal.total_bytes r.Journal.valid_bytes)

let journal_torn_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.vpj" in
      let j = ok_exn "open" (Journal.open_append path) in
      List.iter
        (fun (seq, op) -> ok_exn "append" (Journal.append j ~seq op))
        journal_ops;
      Journal.close j;
      let good = (ok_exn "replay" (Journal.replay path)).Journal.valid_bytes in
      (* torn tail: a prefix of a frame that never finished *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x00\x2a\xde\xad";
      close_out oc;
      let r = ok_exn "replay torn" (Journal.replay path) in
      check_bool "acked records survive" true (r.Journal.records = journal_ops);
      check_int "valid stops at the tear" good r.Journal.valid_bytes;
      check_int "torn bytes visible" (good + 6) r.Journal.total_bytes;
      ok_exn "truncate" (Journal.truncate_to path r.Journal.valid_bytes);
      (* corrupt tail: a full frame whose payload bit-flipped on disk *)
      let frame =
        let payload = Buffer.create 16 in
        Codec.put_u63 payload 9;
        Record.put_op payload (Record.Remove_view "v2");
        let p = Buffer.contents payload in
        let b = Buffer.create 32 in
        Codec.put_u32 b (String.length p);
        Codec.put_u32 b (Crc32.digest p lxor 1);
        Buffer.add_string b p;
        Buffer.contents b
      in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc frame;
      close_out oc;
      let r2 = ok_exn "replay corrupt" (Journal.replay path) in
      check_bool "CRC failure stops replay" true
        (r2.Journal.records = journal_ops);
      check_int "corrupt frame not counted" good r2.Journal.valid_bytes;
      (* appending after truncation continues the same journal *)
      ok_exn "truncate 2" (Journal.truncate_to path r2.Journal.valid_bytes);
      let j2 = ok_exn "reopen" (Journal.open_append path) in
      ok_exn "append after tear"
        (Journal.append j2 ~seq:5 (Record.Remove_view "v2"));
      Journal.close j2;
      let r3 = ok_exn "replay 3" (Journal.replay path) in
      check_bool "tail resumes cleanly" true
        (r3.Journal.records = journal_ops @ [ (5, Record.Remove_view "v2") ]))

(* ------------------------------------------------------------------ *)
(* Persist: snapshot_of / state_of_snapshot invert each other          *)

let persist_roundtrip () =
  let cat = Catalog.create_exn (List.map View.of_query Car_loc_part.views) in
  let cat = ok_exn "add" (Catalog.add_views cat [ q "v9(X) :- car(X, X)." ]) in
  let stats = Vplan_stats.Stats.collect Car_loc_part.base in
  let snap = Persist.snapshot_of ~base:Car_loc_part.base ~stats cat in
  (* through the wire format, not just the value *)
  let snap = ok_exn "decode" (Snapshot.decode (Snapshot.encode snap)) in
  let cat', base', stats' =
    ok_exn "state_of_snapshot" (Persist.state_of_snapshot snap)
  in
  (match stats' with
  | None -> Alcotest.fail "stats lost"
  | Some s ->
      check_bool "stats preserved" true
        (Vplan_stats.Stats.bindings s = Vplan_stats.Stats.bindings stats));
  check_int "generation preserved" (Catalog.generation cat)
    (Catalog.generation cat');
  check_bool "views preserved" true
    (List.map View.name (Catalog.views cat)
    = List.map View.name (Catalog.views cat'));
  check_bool "class partition preserved" true
    (List.map (fun (s, vs) -> (s, List.map View.name vs)) (Catalog.keyed cat)
    = List.map (fun (s, vs) -> (s, List.map View.name vs)) (Catalog.keyed cat'));
  match base' with
  | None -> Alcotest.fail "base lost"
  | Some db ->
      check_int "base facts preserved"
        (List.length (Database.facts Car_loc_part.base))
        (List.length (Database.facts db))

(* ------------------------------------------------------------------ *)
(* Store: open/append/save/reopen, and ENOSPC degradation              *)

let store_lifecycle () =
  with_temp_dir (fun dir ->
      let st, r = ok_exn "open" (Store.open_dir dir) in
      check_bool "fresh: no snapshot" true (r.Store.r_snapshot = None);
      check_int "fresh: nothing replayed" 0 (List.length r.Store.r_replayed);
      ok_exn "append 1" (Store.append st (Record.Add_view "v1(X) :- p(X)."));
      ok_exn "append 2" (Store.append st (Record.Add_view "v2(X) :- r(X, X)."));
      check_int "seq advanced" 2 (Store.last_seq st);
      Store.close st;
      let st2, r2 = ok_exn "reopen" (Store.open_dir dir) in
      check_int "both records recovered" 2 (List.length r2.Store.r_replayed);
      check_int "seq recovered" 2 (Store.last_seq st2);
      (* compact: the snapshot subsumes the journal *)
      let snap =
        {
          Snapshot.seq = 0;
          generation = 3;
          views = [ "v1(X) :- p(X)."; "v2(X) :- r(X, X)." ];
          classes = [ ("a", [ 0 ]); ("b", [ 1 ]) ];
          base = None;
          stats = None;
        }
      in
      ok_exn "save" (Store.save st2 snap);
      check_int "journal truncated by save" 0 (Store.journal_bytes st2);
      ok_exn "append post-save" (Store.append st2 (Record.Remove_view "v1"));
      Store.close st2;
      let st3, r3 = ok_exn "reopen 2" (Store.open_dir dir) in
      (match r3.Store.r_snapshot with
      | Some s ->
          check_int "snapshot carries acked seq" 2 s.Snapshot.seq;
          check_int "snapshot generation" 3 s.Snapshot.generation
      | None -> Alcotest.fail "snapshot missing after save");
      check_bool "only the post-save record replays" true
        (List.map snd r3.Store.r_replayed = [ Record.Remove_view "v1" ]);
      Store.close st3)

let store_enospc_degrades () =
  with_temp_dir (fun dir ->
      Failpoint.reset ();
      Fun.protect ~finally:Failpoint.reset @@ fun () ->
      let st, _ = ok_exn "open" (Store.open_dir dir) in
      ok_exn "append ok" (Store.append st (Record.Add_view "v1(X) :- p(X)."));
      Failpoint.arm "store.journal.append" (Failpoint.Io_error "ENOSPC");
      (match Store.append st (Record.Add_view "v2(X) :- p(X).") with
      | Ok () -> Alcotest.fail "append must fail under ENOSPC"
      | Error _ -> ());
      check_bool "degraded to readonly" true (Store.mode st = Store.Readonly);
      check_bool "reason recorded" true (Store.degraded_reason st <> None);
      (* sticky: the store stays readonly even once the disk recovers *)
      Failpoint.reset ();
      (match Store.append st (Record.Add_view "v3(X) :- p(X).") with
      | Ok () -> Alcotest.fail "readonly store must refuse appends"
      | Error e -> check_bool "says readonly" true (contains e "readonly"));
      let dump = Format.asprintf "%t" Metrics.dump in
      check_bool "degraded gauge raised" true
        (contains dump "vplan_store_degraded 1");
      Store.close st;
      (* the acked prefix — one record — survives the episode *)
      let st2, r = ok_exn "reopen" (Store.open_dir dir) in
      check_bool "acked prefix intact" true
        (List.map snd r.Store.r_replayed
        = [ Record.Add_view "v1(X) :- p(X)." ]);
      Store.close st2)

(* ------------------------------------------------------------------ *)
(* Protocol with a store: journal-before-ack, readonly serving, health *)

(* Boot a protocol shared state from [dir] exactly the way the server
   binary does: open, restore the snapshot, replay the journal. *)
let protocol_shared ~dir =
  let st, r = ok_exn "open" (Store.open_dir dir) in
  let shared =
    Protocol.create_shared ~domains:1 ~store:st
      ~boot_replayed:(List.length r.Store.r_replayed)
      ~boot_truncated:r.Store.r_truncated_bytes ()
  in
  let state, stats =
    match r.Store.r_snapshot with
    | None -> ((None, None), None)
    | Some snap ->
        let cat, base, stats =
          ok_exn "snapshot state" (Persist.state_of_snapshot snap)
        in
        ((Some cat, base), stats)
  in
  let cat, base, _ = ok_exn "replay" (Persist.replay state r.Store.r_replayed) in
  let stats =
    if
      List.exists
        (fun (_, op) ->
          match op with Record.Load_data _ -> true | _ -> false)
        r.Store.r_replayed
    then None
    else stats
  in
  (match cat with
  | None -> ()
  | Some cat ->
      Protocol.install_catalog shared cat;
      (match (Protocol.service shared, base) with
      | Some s, Some db -> Service.set_base ?stats s db
      | _ -> ()));
  (st, shared)

let ask shared line =
  let sess = Protocol.new_session shared in
  (Protocol.handle_lines shared sess [ line ]).Protocol.text

let rewrite_line =
  "rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)."

let protocol_readonly_serving () =
  with_temp_dir (fun dir ->
      Failpoint.reset ();
      Fun.protect ~finally:Failpoint.reset @@ fun () ->
      let st, shared = protocol_shared ~dir in
      check_bool "bootstrap add acks" true
        (starts_with "ok catalog"
           (ask shared
              "catalog add v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)."));
      check_bool "health says durable" true
        (contains (ask shared "health") "store=durable");
      (* the disk fills *)
      Failpoint.arm "store.journal.append" (Failpoint.Io_error "ENOSPC");
      check_bool "mutation refused readonly" true
        (starts_with "err readonly"
           (ask shared "catalog add v5(X) :- loc(X, X)."));
      (* reads keep serving from memory *)
      check_bool "reads still answer" true
        (starts_with "ok 1" (ask shared rewrite_line));
      let health = ask shared "health" in
      check_bool "health flips to readonly" true
        (contains health "store=readonly");
      (* the refused view must not be visible *)
      check_bool "unacked not visible" true (contains health "views=1");
      Failpoint.reset ();
      Store.close st;
      (* ... nor durable *)
      let st2, r = ok_exn "reopen" (Store.open_dir dir) in
      check_int "exactly the acked mutation on disk" 1
        (List.length r.Store.r_replayed);
      Store.close st2)

let protocol_save_health () =
  with_temp_dir (fun dir ->
      let st, shared = protocol_shared ~dir in
      check_bool "save without catalog errs" true
        (starts_with "err" (ask shared "save"));
      ignore (ask shared "catalog add v1(M, D, C) :- car(M, D), loc(D, C).");
      ignore (ask shared "catalog add v2(S, M, C) :- part(S, M, C).");
      check_bool "save acks" true (starts_with "ok saved" (ask shared "save"));
      check_int "journal compacted" 0 (Store.journal_records st);
      Store.close st;
      (* warm restart: snapshot only, no replay, same catalog *)
      let st2, shared2 = protocol_shared ~dir in
      let health = ask shared2 "health" in
      check_bool "replayed=0 after compaction" true
        (contains health "replayed=0");
      check_bool "views restored from snapshot" true
        (contains health "views=2");
      check_bool "restored catalog still mutates" true
        (starts_with "ok catalog generation="
           (ask shared2 "catalog remove v2"));
      Store.close st2)

(* ------------------------------------------------------------------ *)
(* Crash matrix: child servers killed at every write site              *)

let server_bin =
  match Sys.getenv_opt "VPLAN_SERVER" with
  | Some p -> p
  | None ->
      (* tests run from _build/default/test/; the server binary is a
         declared dependency of the test stanza, so it is built *)
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/vplan_server.exe"

let read_all fd =
  let buf = Bytes.create 65536 in
  let b = Buffer.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Run one child server over stdio with [failpoints] armed, feed it
   [commands], and return (stdout lines, exit status). *)
let run_child ~dir ~failpoints commands =
  (* the child may die mid-stream; the write must surface as EPIPE, not
     kill the test runner *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev_sigpipe)
  @@ fun () ->
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  let env =
    Array.append (Unix.environment ())
      (if failpoints = "" then [||]
       else [| "VPLAN_FAILPOINTS=" ^ failpoints |])
  in
  let pid =
    Unix.create_process_env server_bin
      [| server_bin; "--stdio"; "--data-dir"; dir |]
      env stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  let input = String.concat "" (List.map (fun c -> c ^ "\n") commands) in
  (try
     let pos = ref 0 in
     while !pos < String.length input do
       pos :=
         !pos
         + Unix.write_substring stdin_w input !pos (String.length input - !pos)
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  (try Unix.close stdin_w with Unix.Unix_error (_, _, _) -> ());
  let out = read_all stdout_r in
  Unix.close stdout_r;
  let _, status = Unix.waitpid [] pid in
  (String.split_on_char '\n' out, status)

let add_command i = Printf.sprintf "catalog add w%d(X, Y) :- p%d(X, Y)." i i

(* Recover the directory the way the server boots, returning the view
   names present after recovery. *)
let recovered_views dir =
  let st, r = ok_exn "open" (Store.open_dir dir) in
  Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
  let state =
    match r.Store.r_snapshot with
    | None -> (None, None)
    | Some snap ->
        let cat, base, _ = ok_exn "snapshot" (Persist.state_of_snapshot snap) in
        (Some cat, base)
  in
  let cat, _, _ = ok_exn "replay" (Persist.replay state r.Store.r_replayed) in
  match cat with
  | None -> []
  | Some cat -> List.map View.name (Catalog.views cat)

(* The invariant the whole layer exists for:

     acked  ⊆  recovered  ⊆  issued-prefix(acked + 1)

   The +1 window is a mutation made durable whose ack never reached the
   client (crash between fsync and reply) — indistinguishable, by
   design, from an ack lost in flight. *)
let check_crash_invariant ~label ~acked ~recovered ~issued =
  let prefix n = List.filteri (fun i _ -> i < n) issued in
  check_bool
    (Printf.sprintf "%s: recovered=[%s] is the acked prefix (acked=%d)" label
       (String.concat "," recovered)
       acked)
    true
    (recovered = prefix (List.length recovered)
    && List.length recovered >= acked
    && List.length recovered <= acked + 1)

let crash_sites =
  [
    ("store.journal.append=crash@3", false);
    ("store.journal.append.write=torn:3@2", false);
    ("store.journal.append.write=torn:9@4", false);
    ("store.journal.append.before_fsync=crash@1", false);
    ("store.journal.append.before_fsync=crash@5", false);
    ("store.journal.append.after_fsync=crash@2", false);
    ("store.journal.append.after_fsync=crash@5", false);
    (* snapshot sites; the command stream below inserts a [save] *)
    ("store.snapshot.write=torn:4@1", true);
    ("store.snapshot.before_rename=crash@1", true);
    ("store.snapshot.after_rename=crash@1", true);
    ("store.compact.after_truncate=crash@1", true);
  ]

let crash_matrix () =
  List.iter
    (fun (failpoints, with_save) ->
      with_temp_dir (fun dir ->
          let issued = List.map (fun i -> Printf.sprintf "w%d" i) [ 0; 1; 2; 3; 4 ] in
          let commands =
            if with_save then
              List.map add_command [ 0; 1; 2 ]
              @ [ "save" ]
              @ List.map add_command [ 3; 4 ]
              @ [ "quit" ]
            else List.map add_command [ 0; 1; 2; 3; 4 ] @ [ "quit" ]
          in
          let lines, status = run_child ~dir ~failpoints commands in
          let acked =
            List.length (List.filter (starts_with "ok catalog") lines)
          in
          (match status with
          | Unix.WEXITED 137 -> ()
          | s ->
              Alcotest.failf "%s: expected crash exit 137, got %s" failpoints
                (match s with
                | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
                | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n));
          let recovered = recovered_views dir in
          check_crash_invariant ~label:failpoints ~acked ~recovered ~issued))
    crash_sites

(* After [save], the pre-snapshot mutations live in the snapshot, not
   the journal — crashing a later journal write must not lose them. *)
let crash_after_save_keeps_snapshot () =
  with_temp_dir (fun dir ->
      let commands =
        List.map add_command [ 0; 1; 2 ] @ [ "save"; add_command 3; "quit" ]
      in
      let lines, _ =
        run_child ~dir ~failpoints:"store.journal.append=crash@4" commands
      in
      check_bool "save acked before crash" true
        (List.exists (starts_with "ok saved") lines);
      let recovered = recovered_views dir in
      check_bool
        (Printf.sprintf "snapshot content survives (got=[%s])"
           (String.concat "," recovered))
        true
        (List.length recovered >= 3
        && List.filteri (fun i _ -> i < 3) recovered = [ "w0"; "w1"; "w2" ]))

(* ------------------------------------------------------------------ *)
(* SIGINT drains like SIGTERM: acked mutations on disk, "drained" said *)

let signal_drain signal () =
  with_temp_dir (fun dir ->
      let port_file = Filename.concat dir "port" in
      let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
      let pid =
        Unix.create_process server_bin
          [|
            server_bin; "--listen"; "0"; "--port-file"; port_file;
            "--data-dir"; dir; "--workers"; "2";
          |]
          Unix.stdin stdout_w Unix.stderr
      in
      Unix.close stdout_w;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_port () =
        let content =
          if Sys.file_exists port_file then
            In_channel.with_open_text port_file In_channel.input_all
          else ""
        in
        match int_of_string_opt (String.trim content) with
        | Some p when p > 0 -> p
        | _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "server never wrote its port file"
            else (
              Unix.sleepf 0.02;
              wait_port ())
      in
      let port = wait_port () in
      let c = Loadgen.Client.connect ~port () in
      let acked = ref 0 in
      for i = 0 to 7 do
        match Loadgen.Client.request c (add_command i) with
        | l :: _ when starts_with "ok catalog" l -> incr acked
        | other ->
            Alcotest.failf "add %d failed: %s" i (String.concat "|" other)
      done;
      Unix.kill pid signal;
      let _, status = Unix.waitpid [] pid in
      Loadgen.Client.close c;
      let out = read_all stdout_r in
      Unix.close stdout_r;
      check_bool "clean exit" true (status = Unix.WEXITED 0);
      check_bool "printed drained" true (contains out "drained");
      (* every acked mutation is on disk: draining lost nothing *)
      let recovered = recovered_views dir in
      check_int "no acked mutation lost" !acked (List.length recovered))

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick codec_roundtrip;
    Alcotest.test_case "record op roundtrip" `Quick record_roundtrip;
    snapshot_qcheck;
    snapshot_corruption_qcheck;
    Alcotest.test_case "snapshot atomic write" `Quick snapshot_atomic_write;
    Alcotest.test_case "journal roundtrip" `Quick journal_roundtrip;
    Alcotest.test_case "journal torn tail" `Quick journal_torn_tail;
    Alcotest.test_case "persist roundtrip" `Quick persist_roundtrip;
    Alcotest.test_case "store lifecycle" `Quick store_lifecycle;
    Alcotest.test_case "ENOSPC degrades to readonly" `Quick
      store_enospc_degrades;
    Alcotest.test_case "protocol readonly serving" `Quick
      protocol_readonly_serving;
    Alcotest.test_case "protocol save + warm restart" `Quick
      protocol_save_health;
    Alcotest.test_case "crash matrix" `Quick crash_matrix;
    Alcotest.test_case "crash after save" `Quick crash_after_save_keeps_snapshot;
    Alcotest.test_case "SIGINT drains like SIGTERM" `Quick
      (signal_drain Sys.sigint);
    Alcotest.test_case "SIGTERM drains" `Quick (signal_drain Sys.sigterm);
  ]
