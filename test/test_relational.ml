(* Tests for the relational engine: relations, databases, evaluation and
   data generation. *)

open Vplan
open Helpers

let tuple_of_ints l = List.map (fun i -> Term.Int i) l

let test_relation_set_semantics () =
  let r = Relation.of_tuples 2 [ tuple_of_ints [ 1; 2 ]; tuple_of_ints [ 1; 2 ] ] in
  check_int "duplicates collapse" 1 (Relation.cardinality r);
  check_bool "mem" true (Relation.mem (tuple_of_ints [ 1; 2 ]) r);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.add: tuple of arity 3 into relation of arity 2") (fun () ->
      ignore (Relation.add (tuple_of_ints [ 1; 2; 3 ]) r))

let test_relation_union_subset () =
  let r1 = Relation.of_tuples 1 [ tuple_of_ints [ 1 ] ] in
  let r2 = Relation.of_tuples 1 [ tuple_of_ints [ 2 ] ] in
  let u = Relation.union r1 r2 in
  check_int "union" 2 (Relation.cardinality u);
  check_bool "subset" true (Relation.subset r1 u);
  check_bool "not subset" false (Relation.subset u r1)

let test_database_facts () =
  let db = Database.of_facts [ ("p", tuple_of_ints [ 1; 2 ]); ("r", tuple_of_ints [ 3 ]) ] in
  check_int "total size" 2 (Database.total_size db);
  Alcotest.(check (list string)) "predicates" [ "p"; "r" ] (Database.predicates db);
  check_int "facts as atoms" 2 (List.length (Database.facts db));
  Alcotest.check_raises "arity conflict"
    (Invalid_argument "Relation.add: tuple of arity 1 into relation of arity 2") (fun () ->
      ignore (Database.add_fact "p" (tuple_of_ints [ 9 ]) db))

let chain_db =
  Database.of_facts
    [
      ("e", tuple_of_ints [ 1; 2 ]);
      ("e", tuple_of_ints [ 2; 3 ]);
      ("e", tuple_of_ints [ 3; 4 ]);
      ("e", tuple_of_ints [ 2; 2 ]);
    ]

let test_eval_simple_join () =
  let query = q "q(X, Z) :- e(X, Y), e(Y, Z)." in
  let result = Eval.answers chain_db query in
  (* paths of length 2: 1-2-3, 2-3-4, 1-2-2, 2-2-3, 2-2-2 *)
  check_int "path pairs" 5 (Relation.cardinality result);
  check_bool "contains (1,3)" true (Relation.mem (tuple_of_ints [ 1; 3 ]) result)

let test_eval_selection () =
  let query = q "q(Y) :- e(2, Y)." in
  let result = Eval.answers chain_db query in
  check_int "constants select" 2 (Relation.cardinality result)

let test_eval_repeated_var () =
  let query = q "q(X) :- e(X, X)." in
  let result = Eval.answers chain_db query in
  check_int "self loops" 1 (Relation.cardinality result);
  check_bool "loop is 2" true (Relation.mem (tuple_of_ints [ 2 ]) result)

let test_eval_head_constants () =
  let query = q "q(X, tag) :- e(X, X)." in
  let result = Eval.answers chain_db query in
  check_bool "head constant in tuple" true
    (Relation.mem [ Term.Int 2; Term.Str "tag" ] result)

let test_eval_empty_relation () =
  let query = q "q(X) :- missing(X)." in
  check_int "missing relation" 0 (Relation.cardinality (Eval.answers chain_db query))

let test_eval_cross_product () =
  (* e(X,2) matches {1,2}; e(3,Y) matches {4}: 2 x 1 combinations *)
  let query = q "q(X, Y) :- e(X, 2), e(3, Y)." in
  let result = Eval.answers chain_db query in
  check_int "cross product" 2 (Relation.cardinality result)

let test_extend_and_project () =
  let envs = Eval.satisfying_envs chain_db (q "q(X, Z) :- e(X, Y), e(Y, Z).").Query.body in
  check_int "all bindings" 5 (Eval.distinct_count envs);
  let projected = Eval.project ~onto:(Names.sset_of_list [ "X" ]) envs in
  (* X values among paths: 1, 2 *)
  check_int "projected" 2 (List.length projected)

let test_matching_count () =
  check_int "pattern count" 2
    (Eval.matching_count chain_db (Atom.make "e" [ Term.Cst (Term.Int 2); Term.Var "Y" ]));
  check_int "relation size" 4
    (Eval.relation_size chain_db (Atom.make "e" [ Term.Var "X"; Term.Var "Y" ]))

let test_prng_deterministic () =
  let r1 = Prng.create 7 and r2 = Prng.create 7 in
  let l1 = List.init 20 (fun _ -> Prng.int r1 1000) in
  let l2 = List.init 20 (fun _ -> Prng.int r2 1000) in
  Alcotest.(check (list int)) "same seed same stream" l1 l2;
  let r3 = Prng.create 8 in
  let l3 = List.init 20 (fun _ -> Prng.int r3 1000) in
  check_bool "different seed differs" true (l1 <> l3)

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 100 do
    let v = Prng.range rng 5 9 in
    check_bool "range inclusive" true (v >= 5 && v <= 9)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let l = List.init 30 Fun.id in
  let s = Prng.shuffle rng l in
  Alcotest.(check (list int)) "same elements" l (List.sort Int.compare s)

(* Bulk load must agree with incremental insertion and beat it: one
   sort + dedup pass against n balanced-tree insertions on a
   duplicate-heavy load.  The ratio bound is deliberately loose (the
   asymptotics are identical; the win is constant-factor).  A single
   cold run is dominated by heap growth, not the algorithms — the
   first iteration measures ~1.0x where steady state is ~1.3x — so
   each side is timed as the best of three after one warm-up. *)
let test_bulk_load_guard () =
  let n = 50_000 in
  let tuples =
    (* mostly distinct (the bulk-load sweet spot) with a 10% duplicate
       tail that must still collapse *)
    List.init n (fun i ->
        tuple_of_ints [ i mod 45_000; (i mod 45_000 * 7) mod 9_973 ])
  in
  let bulk_load () = Relation.of_tuples 2 tuples in
  let incr_load () =
    List.fold_left (fun r t -> Relation.add t r) (Relation.empty 2) tuples
  in
  let best_of_3 f =
    ignore (f ());
    let best = ref infinity and result = ref (f ()) in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      result := f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    (!result, !best)
  in
  let bulk, bulk_s = best_of_3 bulk_load in
  let incremental, incr_s = best_of_3 incr_load in
  check_bool "bulk equals incremental" true (Relation.equal bulk incremental);
  check_bool "duplicates collapsed" true (Relation.cardinality bulk < n);
  check_bool
    (Printf.sprintf "bulk at least 1.15x faster (incr %.1fms, bulk %.1fms)"
       (incr_s *. 1000.) (bulk_s *. 1000.))
    true
    (incr_s /. Float.max 1e-9 bulk_s >= 1.15)

let test_zipf_sampler () =
  let rng = Prng.create 17 in
  let draw = Datagen.zipf rng ~domain:100 ~theta:0.9 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = draw () in
    check_bool "in domain" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  (* heavy head: rank 0 strictly dominates the mid and tail ranks *)
  check_bool "rank 0 beats rank 50" true (counts.(0) > counts.(50));
  check_bool "rank 0 beats rank 99" true (counts.(0) > counts.(99));
  let head = counts.(0) + counts.(1) + counts.(2) in
  check_bool "head mass is skewed" true (head > 20_000 * 3 / 100)

let test_datagen_dist_columns () =
  let rng = Prng.create 23 in
  let db =
    Datagen.random_dist rng
      [
        ( { Datagen.predicate = "p"; arity = 2; tuples = 400; domain = 50 },
          [ Datagen.Uniform; Datagen.Zipf 0.9 ] );
      ]
  in
  let r = Database.find_exn "p" db in
  check_int "arity" 2 (Relation.arity r);
  check_bool "some tuples" true (Relation.cardinality r > 0);
  (* the Zipf column concentrates on few values; the uniform one spreads *)
  let distinct pos =
    Relation.fold
      (fun t acc -> Names.Sset.add (Term.const_to_string (List.nth t pos)) acc)
      r Names.Sset.empty
    |> Names.Sset.cardinal
  in
  check_bool "zipf column more concentrated" true (distinct 1 < distinct 0)

let test_datagen_shapes () =
  let rng = Prng.create 5 in
  let db =
    Datagen.random rng
      [ { Datagen.predicate = "p"; arity = 2; tuples = 50; domain = 10 } ]
  in
  let r = Database.find_exn "p" db in
  check_int "arity" 2 (Relation.arity r);
  check_bool "some tuples" true (Relation.cardinality r > 0);
  check_bool "at most requested" true (Relation.cardinality r <= 50)

let test_datagen_nonempty_witness () =
  let query = q "q(X, Z) :- p(X, Y), r(Y, Z), s(Z, X)." in
  let rng = Prng.create 13 in
  let db = Datagen.for_query_nonempty rng ~tuples:20 ~domain:50 query in
  check_bool "query satisfiable" true (Relation.cardinality (Eval.answers db query) > 0)

let suite =
  [
    ("relation set semantics", `Quick, test_relation_set_semantics);
    ("relation union/subset", `Quick, test_relation_union_subset);
    ("database facts", `Quick, test_database_facts);
    ("eval join", `Quick, test_eval_simple_join);
    ("eval selection", `Quick, test_eval_selection);
    ("eval repeated variable", `Quick, test_eval_repeated_var);
    ("eval head constants", `Quick, test_eval_head_constants);
    ("eval missing relation", `Quick, test_eval_empty_relation);
    ("eval cross product", `Quick, test_eval_cross_product);
    ("extend and project", `Quick, test_extend_and_project);
    ("matching count", `Quick, test_matching_count);
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng shuffle", `Quick, test_prng_shuffle_permutes);
    ("bulk load guard", `Quick, test_bulk_load_guard);
    ("zipf sampler", `Quick, test_zipf_sampler);
    ("datagen per-column distributions", `Quick, test_datagen_dist_columns);
    ("datagen shapes", `Quick, test_datagen_shapes);
    ("datagen witness", `Quick, test_datagen_nonempty_witness);
  ]
