(* Tests for the views machinery: expansion, the equivalent-rewriting
   test, canonical databases, view tuples, equivalence classes and
   materialization. *)

open Vplan
open Helpers

let test_expansion_carloc () =
  let open Car_loc_part in
  let p2e = Expansion.expand_exn ~views p2 in
  check_int "P2exp three base atoms" 3 (List.length p2e.Query.body);
  check_bool "P2exp equivalent to Q" true (Containment.equivalent p2e query);
  let p1e = Expansion.expand_exn ~views p1 in
  check_int "P1exp five base atoms" 5 (List.length p1e.Query.body);
  check_bool "P1exp equivalent to Q" true (Containment.equivalent p1e query)

let test_expansion_fresh_existentials () =
  (* two uses of the same view get distinct existential variables *)
  let views = qs [ "v(X) :- p(X, Y)." ] in
  let p = q "q(A, B) :- v(A), v(B)." in
  let e = Expansion.expand_exn ~views p in
  let existential_args =
    List.filter_map
      (fun (a : Atom.t) -> match a.args with [ _; snd ] -> Term.var_name snd | _ -> None)
      e.Query.body
  in
  check_int "two body atoms" 2 (List.length e.Query.body);
  check_int "distinct existentials" 2
    (List.length (List.sort_uniq String.compare existential_args))

let test_expansion_repeated_head_var () =
  (* v(A, A): using it as v(X, Y) forces X = Y in the expansion *)
  let views = qs [ "v(A, A) :- p(A)." ] in
  let p = q "q(X, Y) :- v(X, Y)." in
  let e = Expansion.expand_exn ~views p in
  let head_args = e.Query.head.Atom.args in
  check_bool "head variables identified" true
    (match head_args with [ t1; t2 ] -> Term.equal t1 t2 | _ -> false)

let test_expansion_head_constant_clash () =
  let views = qs [ "v(c, A) :- p(A)." ] in
  let p = q "q(X) :- v(d, X)." in
  match Expansion.expand ~views p with
  | Error `Unsatisfiable -> ()
  | Ok _ -> Alcotest.fail "expected unsatisfiable expansion"

let test_expansion_base_atoms_kept () =
  let views = qs [ "v(X) :- p(X, Y)." ] in
  let p = q "q(A) :- v(A), base(A)." in
  let e = Expansion.expand_exn ~views p in
  check_bool "base atom kept" true
    (List.exists (fun (a : Atom.t) -> a.pred = "base") e.Query.body)

let test_is_equivalent_rewriting () =
  let open Car_loc_part in
  List.iter
    (fun (name, p) ->
      check_bool name true (Expansion.is_equivalent_rewriting ~views ~query p))
    [ ("P1", p1); ("P2", p2); ("P3", p3); ("P4", p4); ("P5", p5) ];
  (* dropping a needed subgoal breaks equivalence *)
  let broken = q "q1(S, C) :- v2(S, M, C)." in
  check_bool "broken rewriting rejected" false
    (Expansion.is_equivalent_rewriting ~views ~query broken)

let test_rewritings_not_equivalent_as_queries () =
  (* the paper's subtlety: P1exp == P2exp but P1 and P2 are not equivalent
     as queries over the view predicates *)
  let open Car_loc_part in
  check_bool "P2 contained in P1 as queries" true (Containment.is_contained p2 p1);
  check_bool "P1 not contained in P2" false (Containment.is_contained p1 p2)

let test_canonical_database () =
  let open Car_loc_part in
  let c = Canonical.freeze query in
  let db = Canonical.database c in
  check_int "three facts" 3 (Database.total_size db);
  (* constants of the query stay; variables freeze and thaw back *)
  let frozen_m = Canonical.frozen_term c (Term.Var "M") in
  Alcotest.check term_testable "thaw variable" (Term.Var "M") (Canonical.thaw_const c frozen_m);
  Alcotest.check term_testable "constant passes through" (Term.Cst (Term.Str "anderson"))
    (Canonical.thaw_const c (Term.Str "anderson"))

let test_view_tuples_carloc () =
  let open Car_loc_part in
  let tuples = View_tuple.compute ~query views in
  let atoms = List.map (fun tv -> Atom.to_string tv.View_tuple.atom) tuples in
  let expect =
    [ "v1(M,anderson,C)"; "v2(S,M,C)"; "v3(S)"; "v4(M,anderson,C,S)"; "v5(M,anderson,C)" ]
  in
  Alcotest.(check (slist string String.compare)) "T(Q,V)" expect atoms

let test_view_tuples_example41 () =
  let open Example_4_1 in
  let tuples = View_tuple.compute ~query views in
  let atoms = List.map (fun tv -> Atom.to_string tv.View_tuple.atom) tuples in
  Alcotest.(check (slist string String.compare))
    "T(Q,V)" [ "v1(X,Z)"; "v1(Z,Z)"; "v2(Z,Y)" ] atoms

let test_view_tuple_expansion () =
  let open Example_4_1 in
  let tuples = View_tuple.compute ~query views in
  let v2_tuple =
    List.find (fun tv -> tv.View_tuple.view.Query.head.Atom.pred = "v2") tuples
  in
  let atoms, existentials = View_tuple.expansion ~avoid:(Query.var_set query) v2_tuple in
  check_int "two base atoms" 2 (List.length atoms);
  check_int "one existential (E)" 1 (Names.Sset.cardinal existentials);
  (* the existential must avoid the query's variables *)
  Names.Sset.iter
    (fun x -> check_bool "fresh" false (Names.Sset.mem x (Query.var_set query)))
    existentials

let test_view_with_constant_no_tuple () =
  (* a view whose body constant cannot match the frozen canonical database
     produces no view tuple *)
  let query = q "q(X) :- e(X, Y)." in
  let views = qs [ "v(A) :- e(A, b)." ] in
  check_int "no tuples" 0 (List.length (View_tuple.compute ~query views))

let test_view_equivalence_classes () =
  let open Car_loc_part in
  let classes = Equiv_class.group_views views in
  check_int "four classes (v1 ~ v5)" 4 (List.length classes);
  let v1v5 =
    List.find
      (fun cls -> List.exists (fun v -> View.name v = "v1") cls)
      classes
  in
  check_int "v1 and v5 together" 2 (List.length v1v5)

let test_group_generic () =
  let groups = Equiv_class.group ~eq:(fun a b -> a mod 3 = b mod 3) [ 1; 2; 3; 4; 5; 6 ] in
  check_int "three classes" 3 (List.length groups);
  Alcotest.(check (list int)) "representatives" [ 1; 2; 3 ] (Equiv_class.representatives groups)

let test_materialize_closed_world () =
  let open Car_loc_part in
  let view_db = Materialize.views base views in
  (* v1 and v5 have identical definitions, hence identical relations *)
  Alcotest.check relation_testable "v1 = v5"
    (Database.find_exn "v1" view_db) (Database.find_exn "v5" view_db);
  (* every rewriting computes the query's answer *)
  let truth = Eval.answers base query in
  List.iter
    (fun (name, p) ->
      Alcotest.check relation_testable name truth
        (Materialize.answers_via_rewriting view_db p))
    [ ("P1", p1); ("P2", p2); ("P3", p3); ("P4", p4); ("P5", p5) ]

let test_view_validate_set () =
  let open Car_loc_part in
  (match View.validate_set views with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  match View.validate_set [ v1; v1 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate names accepted"

let test_uses_only_views () =
  let open Car_loc_part in
  check_bool "pure view body" true (View.uses_only_views views p2);
  let mixed = q "q1(S, C) :- v2(S, M, C), car(M, anderson), loc(anderson, C)." in
  check_bool "mixed body rejected" false (View.uses_only_views views mixed)

let suite =
  [
    ("expansion car-loc-part", `Quick, test_expansion_carloc);
    ("expansion fresh existentials", `Quick, test_expansion_fresh_existentials);
    ("expansion repeated head var", `Quick, test_expansion_repeated_head_var);
    ("expansion constant clash", `Quick, test_expansion_head_constant_clash);
    ("expansion keeps base atoms", `Quick, test_expansion_base_atoms_kept);
    ("equivalent-rewriting test", `Quick, test_is_equivalent_rewriting);
    ("rewritings not equivalent as queries", `Quick, test_rewritings_not_equivalent_as_queries);
    ("canonical database", `Quick, test_canonical_database);
    ("view tuples car-loc-part", `Quick, test_view_tuples_carloc);
    ("view tuples Example 4.1", `Quick, test_view_tuples_example41);
    ("view tuple expansion", `Quick, test_view_tuple_expansion);
    ("view constant blocks tuple", `Quick, test_view_with_constant_no_tuple);
    ("view equivalence classes", `Quick, test_view_equivalence_classes);
    ("generic grouping", `Quick, test_group_generic);
    ("materialize closed world", `Quick, test_materialize_closed_world);
    ("view set validation", `Quick, test_view_validate_set);
    ("uses_only_views", `Quick, test_uses_only_views);
  ]
