(* Property-based tests (QCheck) tying the symbolic machinery (containment
   mappings, expansion, CoreCover) to the relational semantics (evaluation
   over concrete databases). *)

open Vplan
open Qcheck_gens
module Gen = QCheck2.Gen

(* A fixed default seed keeps the suite deterministic; set QCHECK_SEED to
   explore a different region of the space. *)
let seed =
  match int_of_string_opt (try Sys.getenv "QCHECK_SEED" with Not_found -> "") with
  | Some s -> s
  | None -> 0x5eed

let make_test ?(count = 250) ~name gen print prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name ~print gen prop)

(* Containment is sound w.r.t. evaluation: Q1 ⊑ Q2 implies Q1(D) ⊆ Q2(D). *)
let containment_sound =
  let gen = Gen.(triple gen_query gen_query gen_database) in
  make_test ~name:"containment sound w.r.t. evaluation" gen
    (fun (q1, q2, db) -> print_query q1 ^ " vs " ^ print_query q2 ^ " db " ^ string_of_int (Database.total_size db))
    (fun (q1, q2, db) ->
      (* only comparable when head arities match *)
      if Atom.arity q1.Query.head <> Atom.arity q2.Query.head then true
      else if not (Containment.is_contained q1 q2) then true
      else Relation.subset (Eval.answers db q1) (Eval.answers db q2))

(* Chandra-Merlin completeness via the canonical database: Q1 ⊑ Q2 iff the
   frozen head of Q1 is an answer of Q2 on D_Q1. *)
let containment_canonical =
  let gen = Gen.pair gen_query gen_query in
  make_test ~name:"containment = canonical-database test" gen
    (fun (q1, q2) -> print_query q1 ^ " vs " ^ print_query q2)
    (fun (q1, q2) ->
      if Atom.arity q1.Query.head <> Atom.arity q2.Query.head then true
      else begin
        let c = Canonical.freeze q1 in
        let frozen_head =
          List.map (Canonical.frozen_term c) q1.Query.head.Atom.args
        in
        let semantic =
          Relation.mem frozen_head (Eval.answers (Canonical.database c) q2)
        in
        Containment.is_contained q1 q2 = semantic
      end)

(* The printer and the parser are inverse on generated queries. *)
let parser_roundtrip =
  make_test ~name:"pp/parse roundtrip" gen_query print_query (fun q ->
      match Parser.parse_rule (Query.to_string q ^ ".") with
      | Ok q' -> Query.equal q q'
      | Error _ -> false)

let containment_reflexive =
  make_test ~name:"containment reflexive" gen_query print_query (fun q ->
      Containment.is_contained q q)

let isomorphic_implies_equivalent =
  let gen = Gen.pair gen_query gen_query in
  make_test ~name:"isomorphic implies equivalent" gen
    (fun (q1, q2) -> print_query q1 ^ " vs " ^ print_query q2)
    (fun (q1, q2) ->
      (not (Containment.isomorphic q1 q2)) || Containment.equivalent q1 q2)

let minimize_correct =
  make_test ~name:"minimize: equivalent, minimal, idempotent" gen_query print_query
    (fun q ->
      let m = Minimize.minimize q in
      Containment.equivalent q m && Minimize.is_minimal m
      && Query.equal (Minimize.minimize m) m
      && List.length m.Query.body <= List.length (Query.dedup_body q).Query.body)

let minimize_semantics_preserved =
  let gen = Gen.pair gen_query gen_database in
  make_test ~name:"minimize preserves answers" gen
    (fun (q, db) -> print_query q ^ " db " ^ string_of_int (Database.total_size db))
    (fun (q, db) ->
      Relation.equal (Eval.answers db q) (Eval.answers db (Minimize.minimize q)))

(* Tuple-cores are unique for minimal queries (Lemma 4.2). *)
let tuple_core_unique =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_test ~name:"tuple-core uniqueness (Lemma 4.2)" gen print_instance
    (fun (query, views) ->
      let query = Minimize.minimize query in
      List.for_all
        (fun tv -> List.length (Tuple_core.compute_all_maximal ~query tv) = 1)
        (View_tuple.compute ~query views))

(* CoreCover soundness: every produced rewriting is an equivalent
   rewriting (symbolic check). *)
let corecover_sound =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_test ~count:150 ~name:"CoreCover produces equivalent rewritings" gen print_instance
    (fun (query, views) ->
      let r = Corecover.all_minimal ~query ~views () in
      List.for_all (Expansion.is_equivalent_rewriting ~views ~query) r.rewritings)

(* Closed-world end-to-end: a rewriting evaluated over materialized views
   computes the query's answer on every base instance. *)
let corecover_closed_world =
  let gen = Gen.triple gen_query (gen_views ~max_views:3 ~max_atoms:2) gen_database in
  make_test ~count:150 ~name:"rewritings compute the query answer (closed world)" gen
    print_with_db
    (fun (query, views, base) ->
      let r = Corecover.all_minimal ~query ~views () in
      match r.rewritings with
      | [] -> true
      | rewritings ->
          let truth = Eval.answers base query in
          let view_db = Materialize.views base views in
          List.for_all
            (fun p -> Relation.equal truth (Materialize.answers_via_rewriting view_db p))
            rewritings)

(* CoreCover agrees with the naive Theorem 3.1 search on existence and on
   the minimum subgoal count. *)
let corecover_matches_naive =
  let gen = Gen.pair gen_query (gen_views ~max_views:2 ~max_atoms:2) in
  make_test ~count:60 ~name:"CoreCover matches the naive GMR search" gen print_instance
    (fun (query, views) ->
      let cc = (Corecover.gmrs ~query ~views ()).rewritings in
      let naive = Naive.gmrs ~query ~views in
      match (cc, naive) with
      | [], [] -> true
      | p :: _, n :: _ -> List.length p.Query.body = List.length n.Query.body
      | _, _ -> false)

(* GMRs never have more subgoals than any other minimal rewriting. *)
let gmr_minimum =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_test ~name:"GMRs have minimum size among minimal rewritings" gen print_instance
    (fun (query, views) ->
      let gmrs = (Corecover.gmrs ~query ~views ()).rewritings in
      let minimal = (Corecover.all_minimal ~query ~views ()).rewritings in
      match gmrs with
      | [] -> minimal = []
      | g :: _ ->
          let gsize = List.length g.Query.body in
          List.for_all (fun (p : Query.t) -> gsize <= List.length p.body) minimal)

(* MiniCon produces contained rewritings. *)
let minicon_contained =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_test ~count:60 ~name:"MiniCon rewritings are contained" gen print_instance
    (fun (query, views) ->
      let r = Minicon.run ~query ~views () in
      List.for_all (Expansion.expansion_contained_in_query ~views ~query) r.rewritings)

(* Bucket (equivalent mode) agrees with CoreCover on existence. *)
let bucket_agrees =
  let gen = Gen.pair gen_query (gen_views ~max_views:2 ~max_atoms:2) in
  make_test ~count:60 ~name:"bucket existence agrees with CoreCover" gen print_instance
    (fun (query, views) ->
      let b = Bucket.run ~mode:`Equivalent ~query ~views () in
      let c = Corecover.gmrs ~query ~views () in
      (b.rewritings <> []) = (c.rewritings <> []))

(* M2's subset DP agrees with exhaustive permutation search. *)
let m2_dp_exact =
  let gen = Gen.pair gen_query gen_database in
  make_test ~name:"M2 DP = exhaustive" gen
    (fun (q, db) -> print_query q ^ " db " ^ string_of_int (Database.total_size db))
    (fun (q, db) ->
      let body = (Query.dedup_body q).Query.body in
      let _, dp = M2.optimal db body in
      let _, ex = M2.optimal_exhaustive db body in
      dp = ex)

(* The memo and the branch-and-bound pruning are pure optimizations: with
   a shared memo (probed twice to exercise reuse) and with a bound one
   above the optimum, the DP still returns the exhaustive optimum — and a
   bound at the optimum prunes everything. *)
let m2_memo_pruned_exact =
  let gen = Gen.pair gen_query gen_database in
  make_test ~count:150 ~name:"M2 memoized + pruned DP = exhaustive" gen
    (fun (q, db) -> print_query q ^ " db " ^ string_of_int (Database.total_size db))
    (fun (q, db) ->
      let body = (Query.dedup_body q).Query.body in
      let _, ex = M2.optimal_exhaustive db body in
      let memo = Subplan.create () in
      let _, first = M2.optimal ~memo db body in
      let _, second = M2.optimal ~memo db body in
      first = ex && second = ex
      && (match M2.optimal_pruned ~memo ~bound:(ex + 1) db body with
         | Some (_, c) -> c = ex
         | None -> false)
      && M2.optimal_pruned ~memo ~bound:ex db body = None)

(* The connected DP is exact for its search space: it returns the minimum
   over exactly the connected-prefix orderings (so whenever some optimal
   ordering is connected — the common case on connected join graphs — it
   agrees with the unrestricted [optimal]), and [None] exactly when no
   connected ordering exists. *)
let m2_connected_exact =
  let connected_prefix = function
    | [] -> true
    | first :: rest ->
        let rec go seen = function
          | [] -> true
          | (a : Atom.t) :: tl ->
              List.exists (fun x -> Names.Sset.mem x seen) (Atom.vars a)
              && go (Names.Sset.union seen (Atom.var_set a)) tl
        in
        go (Atom.var_set first) rest
  in
  let gen = Gen.pair gen_query gen_database in
  make_test ~count:150 ~name:"M2 connected DP exact over connected orderings" gen
    (fun (q, db) -> print_query q ^ " db " ^ string_of_int (Database.total_size db))
    (fun (q, db) ->
      let body = (Query.dedup_body q).Query.body in
      let connected = List.filter connected_prefix (Orderings.permutations body) in
      match M2.optimal_connected db body with
      | None -> connected = []
      | Some (order, cost) ->
          connected_prefix order
          && cost = M2.cost_of_order db order
          && cost
             = List.fold_left (fun acc o -> min acc (M2.cost_of_order db o)) max_int connected
          && cost >= snd (M2.optimal db body))

(* Parallel candidate scoring is deterministic: the shared-incumbent
   protocol never prunes a tie, so domain count cannot change the chosen
   rewriting, ordering or cost. *)
let best_m2_parallel_deterministic =
  let gen = Gen.(pair (list_size (int_range 1 5) (gen_body ~max_atoms:3)) gen_database) in
  make_test ~count:60 ~name:"best_m2: parallel = sequential" gen
    (fun (bodies, db) ->
      String.concat " | "
        (List.map (fun b -> String.concat "," (List.map Atom.to_string b)) bodies)
      ^ " db " ^ string_of_int (Database.total_size db))
    (fun (bodies, db) ->
      let head = Atom.make "q" [] in
      let candidates = List.map (fun b -> Query.make_exn head b) bodies in
      let seq = Select.best_m2 ~memo:(Subplan.create ()) ~domains:1 db candidates in
      let par = Select.best_m2 ~memo:(Subplan.create ()) ~domains:4 db candidates in
      match (seq, par) with
      | None, None -> true
      | Some a, Some b ->
          a.Select.m2_cost = b.Select.m2_cost
          && Query.equal a.Select.m2_rewriting b.Select.m2_rewriting
          && List.equal Atom.equal a.Select.m2_order b.Select.m2_order
      | _ -> false)

(* M3 plans never change the answer, and the heuristic never costs more
   than the supplementary strategy. *)
let m3_correct_and_dominant =
  let gen = Gen.triple gen_query (gen_views ~max_views:2 ~max_atoms:2) gen_database in
  make_test ~count:60 ~name:"M3 plans correct; heuristic <= supplementary" gen print_with_db
    (fun (query, views, base) ->
      let r = Corecover.all_minimal ~query ~views () in
      match r.rewritings with
      | [] -> true
      | (p : Query.t) :: _ ->
          let view_db = Materialize.views base views in
          let truth = Eval.answers base query in
          let suppl = M3.supplementary ~head:p.head p.body in
          let heur = M3.heuristic ~views ~query ~head:p.head p.body in
          Relation.equal truth (M3.answers view_db ~head:p.head suppl)
          && Relation.equal truth (M3.answers view_db ~head:p.head heur)
          && M3.cost_of_plan view_db heur <= M3.cost_of_plan view_db suppl)

(* Inverse rules: certain answers are sound (never exceed the true
   answer) and agree with MiniCon's maximally-contained union. *)
let inverse_rules_sound_and_complete =
  let gen = Gen.triple gen_query (gen_views ~max_views:3 ~max_atoms:2) gen_database in
  make_test ~count:120 ~name:"inverse rules = MiniCon MCR, both sound" gen print_with_db
    (fun (query, views, base) ->
      let view_db = Materialize.views base views in
      let certain = Inverse_rules.certain_answers ~views ~query view_db in
      let truth = Eval.answers base query in
      Relation.subset certain truth
      &&
      match Minicon.maximally_contained ~query ~views () with
      | None -> Relation.cardinality certain = 0
      | Some u -> Relation.equal certain (Eval.answers_ucq view_db u))

(* When an equivalent rewriting exists, certain answers are complete. *)
let certain_complete_under_equivalence =
  let gen = Gen.triple gen_query (gen_views ~max_views:3 ~max_atoms:2) gen_database in
  make_test ~count:120 ~name:"certain answers complete when equivalent rewriting exists"
    gen print_with_db
    (fun (query, views, base) ->
      if not (Corecover.has_rewriting ~query ~views) then true
      else
        let view_db = Materialize.views base views in
        Relation.equal
          (Inverse_rules.certain_answers ~views ~query view_db)
          (Eval.answers base query))

(* UCQ containment is sound w.r.t. evaluation. *)
let ucq_containment_sound =
  let gen =
    Gen.(triple (pair gen_query gen_query) (pair gen_query gen_query) gen_database)
  in
  make_test ~name:"UCQ containment sound w.r.t. evaluation" gen
    (fun ((a, b), (c, d), _) ->
      String.concat " | " (List.map print_query [ a; b; c; d ]))
    (fun ((a, b), (c, d), db) ->
      match (Ucq.make [ a; b ], Ucq.make [ c; d ]) with
      | Ok u1, Ok u2 ->
          if Ucq.head_arity u1 <> Ucq.head_arity u2 then true
          else if not (Ucq_containment.is_contained u1 u2) then true
          else Relation.subset (Eval.answers_ucq db u1) (Eval.answers_ucq db u2)
      | _ -> true)

(* UCQ minimization preserves semantics. *)
let ucq_minimize_preserves =
  let gen = Gen.(pair (list_size (int_range 1 3) gen_query) gen_database) in
  make_test ~name:"UCQ minimize preserves answers" gen
    (fun (qs, _) -> String.concat " | " (List.map print_query qs))
    (fun (qs, db) ->
      match Ucq.make qs with
      | Error _ -> true
      | Ok u ->
          let m = Ucq_containment.minimize u in
          Ucq_containment.equivalent u m
          && Relation.equal (Eval.answers_ucq db u) (Eval.answers_ucq db m))

(* The planner's one-call API agrees with direct evaluation. *)
let planner_end_to_end =
  let gen = Gen.triple gen_query (gen_views ~max_views:3 ~max_atoms:2) gen_database in
  make_test ~count:120 ~name:"planner answer_via_views is sound/complete" gen print_with_db
    (fun (query, views, base) ->
      let problem = { Planner.query; views } in
      let truth = Eval.answers base query in
      match Planner.answer_via_views ~cost_model:`M2 problem ~base with
      | `Equivalent (_, answer) -> Relation.equal truth answer
      | `Fallback_certain answer -> Relation.subset answer truth
      | `No_rewriting -> true)

(* Order-constraint closure: implication is sound and unsatisfiability is
   real, checked against exhaustive small integer assignments. *)
let order_constraint_sound =
  let gen_term =
    Gen.frequency
      [
        (3, Gen.map (fun x -> Term.Var x) (Gen.oneofl [ "A"; "B"; "C" ]));
        (1, Gen.map (fun n -> Term.Cst (Term.Int n)) (Gen.int_range 0 3));
      ]
  in
  let gen_constr =
    let open Gen in
    let* rel = oneofl [ Order_constraint.Le; Order_constraint.Lt; Order_constraint.Eq ] in
    let* left = gen_term in
    let* right = gen_term in
    return { Order_constraint.rel; left; right }
  in
  let gen = Gen.(pair (list_size (int_range 1 4) gen_constr) gen_constr) in
  let print (cs, goal) =
    Format.asprintf "%a |= %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
         Order_constraint.pp_constr)
      cs Order_constraint.pp_constr goal
  in
  make_test ~name:"order-constraint implication sound" gen print (fun (cs, goal) ->
      let assignments =
        (* all assignments of {A,B,C} to 0..3 *)
        List.concat_map
          (fun a ->
            List.concat_map
              (fun b -> List.map (fun c -> (a, b, c)) [ 0; 1; 2; 3 ])
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ]
      in
      let value (a, b, c) = function
        | Term.Var "A" -> Term.Int a
        | Term.Var "B" -> Term.Int b
        | Term.Var "C" -> Term.Int c
        | Term.Cst k -> k
        | Term.Var _ -> Term.Int 0
      in
      let satisfies assignment (k : Order_constraint.constr) =
        Order_constraint.satisfies_ground k.rel (value assignment k.left)
          (value assignment k.right)
      in
      match Order_constraint.of_list cs with
      | Error `Unsatisfiable ->
          (* no small-integer assignment may satisfy all constraints *)
          not
            (List.exists (fun s -> List.for_all (satisfies s) cs) assignments)
      | Ok closure ->
          (not (Order_constraint.implies closure goal))
          || List.for_all
               (fun s -> (not (List.for_all (satisfies s) cs)) || satisfies s goal)
               assignments)

(* CCQ containment is sound w.r.t. comparison-aware evaluation. *)
let ccq_containment_sound =
  let comparison_atom =
    let open Gen in
    let* pred = oneofl [ "le"; "lt" ] in
    let* x = oneofl var_pool in
    let* y =
      frequency
        [ (3, map (fun v -> Term.Var v) (oneofl var_pool));
          (1, map (fun n -> Term.Cst (Term.Int n)) (int_range 0 3)) ]
    in
    return (Atom.make pred [ Term.Var x; y ])
  in
  let gen_ccq =
    let open Gen in
    let* base = gen_query in
    let* comparisons = list_size (int_range 0 2) comparison_atom in
    (* keep only range-restricted comparisons *)
    let bound = Names.sset_of_list (Query.vars base) in
    let comparisons =
      List.filter
        (fun a -> List.for_all (fun x -> Names.Sset.mem x bound) (Atom.vars a))
        comparisons
    in
    return (Query.make_exn base.Query.head (base.Query.body @ comparisons))
  in
  let gen = Gen.(triple gen_ccq gen_ccq gen_database) in
  make_test ~count:150 ~name:"CCQ containment sound w.r.t. evaluation" gen
    (fun (q1, q2, _) -> print_query q1 ^ " vs " ^ print_query q2)
    (fun (q1, q2, db) ->
      if Atom.arity q1.Query.head <> Atom.arity q2.Query.head then true
      else if not (Ccq.is_contained q1 q2) then true
      else Relation.subset (Ccq.answers db q1) (Ccq.answers db q2))

(* Lemma 4.1: for a minimal query and a rewriting over view tuples, some
   containment mapping from the query to the rewriting's expansion is
   injective and the identity on the rewriting's variables. *)
let lemma_4_1 =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_test ~count:100 ~name:"Lemma 4.1: identity/injective mapping exists" gen
    print_instance
    (fun (query, views) ->
      let r = Corecover.all_minimal ~query ~views () in
      let qm = r.Corecover.minimized_query in
      List.for_all
        (fun (p : Vplan.Query.t) ->
          match Expansion.expand ~views p with
          | Error `Unsatisfiable -> false
          | Ok pexp ->
              let qm_vars = Query.vars qm in
              let p_vars = Names.sset_of_list (Query.vars p) in
              Containment.mappings ~from_q:qm ~to_q:pexp
              |> List.exists (fun phi ->
                     let identity_on_shared =
                       List.for_all
                         (fun x ->
                           (not (Names.Sset.mem x p_vars))
                           ||
                           match Subst.find x phi with
                           | None -> true
                           | Some t -> Term.equal t (Term.Var x))
                         qm_vars
                     in
                     identity_on_shared && Subst.is_injective_on phi qm_vars))
        r.rewritings)

(* Lemma 3.2: normalization to view-tuple form preserves the rewriting
   property and containment. *)
let lemma_3_2 =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_test ~count:100 ~name:"Lemma 3.2: view-tuple normalization" gen print_instance
    (fun (query, views) ->
      let r = Corecover.all_minimal ~query ~views () in
      List.for_all
        (fun p ->
          match Normalize.to_view_tuple_form ~views ~query p with
          | None -> false
          | Some p' ->
              Containment.is_contained p' p
              && Expansion.is_equivalent_rewriting ~views ~query p')
        r.rewritings)

(* Theorem 4.1: a query over view tuples is an equivalent rewriting iff
   the union of its tuple-cores covers the (minimal) query's subgoals. *)
let theorem_4_1 =
  let gen =
    Gen.(triple gen_query (gen_views ~max_views:3 ~max_atoms:2) (int_range 0 1000))
  in
  make_test ~count:150 ~name:"Theorem 4.1: cover iff equivalent rewriting" gen
    (fun (query, views, pick) -> print_instance (query, views) ^ " pick " ^ string_of_int pick)
    (fun (query, views, pick) ->
      let qm = Minimize.minimize query in
      let tuples = View_tuple.compute ~query:qm views in
      if tuples = [] then true
      else begin
        (* pseudo-randomly choose a subset of the view tuples *)
        let chosen = List.filteri (fun i _ -> (pick lsr i) land 1 = 1) tuples in
        if chosen = [] then true
        else
          match Query.make qm.Query.head (List.map (fun tv -> tv.View_tuple.atom) chosen) with
          | Error _ -> true (* unsafe: a head variable not covered *)
          | Ok p ->
              let covered =
                List.fold_left
                  (fun acc tv -> acc lor (Tuple_core.compute ~query:qm tv).Tuple_core.mask)
                  0 chosen
              in
              let universe = (1 lsl List.length qm.Query.body) - 1 in
              Expansion.is_equivalent_rewriting ~views ~query p
              = (covered land universe = universe)
      end)

(* View-set minimization preserves answering power and is minimal. *)
let view_selection_correct =
  let gen = Gen.pair gen_query (gen_views ~max_views:4 ~max_atoms:2) in
  make_test ~count:80 ~name:"minimal answering sets are minimal and sufficient" gen
    print_instance
    (fun (query, views) ->
      match View_selection.minimal_answering_set ~query ~views with
      | None -> not (Corecover.has_rewriting ~query ~views)
      | Some kept ->
          View_selection.is_answering_set ~query kept
          && List.for_all
               (fun v ->
                 not
                   (View_selection.is_answering_set ~query
                      (List.filter (fun v' -> v' != v) kept)))
               kept)

(* Datalog: semi-naive equals naive, and magic sets preserve answers, on
   random graphs. *)
let datalog_engines_agree =
  let gen_edges =
    Gen.(list_size (int_range 0 12) (pair (int_range 0 5) (int_range 0 5)))
  in
  let tc =
    Vplan.Program.make_exn
      (Helpers.qs [ "path(X, Y) :- edge(X, Y)."; "path(X, Z) :- edge(X, Y), path(Y, Z)." ])
  in
  make_test ~count:100 ~name:"datalog: semi-naive = naive, magic = direct" gen_edges
    (fun edges ->
      String.concat ","
        (List.map (fun (x, y) -> Printf.sprintf "%d->%d" x y) edges))
    (fun edges ->
      let edb =
        Database.of_facts (List.map (fun (x, y) -> ("edge", [ Term.Int x; Term.Int y ])) edges)
      in
      let semi = Vplan.Seminaive.evaluate tc edb in
      let naive = Vplan.Seminaive.naive tc edb in
      Database.equal semi naive
      &&
      let queries =
        [
          Atom.make "path" [ Term.Var "X"; Term.Var "Y" ];
          Atom.make "path" [ Term.Cst (Term.Int 0); Term.Var "Y" ];
          Atom.make "path" [ Term.Var "X"; Term.Cst (Term.Int 3) ];
          Atom.make "path" [ Term.Cst (Term.Int 1); Term.Cst (Term.Int 4) ];
        ]
      in
      List.for_all
        (fun query ->
          Relation.equal
            (Vplan.Magic.answers tc edb ~query)
            (Vplan.Recursive_views.answers_direct ~program:tc ~query edb))
        queries)

(* Set cover on random instances. *)
let set_cover_props =
  let gen =
    Gen.(
      let* n = int_range 1 6 in
      let universe = (1 lsl n) - 1 in
      let* sets = list_size (int_range 1 8) (int_range 0 universe) in
      return (universe, Array.of_list sets))
  in
  make_test ~name:"set cover: minimum covers are minimum covers" gen
    (fun (u, sets) ->
      Printf.sprintf "universe %d sets [%s]" u
        (String.concat ";" (Array.to_list (Array.map string_of_int sets))))
    (fun (universe, sets) ->
      let covers = Set_cover.minimum_covers ~universe sets in
      let irr = Set_cover.irredundant_covers ~universe sets in
      List.for_all (Set_cover.is_cover ~universe sets) covers
      && List.for_all (Set_cover.is_irredundant ~universe sets) irr
      && (covers = [] || irr <> [])
      &&
      match covers with
      | [] -> irr = []
      | c :: _ ->
          let k = List.length c in
          List.for_all (fun c' -> List.length c' = k) covers
          && List.for_all (fun i -> List.length i >= k) irr)

(* The CoreCover performance toggles — view grouping, indexed evaluation,
   signature/mask bucketing, parallel fan-out — are pure optimizations:
   every configuration must produce the same rewritings on generated
   star/chain workloads. *)
let corecover_configs_agree =
  let gen =
    Gen.(
      triple
        (oneofl [ Generator.Star; Generator.Chain ])
        (int_range 2 25) (int_range 0 10_000))
  in
  make_test ~count:40 ~name:"CoreCover configurations produce identical rewritings" gen
    (fun (shape, num_views, seed) ->
      Printf.sprintf "%s views=%d seed=%d"
        (match shape with Generator.Star -> "star" | _ -> "chain")
        num_views seed)
    (fun (shape, num_views, seed) ->
      let config = { Generator.default with shape; num_views; seed } in
      match Generator.generate_with_rewriting ~max_attempts:50 config with
      | exception Failure _ -> true
      | inst ->
          let query = inst.Generator.query and views = inst.views in
          let rewritings r =
            List.sort Query.compare r.Corecover.rewritings
          in
          let reference = rewritings (Corecover.gmrs ~query ~views ()) in
          List.for_all
            (fun variant -> List.equal Query.equal reference (rewritings (variant ())))
            [
              (fun () -> Corecover.gmrs ~group_views:false ~query ~views ());
              (fun () -> Corecover.gmrs ~indexed:false ~query ~views ());
              (fun () -> Corecover.gmrs ~buckets:false ~query ~views ());
              (fun () -> Corecover.gmrs ~domains:4 ~query ~views ());
            ])

(* Budgets make CoreCover anytime, never unsound: whatever a step-limited
   run returns is a subset of the unbudgeted run's rewritings, and a run
   that was cut short is flagged as truncated (a complete one must return
   everything). *)
let corecover_budget_anytime =
  let gen =
    Gen.(
      triple
        (oneofl [ Generator.Star; Generator.Chain ])
        (int_range 2 25)
        (pair (int_range 0 10_000) (int_range 1 2_000)))
  in
  make_test ~count:40 ~name:"CoreCover under a step budget returns a sound subset" gen
    (fun (shape, num_views, (seed, max_steps)) ->
      Printf.sprintf "%s views=%d seed=%d max_steps=%d"
        (match shape with Generator.Star -> "star" | _ -> "chain")
        num_views seed max_steps)
    (fun (shape, num_views, (seed, max_steps)) ->
      let config = { Generator.default with shape; num_views; seed } in
      match Generator.generate_with_rewriting ~max_attempts:50 config with
      | exception Failure _ -> true
      | inst ->
          let query = inst.Generator.query and views = inst.views in
          let reference = (Corecover.gmrs ~query ~views ()).Corecover.rewritings in
          let budget = Budget.create ~max_steps () in
          let r = Corecover.gmrs ~budget ~query ~views () in
          List.for_all
            (fun p -> List.exists (Query.equal p) reference)
            r.Corecover.rewritings
          &&
          match r.Corecover.completeness with
          | Corecover.Complete ->
              List.equal Query.equal reference r.Corecover.rewritings
          | Corecover.Truncated e -> Vplan_error.is_resource e)

let suite =
  [
    parser_roundtrip;
    containment_sound;
    containment_canonical;
    containment_reflexive;
    isomorphic_implies_equivalent;
    minimize_correct;
    minimize_semantics_preserved;
    tuple_core_unique;
    corecover_sound;
    corecover_closed_world;
    corecover_matches_naive;
    gmr_minimum;
    minicon_contained;
    bucket_agrees;
    m2_dp_exact;
    m2_memo_pruned_exact;
    m2_connected_exact;
    best_m2_parallel_deterministic;
    m3_correct_and_dominant;
    inverse_rules_sound_and_complete;
    certain_complete_under_equivalence;
    ucq_containment_sound;
    ucq_minimize_preserves;
    planner_end_to_end;
    order_constraint_sound;
    ccq_containment_sound;
    lemma_4_1;
    lemma_3_2;
    theorem_4_1;
    view_selection_correct;
    datalog_engines_agree;
    set_cover_props;
    corecover_configs_agree;
    corecover_budget_anytime;
  ]
