The server speaks a line protocol: catalog management, rewrite requests
with hit/miss/bypass attribution, and counters.  The latency line is
timing-dependent, so it is filtered out.

  $ cat > views.dl <<'EOF'
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > EOF

An isomorphic resubmission (variables renamed, subgoals permuted) is a
cache hit, and the answer comes back in the caller's own variables.

  $ vplan_server <<'SESSION' | grep -v '^latency'
  > catalog load views.dl
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > rewrite q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > stats
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss
  q1(S,C) :- v4(M,anderson,C,S)
  ok 1 hit
  q1(P,K) :- v4(N,anderson,K,P)
  generation=1 views=3 classes=3
  requests=2 hits=1 misses=1 bypasses=0
  cache size=1 capacity=512 evictions=0
  truncated=0 plan-requests=0

Catalog updates bump the generation and invalidate the cache; removing
v4 changes the best rewriting.  Errors never kill the loop.

  $ vplan_server --catalog views.dl <<'SESSION' | grep -v '^latency'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > catalog remove v4
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > catalog remove nope
  > rewrite nonsense
  > catalog add v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss
  q1(S,C) :- v4(M,anderson,C,S)
  ok catalog generation=2 views=2 classes=2
  ok 1 miss
  q1(S,C) :- v1(M,anderson,C), v2(S,M,C)
  err no such view: nope
  err 1:9: expected '(', found end of input
  ok catalog generation=3 views=3 classes=3
  ok 1 miss
  q1(S,C) :- v4(M,anderson,C,S)

A request that exhausts its budget returns a truncated response and
bypasses the cache: the next unbudgeted request recomputes (miss, not
hit) and gets the complete answer.

  $ vplan_server --catalog views.dl <<'SESSION' | grep -v '^latency'
  > set max-steps 1
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > set off
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > stats
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok max-steps=1
  ok 0 bypass
  truncated: step budget of 1 exhausted
  ok budget off
  ok 1 miss
  q1(S,C) :- v4(M,anderson,C,S)
  generation=1 views=3 classes=3
  requests=2 hits=0 misses=2 bypasses=0
  cache size=1 capacity=512 evictions=0
  truncated=1 plan-requests=0

Batches fan out over the domain pool and answer in request order.
Without a catalog there is nothing to rewrite against.

  $ vplan_server <<'SESSION' | grep -v '^latency'
  > rewrite q1(S) :- part(S, M, C).
  > SESSION
  err no catalog loaded (use: catalog load FILE)

  $ vplan_server --catalog views.dl --domains 2 <<'SESSION' | grep -v '^latency'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > batch 2
  > q1(A, B) :- car(N, anderson), loc(anderson, B), part(A, N, B).
  > q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss
  q1(S,C) :- v4(M,anderson,C,S)
  ok 1 hit
  q1(A,B) :- v4(N,anderson,B,A)
  ok 1 hit
  q1(P,K) :- v4(N,anderson,K,P)
