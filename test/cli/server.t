The server speaks a line protocol: catalog management, rewrite requests
with hit/miss/bypass attribution, and counters.  The latency line is
timing-dependent, so it is filtered out.

  $ cat > views.dl <<'EOF'
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > EOF

An isomorphic resubmission (variables renamed, subgoals permuted) is a
cache hit, and the answer comes back in the caller's own variables.
Every rewrite response carries a per-request trace id.

  $ vplan_server --stdio <<'SESSION' | grep -v '^latency'
  > catalog load views.dl
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > rewrite q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > stats
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  ok 1 hit trace=2
  q1(P,K) :- v4(N,anderson,K,P)
  generation=1 views=3 classes=3
  requests=2 hits=1 misses=1 bypasses=0
  cache size=1 capacity=512 evictions=0
  truncated=0 plan-requests=0 analyze-requests=0 generation-resets=0
  acyclic queries=0 containment-fastpath=2 containment-fallback=2

Catalog updates bump the generation and invalidate the cache; removing
v4 changes the best rewriting.  Errors never kill the loop.

  $ vplan_server --stdio --catalog views.dl <<'SESSION' | grep -v '^latency'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > catalog remove v4
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > catalog remove nope
  > rewrite nonsense
  > catalog add v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  ok catalog generation=2 views=2 classes=2
  ok 1 miss trace=2
  q1(S,C) :- v1(M,anderson,C), v2(S,M,C)
  err no such view: nope
  err 1:9: expected '(', found end of input
  ok catalog generation=3 views=3 classes=3
  ok 1 miss trace=3
  q1(S,C) :- v4(M,anderson,C,S)

A request that exhausts its budget returns a truncated response and
bypasses the cache: the next unbudgeted request recomputes (miss, not
hit) and gets the complete answer.

  $ vplan_server --stdio --catalog views.dl <<'SESSION' | grep -v '^latency'
  > set max-steps 1
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > set off
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > stats
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok max-steps=1
  ok 0 bypass trace=1
  truncated: step budget of 1 exhausted
  ok budget off
  ok 1 miss trace=2
  q1(S,C) :- v4(M,anderson,C,S)
  generation=1 views=3 classes=3
  requests=2 hits=0 misses=2 bypasses=0
  cache size=1 capacity=512 evictions=0
  truncated=1 plan-requests=0 analyze-requests=0 generation-resets=0
  acyclic queries=0 containment-fastpath=4 containment-fallback=2

Batches fan out over the domain pool and answer in request order.
Without a catalog there is nothing to rewrite against.

  $ vplan_server --stdio <<'SESSION' | grep -v '^latency'
  > rewrite q1(S) :- part(S, M, C).
  > SESSION
  err no catalog loaded (use: catalog load FILE)

  $ vplan_server --stdio --catalog views.dl --domains 2 <<'SESSION' | grep -v '^latency'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > batch 2
  > q1(A, B) :- car(N, anderson), loc(anderson, B), part(A, N, B).
  > q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  ok 1 hit trace=2
  q1(A,B) :- v4(N,anderson,B,A)
  ok 1 hit trace=3
  q1(P,K) :- v4(N,anderson,K,P)

Lifetime counters survive a catalog reload: the generation restarts at 1
(new catalog, new sequence) but requests/hits/misses carry over and the
generation-resets counter records the swap.  stats --json emits the same
numbers as one machine-readable line (latency values are
timing-dependent, so only their presence is checked).

  $ vplan_server --stdio --catalog views.dl <<'SESSION' | grep -v '^latency' | sed -E 's/"latency":.*/"latency":…}/'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > rewrite q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > catalog load views.dl
  > stats
  > stats --json
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok 1 miss trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  ok 1 hit trace=2
  q1(P,K) :- v4(N,anderson,K,P)
  ok catalog generation=1 views=3 classes=3
  generation=1 views=3 classes=3
  requests=2 hits=1 misses=1 bypasses=0
  cache size=0 capacity=512 evictions=0
  truncated=0 plan-requests=0 analyze-requests=0 generation-resets=1
  acyclic queries=0 containment-fastpath=2 containment-fallback=4
  {"generation":1,"views":3,"classes":3,"requests":2,"hits":1,"misses":1,"bypasses":0,"evictions":0,"cache_size":0,"cache_capacity":512,"truncated":0,"plan_requests":0,"analyze_requests":0,"generation_resets":1,"data_relations":0,"data_rows":0,"acyclic_queries":0,"containment_fastpath":2,"containment_fallback":4,"estimate_accuracy":{},"latency":…}

The metrics command emits Prometheus-style vplan_* lines: monotone
counters for the pipeline, per-phase latency histograms, and gauges set
at scrape time.  Values are timing- and history-dependent, so the cram
checks the stable ones and the shape of the rest.

  $ vplan_server --stdio --catalog views.dl <<'SESSION' > metrics.out
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > rewrite q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > metrics
  > quit
  > SESSION
  $ grep -E '^vplan_(rewrite_requests|rewrite_bypasses|cache_hits|cache_misses|cache_size|catalog_generation|catalog_views)_?\w* ' metrics.out
  vplan_cache_hits_total 1
  vplan_cache_misses_total 1
  vplan_rewrite_requests_total 2
  vplan_rewrite_bypasses_total 0
  vplan_cache_size 1
  vplan_catalog_generation 1
  vplan_catalog_views 3
  $ grep -c '^vplan_request_ms_bucket{le=' metrics.out
  20
  $ grep '^vplan_request_ms_count' metrics.out
  vplan_request_ms_count 2
  $ grep '^vplan_phase_set_cover_ms_count' metrics.out
  vplan_phase_set_cover_ms_count 1

explain traces one request and prints its span tree.  Without a base
database it traces the rewrite path; with one it traces plan selection,
so the tree covers every CoreCover phase plus plan_select.  Durations
are wall-clock, so they are normalized.

  $ cat > facts.dl <<'EOF'
  > car(honda, anderson).
  > loc(anderson, chicago).
  > part(wheel, honda, chicago).
  > EOF

  $ vplan_server --stdio --catalog views.dl <<'SESSION' | sed -E -e 's/[0-9]+\.[0-9]+ ?ms/X ms/g' -e 's/=X ms/=X/g'
  > data load facts.dl
  > explain q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok data facts=3 relations=3 rows=3
  ok explain plan request=X traced=X spans=12
  classification: acyclic
  join tree:
  part(S,M,C)
    car(M,anderson)
    loc(anderson,C)
  |- corecover               X ms
  |  |- minimize                X ms
  |  |- view_classes            X ms  [classes=3]
  |  |- canonical_db            X ms
  |  |- view_tuples             X ms  [views=3 tuples=3]
  |  |- tuple_cores             X ms  [tuples=3 classes=3]
  |  `- set_cover               X ms  [nodes=5 covers=2]
  |- materialize             X ms
  |  |- hash_join               X ms
  |  |- hash_join               X ms
  |  `- hash_join               X ms
  `- plan_select             X ms  [candidates=2 pruned=1 memo_hits=0 memo_misses=2]

Requests slower than the slow-query threshold are logged to stderr with
the trace id of the response they belong to; a threshold of 0 logs every
request.

  $ vplan_server --stdio --catalog views.dl --slow-ms 0 <<'SESSION' 2>&1 >/dev/null | sed -E 's/ms=[0-9.]+/ms=X/'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > quit
  > SESSION
  slow trace=1 ms=X source=miss

With --data-dir the catalog survives restarts: mutations are journaled
before they are acked, a restart replays them, and save compacts the
journal into a snapshot (replayed drops to 0).  health reports the
store mode and recovery counters; without a data dir it says ephemeral.

  $ vplan_server --stdio --data-dir store.d <<'SESSION' | grep -v '^latency'
  > catalog add v1(M, D, C) :- car(M, D), loc(D, C).
  > catalog add v2(S, M, C) :- part(S, M, C).
  > catalog add v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > quit
  > SESSION
  store dir=store.d recovered views=0 replayed=0 truncated_bytes=0
  ok catalog generation=1 views=1 classes=1
  ok catalog generation=2 views=2 classes=2
  ok catalog generation=3 views=3 classes=3

  $ vplan_server --stdio --data-dir store.d <<'SESSION' | grep -v '^latency' | sed -E 's/snapshot_age=[^ ]*/snapshot_age=X/; s/journal_bytes=[0-9]+/journal_bytes=N/'
  > health
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > save
  > health
  > quit
  > SESSION
  store dir=store.d recovered views=3 replayed=3 truncated_bytes=0
  ok health generation=1 views=3 store=durable snapshot_age=X replayed=3 truncated_bytes=0 journal_records=3 journal_bytes=N
  ok 1 miss trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  ok saved seq=3 journal_records=0
  ok health generation=1 views=3 store=durable snapshot_age=X replayed=3 truncated_bytes=0 journal_records=0 journal_bytes=N

  $ vplan_server --stdio --data-dir store.d <<'SESSION' | grep -v '^latency'
  > health
  > quit
  > SESSION
  store dir=store.d recovered views=3 replayed=0 truncated_bytes=0
  ok health generation=1 views=3 store=durable snapshot_age=0s replayed=0 truncated_bytes=0 journal_records=0 journal_bytes=0

  $ vplan_server --stdio <<'SESSION'
  > health
  > save
  > quit
  > SESSION
  ok health generation=0 views=0 store=ephemeral
  err no data dir (start the server with --data-dir DIR)

explain analyze executes the chosen plan with an operator profile:
estimated vs actual rows per operator and the per-query q-error on the
summary line.  The request is recorded in the flight recorder with its
profile retained, so trace dump can export a Chrome trace afterwards,
and stats grows the per-relation estimate accuracy fed by the analyze
selections.

  $ cat > adata.dl <<'EOF2'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > EOF2

  $ vplan_server --stdio --catalog views.dl <<'SESSION' | grep -v '^latency' | sed -E -e 's/[0-9]+\.[0-9]+ ms/X ms/g' -e 's/ms=[0-9.]+/ms=X/g' -e 's/"(ts|dur|ts_ms)":[0-9.e+]+/"\1":X/g'
  > data load adata.dl
  > explain analyze q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > recorder grep kind=analyze
  > trace dump 1
  > stats
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok data facts=10 relations=3 rows=10
  ok analyze cost=25 candidates=2 answers=3 qerror=2.00 class=acyclic trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  order: v4(M,anderson,C,S)
  profile:
  query q1(S,C) :- v4(M,anderson,C,S)              X ms
  `- exec q1                                  in=3 out=3      X ms
     |- select v4(M,anderson,C,S)             in=4 out=3 est=1.5 q=2.00      X ms
     `- scan v4(M,anderson,C,S)               in=1 build=3 out=3 est=1.5 q=2.00      X ms
  ok recorder matched=1
  seq=0 trace=1 kind=analyze ms=X source=- mode=exact class=acyclic answers=3 qerror=2.00 truncated=- slow=no spans=0 profile=yes q1(S,C)
  {"traceEvents":[{"name":"query q1(S,C) :- v4(M,anderson,C,S)","cat":"vplan","ph":"X","ts":X,"dur":X,"pid":1,"tid":0},{"name":"exec q1","cat":"vplan","ph":"X","ts":X,"dur":X,"pid":1,"tid":0,"args":{"rows_in":3,"rows_out":3}},{"name":"select v4(M,anderson,C,S)","cat":"vplan","ph":"X","ts":X,"dur":X,"pid":1,"tid":0,"args":{"rows_in":4,"rows_out":3,"est_rows":1.5}},{"name":"scan v4(M,anderson,C,S)","cat":"vplan","ph":"X","ts":X,"dur":X,"pid":1,"tid":0,"args":{"rows_in":1,"build_rows":3,"rows_out":3,"est_rows":1.5}}],"displayTimeUnit":"ms"}
  generation=1 views=3 classes=3
  requests=0 hits=0 misses=0 bypasses=0
  cache size=0 capacity=512 evictions=0
  truncated=0 plan-requests=0 analyze-requests=1 generation-resets=0
  data relations=3 rows=10
  acyclic queries=0 containment-fastpath=2 containment-fallback=2
  estimates v4 n=1 mean_q=2.00 max_q=2.00

recorder dump --json emits the ring as one JSON array line; unknown
trace ids are a polite error.

  $ vplan_server --stdio --catalog views.dl <<'SESSION' | grep -c '"kind":"rewrite"'
  > rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > recorder dump --json
  > quit
  > SESSION
  1
  $ vplan_server --stdio <<'SESSION'
  > trace dump 42
  > quit
  > SESSION
  err no recorded request with trace=42
