The benchmark harness writes its timing rows as JSON with --out.  Timings
vary run to run, so every float is normalized before snapshotting; the
integer columns (views, queries) are seed-deterministic.

  $ vplan_bench fig6a --views 50 --out bench.json | sed -E 's/[0-9]+\.[0-9]+/NUM/g'
  vplan benchmark harness (quick settings)
  
  == Figure 6(a): star queries, all variables distinguished ==
     views       avg-ms       min-ms       max-ms     GMRs  truncated
        10          NUM          NUM          NUM      NUM          0
        50          NUM          NUM          NUM     NUM          0
  
  wrote 2 timing rows to bench.json

  $ sed -E 's/[0-9]+\.[0-9]+/NUM/g' bench.json
  {
    "mode": "quick",
    "domains": 1,
    "indexed": true,
    "buckets": true,
    "rows": [
      { "experiment": "fig6a", "views": 10, "queries": 3, "avg_ms": NUM, "min_ms": NUM, "max_ms": NUM, "gmrs": NUM, "truncated": 0 },
      { "experiment": "fig6a", "views": 50, "queries": 3, "avg_ms": NUM, "min_ms": NUM, "max_ms": NUM, "gmrs": NUM, "truncated": 0 }
    ]
  }

The perf toggles are accepted and leave the result columns unchanged:

  $ vplan_bench fig6a --views 10 --no-index --no-buckets --domains 2 --out bench2.json | sed -E 's/[0-9]+\.[0-9]+/NUM/g' | tail -3
        10          NUM          NUM          NUM      NUM          0
  
  wrote 1 timing rows to bench2.json
