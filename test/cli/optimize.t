End-to-end plan selection: the CLI scores candidates across domains (the
result is the same for any domain count), and the server answers plan
requests against a resident base database, reusing one subplan memo
across requests.

  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > PROGRAM
  $ cat > carloc_data.dlog <<'DATA'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > DATA

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2 --domains 3
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  join order: v4(M,anderson,C,S)
  cost (M2): 25
  query answer size: 3

Candidate scoring is anytime under a budget: a candidate whose DP
exhausts the budget is dropped by the fault-contained parallel map, and
the best plan among the candidates scored so far is still returned
(here the cheapest-ranked candidate completes within one step).

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2 --max-steps 1
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  join order: v4(M,anderson,C,S)
  cost (M2): 25
  query answer size: 3

The server needs a base database before it can plan; after `data load`,
plan requests return the chosen rewriting, join order and M2 cost, and
repeated requests are answered from the same resident memo.

  $ cat > views.dl <<'EOF'
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > EOF
  $ cat > facts.dl <<'DATA'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > DATA

  $ vplan_server --stdio --catalog views.dl --domains 2 <<'SESSION' | grep -v '^latency'
  > plan q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > data load facts.dl
  > plan q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > plan q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson).
  > stats
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  err no base database loaded (use: data load FILE)
  ok data facts=10 relations=3 rows=10
  ok plan cost=25 candidates=2 trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  order: v4(M,anderson,C,S)
  ok plan cost=25 candidates=2 trace=2
  q1(P,K) :- v4(N,anderson,K,P)
  order: v4(N,anderson,K,P)
  generation=1 views=3 classes=3
  requests=0 hits=0 misses=0 bypasses=0
  cache size=0 capacity=512 evictions=0
  truncated=0 plan-requests=2 analyze-requests=0 generation-resets=0
  data relations=3 rows=10
  acyclic queries=0 containment-fastpath=4 containment-fallback=2

Estimated cost mode plans from the statistics collected at load time —
no view is materialized for costing — and picks the same rewriting
here; the CLI prints both the estimate and the realized cost of the
chosen order.

  $ vplan_server --stdio --catalog views.dl <<'SESSION'
  > data load facts.dl
  > set cost-mode estimated
  > plan q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > set cost-mode exact
  > plan q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > quit
  > SESSION
  ok catalog generation=1 views=3 classes=3
  ok data facts=10 relations=3 rows=10
  ok cost-mode=estimated
  ok plan mode=estimated cost_est=16.5 candidates=2 trace=1
  q1(S,C) :- v4(M,anderson,C,S)
  order: v4(M,anderson,C,S)
  ok cost-mode=exact
  ok plan cost=25 candidates=2 trace=2
  q1(S,C) :- v4(M,anderson,C,S)
  order: v4(M,anderson,C,S)

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2 --cost-mode estimated
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  join order: v4(M,anderson,C,S)
  cost (M2, estimated): 16.5
  cost (M2, realized): 25
  query answer size: 3
