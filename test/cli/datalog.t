Recursive Datalog evaluation through the CLI, with and without magic sets.

  $ cat > tc.dlog <<'PROGRAM'
  > reach(X, Y) :- flight(X, Y).
  > reach(X, Z) :- flight(X, Y), reach(Y, Z).
  > PROGRAM
  $ cat > tc_data.dlog <<'DATA'
  > flight(sfo, ord). flight(ord, jfk). flight(jfk, lhr). flight(nrt, hnd).
  > DATA

  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(sfo, X)'
  {(sfo, jfk); (sfo, lhr); (sfo, ord)}

  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(sfo, X)' --magic
  {(sfo, jfk); (sfo, lhr); (sfo, ord)}

  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(X, Y)'
  {(jfk, lhr); (nrt, hnd); (ord, jfk); (ord, lhr); (sfo, jfk); (sfo, lhr); (sfo, ord)}

Bad query atoms are reported:

  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(sfo, X'
  --query: 1:13: expected ',' or ')', found end of input
  [2]
