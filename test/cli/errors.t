Error handling: malformed programs are rejected with a message.

  $ cat > bad.dlog <<'PROGRAM'
  > q(X) :- p(X)
  > PROGRAM
  $ vplan_cli rewrite bad.dlog
  bad.dlog:1:13: expected ',' or '.', found end of input
  [2]

  $ cat > unsafe.dlog <<'PROGRAM'
  > q(X) :- p(Y).
  > PROGRAM
  $ vplan_cli rewrite unsafe.dlog
  unsafe.dlog:1:1: unsafe query: head variable(s) X not in body
  [2]
