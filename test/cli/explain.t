EXPLAIN-style plan output.

  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > PROGRAM
  $ cat > carloc_data.dlog <<'DATA'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > DATA

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2 --explain
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  join order: v4(M,anderson,C,S)
  cost (M2): 25
  step 1/1: scan v4(M,anderson,C,S)  [relation 4 tuples; after: 3 tuples]
  total cost: 25 cells
  query answer size: 3

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m3 --explain
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  plan: v4(M,anderson,C,S){M}
  cost (M3): 22
  step 1/1: scan v4(M,anderson,C,S)  drop {M}  [relation 4 tuples; GSR: 3 tuples x 2 attrs]
  total cost: 22 cells
  query answer size: 3

The explain subcommand classifies the query body via GYO reduction and
prints the join tree for acyclic bodies.  The span timings further down
are nondeterministic, so only the deterministic prefix is checked.

  $ cat > path.dlog <<'PROGRAM'
  > q(X0, X3) :- r(X0, X1), r(X1, X2), r(X2, X3).
  > v(A, B) :- r(A, B).
  > PROGRAM
  $ vplan_cli explain path.dlog | head -6
  explain rewritings=1
  classification: acyclic
  join tree:
  r(X2,X3)
    r(X1,X2)
      r(X0,X1)

Cyclic bodies are reported as such, with no join tree.

  $ cat > triangle.dlog <<'PROGRAM'
  > q(X) :- r(X, Y), s(Y, Z), t(Z, X).
  > v(A, B) :- r(A, B).
  > PROGRAM
  $ vplan_cli explain triangle.dlog | head -2
  explain rewritings=0
  classification: cyclic

With --analyze the chosen plan is also executed against the
materialized views with an operator profile attached: each operator
reports rows in/out, estimated rows with its q-error, and the summary
line carries the per-query q-error (the worst ratio over the tree).
--trace-out writes the spans plus the operator events as a Chrome
trace.json.  Wall-clock numbers are normalized.

  $ vplan_cli explain carloc.dlog --data carloc_data.dlog --analyze --trace-out trace.json | sed -E 's/[0-9]+\.[0-9]+ ms/X ms/g'
  explain analyze cost=25 candidates=2 answers=3 qerror=2.00
  classification: acyclic
  join tree:
  part(S,M,C)
    car(M,anderson)
    loc(anderson,C)
  request X ms, traced X ms in 16 spans
  |- corecover               X ms
  |  |- minimize                X ms
  |  |- view_classes            X ms  [classes=3]
  |  |- canonical_db            X ms
  |  |- view_tuples             X ms  [views=3 tuples=3]
  |  |- tuple_cores             X ms  [tuples=3 classes=3]
  |  `- set_cover               X ms  [nodes=5 covers=2]
  |- materialize             X ms
  |  |- hash_join               X ms
  |  |- hash_join               X ms
  |  `- hash_join               X ms
  |- plan_select             X ms  [candidates=2 pruned=1 memo_hits=0 memo_misses=0]
  |- estimate                X ms
  |- intern                  X ms
  `- analyze_exec            X ms
     `- hash_join               X ms
  q1(S,C) :- v4(M,anderson,C,S)
  order: v4(M,anderson,C,S)
  profile:
  query q1(S,C) :- v4(M,anderson,C,S)              X ms
  `- exec q1                                  in=3 out=3      X ms
     |- select v4(M,anderson,C,S)             in=4 out=3 est=1.5 q=2.00      X ms
     `- scan v4(M,anderson,C,S)               in=1 build=3 out=3 est=1.5 q=2.00      X ms
  trace written to trace.json

The exported trace is one JSON object wrapping the events.

  $ grep -c '"traceEvents"' trace.json
  1
  $ grep -c '"ph":"X"' trace.json
  1

--analyze without --data is a usage error.

  $ vplan_cli explain carloc.dlog --analyze
  error: --analyze needs --data FILE
  [1]
