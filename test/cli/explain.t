EXPLAIN-style plan output.

  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > PROGRAM
  $ cat > carloc_data.dlog <<'DATA'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > DATA

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2 --explain
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  join order: v4(M,anderson,C,S)
  cost (M2): 25
  step 1/1: scan v4(M,anderson,C,S)  [relation 4 tuples; after: 3 tuples]
  total cost: 25 cells
  query answer size: 3

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m3 --explain
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  plan: v4(M,anderson,C,S){M}
  cost (M3): 22
  step 1/1: scan v4(M,anderson,C,S)  drop {M}  [relation 4 tuples; GSR: 3 tuples x 2 attrs]
  total cost: 22 cells
  query answer size: 3

The explain subcommand classifies the query body via GYO reduction and
prints the join tree for acyclic bodies.  The span timings further down
are nondeterministic, so only the deterministic prefix is checked.

  $ cat > path.dlog <<'PROGRAM'
  > q(X0, X3) :- r(X0, X1), r(X1, X2), r(X2, X3).
  > v(A, B) :- r(A, B).
  > PROGRAM
  $ vplan_cli explain path.dlog | head -6
  explain rewritings=1
  classification: acyclic
  join tree:
  r(X2,X3)
    r(X1,X2)
      r(X0,X1)

Cyclic bodies are reported as such, with no join tree.

  $ cat > triangle.dlog <<'PROGRAM'
  > q(X) :- r(X, Y), s(Y, Z), t(Z, X).
  > v(A, B) :- r(A, B).
  > PROGRAM
  $ vplan_cli explain triangle.dlog | head -2
  explain rewritings=0
  classification: cyclic
