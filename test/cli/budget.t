Budgeted execution through the CLI: --timeout, --max-steps and --max-covers
make every rewrite anytime.  Exit codes: 0 complete, 3 truncated.

  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > PROGRAM

A generous deadline changes nothing — byte-identical output, exit 0:

  $ vplan_cli rewrite carloc.dlog --timeout 60000
  query (minimized): q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)
  views: 3 in 3 equivalence classes
  view tuples: 3 (3 representatives)
  globally-minimal rewritings (1):
    q1(S,C) :- v4(M,anderson,C,S)

An exhausted step budget returns whatever was produced before the cutoff
(here: nothing), warns on stderr, and exits 3 instead of raising:

  $ vplan_cli rewrite carloc.dlog --max-steps 1
  query (minimized): q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)
  views: 3 in 0 equivalence classes
  view tuples: 0 (0 representatives)
  no rewriting found before the cutoff
  warning: result truncated: step budget of 1 exhausted
  [3]

Three pair views, three minimum covers: uncapped, all three GMRs appear.

  $ cat > triple.dlog <<'PROGRAM'
  > q(X) :- p1(X), p2(X), p3(X).
  > vab(A) :- p1(A), p2(A).
  > vbc(A) :- p2(A), p3(A).
  > vac(A) :- p1(A), p3(A).
  > PROGRAM
  $ vplan_cli rewrite triple.dlog
  query (minimized): q(X) :- p1(X), p2(X), p3(X)
  views: 3 in 3 equivalence classes
  view tuples: 3 (3 representatives)
  globally-minimal rewritings (3):
    q(X) :- vab(X), vbc(X)
    q(X) :- vab(X), vac(X)
    q(X) :- vbc(X), vac(X)

--max-covers 1 keeps the first cover: the returned rewriting is still a
sound GMR, only exhaustiveness is surrendered.

  $ vplan_cli rewrite triple.dlog --max-covers 1
  query (minimized): q(X) :- p1(X), p2(X), p3(X)
  views: 3 in 3 equivalence classes
  view tuples: 3 (3 representatives)
  globally-minimal rewritings (1):
    q(X) :- vab(X), vbc(X)
  warning: result truncated: cover enumeration capped at 1 results
  [3]

The REPL accepts the same limits per session and survives the cutoff:

  $ vplan_repl <<'EOF'
  > query q(X) :- p1(X), p2(X), p3(X).
  > view vab(A) :- p1(A), p2(A).
  > view vbc(A) :- p2(A), p3(A).
  > view vac(A) :- p1(A), p3(A).
  > set max-covers 1
  > rewrite
  > set off
  > rewrite
  > quit
  > EOF
  query: q(X) :- p1(X), p2(X), p3(X)
  view: vab(A) :- p1(A), p2(A)
  view: vbc(A) :- p2(A), p3(A)
  view: vac(A) :- p1(A), p3(A)
  max-covers: 1
  q(X) :- vab(X), vbc(X)
  (truncated: cover enumeration capped at 1 results)
  budget off
  q(X) :- vab(X), vbc(X)
  q(X) :- vab(X), vac(X)
  q(X) :- vbc(X), vac(X)
