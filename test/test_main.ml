let () =
  Alcotest.run "vplan"
    [
      ("cq", Test_cq.suite);
      ("containment", Test_containment.suite);
      ("relational", Test_relational.suite);
      ("exec", Test_exec.suite);
      ("stats", Test_stats.suite);
      ("views", Test_views.suite);
      ("rewrite", Test_rewrite.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("budget", Test_budget.suite);
      ("cost", Test_cost.suite);
      ("estimate", Test_estimate.suite);
      ("m3", Test_m3.suite);
      ("baselines", Test_baselines.suite);
      ("ucq", Test_ucq.suite);
      ("builtins", Test_builtins.suite);
      ("datalog", Test_datalog.suite);
      ("inverse-rules", Test_inverse_rules.suite);
      ("planner", Test_planner.suite);
      ("workload", Test_workload.suite);
      ("service", Test_service.suite);
      ("server", Test_server.suite);
      ("store", Test_store.suite);
      ("obs", Test_obs.suite);
      ("hypergraph", Test_hypergraph.suite);
      ("properties", Test_properties.suite);
    ]
