(* Resource governance: budgets, the anytime CoreCover contract, typed
   errors on library boundaries, and the Parallel.map exception barrier. *)

open Vplan
open Helpers

(* -------------------------------------------------------------- *)
(* Budget mechanics.                                              *)

let test_budget_step_limit () =
  let b = Budget.create ~max_steps:5 () in
  let tripped = ref None in
  (try
     for _ = 1 to 100 do
       Budget.check b
     done
   with Vplan_error.Error e -> tripped := Some e);
  (match !tripped with
  | Some (Vplan_error.Step_limit { limit }) -> check_int "limit recorded" 5 limit
  | _ -> Alcotest.fail "expected Step_limit");
  (* the flag is sticky: every later check raises immediately *)
  (match Budget.check b with
  | exception Vplan_error.Error (Vplan_error.Step_limit _) -> ()
  | () -> Alcotest.fail "tripped budget accepted another step");
  match Budget.stopped b with
  | Some (Vplan_error.Step_limit _) -> ()
  | _ -> Alcotest.fail "stopped should report the trip reason"

let test_budget_first_trip_wins () =
  let b = Budget.create ~max_steps:1 () in
  (try
     while true do
       Budget.check b
     done
   with Vplan_error.Error _ -> ());
  (* a later cancel must not overwrite the original reason *)
  Budget.cancel b;
  (match Budget.stopped b with
  | Some (Vplan_error.Step_limit _) -> ()
  | _ -> Alcotest.fail "cancel overwrote the first trip reason");
  let b2 = Budget.create () in
  Budget.cancel b2;
  match Budget.check b2 with
  | exception Vplan_error.Error Vplan_error.Cancelled -> ()
  | () -> Alcotest.fail "cancelled budget accepted a step"

let test_budget_deadline () =
  let b = Budget.create ~deadline_ms:5. () in
  let deadline = Unix.gettimeofday () +. 0.005 in
  while Unix.gettimeofday () <= deadline do
    ()
  done;
  match
    (* the deadline is only polled every 64 steps, so give it a chance *)
    for _ = 1 to 200 do
      Budget.check b
    done
  with
  | exception Vplan_error.Error (Vplan_error.Timeout { limit_ms; _ }) ->
      check_bool "limit recorded" true (limit_ms = 5.)
  | () -> Alcotest.fail "expired deadline never tripped"

(* -------------------------------------------------------------- *)
(* Parallel.map: exception barrier and deterministic surfacing.    *)

let test_parallel_matches_list_map () =
  let xs = List.init 101 Fun.id in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d domains" domains)
        (List.map (fun x -> (x * x) + 1) xs)
        (Parallel.map ~domains (fun x -> (x * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let test_parallel_no_domain_leak () =
  (* Before the barrier fix a raising chunk escaped before its siblings
     were joined, leaking one domain per failure.  200 failing rounds with
     3 spawned domains each would then hit the system thread limit; with
     the fix every round raises the original exception and reclaims all
     domains. *)
  let xs = List.init 16 Fun.id in
  for _ = 1 to 200 do
    match Parallel.map ~domains:4 (fun x -> if x >= 0 then failwith "boom" else x) xs with
    | _ -> Alcotest.fail "raising worker produced a result"
    | exception Failure msg -> check_bool "original exception" true (msg = "boom")
  done

let test_parallel_deterministic_error () =
  (* elements 5 (chunk 1) and 13 (chunk 3) both fail: the lowest-indexed
     chunk's error must surface every time, whatever the scheduling *)
  let xs = List.init 16 Fun.id in
  for _ = 1 to 50 do
    match
      Parallel.map ~domains:4
        (fun x -> if x = 5 || x = 13 then failwith (Printf.sprintf "e%d" x) else x)
        xs
    with
    | _ -> Alcotest.fail "raising worker produced a result"
    | exception Failure msg -> Alcotest.(check string) "lowest chunk wins" "e5" msg
  done

let test_parallel_cancellation_propagates () =
  (* chunk 0 fails at once; the other chunks spin on the shared budget and
     only stop because the failure cancelled it.  The surfaced error must
     still be the root cause, never the induced Cancelled. *)
  let xs = List.init 16 Fun.id in
  for _ = 1 to 20 do
    let budget = Budget.create () in
    match
      Parallel.map ~budget ~domains:4
        (fun x ->
          if x < 4 then failwith "root cause"
          else
            while true do
              Budget.check budget
            done)
        xs
    with
    | _ -> Alcotest.fail "raising worker produced a result"
    | exception Failure msg -> Alcotest.(check string) "root cause wins" "root cause" msg
    | exception Vplan_error.Error Vplan_error.Cancelled ->
        Alcotest.fail "induced cancellation surfaced instead of the root cause"
  done

(* -------------------------------------------------------------- *)
(* Typed errors on library boundaries.                             *)

let test_seminaive_round_cap_typed () =
  let program =
    Program.make_exn
      (qs [ "path(X, Y) :- edge(X, Y)."; "path(X, Z) :- edge(X, Y), path(Y, Z)." ])
  in
  let edb =
    Database.of_facts
      (List.map (fun (x, y) -> ("edge", [ Term.Int x; Term.Int y ]))
         [ (1, 2); (2, 3); (3, 4); (4, 5) ])
  in
  (* the 5-node chain needs several rounds; one round cannot finish *)
  (match Seminaive.evaluate ~max_rounds:1 program edb with
  | _ -> Alcotest.fail "round cap did not fire"
  | exception Vplan_error.Error (Vplan_error.Step_limit { limit }) ->
      check_int "cap reported" 1 limit);
  (* a shared budget stops the fixpoint between rounds the same way *)
  let budget = Budget.create ~max_steps:1 () in
  match Seminaive.evaluate ~budget program edb with
  | _ -> Alcotest.fail "step budget did not stop the fixpoint"
  | exception Vplan_error.Error (Vplan_error.Step_limit _) -> ()

(* -------------------------------------------------------------- *)
(* Anytime CoreCover.                                              *)

let test_corecover_cover_cap_anytime () =
  (* three pair views with pairwise-distinct tuple-cores: any two of them
     cover the three subgoals, so there are exactly three minimum covers *)
  let query = q "q(X) :- p1(X), p2(X), p3(X)." in
  let views =
    qs
      [
        "vab(A) :- p1(A), p2(A).";
        "vbc(A) :- p2(A), p3(A).";
        "vac(A) :- p1(A), p3(A).";
      ]
  in
  let full = Corecover.gmrs ~query ~views () in
  check_int "three GMRs uncapped" 3 (List.length full.rewritings);
  check_bool "uncapped run complete" true (full.completeness = Corecover.Complete);
  let capped = Corecover.gmrs ~max_covers:1 ~query ~views () in
  check_int "one GMR under the cap" 1 (List.length capped.rewritings);
  (match capped.completeness with
  | Corecover.Truncated (Vplan_error.Cover_limit { limit }) -> check_int "cap" 1 limit
  | _ -> Alcotest.fail "capped run not flagged as truncated");
  (* the anytime contract: whatever comes back is a real rewriting *)
  List.iter
    (fun p ->
      check_bool "returned rewriting is equivalent" true
        (Expansion.is_equivalent_rewriting ~views ~query p))
    capped.rewritings

(* An adversarial workload: 16 unary subgoals over one distinguished
   variable, one view per 8-element subset of the subgoals.  The C(16,8) =
   12870 views have pairwise-distinct tuple-cores — no equivalence class or
   core bucketing collapses anything — and the minimum covers are the
   thousands of complementary pairs, so an unbudgeted run grinds through
   ~10^7 cover candidates.  A ~50ms deadline must cut it short quickly
   while keeping every returned rewriting sound. *)
let test_corecover_deadline_adversarial () =
  let n = 16 and size = 8 in
  let body =
    String.concat ", " (List.init n (fun j -> Printf.sprintf "p%d(X)" (j + 1)))
  in
  let query = q (Printf.sprintf "q(X) :- %s." body) in
  let subsets =
    let rec go i remaining acc =
      if remaining = 0 then [ acc ]
      else if i >= n then []
      else go (i + 1) (remaining - 1) (i :: acc) @ go (i + 1) remaining acc
    in
    go 0 size []
  in
  let views =
    List.mapi
      (fun vi members ->
        let body =
          String.concat ", " (List.map (fun j -> Printf.sprintf "p%d(A)" (j + 1)) members)
        in
        q (Printf.sprintf "v%d(A) :- %s." vi body))
      subsets
  in
  check_int "C(16,8) views" 12870 (List.length views);
  let deadline_ms = 50. in
  let budget = Budget.create ~deadline_ms () in
  let t0 = Unix.gettimeofday () in
  let r = Corecover.gmrs ~budget ~query ~views () in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (match r.completeness with
  | Corecover.Truncated (Vplan_error.Timeout _) -> ()
  | Corecover.Truncated e ->
      Alcotest.fail ("truncated for the wrong reason: " ^ Vplan_error.to_string e)
  | Corecover.Complete -> Alcotest.fail "63^8-cover workload claimed completeness");
  (* generous CI margin, but far below the minutes an unbudgeted run needs *)
  check_bool
    (Printf.sprintf "returned in %.0fms (deadline %.0fms)" elapsed_ms deadline_ms)
    true
    (elapsed_ms < 20. *. deadline_ms);
  List.iter
    (fun p ->
      check_bool "pre-cutoff rewriting is equivalent" true
        (Expansion.is_equivalent_rewriting ~views ~query p))
    r.rewritings

let suite =
  [
    ("budget step limit", `Quick, test_budget_step_limit);
    ("budget first trip wins", `Quick, test_budget_first_trip_wins);
    ("budget deadline", `Quick, test_budget_deadline);
    ("parallel map = List.map", `Quick, test_parallel_matches_list_map);
    ("parallel no domain leak", `Quick, test_parallel_no_domain_leak);
    ("parallel deterministic error", `Quick, test_parallel_deterministic_error);
    ("parallel cancellation", `Quick, test_parallel_cancellation_propagates);
    ("seminaive typed round cap", `Quick, test_seminaive_round_cap_typed);
    ("corecover cover cap anytime", `Quick, test_corecover_cover_cap_anytime);
    ("corecover ~50ms deadline", `Quick, test_corecover_deadline_adversarial);
  ]
