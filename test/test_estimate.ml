(* Tests for the System-R-style cardinality estimator. *)

open Vplan
open Helpers

let uniform_db ~tuples ~domain preds =
  let rng = Prng.create 23 in
  Datagen.random rng
    (List.map (fun predicate -> { Datagen.predicate; arity = 2; tuples; domain }) preds)

let test_atom_cardinality_base () =
  let db = uniform_db ~tuples:100 ~domain:20 [ "p" ] in
  let catalog = Estimate.analyze db in
  let full = Atom.make "p" [ Term.Var "X"; Term.Var "Y" ] in
  let actual = float_of_int (Eval.relation_size db full) in
  Alcotest.(check (float 0.01)) "full scan estimate is exact" actual
    (Estimate.atom_cardinality catalog full)

let test_constant_selection_estimate () =
  let db = uniform_db ~tuples:200 ~domain:10 [ "p" ] in
  let catalog = Estimate.analyze db in
  let selected = Atom.make "p" [ Term.Cst (Term.Int 3); Term.Var "Y" ] in
  let estimate = Estimate.atom_cardinality catalog selected in
  let actual = float_of_int (Eval.matching_count db selected) in
  (* uniform data: the 1/V rule should be within a small factor *)
  check_bool "within 3x of the truth" true
    (estimate > 0. && estimate /. actual < 3. && actual /. estimate < 3.)

let test_missing_relation () =
  let db = uniform_db ~tuples:10 ~domain:5 [ "p" ] in
  let catalog = Estimate.analyze db in
  Alcotest.(check (float 0.0)) "missing relation is empty" 0.
    (Estimate.atom_cardinality catalog (Atom.make "nope" [ Term.Var "X" ]))

let test_repeated_var_shrinks () =
  let db = uniform_db ~tuples:200 ~domain:10 [ "p" ] in
  let catalog = Estimate.analyze db in
  let loop = Atom.make "p" [ Term.Var "X"; Term.Var "X" ] in
  let full = Atom.make "p" [ Term.Var "X"; Term.Var "Y" ] in
  check_bool "self-join selection shrinks" true
    (Estimate.atom_cardinality catalog loop < Estimate.atom_cardinality catalog full)

let test_order_cost_positive_and_sensitive () =
  let db = uniform_db ~tuples:100 ~domain:12 [ "p"; "r" ] in
  let catalog = Estimate.analyze db in
  let body = (q "q(X, Z) :- p(X, Y), r(Y, Z).").Query.body in
  let cost = Estimate.order_cost catalog body in
  check_bool "positive" true (cost > 0.);
  (* adding a selective atom first should not increase the estimate of
     the later intermediate results *)
  let selective = (q "q(Z) :- p(1, Y), r(Y, Z).").Query.body in
  check_bool "selection cheaper" true (Estimate.order_cost catalog selective < cost)

let test_estimated_optimal_is_a_permutation () =
  let db = uniform_db ~tuples:60 ~domain:10 [ "p"; "r"; "s" ] in
  let catalog = Estimate.analyze db in
  let body = (q "q(X, W) :- p(X, Y), r(Y, Z), s(Z, W).").Query.body in
  let order, cost = Estimate.optimal catalog body in
  check_bool "finite" true (Float.is_finite cost);
  Alcotest.(check (slist string String.compare))
    "permutation"
    (List.map Atom.to_string body)
    (List.map Atom.to_string order)

let test_estimated_plan_quality () =
  (* the estimated-optimal order, costed against TRUE sizes, can never
     beat the true optimum, and on uniform data should be close *)
  let db = uniform_db ~tuples:80 ~domain:10 [ "p"; "r"; "s" ] in
  let catalog = Estimate.analyze db in
  let body = (q "q(X, W) :- p(X, Y), r(Y, Z), s(Z, W).").Query.body in
  let est_order, _ = Estimate.optimal catalog body in
  let _, true_optimal = M2.optimal db body in
  let realized = M2.cost_of_order db est_order in
  check_bool "never beats the true optimum" true (realized >= true_optimal);
  check_bool "within 2x on uniform data" true
    (float_of_int realized <= 2. *. float_of_int true_optimal)

(* The DP and the direct coster must agree on the DP's own answer: the
   canonical subset-profile fold makes [estimated_cost_of_order] of the
   returned order equal to the returned cost. *)
let test_m2_estimated_cost_invariant () =
  let db = uniform_db ~tuples:80 ~domain:10 [ "p"; "r"; "s" ] in
  let est = Estimate.of_stats (Stats.collect db) in
  let body = (q "q(X, W) :- p(X, Y), r(Y, Z), s(Z, W).").Query.body in
  let order, cost = M2.optimal_estimated est body in
  Alcotest.(check (float 1e-6)) "order recosts to the returned cost" cost
    (M2.estimated_cost_of_order est order);
  (* no permutation the DP considered is cheaper than its answer *)
  check_bool "reversal is no cheaper" true
    (M2.estimated_cost_of_order est (List.rev order) >= cost -. 1e-6);
  Alcotest.(check (slist string String.compare))
    "permutation"
    (List.map Atom.to_string body)
    (List.map Atom.to_string order)

let test_m3_estimated_plan () =
  let db = uniform_db ~tuples:60 ~domain:10 [ "p"; "r"; "s" ] in
  let est = Estimate.of_stats (Stats.collect db) in
  let head = (q "q(X) :- p(X, Y).").Query.head in
  let body = (q "q(X, W) :- p(X, Y), r(Y, Z), s(Z, W).").Query.body in
  let annotate = M3.supplementary ~head in
  let plan, cost = M3.optimal_estimated est ~annotate body in
  check_bool "finite positive" true (Float.is_finite cost && cost > 0.);
  Alcotest.(check (float 1e-6)) "plan recosts to the returned cost" cost
    (M3.estimated_cost_of_plan est plan);
  Alcotest.(check (slist string String.compare))
    "plan covers the body"
    (List.map Atom.to_string body)
    (List.map (fun (s : M3.step) -> Atom.to_string s.M3.subgoal) plan)

let test_select_estimated_deterministic () =
  let db = uniform_db ~tuples:80 ~domain:10 [ "p"; "r" ] in
  let est = Estimate.of_stats (Stats.collect db) in
  let wide = q "q(X, Z) :- p(X, Y), r(Y, Z)." in
  let narrow = q "q(X, Y) :- p(X, Y)." in
  match Select.best_m2_estimated est [ wide; narrow ] with
  | None -> Alcotest.fail "candidates scored"
  | Some c ->
      check_bool "single-atom candidate is cheaper" true
        (c.Select.est_rewriting == narrow);
      Alcotest.(check (float 1e-6)) "cost is the candidate's own optimum"
        (snd (M2.optimal_estimated est narrow.Query.body))
        c.Select.est_cost;
      (* same inputs, same choice: the fold is deterministic *)
      (match Select.best_m2_estimated est [ wide; narrow ] with
      | Some c' ->
          check_bool "deterministic rewriting" true
            (c'.Select.est_rewriting == c.Select.est_rewriting);
          Alcotest.(check (float 0.0)) "deterministic cost" c.Select.est_cost
            c'.Select.est_cost
      | None -> Alcotest.fail "second run scored");
      (* empty candidate list has no choice *)
      check_bool "no candidates, no choice" true
        (Select.best_m2_estimated est [] = None)

let test_view_stats_cardinality () =
  let db = uniform_db ~tuples:100 ~domain:10 [ "p" ] in
  let base = Estimate.of_stats (Stats.collect db) in
  let v = q "v(X, Y) :- p(X, Y)." in
  let est = Estimate.view_stats base [ v ] in
  let via_view = Estimate.atom_cardinality est (Atom.make "v" [ Term.Var "A"; Term.Var "B" ]) in
  let direct = Estimate.atom_cardinality base (Atom.make "p" [ Term.Var "A"; Term.Var "B" ]) in
  Alcotest.(check (float 0.01)) "identity view inherits the cardinality" direct via_view

let suite =
  [
    ("full-scan cardinality exact", `Quick, test_atom_cardinality_base);
    ("constant selection 1/V rule", `Quick, test_constant_selection_estimate);
    ("missing relation", `Quick, test_missing_relation);
    ("repeated variable shrinks", `Quick, test_repeated_var_shrinks);
    ("order cost sane", `Quick, test_order_cost_positive_and_sensitive);
    ("estimated optimal is a permutation", `Quick, test_estimated_optimal_is_a_permutation);
    ("estimated plan quality", `Quick, test_estimated_plan_quality);
    ("m2 estimated cost invariant", `Quick, test_m2_estimated_cost_invariant);
    ("m3 estimated plan", `Quick, test_m3_estimated_plan);
    ("select estimated deterministic", `Quick, test_select_estimated_deterministic);
    ("view stats identity cardinality", `Quick, test_view_stats_cardinality);
  ]
