(* Tests for the cost models M1, M2 (join-order DP, filters) and the
   optimizer facade. *)

open Vplan
open Helpers

let test_m1_cost () =
  let open Car_loc_part in
  check_int "P1 costs 3" 3 (M1.cost p1);
  check_int "P4 costs 1" 1 (M1.cost p4);
  Alcotest.(check (list string)) "best picks P4" [ Query.to_string p4 ]
    (List.map Query.to_string (M1.best [ p1; p2; p3; p4; p5 ]))

let carloc_view_db = Materialize.views Car_loc_part.base Car_loc_part.views

let test_m2_cost_of_order () =
  let open Car_loc_part in
  let cost_p4 = M2.cost_of_order carloc_view_db p4.Query.body in
  (* v4 materializes to the 3 query answers + any (m,d,c,s) joins; cost =
     size(v4) + size(IR_1) where IR_1 selects dealer anderson *)
  check_bool "positive" true (cost_p4 > 0);
  let sizes = M2.intermediate_sizes carloc_view_db p4.Query.body in
  check_int "one intermediate" 1 (List.length sizes)

let test_m2_dp_matches_exhaustive () =
  let open Car_loc_part in
  List.iter
    (fun p ->
      let _, dp = M2.optimal carloc_view_db p.Query.body in
      let _, ex = M2.optimal_exhaustive carloc_view_db p.Query.body in
      check_int ("optimal cost for " ^ Query.to_string p) ex dp)
    [ p1; p2; p3; p4; p5 ]

let test_m2_order_is_permutation () =
  let open Car_loc_part in
  let order, _ = M2.optimal carloc_view_db p3.Query.body in
  Alcotest.(check (slist string String.compare))
    "permutation of the body"
    (List.map Atom.to_string p3.Query.body)
    (List.map Atom.to_string order)

let test_m2_intermediate_independent_of_prefix_order () =
  let open Car_loc_part in
  (* size(IR_n) is the same for every ordering: it is the full join *)
  let finals =
    List.map
      (fun order -> List.nth (M2.intermediate_sizes carloc_view_db order)
                      (List.length order - 1))
      (Orderings.permutations p2.Query.body)
  in
  match finals with
  | [] -> Alcotest.fail "no orderings"
  | x :: rest -> List.iter (fun y -> check_int "same final size" x y) rest

(* Build a base where v3 is very selective so that the filter pays off:
   many cars/parts, but almost no store matching all three conditions. *)
let filter_base =
  let facts = ref [] in
  let add p args = facts := (p, args) :: !facts in
  (* dealer anderson sells 20 makes; anderson is in 1 city *)
  for m = 1 to 20 do
    add "car" [ Term.Int m; Term.Str "anderson" ]
  done;
  add "loc" [ Term.Str "anderson"; Term.Str "springfield" ];
  (* lots of stores selling parts for those makes in other cities *)
  for m = 1 to 20 do
    for s = 1 to 10 do
      add "part" [ Term.Int (1000 + (10 * m) + s); Term.Int m; Term.Str "elsewhere" ]
    done
  done;
  (* exactly one store qualifies in springfield *)
  add "part" [ Term.Int 1; Term.Int 1; Term.Str "springfield" ];
  Database.of_facts !facts

let test_m2_filter_improves () =
  let open Car_loc_part in
  let view_db = Materialize.views filter_base views in
  let r = Corecover.all_minimal ~query ~views () in
  let p2_rewriting =
    List.find (fun (p : Query.t) -> List.length p.body = 2) r.rewritings
  in
  let without, with_filters =
    Filter.cost_with_and_without view_db ~filters:r.filters p2_rewriting.Query.body
  in
  check_bool "filter lowers the M2 cost" true (with_filters < without);
  (* and the filtered rewriting still computes the right answer *)
  let body, _, _ = Filter.improve view_db ~filters:r.filters p2_rewriting.Query.body in
  let filtered = Query.make_exn p2_rewriting.Query.head body in
  Alcotest.check relation_testable "filtered rewriting correct"
    (Eval.answers filter_base query)
    (Materialize.answers_via_rewriting view_db filtered)

let test_m2_connected_dp () =
  let open Car_loc_part in
  (* connected bodies: same optimum or a mildly worse cross-product-free one *)
  List.iter
    (fun (p : Query.t) ->
      match M2.optimal_connected carloc_view_db p.body with
      | None -> Alcotest.fail "connected body rejected"
      | Some (order, cost) ->
          let _, unrestricted = M2.optimal carloc_view_db p.body in
          check_bool "never beats unrestricted DP" true (cost >= unrestricted);
          check_int "cost consistent with order" cost
            (M2.cost_of_order carloc_view_db order))
    [ p2; p3; p4 ];
  (* a genuinely disconnected body has no cross-product-free ordering *)
  let disconnected =
    [ Atom.make "v2" [ Term.Var "S"; Term.Var "M"; Term.Var "C" ];
      Atom.make "v3" [ Term.Var "S2" ] ]
  in
  check_bool "disconnected rejected" true
    (M2.optimal_connected carloc_view_db disconnected = None)

let test_m2_memo_reuse () =
  let open Car_loc_part in
  let memo = Subplan.create () in
  let _, c1 = M2.optimal ~memo carloc_view_db p3.Query.body in
  let before = (Subplan.counters memo).Subplan.hits in
  let _, c2 = M2.optimal ~memo carloc_view_db p3.Query.body in
  check_int "same cost on reuse" c1 c2;
  check_bool "second run hits the memo" true
    ((Subplan.counters memo).Subplan.hits > before);
  let _, plain = M2.optimal carloc_view_db p3.Query.body in
  check_int "memo does not change the result" plain c1

let test_m2_pruned_bound () =
  let open Car_loc_part in
  let order, cost = M2.optimal carloc_view_db p3.Query.body in
  (match M2.optimal_pruned ~bound:cost carloc_view_db p3.Query.body with
  | None -> ()
  | Some _ -> Alcotest.fail "bound at the optimum must prune everything");
  (match M2.optimal_pruned ~bound:(cost + 1) carloc_view_db p3.Query.body with
  | Some (order', cost') ->
      check_int "same cost under a loose bound" cost cost';
      Alcotest.(check (list string))
        "same order under a loose bound"
        (List.map Atom.to_string order)
        (List.map Atom.to_string order')
  | None -> Alcotest.fail "a loose bound must not prune the optimum");
  check_bool "relation-cells lower bound short-circuits" true
    (M2.optimal_pruned
       ~bound:(M2.body_relation_cells carloc_view_db p3.Query.body)
       carloc_view_db p3.Query.body
    = None)

let width_error subgoals max_subgoals =
  Vplan_error.Error (Vplan_error.Width_limit { subgoals; max_subgoals })

let test_width_limits () =
  let body n =
    List.init n (fun i -> Atom.make (Printf.sprintf "t%d" i) [ Term.Var "X" ])
  in
  Alcotest.check_raises "M2 DP capped at 20" (width_error 21 20) (fun () ->
      ignore (M2.optimal Car_loc_part.base (body 21)));
  Alcotest.check_raises "permutations capped at 8" (width_error 9 8) (fun () ->
      ignore (Orderings.permutations (body 9)));
  Alcotest.check_raises "M3 optimal capped at 8" (width_error 9 8) (fun () ->
      let head = Atom.make "q" [] in
      ignore (M3.optimal Car_loc_part.base ~annotate:(M3.supplementary ~head) (body 9)))

let test_explain_renders () =
  let open Car_loc_part in
  let m2_text =
    Format.asprintf "%a" (fun ppf () -> Explain.m2 ppf carloc_view_db p2.Query.body) ()
  in
  check_bool "m2 explain mentions steps" true
    (String.length m2_text > 0
    && String.split_on_char '\n' m2_text
       |> List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "step"));
  check_bool "m2 explain totals" true
    (String.split_on_char '\n' m2_text
    |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "total"));
  let plan = M3.supplementary ~head:p2.Query.head p2.Query.body in
  let m3_text =
    Format.asprintf "%a" (fun ppf () -> Explain.m3 ppf carloc_view_db plan) ()
  in
  check_bool "m3 explain shows drops" true
    (String.length m3_text > 0
    &&
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains_sub m3_text "GSR")

let test_optimizer_m1 () =
  let open Car_loc_part in
  let t = Optimizer.create ~query ~views ~base in
  match Optimizer.best_m1 t with
  | None -> Alcotest.fail "expected a rewriting"
  | Some p -> check_int "GMR size" 1 (List.length p.Query.body)

let test_optimizer_m2_correct_answers () =
  let open Car_loc_part in
  let t = Optimizer.create ~query ~views ~base in
  match Optimizer.best_m2 t with
  | None -> Alcotest.fail "expected a rewriting"
  | Some c ->
      let result =
        Materialize.answers_via_rewriting (Optimizer.view_database t) c.m2_rewriting
      in
      Alcotest.check relation_testable "plan answer = query answer" (Optimizer.answer t) result

let test_optimizer_m2_cost_order () =
  let open Car_loc_part in
  let t = Optimizer.create ~query ~views ~base in
  match Optimizer.best_m2 ~with_filters:false t with
  | None -> Alcotest.fail "expected a rewriting"
  | Some c ->
      (* the chosen cost must equal the cost of the reported order *)
      check_int "consistent" c.m2_cost
        (M2.cost_of_order (Optimizer.view_database t) c.m2_order)

let test_optimizer_m2_estimated () =
  let open Car_loc_part in
  let t = Optimizer.create ~query ~views ~base in
  match (Optimizer.best_m2 ~with_filters:false t, Optimizer.best_m2_estimated t) with
  | Some true_best, Some est ->
      check_bool "estimated route never beats the true optimum" true
        (est.m2_cost >= true_best.m2_cost);
      (* and the chosen plan still computes the right answer *)
      Alcotest.check relation_testable "correct answers"
        (Optimizer.answer t)
        (Materialize.answers_via_rewriting (Optimizer.view_database t) est.m2_rewriting)
  | _ -> Alcotest.fail "expected plans"

let test_optimizer_no_rewriting () =
  let query = q "q(X, Y) :- p(X, Y), r(Y, X)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  let base = Database.of_facts [ ("p", [ Term.Int 1; Term.Int 2 ]) ] in
  let t = Optimizer.create ~query ~views ~base in
  check_bool "m1 none" true (Optimizer.best_m1 t = None);
  check_bool "m2 none" true (Optimizer.best_m2 t = None)

let suite =
  [
    ("M1 cost and best", `Quick, test_m1_cost);
    ("M2 cost of order", `Quick, test_m2_cost_of_order);
    ("M2 DP = exhaustive", `Quick, test_m2_dp_matches_exhaustive);
    ("M2 order is a permutation", `Quick, test_m2_order_is_permutation);
    ("M2 final IR order-independent", `Quick, test_m2_intermediate_independent_of_prefix_order);
    ("M2 filters improve cost (P3 scenario)", `Quick, test_m2_filter_improves);
    ("M2 connected DP", `Quick, test_m2_connected_dp);
    ("M2 memo reuse", `Quick, test_m2_memo_reuse);
    ("M2 branch-and-bound", `Quick, test_m2_pruned_bound);
    ("typed width limits", `Quick, test_width_limits);
    ("explain renders", `Quick, test_explain_renders);
    ("optimizer M1", `Quick, test_optimizer_m1);
    ("optimizer M2 correct answers", `Quick, test_optimizer_m2_correct_answers);
    ("optimizer M2 cost consistency", `Quick, test_optimizer_m2_cost_order);
    ("optimizer M2 estimated route", `Quick, test_optimizer_m2_estimated);
    ("optimizer without rewriting", `Quick, test_optimizer_no_rewriting);
  ]
