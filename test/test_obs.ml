(* Tests for the observability layer (lib/obs): histogram bucketing and
   quantile readout, counter merges across Parallel.map domains, span
   collection and parent links, and the observer-effect property — a
   traced pipeline returns exactly what an untraced one does. *)

open Vplan
open Qcheck_gens
open Helpers
module Gen = QCheck2.Gen

let seed =
  match int_of_string_opt (try Sys.getenv "QCHECK_SEED" with Not_found -> "") with
  | Some s -> s
  | None -> 0x5eed

let make_qcheck ?(count = 100) ~name gen print prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name ~print gen prop)

(* Metrics are process-global, so every test registers under its own
   test_obs_* name and never touches the vplan_* metrics the library
   itself maintains. *)

(* --- histogram bucketing ------------------------------------------- *)

let bucket_boundaries () =
  let bounds = Metrics.bucket_bounds in
  let n = Array.length bounds in
  for i = 0 to n - 2 do
    check_bool "bounds ascending" true (bounds.(i) < bounds.(i + 1))
  done;
  (* a sample exactly on a bound lands in that bucket (le semantics)… *)
  Array.iteri
    (fun i b -> check_int "on-bound sample" i (Metrics.bucket_index b))
    bounds;
  (* …and one just above it in the next *)
  for i = 0 to n - 2 do
    let just_above = bounds.(i) +. ((bounds.(i + 1) -. bounds.(i)) /. 2.) in
    check_int "above-bound sample" (i + 1) (Metrics.bucket_index just_above)
  done;
  check_int "zero sample" 0 (Metrics.bucket_index 0.);
  check_int "overflow sample" n (Metrics.bucket_index (bounds.(n - 1) +. 1.))

let clamped_samples () =
  let h = Metrics.histogram "test_obs_clamp_ms" in
  Metrics.observe h Float.nan;
  Metrics.observe h (-5.);
  let s = Metrics.summary h in
  check_int "clamped count" 2 s.Metrics.count;
  check_bool "clamped sum" true (s.Metrics.sum_ms = 0.);
  check_bool "clamped p50 = first bucket" true
    (s.Metrics.p50_ms = Metrics.bucket_bounds.(0))

let quantile_readout () =
  let bounds = Metrics.bucket_bounds in
  let h = Metrics.histogram "test_obs_quantiles_ms" in
  (* 50 fast, 40 medium, 9 slow, 1 in the overflow bucket: the rank for
     p50 (50) is reached by the fast bucket, p90 (90) by the medium one,
     p99 (99) by the slow one. *)
  for _ = 1 to 50 do Metrics.observe h 0.5 done;
  for _ = 1 to 40 do Metrics.observe h 5. done;
  for _ = 1 to 9 do Metrics.observe h 50. done;
  Metrics.observe h (bounds.(Array.length bounds - 1) +. 1.);
  let s = Metrics.summary h in
  check_int "count" 100 s.Metrics.count;
  check_bool "p50" true (s.Metrics.p50_ms = bounds.(Metrics.bucket_index 0.5));
  check_bool "p90" true (s.Metrics.p90_ms = bounds.(Metrics.bucket_index 5.));
  check_bool "p99" true (s.Metrics.p99_ms = bounds.(Metrics.bucket_index 50.))

let overflow_quantile () =
  let h = Metrics.histogram "test_obs_overflow_ms" in
  Metrics.observe h 1e9;
  let s = Metrics.summary h in
  check_bool "overflow p50 is infinite" true (s.Metrics.p50_ms = infinity)

(* --- counters across domains --------------------------------------- *)

let counter_cross_domain () =
  let c = Metrics.counter "test_obs_merge_total" in
  let items = List.init 64 (fun i -> i) in
  let _ =
    Parallel.map ~domains:4
      (fun n ->
        for _ = 1 to n do Metrics.incr c done;
        n)
      items
  in
  let expected = List.fold_left ( + ) 0 items in
  check_int "cross-domain counter sum" expected (Metrics.value c)

(* --- tracing ------------------------------------------------------- *)

let disabled_is_transparent () =
  check_bool "disabled" false (Trace.enabled ());
  check_int "with_span passes through" 42 (Trace.with_span "x" (fun () -> 42));
  (* annotate outside a session is a no-op, not an error *)
  Trace.annotate "k" 1.

let span_parent_links () =
  let (), spans =
    Trace.run (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () ->
                Trace.annotate "k" 1.5;
                Trace.annotate "k" 2.5)))
  in
  let find name = List.find (fun s -> s.Trace.name = name) spans in
  let outer = find "outer" and inner = find "inner" in
  check_int "two spans" 2 (List.length spans);
  check_int "outer is top-level" (-1) outer.Trace.parent;
  check_int "inner under outer" outer.Trace.id inner.Trace.parent;
  check_bool "repeated annotation accumulates" true
    (inner.Trace.kv = [ ("k", 4.0) ]);
  check_bool "session closed" false (Trace.enabled ())

let spans_across_domains () =
  let results, spans =
    Trace.run (fun () ->
        Trace.with_span "fanout" (fun () ->
            Parallel.map ~domains:4
              (fun i -> Trace.with_span "worker" (fun () -> i * i))
              (List.init 8 (fun i -> i))))
  in
  check_bool "map result intact" true
    (results = List.map (fun i -> i * i) (List.init 8 (fun i -> i)));
  let fanout = List.find (fun s -> s.Trace.name = "fanout") spans in
  let workers = List.filter (fun s -> s.Trace.name = "worker") spans in
  check_int "every worker span collected" 8 (List.length workers);
  List.iter
    (fun w -> check_int "worker parented under fanout" fanout.Trace.id w.Trace.parent)
    workers;
  check_bool "top-level total positive" true (Trace.top_level_total spans >= 0.)

(* --- observer effect ----------------------------------------------- *)

(* Tracing a rewrite changes nothing about its answer: same rewritings,
   same completeness, and the same chosen plan cost downstream. *)
let traced_equals_untraced =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_qcheck ~name:"traced rewrite = untraced rewrite" gen print_instance
    (fun (query, views) ->
      let plain = Corecover.gmrs ~query ~views () in
      let traced, spans = Trace.run (fun () -> Corecover.gmrs ~query ~views ()) in
      List.equal Query.equal plain.Corecover.rewritings traced.Corecover.rewritings
      && plain.Corecover.completeness = traced.Corecover.completeness
      && List.exists (fun s -> s.Trace.name = "corecover") spans)

let traced_equals_untraced_plan =
  let gen =
    Gen.triple gen_query (gen_views ~max_views:3 ~max_atoms:2) gen_database
  in
  make_qcheck ~count:60 ~name:"traced plan cost = untraced plan cost" gen
    print_with_db
    (fun (query, views, db) ->
      let select r view_db =
        Select.best_m2 ~memo:(Subplan.create ()) ~filters:r.Corecover.filters
          view_db r.Corecover.rewritings
      in
      let run () =
        let r = Corecover.all_minimal ~query ~views () in
        let view_db = Materialize.views db views in
        select r view_db
      in
      let plain = run () in
      let traced, _ = Trace.run run in
      match (plain, traced) with
      | None, None -> true
      | Some a, Some b ->
          a.Select.m2_cost = b.Select.m2_cost
          && Query.equal a.Select.m2_rewriting b.Select.m2_rewriting
      | _ -> false)

(* --- Prometheus exposition format ---------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let dump_conformance () =
  let h = Metrics.histogram ~help:"conformance probe" "test_obs_conform_ms" in
  Metrics.observe h 0.5;
  Metrics.observe h 5.;
  Metrics.observe h 1e9;
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Metrics.dump ppf;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  check_bool "HELP line" true
    (contains text "# HELP test_obs_conform_ms conformance probe");
  check_bool "TYPE histogram" true
    (contains text "# TYPE test_obs_conform_ms histogram");
  check_bool "TYPE counter somewhere" true (contains text " counter\n");
  check_bool "+Inf bucket" true
    (contains text "test_obs_conform_ms_bucket{le=\"+Inf\"} 3");
  check_bool "_sum series" true (contains text "test_obs_conform_ms_sum ");
  check_bool "_count series" true (contains text "test_obs_conform_ms_count 3");
  (* buckets are cumulative: counts along the le-ladder never decrease *)
  let lines = String.split_on_char '\n' text in
  let prefix = "test_obs_conform_ms_bucket{" in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if
          String.length l >= String.length prefix
          && String.sub l 0 (String.length prefix) = prefix
        then
          match String.rindex_opt l ' ' with
          | Some i ->
              int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      lines
  in
  check_bool "at least one bucket line" true (List.length bucket_counts > 1);
  let rec ascending = function
    | a :: (b :: _ as tl) -> a <= b && ascending tl
    | _ -> true
  in
  check_bool "buckets cumulative" true (ascending bucket_counts)

(* --- q-error -------------------------------------------------------- *)

let qerror_units () =
  check_bool "perfect estimate" true (Profile.qerror ~est:10. ~actual:10 = 1.);
  check_bool "under by 100x" true (Profile.qerror ~est:1. ~actual:100 = 100.);
  check_bool "over by 100x" true (Profile.qerror ~est:100. ~actual:1 = 100.);
  check_bool "empty estimated empty is perfect" true
    (Profile.qerror ~est:0. ~actual:0 = 1.);
  check_bool "no estimate propagates nan" true
    (Float.is_nan (Profile.qerror ~est:Float.nan ~actual:5));
  let q = Qerror.create () in
  check_bool "empty acc mean is nan" true (Float.is_nan (Qerror.mean_q q));
  Qerror.observe q 2.;
  Qerror.observe q 8.;
  Qerror.observe q Float.nan;
  Qerror.observe q 0.5 (* clamps to 1 *);
  check_int "nan ignored" 3 (Qerror.count q);
  check_bool "max" true (Qerror.max_q q = 8.);
  (* geometric mean of {2, 8, 1} = (16)^(1/3) *)
  check_bool "geometric mean" true
    (Float.abs (Qerror.mean_q q -. (16. ** (1. /. 3.))) < 1e-9)

(* --- operator profiles ---------------------------------------------- *)

let profile_tree_shape () =
  let p = Profile.create ~name:"q" () in
  let prof = Some p in
  Profile.step prof ~op:"exec" ~name:"q" (fun n ->
      Profile.set_rows_in n 10;
      Profile.step prof ~op:"select" ~name:"r" (fun c ->
          Profile.set_rows_out c 4;
          Profile.set_est_rows c 8.);
      Profile.step prof ~op:"join" ~name:"s" (fun c ->
          Profile.set_build_rows c 4;
          Profile.set_rows_out c 2;
          Profile.set_est_rows c 2.);
      Profile.set_rows_out n 2);
  let root = Profile.finish p in
  check_bool "root is the query node" true (root.Profile.op = "query");
  (match root.Profile.children with
  | [ e ] ->
      check_bool "exec child" true (e.Profile.op = "exec");
      (match e.Profile.children with
      | [ a; b ] ->
          (* children come back in execution order *)
          check_bool "select first" true (a.Profile.op = "select");
          check_bool "join second" true (b.Profile.op = "join");
          check_int "build rows" 4 b.Profile.build_rows
      | _ -> Alcotest.fail "expected two grandchildren")
  | _ -> Alcotest.fail "expected one child");
  (* worst estimate over the tree: select is off 2x, join is exact *)
  check_bool "max qerror" true (Profile.max_qerror root = 2.);
  check_int "preorder covers the tree" 4 (List.length (Profile.preorder root));
  let rendered = Format.asprintf "%a" Profile.pp_tree root in
  check_bool "tree names operators" true
    (contains rendered "select" && contains rendered "join");
  check_bool "tree shows est vs actual" true
    (contains rendered "out=4 est=8.0 q=2.00");
  let events = Profile.chrome_events root in
  check_int "one chrome event per node" 4 (List.length events);
  check_bool "events are complete-phase" true
    (List.for_all (fun e -> contains e "\"ph\":\"X\"") events)

let profiled_off_is_transparent () =
  (* with no profile every entry point is a pass-through *)
  let r = Profile.step None ~op:"exec" (fun n ->
      Profile.set_rows_in n 3;
      Profile.set_rows_out n 3;
      41 + 1)
  in
  check_int "step None passes through" 42 r

(* --- scoped trace sessions ------------------------------------------ *)

let run_scoped_isolated () =
  (* two concurrent scoped sessions: each collects exactly its own
     spans, with no cross-pollution through the global session slot *)
  let worker tag () =
    Trace.run_scoped (fun () ->
        for _ = 1 to 50 do
          Trace.with_span tag (fun () -> ())
        done)
  in
  let d1 = Domain.spawn (worker "left") in
  let d2 = Domain.spawn (worker "right") in
  let (), left = Domain.join d1 in
  let (), right = Domain.join d2 in
  check_int "left count" 50 (List.length left);
  check_int "right count" 50 (List.length right);
  check_bool "left spans pure" true
    (List.for_all (fun s -> s.Trace.name = "left") left);
  check_bool "right spans pure" true
    (List.for_all (fun s -> s.Trace.name = "right") right);
  check_bool "no session leaks" false (Trace.enabled ())

let chrome_json_roundtrip () =
  let (), spans =
    Trace.run (fun () ->
        Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ())))
  in
  let json = Trace.chrome_json spans in
  check_bool "traceEvents wrapper" true (contains json "\"traceEvents\":[");
  check_bool "outer event" true (contains json "\"name\":\"outer\"");
  check_bool "inner event" true (contains json "\"name\":\"inner\"");
  check_bool "microsecond timestamps" true (contains json "\"ts\":");
  check_bool "escaping" true
    (Trace.json_escape "a\"b\\c\n" = "a\\\"b\\\\c\\n")

(* --- flight recorder ------------------------------------------------ *)

let recorder_basic () =
  Recorder.reset ();
  Recorder.append ~kind:"rewrite" ~trace:7 ~latency_ms:1.5 ~source:"miss"
    ~answers:3 ~detail:"q(X)" ();
  Recorder.append ~kind:"plan" ~trace:8 ~qerror:2.5 ~slow:true ();
  let records = Recorder.dump () in
  check_int "two records" 2 (List.length records);
  (match records with
  | [ a; b ] ->
      check_bool "oldest first" true (a.Recorder.seq < b.Recorder.seq);
      check_bool "fields kept" true
        (a.Recorder.kind = "rewrite" && a.Recorder.trace = 7
        && a.Recorder.answers = 3 && a.Recorder.source = "miss");
      check_bool "unset answer is -1" true (b.Recorder.answers = -1);
      check_bool "render is one line" true
        (not (String.contains (Recorder.render a) '\n'));
      check_bool "render carries the detail" true
        (contains (Recorder.render a) "q(X)");
      check_bool "json has the kind" true
        (contains (Recorder.to_json b) "\"kind\":\"plan\"");
      check_bool "nan qerror renders as null-free dash" true
        (contains (Recorder.render a) "qerror=-")
  | _ -> Alcotest.fail "expected two records");
  (match Recorder.find_trace 8 with
  | Some r -> check_bool "find_trace" true (r.Recorder.kind = "plan")
  | None -> Alcotest.fail "trace 8 not found");
  check_bool "missing trace" true (Recorder.find_trace 999 = None);
  Recorder.set_enabled false;
  Recorder.append ~kind:"ignored" ();
  check_int "disabled appends are dropped" 2 (List.length (Recorder.dump ()));
  Recorder.reset ()

let recorder_wraparound () =
  Recorder.reset ();
  let n = Recorder.capacity + 100 in
  for i = 0 to n - 1 do
    Recorder.append ~kind:"w" ~answers:i ()
  done;
  let records = Recorder.dump () in
  check_int "ring keeps capacity records" Recorder.capacity
    (List.length records);
  (* the survivors are exactly the newest [capacity] appends, in order *)
  List.iteri
    (fun i r -> check_int "survivor" (n - Recorder.capacity + i) r.Recorder.answers)
    records;
  Recorder.reset ()

let recorder_stress () =
  (* 4 domains race 1000 appends each into a 512-slot ring: every
     record a dump returns must be internally consistent (no torn
     reads), seqs distinct, and the ring full *)
  Recorder.reset ();
  let per_domain = 1000 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let tag = (d * 1_000_000) + i in
      Recorder.append ~kind:"stress" ~trace:tag ~answers:tag
        ~detail:(string_of_int tag) ()
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let records = Recorder.dump () in
  check_int "ring full after stress" Recorder.capacity (List.length records);
  List.iter
    (fun r ->
      check_bool "record not torn" true
        (r.Recorder.kind = "stress"
        && r.Recorder.trace = r.Recorder.answers
        && r.Recorder.detail = string_of_int r.Recorder.trace))
    records;
  let seqs = List.map (fun r -> r.Recorder.seq) records in
  let sorted = List.sort_uniq compare seqs in
  check_int "seqs distinct" (List.length seqs) (List.length sorted);
  check_bool "dump ordered by seq" true (seqs = List.sort compare seqs);
  Recorder.reset ()

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick bucket_boundaries;
    Alcotest.test_case "nan and negative samples clamp" `Quick clamped_samples;
    Alcotest.test_case "p50/p90/p99 readout" `Quick quantile_readout;
    Alcotest.test_case "overflow-bucket quantile" `Quick overflow_quantile;
    Alcotest.test_case "counter merges across domains" `Quick counter_cross_domain;
    Alcotest.test_case "disabled tracer is transparent" `Quick disabled_is_transparent;
    Alcotest.test_case "span parent links and annotations" `Quick span_parent_links;
    Alcotest.test_case "spans cross Parallel.map domains" `Quick spans_across_domains;
    Alcotest.test_case "metrics dump is Prometheus-conformant" `Quick
      dump_conformance;
    Alcotest.test_case "q-error units and accumulators" `Quick qerror_units;
    Alcotest.test_case "profile tree shape and rendering" `Quick
      profile_tree_shape;
    Alcotest.test_case "profiling off is transparent" `Quick
      profiled_off_is_transparent;
    Alcotest.test_case "scoped trace sessions are isolated" `Quick
      run_scoped_isolated;
    Alcotest.test_case "chrome trace export" `Quick chrome_json_roundtrip;
    Alcotest.test_case "flight recorder basics" `Quick recorder_basic;
    Alcotest.test_case "flight recorder wraparound" `Quick recorder_wraparound;
    Alcotest.test_case "flight recorder multi-domain stress" `Quick
      recorder_stress;
    traced_equals_untraced;
    traced_equals_untraced_plan;
  ]
