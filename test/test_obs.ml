(* Tests for the observability layer (lib/obs): histogram bucketing and
   quantile readout, counter merges across Parallel.map domains, span
   collection and parent links, and the observer-effect property — a
   traced pipeline returns exactly what an untraced one does. *)

open Vplan
open Qcheck_gens
open Helpers
module Gen = QCheck2.Gen

let seed =
  match int_of_string_opt (try Sys.getenv "QCHECK_SEED" with Not_found -> "") with
  | Some s -> s
  | None -> 0x5eed

let make_qcheck ?(count = 100) ~name gen print prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name ~print gen prop)

(* Metrics are process-global, so every test registers under its own
   test_obs_* name and never touches the vplan_* metrics the library
   itself maintains. *)

(* --- histogram bucketing ------------------------------------------- *)

let bucket_boundaries () =
  let bounds = Metrics.bucket_bounds in
  let n = Array.length bounds in
  for i = 0 to n - 2 do
    check_bool "bounds ascending" true (bounds.(i) < bounds.(i + 1))
  done;
  (* a sample exactly on a bound lands in that bucket (le semantics)… *)
  Array.iteri
    (fun i b -> check_int "on-bound sample" i (Metrics.bucket_index b))
    bounds;
  (* …and one just above it in the next *)
  for i = 0 to n - 2 do
    let just_above = bounds.(i) +. ((bounds.(i + 1) -. bounds.(i)) /. 2.) in
    check_int "above-bound sample" (i + 1) (Metrics.bucket_index just_above)
  done;
  check_int "zero sample" 0 (Metrics.bucket_index 0.);
  check_int "overflow sample" n (Metrics.bucket_index (bounds.(n - 1) +. 1.))

let clamped_samples () =
  let h = Metrics.histogram "test_obs_clamp_ms" in
  Metrics.observe h Float.nan;
  Metrics.observe h (-5.);
  let s = Metrics.summary h in
  check_int "clamped count" 2 s.Metrics.count;
  check_bool "clamped sum" true (s.Metrics.sum_ms = 0.);
  check_bool "clamped p50 = first bucket" true
    (s.Metrics.p50_ms = Metrics.bucket_bounds.(0))

let quantile_readout () =
  let bounds = Metrics.bucket_bounds in
  let h = Metrics.histogram "test_obs_quantiles_ms" in
  (* 50 fast, 40 medium, 9 slow, 1 in the overflow bucket: the rank for
     p50 (50) is reached by the fast bucket, p90 (90) by the medium one,
     p99 (99) by the slow one. *)
  for _ = 1 to 50 do Metrics.observe h 0.5 done;
  for _ = 1 to 40 do Metrics.observe h 5. done;
  for _ = 1 to 9 do Metrics.observe h 50. done;
  Metrics.observe h (bounds.(Array.length bounds - 1) +. 1.);
  let s = Metrics.summary h in
  check_int "count" 100 s.Metrics.count;
  check_bool "p50" true (s.Metrics.p50_ms = bounds.(Metrics.bucket_index 0.5));
  check_bool "p90" true (s.Metrics.p90_ms = bounds.(Metrics.bucket_index 5.));
  check_bool "p99" true (s.Metrics.p99_ms = bounds.(Metrics.bucket_index 50.))

let overflow_quantile () =
  let h = Metrics.histogram "test_obs_overflow_ms" in
  Metrics.observe h 1e9;
  let s = Metrics.summary h in
  check_bool "overflow p50 is infinite" true (s.Metrics.p50_ms = infinity)

(* --- counters across domains --------------------------------------- *)

let counter_cross_domain () =
  let c = Metrics.counter "test_obs_merge_total" in
  let items = List.init 64 (fun i -> i) in
  let _ =
    Parallel.map ~domains:4
      (fun n ->
        for _ = 1 to n do Metrics.incr c done;
        n)
      items
  in
  let expected = List.fold_left ( + ) 0 items in
  check_int "cross-domain counter sum" expected (Metrics.value c)

(* --- tracing ------------------------------------------------------- *)

let disabled_is_transparent () =
  check_bool "disabled" false (Trace.enabled ());
  check_int "with_span passes through" 42 (Trace.with_span "x" (fun () -> 42));
  (* annotate outside a session is a no-op, not an error *)
  Trace.annotate "k" 1.

let span_parent_links () =
  let (), spans =
    Trace.run (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () ->
                Trace.annotate "k" 1.5;
                Trace.annotate "k" 2.5)))
  in
  let find name = List.find (fun s -> s.Trace.name = name) spans in
  let outer = find "outer" and inner = find "inner" in
  check_int "two spans" 2 (List.length spans);
  check_int "outer is top-level" (-1) outer.Trace.parent;
  check_int "inner under outer" outer.Trace.id inner.Trace.parent;
  check_bool "repeated annotation accumulates" true
    (inner.Trace.kv = [ ("k", 4.0) ]);
  check_bool "session closed" false (Trace.enabled ())

let spans_across_domains () =
  let results, spans =
    Trace.run (fun () ->
        Trace.with_span "fanout" (fun () ->
            Parallel.map ~domains:4
              (fun i -> Trace.with_span "worker" (fun () -> i * i))
              (List.init 8 (fun i -> i))))
  in
  check_bool "map result intact" true
    (results = List.map (fun i -> i * i) (List.init 8 (fun i -> i)));
  let fanout = List.find (fun s -> s.Trace.name = "fanout") spans in
  let workers = List.filter (fun s -> s.Trace.name = "worker") spans in
  check_int "every worker span collected" 8 (List.length workers);
  List.iter
    (fun w -> check_int "worker parented under fanout" fanout.Trace.id w.Trace.parent)
    workers;
  check_bool "top-level total positive" true (Trace.top_level_total spans >= 0.)

(* --- observer effect ----------------------------------------------- *)

(* Tracing a rewrite changes nothing about its answer: same rewritings,
   same completeness, and the same chosen plan cost downstream. *)
let traced_equals_untraced =
  let gen = Gen.pair gen_query (gen_views ~max_views:3 ~max_atoms:2) in
  make_qcheck ~name:"traced rewrite = untraced rewrite" gen print_instance
    (fun (query, views) ->
      let plain = Corecover.gmrs ~query ~views () in
      let traced, spans = Trace.run (fun () -> Corecover.gmrs ~query ~views ()) in
      List.equal Query.equal plain.Corecover.rewritings traced.Corecover.rewritings
      && plain.Corecover.completeness = traced.Corecover.completeness
      && List.exists (fun s -> s.Trace.name = "corecover") spans)

let traced_equals_untraced_plan =
  let gen =
    Gen.triple gen_query (gen_views ~max_views:3 ~max_atoms:2) gen_database
  in
  make_qcheck ~count:60 ~name:"traced plan cost = untraced plan cost" gen
    print_with_db
    (fun (query, views, db) ->
      let select r view_db =
        Select.best_m2 ~memo:(Subplan.create ()) ~filters:r.Corecover.filters
          view_db r.Corecover.rewritings
      in
      let run () =
        let r = Corecover.all_minimal ~query ~views () in
        let view_db = Materialize.views db views in
        select r view_db
      in
      let plain = run () in
      let traced, _ = Trace.run run in
      match (plain, traced) with
      | None, None -> true
      | Some a, Some b ->
          a.Select.m2_cost = b.Select.m2_cost
          && Query.equal a.Select.m2_rewriting b.Select.m2_rewriting
      | _ -> false)

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick bucket_boundaries;
    Alcotest.test_case "nan and negative samples clamp" `Quick clamped_samples;
    Alcotest.test_case "p50/p90/p99 readout" `Quick quantile_readout;
    Alcotest.test_case "overflow-bucket quantile" `Quick overflow_quantile;
    Alcotest.test_case "counter merges across domains" `Quick counter_cross_domain;
    Alcotest.test_case "disabled tracer is transparent" `Quick disabled_is_transparent;
    Alcotest.test_case "span parent links and annotations" `Quick span_parent_links;
    Alcotest.test_case "spans cross Parallel.map domains" `Quick spans_across_domains;
    traced_equals_untraced;
    traced_equals_untraced_plan;
  ]
