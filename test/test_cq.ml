(* Tests for the conjunctive-query kernel: terms, substitutions, atoms,
   queries, unification and the parser. *)

open Vplan
open Helpers

let test_term_compare () =
  check_bool "var equal" true (Term.equal (Term.Var "X") (Term.Var "X"));
  check_bool "var/const differ" false (Term.equal (Term.Var "x") (Term.Cst (Term.Str "x")));
  check_bool "int/str differ" false
    (Term.equal_const (Term.Int 1) (Term.Str "1"));
  check_bool "is_var" true (Term.is_var (Term.Var "X"));
  check_bool "is_const" true (Term.is_const (Term.Cst (Term.Int 3)));
  Alcotest.(check (option string)) "var_name" (Some "X") (Term.var_name (Term.Var "X"));
  Alcotest.(check string) "to_string" "X" (Term.to_string (Term.Var "X"));
  Alcotest.(check string) "const to_string" "42" (Term.to_string (Term.Cst (Term.Int 42)))

let test_term_ordering_total () =
  let terms =
    [ Term.Var "A"; Term.Var "B"; Term.Cst (Term.Int 0); Term.Cst (Term.Str "a") ]
  in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let c12 = Term.compare t1 t2 and c21 = Term.compare t2 t1 in
          check_bool "antisymmetric" true (Int.compare c12 (-c21) = 0 || (c12 = 0 && c21 = 0)))
        terms)
    terms

let test_names_fresh () =
  let used = Names.sset_of_list [ "X"; "X_1" ] in
  Alcotest.(check string) "avoids used" "X_2" (Names.fresh ~used "X");
  Alcotest.(check string) "free name kept" "Y" (Names.fresh ~used "Y");
  let names, _ = Names.fresh_list ~used [ "X"; "X"; "Y" ] in
  Alcotest.(check (list string)) "mutually distinct" [ "X_2"; "X_3"; "Y" ] names

let test_subst_basic () =
  let s = Subst.of_list [ ("X", Term.Var "Y"); ("Z", Term.Cst (Term.Int 1)) ] in
  Alcotest.check term_testable "apply bound" (Term.Var "Y")
    (Subst.apply_term s (Term.Var "X"));
  Alcotest.check term_testable "apply unbound" (Term.Var "W")
    (Subst.apply_term s (Term.Var "W"));
  Alcotest.check term_testable "apply const" (Term.Cst (Term.Str "c"))
    (Subst.apply_term s (Term.Cst (Term.Str "c")));
  check_bool "mem" true (Subst.mem "X" s);
  check_int "cardinal" 2 (Subst.cardinal s)

let test_subst_extend_conflict () =
  let s = Subst.singleton "X" (Term.Var "Y") in
  check_bool "consistent rebind" true (Subst.extend "X" (Term.Var "Y") s <> None);
  check_bool "conflicting rebind" true (Subst.extend "X" (Term.Var "Z") s = None);
  Alcotest.check_raises "bind raises on conflict"
    (Invalid_argument "Subst.bind: conflicting binding for X") (fun () ->
      ignore (Subst.bind "X" (Term.Var "Z") s))

let test_subst_unify_term () =
  let s = Subst.empty in
  (match Subst.unify_term s (Term.Var "X") (Term.Cst (Term.Int 5)) with
  | Some s' ->
      Alcotest.check term_testable "bound to target" (Term.Cst (Term.Int 5))
        (Subst.apply_term s' (Term.Var "X"))
  | None -> Alcotest.fail "expected unification");
  check_bool "const mismatch" true
    (Subst.unify_term s (Term.Cst (Term.Int 1)) (Term.Cst (Term.Int 2)) = None);
  (* directional: pattern constant never captures a target variable *)
  check_bool "const vs var fails" true
    (Subst.unify_term s (Term.Cst (Term.Int 1)) (Term.Var "X") = None)

let test_subst_injective () =
  let s = Subst.of_list [ ("X", Term.Var "A"); ("Y", Term.Var "B") ] in
  check_bool "injective" true (Subst.is_injective_on s [ "X"; "Y" ]);
  let s' = Subst.of_list [ ("X", Term.Var "A"); ("Y", Term.Var "A") ] in
  check_bool "not injective" false (Subst.is_injective_on s' [ "X"; "Y" ])

let test_atom_basics () =
  let a = Atom.make "p" [ Term.Var "X"; Term.Cst (Term.Str "c"); Term.Var "X" ] in
  check_int "arity" 3 (Atom.arity a);
  Alcotest.(check (list string)) "vars dedup ordered" [ "X" ] (Atom.vars a);
  check_int "constants" 1 (List.length (Atom.constants a));
  let b = Atom.apply (Subst.singleton "X" (Term.Var "Y")) a in
  Alcotest.(check (list string)) "renamed" [ "Y" ] (Atom.vars b)

let test_atom_unify () =
  let pat = Atom.make "p" [ Term.Var "X"; Term.Var "X" ] in
  let tgt_ok = Atom.make "p" [ Term.Var "A"; Term.Var "A" ] in
  let tgt_bad = Atom.make "p" [ Term.Var "A"; Term.Var "B" ] in
  check_bool "repeated var ok" true (Atom.unify Subst.empty pat tgt_ok <> None);
  check_bool "repeated var mismatch" true (Atom.unify Subst.empty pat tgt_bad = None);
  let other_pred = Atom.make "q" [ Term.Var "A"; Term.Var "A" ] in
  check_bool "pred mismatch" true (Atom.unify Subst.empty pat other_pred = None)

let test_query_safety () =
  let head = Atom.make "q" [ Term.Var "X" ] in
  let body = [ Atom.make "p" [ Term.Var "Y" ] ] in
  (match Query.make head body with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsafe query accepted");
  match Query.make head [ Atom.make "p" [ Term.Var "X" ] ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_query_vars () =
  let query = q "q(X, Y) :- p(X, Z), r(Z, Y, c)." in
  Alcotest.(check (list string)) "head vars" [ "X"; "Y" ] (Query.head_vars query);
  Alcotest.(check (list string)) "all vars" [ "X"; "Y"; "Z" ] (Query.vars query);
  Alcotest.(check (list string)) "existential" [ "Z" ] (Query.existential_vars query);
  check_bool "distinguished" true (Query.is_distinguished query "X");
  check_bool "not distinguished" false (Query.is_distinguished query "Z");
  Alcotest.(check (list string)) "body preds" [ "p"; "r" ] (Query.body_preds query)

let test_query_rename_apart () =
  let query = q "q(X) :- p(X, Y)." in
  let avoid = Names.sset_of_list [ "X"; "Y"; "Z" ] in
  let renamed, _ = Query.rename_apart ~avoid query in
  List.iter
    (fun x -> check_bool ("fresh " ^ x) false (Names.Sset.mem x avoid))
    (Query.vars renamed);
  check_bool "same shape" true
    (Vplan.Containment.isomorphic query renamed)

let test_query_canonical () =
  let q1 = q "q(X) :- p(X, Y), p(Y, X)." in
  let q2 = q "q(A) :- p(A, B), p(B, A)." in
  check_query "canonical equal up to renaming" (Query.canonical q1) (Query.canonical q2)

let test_query_dedup () =
  let query = q "q(X) :- p(X, Y), p(X, Y), p(Y, X)." in
  check_int "dedup" 2 (List.length (Query.dedup_body query).Query.body)

let test_unify_mgu () =
  (* two-sided: repeated head variable identifies the other side's vars *)
  match Unify.mgu_args Subst.empty
          [ Term.Var "A"; Term.Var "A" ]
          [ Term.Var "X"; Term.Var "Y" ]
  with
  | None -> Alcotest.fail "expected mgu"
  | Some s ->
      let rx = Unify.resolve s (Term.Var "X") and ry = Unify.resolve s (Term.Var "Y") in
      check_bool "X and Y identified" true (Term.equal rx ry)

let test_unify_clash () =
  check_bool "constant clash" true
    (Unify.mgu_term Subst.empty (Term.Cst (Term.Int 1)) (Term.Cst (Term.Int 2)) = None);
  (* via a chain: A = X, A = 1, X = 2 must clash *)
  let s = Subst.empty in
  let s = Option.get (Unify.mgu_term s (Term.Var "A") (Term.Var "X")) in
  let s = Option.get (Unify.mgu_term s (Term.Var "A") (Term.Cst (Term.Int 1))) in
  check_bool "transitive clash" true
    (Unify.mgu_term s (Term.Var "X") (Term.Cst (Term.Int 2)) = None)

let test_parser_roundtrip () =
  let original = "q(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)" in
  let parsed = q (original ^ ".") in
  Alcotest.(check string) "roundtrip" original (Query.to_string parsed)

let test_parser_errors () =
  let expect_error_at s (line, col) =
    match Parser.parse_rule s with
    | Error (e : Vplan_error.parse_error) ->
        check_int ("line of " ^ s) line e.line;
        check_int ("col of " ^ s) col e.col
    | Ok _ -> Alcotest.fail ("accepted bad input: " ^ s)
  in
  (* missing dot: reported where the input ends, after the last token *)
  expect_error_at "q(X) :- p(X)" (1, 13);
  expect_error_at "q(X) - p(X)." (1, 6);   (* bad turnstile *)
  expect_error_at "q(X) :- p(X,)." (1, 13); (* dangling comma *)
  expect_error_at "q(X) :- p(Y)." (1, 1);  (* unsafe: blames the rule start *)
  expect_error_at "Q(X) :- p(X)." (1, 1);  (* upper-case predicate *)
  (* positions track lines and columns across multi-line input *)
  expect_error_at "q(X) :-\n  p(X),\n  r(X,)." (3, 7)

let test_parser_integers_and_comments () =
  let program = "% leading comment\nq(X) :- p(X, 42), p(X, -7). # trailing\n" in
  match Parser.parse_program program with
  | Error e -> Alcotest.fail (Vplan_error.parse_to_string e)
  | Ok [ query ] ->
      check_int "constants" 2 (List.length (Query.constants query))
  | Ok _ -> Alcotest.fail "expected one rule"

let test_parse_facts () =
  match Parser.parse_facts "car(honda, anderson). loc(anderson, 3)." with
  | Error e -> Alcotest.fail (Vplan_error.parse_to_string e)
  | Ok facts ->
      check_int "two facts" 2 (List.length facts);
      (match Parser.parse_facts "car(X, anderson)." with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "non-ground fact accepted")

let suite =
  [
    ("term compare/equal", `Quick, test_term_compare);
    ("term ordering total", `Quick, test_term_ordering_total);
    ("fresh names", `Quick, test_names_fresh);
    ("subst basics", `Quick, test_subst_basic);
    ("subst extend conflict", `Quick, test_subst_extend_conflict);
    ("subst unify_term", `Quick, test_subst_unify_term);
    ("subst injectivity", `Quick, test_subst_injective);
    ("atom basics", `Quick, test_atom_basics);
    ("atom unify", `Quick, test_atom_unify);
    ("query safety", `Quick, test_query_safety);
    ("query vars", `Quick, test_query_vars);
    ("query rename_apart", `Quick, test_query_rename_apart);
    ("query canonical", `Quick, test_query_canonical);
    ("query dedup_body", `Quick, test_query_dedup);
    ("two-sided mgu", `Quick, test_unify_mgu);
    ("mgu constant clash", `Quick, test_unify_clash);
    ("parser roundtrip", `Quick, test_parser_roundtrip);
    ("parser errors", `Quick, test_parser_errors);
    ("parser ints/comments", `Quick, test_parser_integers_and_comments);
    ("parse facts", `Quick, test_parse_facts);
  ]
