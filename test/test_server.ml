(* The concurrent serving tier: the bounded MPMC queue and worker pool
   primitives, the shared line-protocol front end, and the TCP server
   itself — driven over real sockets with the blocking client and the
   load generator, including a ≥32-client stress run with catalog swaps
   happening under live traffic. *)

open Vplan
open Helpers

(* ------------------------------------------------------------------ *)
(* Bounded_queue                                                       *)

let queue_basics () =
  let q = Bounded_queue.create ~capacity:2 in
  check_int "capacity" 2 (Bounded_queue.capacity q);
  check_bool "push 1" true (Bounded_queue.try_push q 1);
  check_bool "push 2" true (Bounded_queue.try_push q 2);
  check_bool "full" false (Bounded_queue.try_push q 3);
  check_int "length" 2 (Bounded_queue.length q);
  (match Bounded_queue.try_pop q with
  | Some v -> check_int "fifo" 1 v
  | None -> Alcotest.fail "expected a value");
  check_bool "room again" true (Bounded_queue.try_push q 3);
  (match (Bounded_queue.try_pop q, Bounded_queue.try_pop q) with
  | Some a, Some b ->
      check_int "fifo 2" 2 a;
      check_int "fifo 3" 3 b
  | _ -> Alcotest.fail "expected two values");
  check_bool "empty" true (Bounded_queue.try_pop q = None);
  (match Bounded_queue.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected")

let queue_close () =
  let q = Bounded_queue.create ~capacity:4 in
  check_bool "push" true (Bounded_queue.push q 1);
  Bounded_queue.close q;
  check_bool "closed" true (Bounded_queue.is_closed q);
  check_bool "no push after close" false (Bounded_queue.try_push q 2);
  check_bool "blocking push after close" false (Bounded_queue.push q 2);
  check_bool "drain" true (Bounded_queue.pop q = Some 1);
  check_bool "drained" true (Bounded_queue.pop q = None)

(* Producers and consumers on separate domains: every pushed item is
   popped exactly once, blocking push/pop wake correctly, and close
   releases the consumers. *)
let queue_cross_domain () =
  let q = Bounded_queue.create ~capacity:8 in
  let n = 1000 in
  let consumers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let sum = ref 0 in
            let count = ref 0 in
            let rec loop () =
              match Bounded_queue.pop q with
              | Some v ->
                  sum := !sum + v;
                  incr count;
                  loop ()
              | None -> (!sum, !count)
            in
            loop ()))
  in
  for i = 1 to n do
    ignore (Bounded_queue.push q i)
  done;
  Bounded_queue.close q;
  let totals = Array.map Domain.join consumers in
  let sum = Array.fold_left (fun a (s, _) -> a + s) 0 totals in
  let count = Array.fold_left (fun a (_, c) -> a + c) 0 totals in
  check_int "every item popped once" (n * (n + 1) / 2) sum;
  check_int "item count" n count

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let pool_runs_all () =
  let hits = Array.make 4 false in
  let p = Pool.spawn ~workers:4 (fun i -> hits.(i) <- true) in
  check_int "size" 4 (Pool.size p);
  Pool.join p;
  Array.iteri (fun i h -> check_bool (Printf.sprintf "worker %d ran" i) true h) hits

let pool_propagates_failure () =
  let p =
    Pool.spawn ~workers:3 (fun i -> if i = 1 then failwith "worker 1 boom")
  in
  match Pool.join p with
  | () -> Alcotest.fail "join must re-raise the worker failure"
  | exception Failure msg -> check_bool "message" true (msg = "worker 1 boom")

(* ------------------------------------------------------------------ *)
(* Protocol (in-process, no sockets)                                   *)

let write_views ~tag views =
  let file = Filename.temp_file ("vplan_test_" ^ tag) ".dl" in
  let oc = open_out file in
  List.iter (fun v -> Printf.fprintf oc "%s.\n" (Format.asprintf "%a" Query.pp v)) views;
  close_out oc;
  file

let load_catalog shared file =
  let boot = Protocol.new_session shared in
  let r = Protocol.handle_lines shared boot [ "catalog load " ^ file ] in
  if String.length r.Protocol.text < 2 || String.sub r.Protocol.text 0 2 <> "ok"
  then Alcotest.fail ("catalog load failed: " ^ r.Protocol.text)

let first_line (r : Protocol.reply) =
  match String.index_opt r.text '\n' with
  | Some i -> String.sub r.text 0 i
  | None -> r.text

let protocol_sessions_isolated () =
  let shared = Protocol.create_shared ~domains:1 () in
  let file = write_views ~tag:"proto" Car_loc_part.views in
  load_catalog shared file;
  let rewrite = "rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)." in
  let a = Protocol.new_session shared in
  let b = Protocol.new_session shared in
  let r = Protocol.handle_lines shared a [ "set max-steps 1" ] in
  check_bool "set ok" true (first_line r = "ok max-steps=1");
  let ra = Protocol.handle_lines shared a [ rewrite ] in
  check_bool "a is budgeted (bypass)" true
    (first_line ra = "ok 0 bypass trace=1");
  (* the budget was session a's alone: b gets the full answer *)
  let rb = Protocol.handle_lines shared b [ rewrite ] in
  check_bool "b unaffected" true (first_line rb = "ok 1 miss trace=2");
  Sys.remove file

let protocol_extra_lines () =
  check_int "batch 3" 3 (Protocol.extra_lines "batch 3");
  check_int "batch  12" 12 (Protocol.extra_lines "batch  12");
  check_int "rewrite" 0 (Protocol.extra_lines "rewrite q(X) :- a(X).");
  check_int "malformed batch" 0 (Protocol.extra_lines "batch many")

(* ------------------------------------------------------------------ *)
(* Net_server fixtures                                                 *)

(* A protocol-backed TCP server on an ephemeral port, torn down (with
   drain) even if the test body fails. *)
let with_protocol_server ?(workers = 2) ?(queue = 64) ?max_requests ~views f =
  let shared = Protocol.create_shared ~domains:1 () in
  let file = write_views ~tag:"srv" views in
  load_catalog shared file;
  let handler () =
    let sess = Protocol.new_session shared in
    fun lines ->
      let reply = Protocol.handle_lines shared sess lines in
      { Net_server.body = reply.Protocol.text; close = reply.Protocol.close }
  in
  let srv =
    Net_server.create ~workers ~queue_capacity:queue ?max_requests
      ~extra_lines:Protocol.extra_lines ~handler ()
  in
  let d = Domain.spawn (fun () -> Net_server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Net_server.stop srv;
      Domain.join d;
      Sys.remove file)
    (fun () -> f (Net_server.port srv) shared)

let rewrite_line = "rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)."
let v4_answer = "q1(S,C) :- v4(M,anderson,C,S)"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let server_roundtrip () =
  with_protocol_server ~views:Car_loc_part.views (fun port _shared ->
      let c = Loadgen.Client.connect ~port () in
      (match Loadgen.Client.request c rewrite_line with
      | [ l1; l2 ] ->
          check_bool "miss" true (starts_with "ok 1 miss" l1);
          check_bool "answer" true (l2 = v4_answer)
      | other ->
          Alcotest.failf "unexpected response: %s" (String.concat " | " other));
      (* an isomorphic resubmission from another connection is a hit *)
      let c2 = Loadgen.Client.connect ~port () in
      (match
         Loadgen.Client.request c2
           "rewrite q1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson)."
       with
      | l1 :: _ -> check_bool "hit" true (starts_with "ok 1 hit" l1)
      | [] -> Alcotest.fail "empty response");
      (* batch requests are framed across multiple lines *)
      (match
         Loadgen.Client.request c
           "batch 2\nq1(A, B) :- car(N, anderson), loc(anderson, B), part(A, N, B).\nq1(P, K) :- part(P, N, K), loc(anderson, K), car(N, anderson)."
       with
      | l :: rest ->
          check_bool "batch first hit" true (starts_with "ok 1 hit" l);
          check_int "batch yields two answers" 3 (List.length rest)
      | [] -> Alcotest.fail "empty batch response");
      (* quit closes the connection after an empty reply *)
      check_bool "quit reply empty" true (Loadgen.Client.request c "quit" = []);
      Loadgen.Client.close c;
      Loadgen.Client.close c2)

(* A client vanishing mid-conversation must not take the server (or any
   other client) with it. *)
let server_survives_disconnect () =
  with_protocol_server ~views:Car_loc_part.views (fun port _shared ->
      for _ = 1 to 5 do
        let c = Loadgen.Client.connect ~port () in
        Loadgen.Client.send c rewrite_line;
        (* close without reading the response *)
        Loadgen.Client.close c
      done;
      let c = Loadgen.Client.connect ~port () in
      (match Loadgen.Client.request c rewrite_line with
      | l :: _ -> check_bool "still serving" true (starts_with "ok 1" l)
      | [] -> Alcotest.fail "empty response");
      Loadgen.Client.close c)

(* Per-connection request budget: the budget is the connection's, not
   the process's — a fresh connection starts fresh. *)
let server_request_budget () =
  with_protocol_server ~max_requests:3 ~views:Car_loc_part.views
    (fun port _shared ->
      let a = Loadgen.Client.connect ~port () in
      for i = 1 to 3 do
        match Loadgen.Client.request a rewrite_line with
        | l :: _ ->
            check_bool (Printf.sprintf "a request %d ok" i) true
              (starts_with "ok 1" l)
        | [] -> Alcotest.fail "empty response"
      done;
      (match Loadgen.Client.request a rewrite_line with
      | [ l ] -> check_bool "budget error" true (l = "err request budget exhausted")
      | other ->
          Alcotest.failf "unexpected budget response: %s"
            (String.concat " | " other));
      (* the connection is then closed by the server *)
      (match Loadgen.Client.request a rewrite_line with
      | exception (Failure _ | Unix.Unix_error (_, _, _)) -> ()
      | _ -> Alcotest.fail "connection should be closed after budget");
      Loadgen.Client.close a;
      let b = Loadgen.Client.connect ~port () in
      (match Loadgen.Client.request b rewrite_line with
      | l :: _ -> check_bool "b starts fresh" true (starts_with "ok 1" l)
      | [] -> Alcotest.fail "empty response");
      Loadgen.Client.close b)

(* Admission control: one worker occupied, a queue of one full — the
   next requests must shed with "err busy" immediately rather than
   queue behind the stall. *)
let server_sheds_when_full () =
  let gate = Atomic.make false in
  let handler () =
   fun lines ->
    (match lines with
    | [ "slow" ] ->
        let rec wait () = if not (Atomic.get gate) then (Unix.sleepf 0.005; wait ()) in
        wait ()
    | _ -> ());
    { Net_server.body = "ok done\n"; close = false }
  in
  let srv = Net_server.create ~workers:1 ~queue_capacity:1 ~handler () in
  let d = Domain.spawn (fun () -> Net_server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Net_server.stop srv;
      Domain.join d)
    (fun () ->
      let port = Net_server.port srv in
      let shed0 = Metrics.value (Metrics.counter "vplan_requests_shed_total") in
      let c1 = Loadgen.Client.connect ~port () in
      Loadgen.Client.send c1 "slow";
      Unix.sleepf 0.15;
      (* worker is now parked in the handler; fill the queue *)
      let c2 = Loadgen.Client.connect ~port () in
      Loadgen.Client.send c2 "slow";
      Unix.sleepf 0.15;
      (* queue full: these must be shed, and fast *)
      let shed =
        List.init 3 (fun _ ->
            let c = Loadgen.Client.connect ~port () in
            let r = Loadgen.Client.request c "fast" in
            Loadgen.Client.close c;
            r)
      in
      List.iteri
        (fun i r ->
          check_bool (Printf.sprintf "shed %d" i) true (r = [ "err busy" ]))
        shed;
      let shed1 = Metrics.value (Metrics.counter "vplan_requests_shed_total") in
      check_bool "shed counter moved" true (shed1 - shed0 >= 3);
      (* open the gate: the parked requests complete normally *)
      Atomic.set gate true;
      check_bool "c1 served" true
        (Loadgen.Client.drain c1 1 = [ [ "ok done" ] ]);
      check_bool "c2 served" true
        (Loadgen.Client.drain c2 1 = [ [ "ok done" ] ]);
      Loadgen.Client.close c1;
      Loadgen.Client.close c2)

(* ------------------------------------------------------------------ *)
(* Stress: ≥32 concurrent clients, catalog swaps under live traffic    *)

(* 32 loadgen connections hammer rewrites while a control connection
   swaps the catalog back and forth between one with v4 (best answer
   uses v4 alone) and one without (best answer joins v1 and v2).  Every
   response must be one of the two complete answers — a torn result
   (half a catalog, a cache entry from the wrong generation) would show
   up as any other body — and the generation-resets counter must count
   exactly the swaps. *)
let server_stress_swap () =
  with_protocol_server ~workers:2 ~queue:256 ~views:Car_loc_part.views
    (fun port _shared ->
      let with_v4 = write_views ~tag:"swap_a" Car_loc_part.views in
      let without_v4 =
        write_views ~tag:"swap_b"
          Car_loc_part.[ v1; v2; v3; v5 ]
      in
      let swaps = 6 in
      let control =
        Domain.spawn (fun () ->
            let c = Loadgen.Client.connect ~port () in
            let ok = ref 0 in
            for i = 1 to swaps do
              let file = if i mod 2 = 0 then with_v4 else without_v4 in
              (match Loadgen.Client.request c ("catalog load " ^ file) with
              | l :: _ when starts_with "ok catalog" l -> incr ok
              | _ -> ());
              (match Loadgen.Client.request c "stats" with
              | l :: _ when starts_with "generation=" l -> ()
              | _ -> ());
              Unix.sleepf 0.05
            done;
            Loadgen.Client.close c;
            !ok)
      in
      (* collectors: 4 checker connections record full response bodies *)
      let checker =
        Domain.spawn (fun () ->
            let cs = List.init 4 (fun _ -> Loadgen.Client.connect ~port ()) in
            let bad = ref [] in
            for _ = 1 to 12 do
              List.iter
                (fun c ->
                  match Loadgen.Client.request c rewrite_line with
                  | [ l1; l2 ]
                    when starts_with "ok 1" l1
                         && (l2 = v4_answer
                            || l2 = "q1(S,C) :- v1(M,anderson,C), v2(S,M,C)") ->
                      ()
                  | other -> bad := String.concat " | " other :: !bad)
                cs
            done;
            List.iter Loadgen.Client.close cs;
            !bad)
      in
      let res =
        Loadgen.run ~port ~clients:32 ~duration_ms:600.0
          ~request:(fun ~client:_ ~seq:_ -> rewrite_line)
          ()
      in
      let control_ok = Domain.join control in
      let bad = Domain.join checker in
      check_int "all swaps applied" swaps control_ok;
      check_bool "no torn results" true (bad = []);
      check_int "loadgen saw no protocol errors" 0 res.Loadgen.errors;
      check_int "no loadgen connection died" 0 res.Loadgen.closed_early;
      check_bool "traffic actually flowed" true (res.Loadgen.ok > 100);
      check_bool "every request answered" true
        (res.Loadgen.completed = res.Loadgen.sent);
      (* the service counted exactly the control connection's swaps *)
      (match Protocol.service _shared with
      | None -> Alcotest.fail "service vanished"
      | Some s ->
          check_int "generation resets" swaps (Service.stats s).Service.generation_resets);
      Sys.remove with_v4;
      Sys.remove without_v4)

let suite =
  [
    Alcotest.test_case "bounded queue: fifo, capacity, try ops" `Quick queue_basics;
    Alcotest.test_case "bounded queue: close semantics" `Quick queue_close;
    Alcotest.test_case "bounded queue: cross-domain producers/consumers" `Quick
      queue_cross_domain;
    Alcotest.test_case "pool: runs every worker" `Quick pool_runs_all;
    Alcotest.test_case "pool: join re-raises worker failure" `Quick
      pool_propagates_failure;
    Alcotest.test_case "protocol: per-session budgets are isolated" `Quick
      protocol_sessions_isolated;
    Alcotest.test_case "protocol: multi-line framing hints" `Quick
      protocol_extra_lines;
    Alcotest.test_case "tcp: roundtrip, hit attribution, batch, quit" `Quick
      server_roundtrip;
    Alcotest.test_case "tcp: client disconnect is contained" `Quick
      server_survives_disconnect;
    Alcotest.test_case "tcp: per-connection request budget" `Quick
      server_request_budget;
    Alcotest.test_case "tcp: admission control sheds when saturated" `Quick
      server_sheds_when_full;
    Alcotest.test_case "tcp: 32-client stress with catalog swaps" `Slow
      server_stress_swap;
  ]
