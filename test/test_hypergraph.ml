(* GYO reduction and join trees (Vplan_hypergraph): classification of
   the known acyclic/cyclic families, join-tree invariants (including
   running intersection), and the fast paths built on top — Yannakakis
   execution and join-tree containment — against their general
   oracles. *)

open Vplan
open Qcheck_gens
module Gen = QCheck2.Gen

let parse = Parser.parse_rule_exn

let seed =
  match int_of_string_opt (try Sys.getenv "QCHECK_SEED" with Not_found -> "") with
  | Some s -> s
  | None -> 0x5eed

let make_test ?(count = 250) ~name gen print prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name ~print gen prop)

let var name i = Term.Var (name ^ string_of_int i)

let path_body k =
  List.init k (fun i -> Atom.make "r" [ var "X" i; var "X" (i + 1) ])

let star_body k =
  List.init k (fun i -> Atom.make "r" [ Term.Var "C"; var "X" (i + 1) ])

let cycle_body k =
  List.init k (fun i -> Atom.make "r" [ var "X" i; var "X" ((i + 1) mod k) ])

let clique_body k =
  List.concat
    (List.init k (fun i ->
         List.filteri (fun j _ -> j > i) (List.init k Fun.id)
         |> List.map (fun j -> Atom.make "r" [ var "X" i; var "X" j ])))

(* -- classification of the known families --------------------------- *)

let test_known_families () =
  Alcotest.(check bool) "empty body acyclic" true (Hypergraph.is_acyclic []);
  Alcotest.(check bool) "single atom acyclic" true
    (Hypergraph.is_acyclic [ Atom.make "r" [ var "X" 0; var "X" 1 ] ]);
  let carloc =
    (parse "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).")
      .Query.body
  in
  Alcotest.(check bool) "car-loc-part acyclic" true (Hypergraph.is_acyclic carloc);
  let triangle =
    [
      Atom.make "r" [ Term.Var "X"; Term.Var "Y" ];
      Atom.make "s" [ Term.Var "Y"; Term.Var "Z" ];
      Atom.make "t" [ Term.Var "Z"; Term.Var "X" ];
    ]
  in
  Alcotest.(check bool) "triangle cyclic" false (Hypergraph.is_acyclic triangle);
  (* a covering hyperedge turns the triangle acyclic (α-acyclicity is
     not monotone under adding atoms) *)
  let covered =
    Atom.make "big" [ Term.Var "X"; Term.Var "Y"; Term.Var "Z" ] :: triangle
  in
  Alcotest.(check bool) "covered triangle acyclic" true
    (Hypergraph.is_acyclic covered);
  (* duplicate and constant-only atoms are ears *)
  let dup = Atom.make "r" [ var "X" 0; var "X" 1 ] in
  Alcotest.(check bool) "duplicates acyclic" true (Hypergraph.is_acyclic [ dup; dup ]);
  Alcotest.(check bool) "constant-only atom acyclic" true
    (Hypergraph.is_acyclic
       [ Atom.make "r" [ Term.Cst (Term.Int 1) ]; dup ])

(* -- join-tree invariants ------------------------------------------- *)

let tree_of body =
  match Hypergraph.classify body with
  | Hypergraph.Acyclic t -> t
  | Hypergraph.Cyclic -> Alcotest.fail "expected acyclic body"

let test_tree_invariants () =
  let body = path_body 5 in
  let t = tree_of body in
  let n = List.length body in
  let order = Hypergraph.join_order t in
  Alcotest.(check (list int)) "join_order is a permutation"
    (List.init n Fun.id) (List.sort compare order);
  Alcotest.(check int) "root has no parent" (-1) t.Hypergraph.parent.(t.Hypergraph.root);
  Alcotest.(check int) "removal lists all non-roots" (n - 1)
    (List.length t.Hypergraph.removal);
  (* every parent precedes its children in join_order *)
  let pos = Array.make n 0 in
  List.iteri (fun i node -> pos.(node) <- i) order;
  List.iter
    (fun c ->
      let p = t.Hypergraph.parent.(c) in
      Alcotest.(check bool) "parent before child" true (pos.(p) < pos.(c)))
    t.Hypergraph.removal;
  (* tree_order permutes the body; cyclic bodies have none *)
  (match Hypergraph.tree_order body with
  | None -> Alcotest.fail "path has a tree order"
  | Some atoms ->
      Alcotest.(check int) "tree_order same length" n (List.length atoms);
      List.iter
        (fun a ->
          Alcotest.(check bool) "tree_order atom from body" true
            (List.exists (Atom.equal a) body))
        atoms);
  Alcotest.(check bool) "cyclic body has no tree order" true
    (Hypergraph.tree_order (cycle_body 4) = None)

let test_pp_tree () =
  let t = tree_of (path_body 3) in
  let s = Hypergraph.tree_to_string t in
  (* deterministic rendering: one line per atom, two-space indents *)
  Alcotest.(check int) "one line per atom" 3
    (List.length (String.split_on_char '\n' s))

(* -- QCheck: GYO agrees with the known families --------------------- *)

let gyo_known_families =
  let gen = Gen.(pair (int_range 3 8) (int_range 3 6)) in
  make_test ~count:60 ~name:"GYO: paths/stars acyclic, cycles/cliques cyclic" gen
    (fun (k, c) -> Printf.sprintf "k=%d c=%d" k c)
    (fun (k, c) ->
      Hypergraph.is_acyclic (path_body k)
      && Hypergraph.is_acyclic (star_body k)
      && (not (Hypergraph.is_acyclic (cycle_body c)))
      && not (Hypergraph.is_acyclic (clique_body c)))

(* Running intersection: for every variable, the tree nodes containing
   it form a connected subtree — exactly one of them is the root of
   that sub-forest (its parent misses the variable or it is the global
   root). *)
let running_intersection =
  make_test ~name:"GYO join tree has the running-intersection property"
    (gen_body ~max_atoms:4)
    (fun body -> String.concat ", " (List.map Atom.to_string body))
    (fun body ->
      match Hypergraph.classify body with
      | Hypergraph.Cyclic -> true
      | Hypergraph.Acyclic t ->
          let atoms = t.Hypergraph.atoms in
          let n = Array.length atoms in
          if n = 0 then true
          else begin
            let vars =
              Array.to_list atoms |> List.concat_map Atom.vars
              |> List.sort_uniq String.compare
            in
            List.for_all
              (fun x ->
                let holds i = List.mem x (Atom.vars atoms.(i)) in
                let roots = ref 0 in
                for i = 0 to n - 1 do
                  if holds i then begin
                    let p = t.Hypergraph.parent.(i) in
                    if p < 0 || not (holds p) then incr roots
                  end
                done;
                !roots = 1)
              vars
          end)

(* -- QCheck: Yannakakis = pairwise = plain hash join = Eval --------- *)

let yannakakis_oracle =
  let gen = Gen.pair gen_query gen_database in
  make_test ~count:150 ~name:"Exec: all semijoin/acyclic combos match Eval" gen
    (fun (q, db) -> print_query q ^ " db " ^ string_of_int (Database.total_size db))
    (fun (q, db) ->
      let expected = Eval.answers db q in
      let t = Interned.of_database db in
      List.for_all
        (fun (semijoin, acyclic) ->
          Relation.equal expected (Exec.answers ?semijoin ?acyclic t q))
        [
          (None, None);
          (None, Some true);
          (None, Some false);
          (Some true, Some true);
          (Some true, Some false);
          (Some false, Some true);
          (Some false, Some false);
        ])

(* -- QCheck: join-tree containment = backtracking containment ------- *)

let containment_fastpath_agrees =
  let gen = Gen.pair gen_query gen_query in
  make_test ~name:"containment: join-tree DP = backtracking" gen
    (fun (q1, q2) -> print_query q1 ^ " vs " ^ print_query q2)
    (fun (q1, q2) ->
      Containment.is_contained ~fastpath:true q1 q2
      = Containment.is_contained ~fastpath:false q1 q2)

(* The DP's witness is a genuine containment mapping even when it
   differs from the backtracking one. *)
let fastpath_witness_valid =
  let gen = Gen.pair gen_query gen_query in
  make_test ~name:"containment: DP witness maps atoms into the target" gen
    (fun (q1, q2) -> print_query q1 ^ " vs " ^ print_query q2)
    (fun (q1, q2) ->
      match Homomorphism.find ~fastpath:true q1.Query.body q2.Query.body with
      | None -> true
      | Some s ->
          List.for_all
            (fun a ->
              let image = Atom.apply s a in
              List.exists (Atom.equal image) q2.Query.body)
            q1.Query.body)

let suite =
  [
    Alcotest.test_case "known families" `Quick test_known_families;
    Alcotest.test_case "join-tree invariants" `Quick test_tree_invariants;
    Alcotest.test_case "pp_tree shape" `Quick test_pp_tree;
    gyo_known_families;
    running_intersection;
    yannakakis_oracle;
    containment_fastpath_agrees;
    fastpath_witness_valid;
  ]
