(* Edge cases pushed through the whole pipeline: odd heads, constants in
   view heads, self-joins, duplicate subgoals, Boolean queries.  Each case
   runs CoreCover with verification and checks the closed-world guarantee
   on a concrete instance. *)

open Vplan
open Helpers

let closed_world_check ~query ~views ~base =
  let r = Corecover.all_minimal ~verify:true ~query ~views () in
  let truth = Eval.answers base query in
  let view_db = Materialize.views base views in
  List.iter
    (fun p ->
      Alcotest.check relation_testable
        ("rewriting " ^ Query.to_string p)
        truth
        (Materialize.answers_via_rewriting view_db p))
    r.Corecover.rewritings;
  r

let test_boolean_query () =
  (* 0-ary head: "is there any part sold where anderson is located?" *)
  let query = q "yes() :- loc(anderson, C), part(S, M, C)." in
  let views =
    qs [ "v1(C) :- loc(anderson, C)."; "v2(S, M, C) :- part(S, M, C)." ]
  in
  let base = Car_loc_part.base in
  let r = closed_world_check ~query ~views ~base in
  check_bool "rewriting found" true (r.rewritings <> [])

let test_constant_in_view_head () =
  let query = q "q(X) :- p(X, c)." in
  let views = qs [ "v(A, c) :- p(A, c)." ] in
  let base =
    Database.of_facts
      [ ("p", [ Term.Int 1; Term.Str "c" ]); ("p", [ Term.Int 2; Term.Str "d" ]) ]
  in
  let r = closed_world_check ~query ~views ~base in
  check_bool "constant head view usable" true (r.rewritings <> [])

let test_repeated_head_var_view () =
  (* Section 3.2's v(A,B) :- e(A,A), e(A,B) exercises repeated variables
     in bodies; here the head itself repeats a variable *)
  let query = q "q(X) :- e(X, X)." in
  let views = qs [ "v(A, A) :- e(A, A)." ] in
  let base = Database.of_facts [ ("e", [ Term.Int 1; Term.Int 1 ]); ("e", [ Term.Int 1; Term.Int 2 ]) ] in
  let r = closed_world_check ~query ~views ~base in
  check_bool "repeated-head-variable view usable" true (r.rewritings <> [])

let test_duplicate_query_subgoals () =
  (* duplicates must not confuse minimization or covering *)
  let query = q "q(X, Y) :- p(X, Y), p(X, Y), p(X, Y)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  let base = Database.of_facts [ ("p", [ Term.Int 1; Term.Int 2 ]) ] in
  let r = closed_world_check ~query ~views ~base in
  check_int "minimized to one subgoal" 1
    (List.length r.minimized_query.Query.body);
  check_int "one-subgoal GMR" 1 (List.length (List.hd r.rewritings).Query.body)

let test_query_all_constants () =
  (* a fully ground query: the answer is the empty tuple or nothing *)
  let query = q "q() :- p(1, 2)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  let base_yes = Database.of_facts [ ("p", [ Term.Int 1; Term.Int 2 ]) ] in
  let base_no = Database.of_facts [ ("p", [ Term.Int 3; Term.Int 4 ]) ] in
  let _ = closed_world_check ~query ~views ~base:base_yes in
  let _ = closed_world_check ~query ~views ~base:base_no in
  check_int "satisfied instance" 1 (Relation.cardinality (Eval.answers base_yes query));
  check_int "unsatisfied instance" 0 (Relation.cardinality (Eval.answers base_no query))

let test_self_join_query () =
  let query = q "q(X, Y, Z) :- p(X, Y), p(Y, Z)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  let base =
    Database.of_facts
      [ ("p", [ Term.Int 1; Term.Int 2 ]); ("p", [ Term.Int 2; Term.Int 3 ]) ]
  in
  let r = closed_world_check ~query ~views ~base in
  check_int "two uses of the same view" 2
    (List.length (List.hd r.rewritings).Query.body)

let test_view_bigger_than_query () =
  (* a view strictly more specific than the query cannot rewrite it *)
  let query = q "q(X) :- p(X, Y)." in
  let views = qs [ "v(A) :- p(A, B), r(B)." ] in
  check_bool "no rewriting" false (Corecover.has_rewriting ~query ~views)

let test_view_with_extra_relation () =
  (* ...but adding a view for the missing piece does not help either,
     because r(B) constrains the expansion *)
  let query = q "q(X) :- p(X, Y)." in
  let views = qs [ "v(A) :- p(A, B), r(B)."; "w(B) :- r(B)." ] in
  check_bool "still no rewriting" false (Corecover.has_rewriting ~query ~views)

let test_same_view_multiple_tuples () =
  (* one view definition can yield several view tuples on one query *)
  let query = q "q(X, Y, Z) :- p(X, Y), p(Y, Z)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  let tuples = View_tuple.compute ~query:(Minimize.minimize query) views in
  check_int "two view tuples" 2 (List.length tuples)

let test_unsatisfiable_rewriting_candidate () =
  (* constant clash during expansion *)
  let query = q "q(X) :- p(X, c)." in
  let views = qs [ "v(A, c) :- p(A, c)." ] in
  let bad = q "q(X) :- v(X, d)." in
  check_bool "unsatisfiable candidate rejected" false
    (Expansion.is_equivalent_rewriting ~views ~query bad)

let test_head_var_repeated_in_query () =
  let query = q "q(X, X) :- p(X, Y)." in
  let views = qs [ "v(A) :- p(A, B)." ] in
  let base = Database.of_facts [ ("p", [ Term.Int 1; Term.Int 2 ]) ] in
  let r = closed_world_check ~query ~views ~base in
  check_bool "repeated head variable handled" true (r.rewritings <> [])

let test_wide_relation () =
  (* arity 5 relations through the pipeline *)
  let query = q "q(A, E) :- wide(A, B, C, D, E)." in
  let views = qs [ "v(A, B, C, D, E) :- wide(A, B, C, D, E)." ] in
  let base =
    Database.of_facts
      [ ("wide", List.init 5 (fun i -> Term.Int i)) ]
  in
  let r = closed_world_check ~query ~views ~base in
  check_bool "wide relation rewrites" true (r.rewritings <> [])

let test_too_many_subgoals () =
  (* tuple-core bitmasks live in a native int: queries wider than that must
     be rejected up front instead of overflowing [1 lsl n] silently *)
  let n = Sys.int_size in
  let body =
    String.concat ", " (List.init n (fun i -> Printf.sprintf "p%d(X%d, X%d)" i i (i + 1)))
  in
  let head_vars = String.concat ", " (List.init (n + 1) (fun i -> Printf.sprintf "X%d" i)) in
  let query = q (Printf.sprintf "q(%s) :- %s." head_vars body) in
  let views = qs [ "v(A, B) :- p0(A, B)." ] in
  let raises f =
    match f () with
    | exception Vplan_error.Error (Vplan_error.Width_limit _) -> true
    | _ -> false
  in
  check_bool "gmrs rejects over-wide query" true (raises (fun () ->
      Corecover.gmrs ~query ~views ()));
  check_bool "has_rewriting rejects over-wide query" true (raises (fun () ->
      Corecover.has_rewriting ~query ~views))

let suite =
  [
    ("boolean query", `Quick, test_boolean_query);
    ("constant in view head", `Quick, test_constant_in_view_head);
    ("repeated head variable view", `Quick, test_repeated_head_var_view);
    ("duplicate query subgoals", `Quick, test_duplicate_query_subgoals);
    ("fully ground query", `Quick, test_query_all_constants);
    ("self-join query", `Quick, test_self_join_query);
    ("view bigger than query", `Quick, test_view_bigger_than_query);
    ("view with extra relation", `Quick, test_view_with_extra_relation);
    ("one view, several tuples", `Quick, test_same_view_multiple_tuples);
    ("unsatisfiable candidate", `Quick, test_unsatisfiable_rewriting_candidate);
    ("repeated head variable in query", `Quick, test_head_var_repeated_in_query);
    ("wide relation", `Quick, test_wide_relation);
    ("too many subgoals", `Quick, test_too_many_subgoals);
  ]
