(* Tests for tuple-cores, set cover, CoreCover / CoreCover*, rewriting
   classification, the LMR lattice and the naive oracle. *)

open Vplan
open Helpers

(* ---------------- tuple-cores ---------------- *)

let core_strings ~query ~views =
  View_tuple.compute ~query views
  |> List.map (fun tv ->
         let core = Tuple_core.compute ~query tv in
         ( Atom.to_string tv.View_tuple.atom,
           List.map Atom.to_string core.Tuple_core.subgoals ))

let test_table2_tuple_cores () =
  (* Table 2 of the paper, verbatim *)
  let open Example_4_1 in
  let cores = core_strings ~query ~views in
  let find atom = List.assoc atom cores in
  Alcotest.(check (list string)) "v1(X,Z)" [ "a(X,Z)"; "a(Z,Z)" ] (find "v1(X,Z)");
  Alcotest.(check (list string)) "v1(Z,Z)" [ "a(Z,Z)" ] (find "v1(Z,Z)");
  Alcotest.(check (list string)) "v2(Z,Y)" [ "b(Z,Y)" ] (find "v2(Z,Y)")

let test_carloc_tuple_cores () =
  (* Section 4.1's description: v3 has an empty core, the others cover
     exactly their defining subgoals. *)
  let open Car_loc_part in
  let cores = core_strings ~query ~views in
  let find atom = List.assoc atom cores in
  Alcotest.(check (list string)) "v3 empty" [] (find "v3(S)");
  Alcotest.(check (list string)) "v1"
    [ "car(M,anderson)"; "loc(anderson,C)" ] (find "v1(M,anderson,C)");
  Alcotest.(check (list string)) "v2" [ "part(S,M,C)" ] (find "v2(S,M,C)");
  Alcotest.(check (list string)) "v4"
    [ "car(M,anderson)"; "loc(anderson,C)"; "part(S,M,C)" ] (find "v4(M,anderson,C,S)");
  Alcotest.(check (list string)) "v5 same as v1"
    (find "v1(M,anderson,C)") (find "v5(M,anderson,C)")

let test_tuple_core_uniqueness () =
  let checks =
    [
      (Car_loc_part.query, Car_loc_part.views);
      (Example_4_1.query, Example_4_1.views);
      (Example_3_1.query, Example_3_1.views);
      (Example_6_1.query, Example_6_1.views);
    ]
  in
  List.iter
    (fun (query, views) ->
      let query = Minimize.minimize query in
      List.iter
        (fun tv ->
          check_int
            ("unique core for " ^ Atom.to_string tv.View_tuple.atom)
            1
            (List.length (Tuple_core.compute_all_maximal ~query tv)))
        (View_tuple.compute ~query views))
    checks

let test_tuple_core_mapping_is_witness () =
  (* the recorded mapping must send each covered subgoal into the view
     tuple's expansion *)
  let open Example_4_1 in
  let query = Minimize.minimize query in
  List.iter
    (fun tv ->
      let core = Tuple_core.compute ~query tv in
      if not (Tuple_core.is_empty core) then begin
        let expansion, _ = View_tuple.expansion ~avoid:(Query.var_set query) tv in
        List.iter
          (fun g ->
            let image = Atom.apply core.Tuple_core.mapping g in
            check_bool
              ("image of " ^ Atom.to_string g ^ " in expansion")
              true
              (List.exists (Atom.equal image) expansion))
          core.Tuple_core.subgoals
      end)
    (View_tuple.compute ~query views)

let test_distinguished_blocks_core () =
  (* a view hiding a distinguished query variable cannot cover the
     subgoals using it (property 2 of Definition 4.1) *)
  let query = q "q(X, Y) :- p(X, Y)." in
  let views = qs [ "v(X) :- p(X, Y)." ] in
  let cores = core_strings ~query ~views in
  Alcotest.(check (list string)) "empty core" [] (List.assoc "v(X)" cores)

let test_existential_closure_drags_subgoals () =
  (* property 3: if Z maps to a view existential, all subgoals using Z
     must be covered together *)
  let query = q "q(X, Y) :- p(X, Z), r(Z, Y)." in
  let views = qs [ "v(X) :- p(X, Z)."; "w(A, B) :- p(A, Z), r(Z, B)." ] in
  let cores = core_strings ~query ~views in
  (* v hides Z, and r(Z,Y) cannot come along into v's expansion *)
  Alcotest.(check (list string)) "v cannot cover p alone" [] (List.assoc "v(X)" cores);
  Alcotest.(check (list string)) "w covers both" [ "p(X,Z)"; "r(Z,Y)" ]
    (List.assoc "w(X,Y)" cores)

(* ---------------- set cover ---------------- *)

let test_minimum_covers () =
  let sets = [| 0b0011; 0b1100; 0b1111; 0b0110 |] in
  let covers = Set_cover.minimum_covers ~universe:0b1111 sets in
  Alcotest.(check (list (list int))) "single minimum" [ [ 2 ] ] covers;
  let no_single = [| 0b0011; 0b1100; 0b0110 |] in
  let covers = Set_cover.minimum_covers ~universe:0b1111 no_single in
  Alcotest.(check (list (list int))) "one pair" [ [ 0; 1 ] ] covers

let test_minimum_covers_multiple () =
  let sets = [| 0b01; 0b10; 0b01; 0b10 |] in
  let covers = Set_cover.minimum_covers ~universe:0b11 sets in
  check_int "all four pairs" 4 (List.length covers);
  List.iter
    (fun c -> check_bool "is cover" true (Set_cover.is_cover ~universe:0b11 sets c))
    covers

let test_no_cover () =
  Alcotest.(check (list (list int))) "uncoverable" []
    (Set_cover.minimum_covers ~universe:0b111 [| 0b011 |])

let test_irredundant_covers () =
  let sets = [| 0b011; 0b110; 0b101; 0b111 |] in
  let covers = Set_cover.irredundant_covers ~universe:0b111 sets in
  List.iter
    (fun c ->
      check_bool "irredundant" true (Set_cover.is_irredundant ~universe:0b111 sets c))
    covers;
  (* {0,1}, {0,2}, {1,2}, {3} are the irredundant covers *)
  check_int "count" 4 (List.length covers)

let test_empty_universe () =
  Alcotest.(check (list (list int))) "empty universe" [ [] ]
    (Set_cover.minimum_covers ~universe:0 [| 0b1 |])

(* ---------------- CoreCover ---------------- *)

let rewriting_strings result =
  List.map Query.to_string result.Corecover.rewritings |> List.sort String.compare

let test_corecover_carloc () =
  let open Car_loc_part in
  let r = Corecover.gmrs ~verify:true ~query ~views () in
  Alcotest.(check (list string)) "P4 is the unique GMR"
    [ "q1(S,C) :- v4(M,anderson,C,S)" ] (rewriting_strings r);
  check_int "4 view classes" 4 r.stats.num_view_classes;
  let all = Corecover.all_minimal ~verify:true ~query ~views () in
  Alcotest.(check (list string)) "P2 and P4 are the minimal rewritings"
    [ "q1(S,C) :- v1(M,anderson,C), v2(S,M,C)"; "q1(S,C) :- v4(M,anderson,C,S)" ]
    (rewriting_strings all);
  Alcotest.(check (list string)) "v3 is the filter candidate" [ "v3(S)" ]
    (List.map (fun tv -> Atom.to_string tv.View_tuple.atom) all.filters)

let test_corecover_example41 () =
  let open Example_4_1 in
  let r = Corecover.gmrs ~verify:true ~query ~views () in
  Alcotest.(check (list string)) "unique GMR"
    [ "q(X,Y) :- v1(X,Z), v2(Z,Y)" ] (rewriting_strings r)

let test_corecover_example42 () =
  let open Example_4_2 in
  let r = Corecover.gmrs ~verify:true ~query ~views () in
  Alcotest.(check (list string)) "single-subgoal GMR"
    [ "q(X,Y) :- v(X,Y)" ] (rewriting_strings r)

let test_corecover_example31 () =
  let open Example_3_1 in
  let r = Corecover.gmrs ~verify:true ~query ~views () in
  Alcotest.(check (list string)) "P1 is the GMR"
    [ "q(X,Y,Z) :- v(X,Y,Z,c)" ] (rewriting_strings r)

let test_corecover_no_rewriting () =
  let query = q "q(X, Y) :- p(X, Y), r(Y, X)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  let r = Corecover.gmrs ~query ~views () in
  Alcotest.(check (list string)) "no rewriting" [] (rewriting_strings r);
  check_bool "has_rewriting agrees" false (Corecover.has_rewriting ~query ~views)

let test_corecover_grouping_invariant () =
  (* grouping views must not change the set of rewritings modulo
     representative choice: compare subgoal counts and count *)
  let open Car_loc_part in
  let with_g = Corecover.gmrs ~query ~views () in
  let without_g = Corecover.gmrs ~group_views:false ~query ~views () in
  check_int "same GMR size"
    (List.length (List.hd with_g.rewritings).Query.body)
    (List.length (List.hd without_g.rewritings).Query.body)

let test_corecover_matches_naive () =
  let cases =
    [
      (Car_loc_part.query, Car_loc_part.views);
      (Example_4_1.query, Example_4_1.views);
      (Example_3_1.query, Example_3_1.views);
      (Example_gmr_not_cmr.query, Example_gmr_not_cmr.views);
    ]
  in
  List.iter
    (fun (query, views) ->
      let cc = Corecover.gmrs ~verify:true ~query ~views () in
      let naive = Naive.gmrs ~query ~views in
      check_bool "both found or neither" true
        (cc.rewritings <> [] = (naive <> []));
      match (cc.rewritings, naive) with
      | p :: _, n :: _ ->
          check_int "same GMR size" (List.length n.Query.body) (List.length p.Query.body)
      | _ -> ())
    cases

let test_has_rewriting_positive () =
  check_bool "car-loc-part has rewriting" true
    (Corecover.has_rewriting ~query:Car_loc_part.query ~views:Car_loc_part.views)

(* ---------------- classification and lattice ---------------- *)

let test_classify_carloc () =
  let open Car_loc_part in
  check_bool "P1 is an LMR" true (Classify.is_lmr ~views ~query p1);
  check_bool "P2 is an LMR" true (Classify.is_lmr ~views ~query p2);
  check_bool "P3 is not an LMR" false (Classify.is_lmr ~views ~query p3);
  check_bool "P3 is minimal as a query" true (Classify.is_minimal_query p3);
  let p3_lmr = Classify.lmr_of ~views ~query p3 in
  check_int "P3 reduces to two subgoals" 2 (List.length p3_lmr.Query.body)

let test_classify_cmr () =
  let open Car_loc_part in
  let lmrs = [ p1; p2; p4; p5 ] in
  check_bool "P2 is a CMR" true (Classify.is_cmr_among ~lmrs p2);
  check_bool "P1 is not a CMR" false (Classify.is_cmr_among ~lmrs p1)

let test_gmr_not_cmr () =
  (* Section 3.2: P1 is a GMR but not a CMR; P2 is both *)
  let open Example_gmr_not_cmr in
  check_bool "P1 rewriting" true (Classify.is_rewriting ~views ~query p1);
  check_bool "P2 rewriting" true (Classify.is_rewriting ~views ~query p2);
  check_bool "P1 not CMR" false (Classify.is_cmr_among ~lmrs:[ p1; p2 ] p1);
  check_bool "P2 is CMR" true (Classify.is_cmr_among ~lmrs:[ p1; p2 ] p2);
  check_bool "P1 is GMR" true (Classify.is_gmr_among ~candidates:[ p1; p2 ] p1)

let test_lattice_example31 () =
  (* Figure 2(b): the three LMRs form a chain P1 < P2 < P3 *)
  let open Example_3_1 in
  let lattice = Lattice.of_lmrs [ p1; p2; p3 ] in
  check_int "three nodes" 3 (Array.length lattice.Lattice.nodes);
  check_int "two Hasse edges" 2 (List.length lattice.Lattice.edges);
  check_bool "chain" true (Lattice.is_chain lattice);
  check_int "one bottom" 1 (List.length (Lattice.bottoms lattice))

let test_lattice_carloc () =
  (* Figure 2(a): with v1 and v5 identified, P1 and P5 collapse; P2 and P4
     sit at the bottom *)
  let open Car_loc_part in
  let lattice = Lattice.of_lmrs ~views [ p1; p2; p4; p5 ] in
  check_int "P1 and P5 collapse to one node" 3 (Array.length lattice.Lattice.nodes);
  let bottoms = Lattice.bottoms lattice in
  check_int "two bottoms (P2, P4)" 2 (List.length bottoms);
  check_bool "not a chain" false (Lattice.is_chain lattice)

let test_lemma31_subgoal_counts () =
  (* Lemma 3.1: containment between LMRs bounds subgoal counts *)
  let open Car_loc_part in
  let lmrs = [ p1; p2; p4; p5 ] in
  List.iter
    (fun pa ->
      List.iter
        (fun pb ->
          if Containment.is_contained pa pb then
            check_bool "contained LMR has no more subgoals" true
              (List.length pa.Query.body <= List.length pb.Query.body))
        lmrs)
    lmrs

(* ---------------- Lemma 3.2 normalization ---------------- *)

let test_lemma_3_2_p1_to_p2 () =
  (* the paper's worked instance: P1 transforms into P2 *)
  let open Car_loc_part in
  match Normalize.to_view_tuple_form ~views ~query p1 with
  | None -> Alcotest.fail "P1 is a rewriting"
  | Some p' ->
      check_bool "isomorphic to P2" true (Containment.isomorphic p' p2);
      check_bool "contained in P1" true (Containment.is_contained p' p1);
      check_bool "still a rewriting" true
        (Expansion.is_equivalent_rewriting ~views ~query p')

let test_lemma_3_2_atoms_are_view_tuples () =
  let open Car_loc_part in
  let tuples =
    View_tuple.compute ~query:(Minimize.minimize query) views
    |> List.map (fun tv -> tv.View_tuple.atom)
  in
  List.iter
    (fun p ->
      match Normalize.to_view_tuple_form ~views ~query p with
      | None -> Alcotest.fail "rewriting expected"
      | Some p' ->
          List.iter
            (fun atom ->
              check_bool
                (Atom.to_string atom ^ " is a view tuple")
                true
                (List.exists (Atom.equal atom) tuples))
            p'.Query.body)
    [ p1; p3; p5 ]

let test_lemma_3_2_rejects_non_rewriting () =
  let open Car_loc_part in
  let broken = q "q1(S, C) :- v2(S, M, C)." in
  check_bool "not a rewriting" true
    (Normalize.to_view_tuple_form ~views ~query broken = None)

(* ---------------- view-set minimization ---------------- *)

let test_relevant_views () =
  let open Car_loc_part in
  let relevant = View_selection.relevant_views ~query ~views in
  (* v3 has an empty tuple-core and cannot cover anything *)
  Alcotest.(check (slist string String.compare))
    "v3 filtered out" [ "v1"; "v2"; "v4"; "v5" ]
    (List.map View.name relevant)

let test_minimal_answering_set () =
  let open Car_loc_part in
  (match View_selection.minimal_answering_set ~query ~views with
  | None -> Alcotest.fail "expected an answering set"
  | Some kept ->
      check_int "a single view suffices (v4 or v1+v2)" 1 (List.length kept);
      check_bool "still answers" true (View_selection.is_answering_set ~query kept));
  (* without v4, the minimum is the pair {v1 or v5, v2} *)
  let without_v4 = List.filter (fun v -> View.name v <> "v4") views in
  match View_selection.minimal_answering_set ~query ~views:without_v4 with
  | None -> Alcotest.fail "expected an answering set"
  | Some kept -> check_int "two views needed" 2 (List.length kept)

let test_minimal_answering_none () =
  let query = q "q(X, Y) :- p(X, Y), r(Y, X)." in
  let views = qs [ "v(A, B) :- p(A, B)." ] in
  check_bool "no answering set" true
    (View_selection.minimal_answering_set ~query ~views = None)

(* ---------------- naive oracle ---------------- *)

let test_naive_sizes () =
  let open Car_loc_part in
  check_int "no 0-ary rewriting" 0 (List.length (Naive.rewritings_of_size ~query ~views 0));
  check_int "one 1-subgoal rewriting" 1 (List.length (Naive.rewritings_of_size ~query ~views 1));
  check_bool "2-subgoal rewritings exist" true
    (List.length (Naive.rewritings_of_size ~query ~views 2) > 0)

let suite =
  [
    ("Table 2 tuple-cores", `Quick, test_table2_tuple_cores);
    ("car-loc-part tuple-cores", `Quick, test_carloc_tuple_cores);
    ("tuple-core uniqueness (Lemma 4.2)", `Quick, test_tuple_core_uniqueness);
    ("tuple-core mapping witness", `Quick, test_tuple_core_mapping_is_witness);
    ("distinguished variable blocks core", `Quick, test_distinguished_blocks_core);
    ("existential closure (property 3)", `Quick, test_existential_closure_drags_subgoals);
    ("minimum covers", `Quick, test_minimum_covers);
    ("multiple minimum covers", `Quick, test_minimum_covers_multiple);
    ("no cover", `Quick, test_no_cover);
    ("irredundant covers", `Quick, test_irredundant_covers);
    ("empty universe", `Quick, test_empty_universe);
    ("CoreCover car-loc-part", `Quick, test_corecover_carloc);
    ("CoreCover Example 4.1", `Quick, test_corecover_example41);
    ("CoreCover Example 4.2", `Quick, test_corecover_example42);
    ("CoreCover Example 3.1", `Quick, test_corecover_example31);
    ("CoreCover no rewriting", `Quick, test_corecover_no_rewriting);
    ("CoreCover grouping invariant", `Quick, test_corecover_grouping_invariant);
    ("CoreCover matches naive oracle", `Quick, test_corecover_matches_naive);
    ("has_rewriting", `Quick, test_has_rewriting_positive);
    ("classify car-loc-part", `Quick, test_classify_carloc);
    ("classify CMR", `Quick, test_classify_cmr);
    ("GMR that is not a CMR", `Quick, test_gmr_not_cmr);
    ("lattice Example 3.1 chain", `Quick, test_lattice_example31);
    ("lattice car-loc-part", `Quick, test_lattice_carloc);
    ("Lemma 3.1 subgoal counts", `Quick, test_lemma31_subgoal_counts);
    ("naive oracle sizes", `Quick, test_naive_sizes);
    ("Lemma 3.2: P1 to P2", `Quick, test_lemma_3_2_p1_to_p2);
    ("Lemma 3.2: outputs view tuples", `Quick, test_lemma_3_2_atoms_are_view_tuples);
    ("Lemma 3.2: rejects non-rewritings", `Quick, test_lemma_3_2_rejects_non_rewriting);
    ("relevant views", `Quick, test_relevant_views);
    ("minimal answering set", `Quick, test_minimal_answering_set);
    ("no answering set", `Quick, test_minimal_answering_none);
  ]
