(* The hash-join engine (Vplan_exec): oracle equivalence against the
   backtracking evaluator, interning roundtrips, radix partitioning at
   the threshold edge, and budget truncation mid-probe. *)

open Vplan

let parse = Parser.parse_rule_exn

let db_of_facts facts =
  Database.of_facts (List.map (fun (p, t) -> (p, List.map (fun i -> Term.Int i) t)) facts)

let check_same_answers ?semijoin ?radix_threshold db q =
  let expected = Eval.answers db q in
  let got = Exec.answers ?semijoin ?radix_threshold (Interned.of_database db) q in
  Alcotest.(check bool)
    (Format.asprintf "answers agree on %a" Query.pp q)
    true
    (Relation.equal expected got)

(* -- interning roundtrip -------------------------------------------- *)

let test_intern_roundtrip () =
  let db =
    Database.of_facts
      [
        ("r", [ Term.Int 3; Term.Str "a" ]);
        ("r", [ Term.Int 5; Term.Str "b" ]);
        ("s", [ Term.Str "a" ]);
      ]
  in
  let t = Interned.of_database db in
  (* every stored row decodes back to a tuple of the source relation *)
  List.iter
    (fun pred ->
      let r = Database.find_exn pred db in
      match Interned.find t pred with
      | None -> Alcotest.fail ("relation " ^ pred ^ " not interned")
      | Some rel ->
          Alcotest.(check int) (pred ^ " rows") (Relation.cardinality r) rel.Interned.rows;
          for row = 0 to rel.Interned.rows - 1 do
            let tuple = Interned.tuple_of_row t rel row in
            Alcotest.(check bool) (pred ^ " row decodes") true (Relation.mem tuple r)
          done)
    (Database.predicates db);
  (* codes roundtrip through const_id/const *)
  List.iter
    (fun c ->
      match Interned.const_id t c with
      | None -> Alcotest.fail "known constant has no code"
      | Some id -> Alcotest.(check bool) "const roundtrip" true (Interned.const t id = c))
    [ Term.Int 3; Term.Int 5; Term.Str "a"; Term.Str "b" ];
  Alcotest.(check bool) "absent constant has no code" true
    (Interned.const_id t (Term.Int 42) = None)

(* -- basic joins against the oracle --------------------------------- *)

let test_chain_join () =
  let db =
    db_of_facts
      [
        ("r0", [ 0; 1 ]); ("r0", [ 0; 2 ]); ("r0", [ 1; 2 ]);
        ("r1", [ 1; 3 ]); ("r1", [ 2; 3 ]); ("r1", [ 2; 4 ]);
        ("r2", [ 3; 7 ]); ("r2", [ 4; 8 ]);
      ]
  in
  let q = parse "q(X, Z) :- r0(0, X), r1(X, Y), r2(Y, Z)." in
  check_same_answers db q;
  check_same_answers ~semijoin:true db q;
  check_same_answers ~semijoin:false db q

let test_repeated_vars_and_constants () =
  let db =
    db_of_facts
      [ ("p", [ 1; 1 ]); ("p", [ 1; 2 ]); ("p", [ 2; 2 ]); ("s", [ 2 ]) ]
  in
  check_same_answers db (parse "q(X) :- p(X, X).");
  check_same_answers db (parse "q(X) :- p(X, X), s(X).");
  check_same_answers db (parse "q(X) :- p(1, X).");
  check_same_answers db (parse "q() :- p(1, 1).");
  check_same_answers db (parse "q() :- p(3, 3).")

let test_cross_product () =
  let db = db_of_facts [ ("p", [ 1; 2 ]); ("r", [ 3; 4 ]); ("r", [ 5; 6 ]) ] in
  check_same_answers db (parse "q(X, Y) :- p(X, 2), r(Y, Z).")

let test_missing_relation () =
  let db = db_of_facts [ ("p", [ 1; 2 ]) ] in
  let q = parse "q(X) :- p(X, Y), nosuch(Y)." in
  let got = Exec.answers (Interned.of_database db) q in
  Alcotest.(check int) "empty on missing relation" 0 (Relation.cardinality got)

(* -- radix partitioning at the threshold edge ----------------------- *)

let test_radix_threshold_edge () =
  (* r0 has exactly 64 selected rows; with the threshold at 63 the join
     radix-partitions, at 64 it does not.  Both must agree with the
     oracle, and the partition counter must move only in the first
     case. *)
  let rng = Prng.create 7 in
  let facts =
    List.init 64 (fun i -> ("big", [ i; Prng.int rng 8 ]))
    @ List.init 8 (fun i -> ("small", [ i ]))
  in
  let db = db_of_facts facts in
  let q = parse "q(X, Y) :- small(Y), big(X, Y)." in
  let partitions = Metrics.counter "vplan_join_partitions_total" in
  let before = Metrics.value partitions in
  check_same_answers ~radix_threshold:63 db q;
  let after_radix = Metrics.value partitions in
  Alcotest.(check bool) "radix path taken below threshold" true
    (after_radix >= before + Exec.radix_partitions);
  check_same_answers ~radix_threshold:64 db q;
  Alcotest.(check int) "no radix at threshold" after_radix (Metrics.value partitions)

(* -- budget truncation mid-probe ------------------------------------ *)

let test_budget_truncation () =
  let facts = List.init 100 (fun i -> ("r", [ i mod 10; i ])) in
  let db = db_of_facts (("s", [ 0 ]) :: facts) in
  let q = parse "q(X, Y) :- s(X), r(X, Y)." in
  let budget = Budget.create ~max_steps:5 () in
  (match Exec.answers ~budget (Interned.of_database db) q with
  | _ -> Alcotest.fail "expected Step_limit"
  | exception Vplan_error.Error (Vplan_error.Step_limit { limit }) ->
      Alcotest.(check int) "limit recorded" 5 limit);
  (* an ample budget leaves the result intact *)
  let budget = Budget.create ~max_steps:100_000 () in
  let got = Exec.answers ~budget (Interned.of_database db) q in
  Alcotest.(check bool) "ample budget: oracle answer" true
    (Relation.equal (Eval.answers db q) got)

(* -- counters -------------------------------------------------------- *)

let test_counters_move () =
  let facts = List.init 50 (fun i -> ("r", [ i mod 5; i ])) in
  let db = db_of_facts (("s", [ 1 ]) :: ("s", [ 2 ]) :: facts) in
  let q = parse "q(X, Y) :- s(X), r(X, Y)." in
  let build = Metrics.counter "vplan_join_build_rows" in
  let probe = Metrics.counter "vplan_join_probe_rows" in
  let b0 = Metrics.value build and p0 = Metrics.value probe in
  ignore (Exec.answers (Interned.of_database db) q);
  Alcotest.(check bool) "build rows counted" true (Metrics.value build > b0);
  Alcotest.(check bool) "probe rows counted" true (Metrics.value probe > p0)

(* -- QCheck: oracle equivalence on random databases and queries ------ *)

let prop_oracle_equivalence =
  QCheck2.Test.make ~count:300 ~name:"Exec.answers = Eval.answers"
    QCheck2.Gen.(pair Qcheck_gens.gen_query Qcheck_gens.gen_database)
    (fun (q, db) ->
      let expected = Eval.answers db q in
      let t = Interned.of_database db in
      Relation.equal expected (Exec.answers t q)
      && Relation.equal expected (Exec.answers ~semijoin:true t q)
      && Relation.equal expected (Exec.answers ~semijoin:false t q)
      && Relation.equal expected (Exec.answers ~radix_threshold:1 t q))

(* -- QCheck: the observer effect of operator profiles ----------------
   Attaching a profile (and estimate callbacks) never changes the
   answer, the profile's actual row counts agree with the answer the
   plain run produces, and every node is internally consistent. *)

let prop_profile_transparent =
  QCheck2.Test.make ~count:300 ~name:"profiled Exec.answers = plain"
    QCheck2.Gen.(pair Qcheck_gens.gen_query Qcheck_gens.gen_database)
    (fun (q, db) ->
      let t = Interned.of_database db in
      let plain = Exec.answers t q in
      let est = Estimate.of_stats (Stats.collect db) in
      let estimate = function
        | [] -> Float.nan
        | [ a ] -> Estimate.atom_cardinality est a
        | a :: rest ->
            Estimate.profile_card
              (List.fold_left
                 (fun p b -> Estimate.join_profiles p (Estimate.atom_profile est b))
                 (Estimate.atom_profile est a)
                 rest)
      in
      let p = Profile.create ~name:"prop" () in
      let profiled = Exec.answers ~profile:p ~estimate t q in
      let root = Profile.finish p in
      let nodes = Profile.preorder root in
      let exec =
        List.find_opt (fun n -> n.Profile.op = "exec") nodes
      in
      Relation.equal plain profiled
      (* the exec node's output is the deduplicated answer count *)
      && (match exec with
         | Some n -> n.Profile.rows_out = Relation.cardinality plain
         | None -> false)
      (* per-node sanity: recorded row counts are never negative beyond
         the -1 sentinel, durations never negative *)
      && List.for_all
           (fun n ->
             n.Profile.rows_out >= -1
             && n.Profile.rows_in >= -1
             && n.Profile.dur_ms >= 0.)
           nodes)

let suite =
  [
    Alcotest.test_case "interning roundtrip" `Quick test_intern_roundtrip;
    Alcotest.test_case "chain join agrees with oracle" `Quick test_chain_join;
    Alcotest.test_case "repeated vars and constants" `Quick test_repeated_vars_and_constants;
    Alcotest.test_case "cross product" `Quick test_cross_product;
    Alcotest.test_case "missing relation is empty" `Quick test_missing_relation;
    Alcotest.test_case "radix partitioning at threshold edge" `Quick test_radix_threshold_edge;
    Alcotest.test_case "budget truncation mid-probe" `Quick test_budget_truncation;
    Alcotest.test_case "join counters move" `Quick test_counters_move;
    QCheck_alcotest.to_alcotest prop_oracle_equivalence;
    QCheck_alcotest.to_alcotest prop_profile_transparent;
  ]
