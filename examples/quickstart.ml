(* Quickstart: rewrite a query using views and pick a cost-based plan.

   Run with:  dune exec examples/quickstart.exe

   The scenario is the paper's running example (Example 1.1): a dealer
   database with three base relations and five materialized views. *)

open Vplan

let () =
  (* 1. Define the query and the views, in Datalog syntax. *)
  let query =
    Parser.parse_rule_exn
      "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)."
  in
  let views =
    List.map Parser.parse_rule_exn
      [
        "v1(M, D, C) :- car(M, D), loc(D, C).";
        "v2(S, M, C) :- part(S, M, C).";
        "v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).";
        "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).";
        "v5(M, D, C) :- car(M, D), loc(D, C).";
      ]
  in

  (* 2. Run CoreCover: all globally-minimal rewritings (cost model M1). *)
  let result = Corecover.gmrs ~query ~views () in
  Format.printf "Globally-minimal rewritings:@.";
  List.iter (fun p -> Format.printf "  %a@." Query.pp p) result.rewritings;

  (* 3. CoreCover*: every minimal rewriting, plus filter candidates, for
        the size-based cost model M2. *)
  let all = Corecover.all_minimal ~query ~views () in
  Format.printf "@.All minimal rewritings:@.";
  List.iter (fun p -> Format.printf "  %a@." Query.pp p) all.rewritings;
  Format.printf "Filter candidates (empty tuple-core):";
  List.iter (fun tv -> Format.printf " %a" View_tuple.pp tv) all.filters;
  Format.printf "@.";

  (* 4. Cost-based choice over a concrete instance. *)
  let base =
    match
      Parser.parse_facts
        "car(honda, anderson). car(toyota, anderson). car(ford, baker).\n\
         loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).\n\
         part(s1, honda, springfield). part(s2, toyota, shelby).\n\
         part(s3, ford, springfield). part(s4, honda, shelby)."
    with
    | Ok facts -> Database.of_facts facts
    | Error e -> failwith (Vplan_error.parse_to_string e)
  in
  let t = Optimizer.create ~query ~views ~base in
  (match Optimizer.best_m2 t with
  | Some choice ->
      Format.printf "@.M2-optimal rewriting: %a@." Query.pp choice.m2_rewriting;
      Format.printf "Join order:";
      List.iter (fun a -> Format.printf " %a" Atom.pp a) choice.m2_order;
      Format.printf "@.M2 cost: %d cells@." choice.m2_cost
  | None -> Format.printf "no rewriting@.");

  (* 5. Verify the closed-world guarantee: the rewriting computes exactly
        the query's answer over the materialized views. *)
  let truth = Optimizer.answer t in
  Format.printf "@.Query answer (%d tuples): %a@." (Relation.cardinality truth)
    Relation.pp truth
