open Vplan_cq
open Vplan_relational

type column = {
  distinct : int;
  hist : Histogram.t option;
}

type table = {
  card : int;
  columns : column array;
}

type t = table Names.Smap.t

let empty = Names.Smap.empty

module Const_set = Set.Make (struct
  type t = Term.const

  let compare = Term.compare_const
end)

let collect_table ?buckets r =
  let arity = Relation.arity r in
  let card = Relation.cardinality r in
  let values = Array.make arity [] in
  Relation.iter
    (fun tuple ->
      List.iteri (fun i c -> values.(i) <- c :: values.(i)) tuple)
    r;
  let columns =
    Array.map
      (fun vs ->
        let distinct = Const_set.cardinal (Const_set.of_list vs) in
        let ints =
          List.filter_map (function Term.Int n -> Some n | Term.Str _ -> None) vs
        in
        (* Histograms only make sense when the column is entirely
           numeric; a mixed column falls back to distinct counts. *)
        let hist =
          if List.length ints = List.length vs then Histogram.create ?buckets ints
          else None
        in
        { distinct; hist })
      values
  in
  { card; columns }

let collect ?buckets db =
  List.fold_left
    (fun acc name ->
      match Database.find name db with
      | Some r -> Names.Smap.add name (collect_table ?buckets r) acc
      | None -> acc)
    empty (Database.predicates db)

let find name t = Names.Smap.find_opt name t
let bindings t = Names.Smap.bindings t
let of_bindings l = List.fold_left (fun m (k, v) -> Names.Smap.add k v m) empty l
let num_relations t = Names.Smap.cardinal t
let total_rows t = Names.Smap.fold (fun _ tbl acc -> acc + tbl.card) t 0

let pp ppf t =
  Names.Smap.iter
    (fun name tbl ->
      Format.fprintf ppf "%s: card=%d dv=[%a]@." name tbl.card
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Array.to_list (Array.map (fun c -> c.distinct) tbl.columns)))
    t
