(** Per-relation statistics: cardinality, per-column distinct counts and
    equi-width histograms.

    Collected once at data-load time and persisted through snapshots so
    the estimated-size cost mode survives a restart without rescanning
    the base data.  Types are transparent so [lib/store] can serialize
    them. *)

open Vplan_cq
open Vplan_relational

type column = {
  distinct : int;  (** number of distinct values in the column *)
  hist : Histogram.t option;  (** present iff the column is all-integer *)
}

type table = {
  card : int;  (** relation cardinality *)
  columns : column array;  (** one entry per attribute position *)
}

type t = table Names.Smap.t

val empty : t

(** [collect ?buckets db] scans every relation of [db] once. *)
val collect : ?buckets:int -> Database.t -> t

(** [collect_table ?buckets r] profiles a single relation. *)
val collect_table : ?buckets:int -> Relation.t -> table

val find : string -> t -> table option
val bindings : t -> (string * table) list
val of_bindings : (string * table) list -> t
val num_relations : t -> int
val total_rows : t -> int
val pp : Format.formatter -> t -> unit
