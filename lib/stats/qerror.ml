(* Running q-error aggregates.  The max tracks the worst miss, the
   geometric mean the typical one: q-errors are ratios, so the
   arithmetic mean would let one 1000x outlier drown a hundred perfect
   estimates without the max adding information over it. *)

type acc = { mutable n : int; mutable worst : float; mutable sum_log : float }

let create () = { n = 0; worst = 1.; sum_log = 0. }

let observe a q =
  if not (Float.is_nan q) then begin
    let q = Float.max q 1. in
    a.n <- a.n + 1;
    if q > a.worst then a.worst <- q;
    a.sum_log <- a.sum_log +. log q
  end

let count a = a.n
let max_q a = if a.n = 0 then Float.nan else a.worst
let mean_q a = if a.n = 0 then Float.nan else exp (a.sum_log /. float_of_int a.n)

module Smap = Map.Make (String)

type by_rel = { mutable rels : acc Smap.t }

let create_registry () = { rels = Smap.empty }

let observe_rel r name q =
  let a =
    match Smap.find_opt name r.rels with
    | Some a -> a
    | None ->
        let a = create () in
        r.rels <- Smap.add name a r.rels;
        a
  in
  observe a q

let bindings r = Smap.bindings r.rels
let clear r = r.rels <- Smap.empty
