(** Estimate-accuracy accounting: accumulators of q-errors
    (max(est/actual, actual/est), always ≥ 1) keyed by relation.

    The execution profile computes per-operator q-errors
    ({!Vplan_obs.Profile.qerror}); this module aggregates them into the
    running per-relation accuracy the server reports in [stats --json] —
    the signal that statistics have drifted and estimated-mode plans
    stopped tracking reality.  Accumulators are plain mutable records;
    the owner serializes access (the service holds them under its
    lock). *)

type acc

val create : unit -> acc

(** Fold one q-error in; [nan] samples are ignored, values below 1 are
    clamped to 1 (they can only arise from float noise). *)
val observe : acc -> float -> unit

val count : acc -> int

(** Largest q-error seen; [nan] when empty. *)
val max_q : acc -> float

(** Geometric mean of the q-errors — the conventional average for
    ratio errors; [nan] when empty. *)
val mean_q : acc -> float

(** A registry of accumulators keyed by relation name. *)
type by_rel

val create_registry : unit -> by_rel

(** [observe_rel r name q] folds [q] into [name]'s accumulator,
    creating it on first use. *)
val observe_rel : by_rel -> string -> float -> unit

(** Accumulators sorted by relation name. *)
val bindings : by_rel -> (string * acc) list

val clear : by_rel -> unit
