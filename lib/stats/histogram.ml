type t = {
  lo : int;
  width : int;  (* integers per bucket, >= 1 *)
  counts : int array;
  total : int;
}

let default_buckets = 16

let create ?(buckets = default_buckets) values =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  match values with
  | [] -> None
  | v0 :: rest ->
      let lo = List.fold_left min v0 rest in
      let hi = List.fold_left max v0 rest in
      let span = hi - lo + 1 in
      let width = max 1 ((span + buckets - 1) / buckets) in
      let nbuckets = max 1 ((span + width - 1) / width) in
      let counts = Array.make nbuckets 0 in
      List.iter
        (fun v ->
          let b = (v - lo) / width in
          counts.(b) <- counts.(b) + 1)
        values;
      Some { lo; width; counts; total = List.length values }

let nbuckets h = Array.length h.counts

let hi h = h.lo + (h.width * Array.length h.counts) - 1

let bucket_of h v =
  if v < h.lo || v > hi h then None else Some ((v - h.lo) / h.width)

(* Fraction of rows whose value equals [v], assuming the [distinct]
   values of the column spread evenly over the buckets and rows spread
   evenly over the distinct values inside a bucket.  A value outside the
   observed range matches nothing. *)
let eq_fraction ~distinct h v =
  match bucket_of h v with
  | None -> 0.0
  | Some b ->
      if h.total = 0 then 0.0
      else
        let bucket_fraction = float_of_int h.counts.(b) /. float_of_int h.total in
        let per_bucket_distinct =
          Float.max 1.0
            (Float.min (float_of_int h.width)
               (float_of_int (max 1 distinct) /. float_of_int (nbuckets h)))
        in
        bucket_fraction /. per_bucket_distinct

let pp ppf h =
  Format.fprintf ppf "hist[lo=%d width=%d total=%d buckets=%a]" h.lo h.width
    h.total
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list h.counts)
