(** Equi-width histograms over integer column values.

    A histogram covers the observed [lo .. hi] range with buckets of a
    fixed integer width; constant-selectivity estimation divides a
    bucket's row fraction by its estimated distinct-value count.  The
    representation is transparent so [lib/store] can serialize it into
    snapshots. *)

type t = {
  lo : int;  (** smallest observed value *)
  width : int;  (** integers per bucket, >= 1 *)
  counts : int array;  (** rows per bucket *)
  total : int;  (** total rows counted *)
}

val default_buckets : int

(** [create ?buckets values] builds an equi-width histogram; [None] on an
    empty value list. *)
val create : ?buckets:int -> int list -> t option

val nbuckets : t -> int

(** [hi h] is the largest value covered by the last bucket. *)
val hi : t -> int

(** [bucket_of h v] is the bucket index holding [v], or [None] outside
    the covered range. *)
val bucket_of : t -> int -> int option

(** [eq_fraction ~distinct h v] estimates the fraction of rows whose
    value equals [v]: the bucket's row fraction divided by its estimated
    distinct count ([distinct] spread evenly over buckets, capped by the
    bucket width).  0 outside the observed range. *)
val eq_fraction : distinct:int -> t -> int -> float

val pp : Format.formatter -> t -> unit
