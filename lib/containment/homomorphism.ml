open Vplan_cq

(* Index target atoms by predicate name so that each pattern atom only
   tries compatible candidates. *)
let index_targets targets =
  List.fold_left
    (fun m (a : Atom.t) ->
      let existing = match Names.Smap.find_opt a.pred m with Some l -> l | None -> [] in
      Names.Smap.add a.pred (a :: existing) m)
    Names.Smap.empty targets

(* Order pattern atoms most-constrained-first: fewer candidate targets and
   more constants/bound variables first.  A static heuristic is enough; the
   dynamic pruning happens through unification failure. *)
let order_patterns ~seed index patterns =
  let score (a : Atom.t) =
    let candidates =
      match Names.Smap.find_opt a.pred index with Some l -> List.length l | None -> 0
    in
    let bound =
      List.length
        (List.filter
           (function
             | Term.Cst _ -> true
             | Term.Var x -> Subst.mem x seed)
           a.Atom.args)
    in
    (candidates, -bound)
  in
  List.stable_sort (fun a b -> compare (score a) (score b)) patterns

let iter_all ?budget ?(seed = Subst.empty) patterns targets ~f =
  let index = index_targets targets in
  let patterns = order_patterns ~seed index patterns in
  let stopped = ref false in
  (* resolve the option once; the tick itself is a single closure call *)
  let tick =
    match budget with
    | None -> fun () -> ()
    | Some b -> fun () -> Vplan_core.Budget.check b
  in
  let rec go subst = function
    | [] -> if f subst = `Stop then stopped := true
    | (a : Atom.t) :: rest ->
        let candidates =
          match Names.Smap.find_opt a.pred index with Some l -> l | None -> []
        in
        let try_candidate cand =
          if not !stopped then begin
            tick ();
            match Atom.unify subst a cand with
            | Some subst' -> go subst' rest
            | None -> ()
          end
        in
        List.iter try_candidate candidates
  in
  go seed patterns

exception Found of Subst.t

let backtracking_find ?budget ~seed patterns targets =
  match
    iter_all ?budget ~seed patterns targets ~f:(fun s -> raise (Found s))
  with
  | () -> None
  | exception Found s -> Some s

(* ---- Acyclic fast path -------------------------------------------------

   When the pattern body is α-acyclic, the homomorphism decision
   problem is polynomial: dynamic programming over the GYO join tree
   (Yannakakis on the candidate-match "relations").  Each tree node's
   candidates are the substitutions unifying its atom with some target
   atom (extending the seed); a bottom-up semi-join sweep keeps only
   parent candidates joinable with every child, so a non-empty root
   set is equivalent to the existence of a homomorphism, and a witness
   is assembled top-down by picking compatible candidates — the
   running-intersection property makes edge-local agreement globally
   consistent.  Cyclic patterns (or the defensive impossible case of a
   merge conflict) report [None]: not applicable, use backtracking. *)

module Hypergraph = Vplan_hypergraph.Hypergraph
module Metrics = Vplan_obs.Metrics

let fastpath_c = Metrics.counter "vplan_containment_fastpath_total"
let fallback_c = Metrics.counter "vplan_containment_fallback_total"

(* Process-global default, flippable for A/B measurement (the rewrite
   pipeline reaches containment many layers down); per-call [?fastpath]
   overrides it. *)
let fastpath_enabled = Atomic.make true
let set_fastpath b = Atomic.set fastpath_enabled b

exception Conflict

let tree_find ?budget ~seed patterns targets =
  match Hypergraph.classify patterns with
  | Hypergraph.Cyclic -> None
  | Hypergraph.Acyclic tree -> (
      let tick =
        match budget with
        | None -> fun () -> ()
        | Some b -> fun () -> Vplan_core.Budget.check b
      in
      let n = Array.length tree.Hypergraph.atoms in
      if n = 0 then Some (Some seed)
      else begin
        let index = index_targets targets in
        (* per-node candidates: seed extended over the atom's variables *)
        let cands = Array.make n [] in
        let dead = ref false in
        for i = 0 to n - 1 do
          if not !dead then begin
            let a = tree.Hypergraph.atoms.(i) in
            let cs =
              match Names.Smap.find_opt a.Atom.pred index with
              | None -> []
              | Some ts ->
                  List.filter_map
                    (fun t ->
                      tick ();
                      Atom.unify seed a t)
                    ts
            in
            if cs = [] then dead := true else cands.(i) <- cs
          end
        done;
        if !dead then Some None
        else begin
          let shared c p =
            Names.Sset.elements
              (Names.Sset.inter
                 (Atom.var_set tree.Hypergraph.atoms.(c))
                 (Atom.var_set tree.Hypergraph.atoms.(p)))
          in
          let project vars s =
            List.map
              (fun x ->
                match Subst.find x s with
                | Some t -> t
                | None -> raise Conflict)
              vars
          in
          (* bottom-up: keep parent candidates joinable with the child *)
          List.iter
            (fun c ->
              let p = tree.Hypergraph.parent.(c) in
              if p >= 0 && not !dead then begin
                let sh = shared c p in
                let keys = Hashtbl.create 64 in
                List.iter
                  (fun s -> Hashtbl.replace keys (project sh s) ())
                  cands.(c);
                cands.(p) <-
                  List.filter
                    (fun s ->
                      tick ();
                      Hashtbl.mem keys (project sh s))
                    cands.(p);
                if cands.(p) = [] then dead := true
              end)
            tree.Hypergraph.removal;
          if !dead then Some None
          else begin
            (* top-down witness assembly: the bottom-up sweep guarantees
               every surviving parent candidate has a compatible
               candidate in each child *)
            let chosen = Array.make n Subst.empty in
            chosen.(tree.Hypergraph.root) <- List.hd cands.(tree.Hypergraph.root);
            List.iter
              (fun c ->
                let p = tree.Hypergraph.parent.(c) in
                let sh = shared c p in
                let want = project sh chosen.(p) in
                match
                  List.find_opt
                    (fun s ->
                      tick ();
                      project sh s = want)
                    cands.(c)
                with
                | Some s -> chosen.(c) <- s
                | None -> raise Conflict)
              (List.rev tree.Hypergraph.removal);
            let merged =
              Array.fold_left
                (fun acc s ->
                  List.fold_left
                    (fun acc (x, t) ->
                      match Subst.extend x t acc with
                      | Some acc -> acc
                      | None -> raise Conflict)
                    acc (Subst.bindings s))
                seed chosen
            in
            Some (Some merged)
          end
        end
      end)

let tree_find ?budget ~seed patterns targets =
  try tree_find ?budget ~seed patterns targets with Conflict -> None

let find ?budget ?fastpath ?(seed = Subst.empty) patterns targets =
  let fast =
    match fastpath with Some b -> b | None -> Atomic.get fastpath_enabled
  in
  if fast then
    match tree_find ?budget ~seed patterns targets with
    | Some r ->
        Metrics.incr fastpath_c;
        r
    | None ->
        Metrics.incr fallback_c;
        backtracking_find ?budget ~seed patterns targets
  else backtracking_find ?budget ~seed patterns targets

let exists ?budget ?fastpath ?seed patterns targets =
  find ?budget ?fastpath ?seed patterns targets <> None

let find_all ?budget ?(seed = Subst.empty) ?limit patterns targets =
  let results = ref [] in
  let count = ref 0 in
  iter_all ?budget ~seed patterns targets ~f:(fun s ->
      if not (List.exists (Subst.equal s) !results) then begin
        results := s :: !results;
        incr count
      end;
      match limit with Some l when !count >= l -> `Stop | _ -> `Continue);
  List.rev !results
