open Vplan_cq

(* Index target atoms by predicate name so that each pattern atom only
   tries compatible candidates. *)
let index_targets targets =
  List.fold_left
    (fun m (a : Atom.t) ->
      let existing = match Names.Smap.find_opt a.pred m with Some l -> l | None -> [] in
      Names.Smap.add a.pred (a :: existing) m)
    Names.Smap.empty targets

(* Order pattern atoms most-constrained-first: fewer candidate targets and
   more constants/bound variables first.  A static heuristic is enough; the
   dynamic pruning happens through unification failure. *)
let order_patterns ~seed index patterns =
  let score (a : Atom.t) =
    let candidates =
      match Names.Smap.find_opt a.pred index with Some l -> List.length l | None -> 0
    in
    let bound =
      List.length
        (List.filter
           (function
             | Term.Cst _ -> true
             | Term.Var x -> Subst.mem x seed)
           a.Atom.args)
    in
    (candidates, -bound)
  in
  List.stable_sort (fun a b -> compare (score a) (score b)) patterns

let iter_all ?budget ?(seed = Subst.empty) patterns targets ~f =
  let index = index_targets targets in
  let patterns = order_patterns ~seed index patterns in
  let stopped = ref false in
  (* resolve the option once; the tick itself is a single closure call *)
  let tick =
    match budget with
    | None -> fun () -> ()
    | Some b -> fun () -> Vplan_core.Budget.check b
  in
  let rec go subst = function
    | [] -> if f subst = `Stop then stopped := true
    | (a : Atom.t) :: rest ->
        let candidates =
          match Names.Smap.find_opt a.pred index with Some l -> l | None -> []
        in
        let try_candidate cand =
          if not !stopped then begin
            tick ();
            match Atom.unify subst a cand with
            | Some subst' -> go subst' rest
            | None -> ()
          end
        in
        List.iter try_candidate candidates
  in
  go seed patterns

exception Found of Subst.t

let find ?budget ?(seed = Subst.empty) patterns targets =
  match
    iter_all ?budget ~seed patterns targets ~f:(fun s -> raise (Found s))
  with
  | () -> None
  | exception Found s -> Some s

let exists ?budget ?seed patterns targets = find ?budget ?seed patterns targets <> None

let find_all ?budget ?(seed = Subst.empty) ?limit patterns targets =
  let results = ref [] in
  let count = ref 0 in
  iter_all ?budget ~seed patterns targets ~f:(fun s ->
      if not (List.exists (Subst.equal s) !results) then begin
        results := s :: !results;
        incr count
      end;
      match limit with Some l when !count >= l -> `Stop | _ -> `Continue);
  List.rev !results
