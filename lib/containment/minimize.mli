(** Query minimization: computing the core of a conjunctive query.

    A conjunctive query has a unique (up to isomorphism) minimal equivalent
    obtained by deleting redundant body atoms [Chandra–Merlin 1977].  This
    is step (1) of the CoreCover algorithm. *)

open Vplan_cq

(** [minimize q] returns the core of [q]: an equivalent query whose body is
    a subset of [q]'s body from which no atom can be removed without losing
    equivalence.  A [?budget] bounds the underlying containment searches;
    on exhaustion [Vplan_error.Error] is raised. *)
val minimize : ?budget:Vplan_core.Budget.t -> Query.t -> Query.t

(** [is_minimal q] holds when no body atom of [q] is redundant. *)
val is_minimal : Query.t -> bool

(** [redundant_atoms q] lists the body atoms whose individual removal keeps
    the query equivalent (the removals need not be simultaneously valid). *)
val redundant_atoms : Query.t -> Atom.t list
