open Vplan_cq

(* Removing body atoms only generalizes a query, so Q ⊑ Q' holds for any
   Q' with body ⊆ Q's body via the identity embedding.  Equivalence after
   removal therefore reduces to a single check: Q' ⊑ Q, i.e. a containment
   mapping from Q to Q'. *)
let removal_keeps_equivalence ?budget q body' =
  match Query.with_body q body' with
  | Error _ -> false (* head variable lost: removal breaks safety *)
  | Ok q' -> Containment.is_contained ?budget q' q

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let minimize ?budget q =
  let q = Query.dedup_body q in
  let rec loop (q : Query.t) =
    let n = List.length q.body in
    let rec try_remove i =
      if i >= n then q
      else
        let body' = remove_nth q.body i in
        if body' <> [] && removal_keeps_equivalence ?budget q body' then
          loop (Query.make_exn q.head body')
        else try_remove (i + 1)
    in
    try_remove 0
  in
  loop q

let redundant_atoms q =
  let q = Query.dedup_body q in
  List.filteri
    (fun i _ ->
      let body' = remove_nth q.Query.body i in
      body' <> [] && removal_keeps_equivalence q body')
    q.Query.body

let is_minimal q =
  let q = Query.dedup_body q in
  redundant_atoms q = []
