(** Chandra–Merlin query containment, equivalence and isomorphism.

    [Q1 ⊑ Q2] holds iff there is a containment mapping from [Q2] to [Q1]:
    a homomorphism on [Q2]'s variables that sends [Q2]'s head to [Q1]'s
    head and every body atom of [Q2] to a body atom of [Q1]. *)

open Vplan_cq

(** [mapping ~from_q ~to_q] finds a containment mapping from [from_q] to
    [to_q] (witnessing [to_q ⊑ from_q]), or [None]. *)
val mapping : from_q:Query.t -> to_q:Query.t -> Subst.t option

(** [mappings ~from_q ~to_q] enumerates all containment mappings. *)
val mappings : from_q:Query.t -> to_q:Query.t -> Subst.t list

(** [is_contained q1 q2] decides [q1 ⊑ q2] ([q1]'s answers are a subset of
    [q2]'s on every database).  A [?budget] bounds the underlying
    homomorphism search; on exhaustion [Vplan_error.Error] is raised.
    [?fastpath] overrides the acyclic fast-path default
    ({!Homomorphism.set_fastpath}); the answer is identical either
    way. *)
val is_contained :
  ?budget:Vplan_core.Budget.t -> ?fastpath:bool -> Query.t -> Query.t -> bool

(** [equivalent q1 q2] decides [q1 ≡ q2]. *)
val equivalent :
  ?budget:Vplan_core.Budget.t -> ?fastpath:bool -> Query.t -> Query.t -> bool

(** [properly_contained q1 q2] decides [q1 ⊑ q2 ∧ q2 ⋢ q1]. *)
val properly_contained : ?budget:Vplan_core.Budget.t -> Query.t -> Query.t -> bool

(** [isomorphic q1 q2] decides whether the queries are identical up to a
    renaming of variables and reordering/deduplication of body atoms —
    strictly stronger than equivalence.  Used to deduplicate generated
    rewritings ("we assume two rewritings are the same if the only
    difference between them is variable renamings"). *)
val isomorphic : Query.t -> Query.t -> bool
