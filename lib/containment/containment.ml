open Vplan_cq

let head_seed ~(from_q : Query.t) ~(to_q : Query.t) =
  let h1 = from_q.head and h2 = to_q.head in
  if Atom.arity h1 <> Atom.arity h2 then None
  else
    List.fold_left2
      (fun acc p t -> match acc with None -> None | Some s -> Subst.unify_term s p t)
      (Some Subst.empty) h1.Atom.args h2.Atom.args

let mapping_under ?budget ?fastpath ~from_q ~to_q () =
  match head_seed ~from_q ~to_q with
  | None -> None
  | Some seed ->
      Homomorphism.find ?budget ?fastpath ~seed from_q.Query.body
        to_q.Query.body

let mapping ~from_q ~to_q = mapping_under ~from_q ~to_q ()

let mappings ~from_q ~to_q =
  match head_seed ~from_q ~to_q with
  | None -> []
  | Some seed -> Homomorphism.find_all ~seed from_q.Query.body to_q.Query.body

(* q1 ⊑ q2 iff there is a containment mapping from q2 to q1. *)
let is_contained ?budget ?fastpath q1 q2 =
  mapping_under ?budget ?fastpath ~from_q:q2 ~to_q:q1 () <> None

let equivalent ?budget ?fastpath q1 q2 =
  is_contained ?budget ?fastpath q1 q2 && is_contained ?budget ?fastpath q2 q1

let properly_contained ?budget q1 q2 =
  is_contained ?budget q1 q2 && not (is_contained ?budget q2 q1)

let isomorphic q1 q2 =
  let q1 = Query.dedup_body q1 and q2 = Query.dedup_body q2 in
  List.length q1.Query.body = List.length q2.Query.body
  &&
  match head_seed ~from_q:q1 ~to_q:q2 with
  | None -> false
  | Some seed ->
      (* An injective variable-to-variable homomorphism between equal-sized
         deduplicated bodies maps atoms bijectively, hence witnesses a
         renaming. *)
      let vars1 = Query.vars q1 in
      let found = ref false in
      Homomorphism.iter_all ~seed q1.Query.body q2.Query.body ~f:(fun s ->
          let var_to_var =
            List.for_all
              (fun x ->
                match Subst.find x s with
                | Some (Term.Var _) -> true
                | Some (Term.Cst _) -> false
                | None -> true)
              vars1
          in
          if var_to_var && Subst.is_injective_on s vars1 then begin
            found := true;
            `Stop
          end
          else `Continue);
      !found
