(** Homomorphism (containment-mapping) search between atom lists.

    A homomorphism from a list of pattern atoms to a list of target atoms
    is a substitution on the pattern's variables that maps every constant
    to itself and sends each pattern atom to {e some} target atom.  This is
    the core primitive behind the Chandra–Merlin containment test, query
    minimization, tuple-core computation and the relational evaluator
    (facts are ground atoms).

    Deciding containment of conjunctive queries is NP-complete in
    general, but when the pattern body is α-acyclic
    ({!Vplan_hypergraph.Hypergraph}) the decision problem is polynomial:
    [find] and [exists] answer it by dynamic programming over the GYO
    join tree (candidate matches per tree node, a bottom-up semi-join
    sweep, top-down witness assembly), falling back to the general
    backtracking search — most-constrained-first atom ordering plus
    predicate indexing — on cyclic patterns.  The counters
    [vplan_containment_fastpath_total] and
    [vplan_containment_fallback_total] account which path answered.
    Enumeration ([find_all], [iter_all]) always uses backtracking.

    Because neither search is free, every entry point accepts a
    [?budget] ({!Vplan_core.Budget.t}) ticked once per candidate tried,
    so a deadline or cancellation cuts the search off within one
    step. *)

open Vplan_cq

(** Flip the process-global fast-path default (on initially) — for A/B
    measurement of pipelines that reach containment many layers down.
    Per-call [?fastpath] overrides the global default. *)
val set_fastpath : bool -> unit

(** [find ~seed patterns targets] returns a substitution extending [seed]
    that maps every atom of [patterns] to an atom of [targets], or [None].
    [seed] typically carries the head correspondence.  The witness may
    differ between the two paths; both are valid homomorphisms. *)
val find :
  ?budget:Vplan_core.Budget.t ->
  ?fastpath:bool ->
  ?seed:Subst.t -> Atom.t list -> Atom.t list -> Subst.t option

(** [exists ~seed patterns targets] is [find ... <> None]. *)
val exists :
  ?budget:Vplan_core.Budget.t ->
  ?fastpath:bool ->
  ?seed:Subst.t -> Atom.t list -> Atom.t list -> bool

(** [find_all ~seed ~limit patterns targets] enumerates distinct
    homomorphisms (at most [limit] of them when given).  Two search
    branches producing the same substitution are deduplicated. *)
val find_all :
  ?budget:Vplan_core.Budget.t ->
  ?seed:Subst.t -> ?limit:int -> Atom.t list -> Atom.t list -> Subst.t list

(** [iter_all ~seed patterns targets ~f] calls [f] on every homomorphism
    found, without materializing the list; [f] returning [`Stop] aborts the
    enumeration.  Duplicate substitutions may be visited more than once
    when distinct target atoms induce the same bindings. *)
val iter_all :
  ?budget:Vplan_core.Budget.t ->
  ?seed:Subst.t -> Atom.t list -> Atom.t list -> f:(Subst.t -> [ `Continue | `Stop ]) -> unit
