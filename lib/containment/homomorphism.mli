(** Homomorphism (containment-mapping) search between atom lists.

    A homomorphism from a list of pattern atoms to a list of target atoms
    is a substitution on the pattern's variables that maps every constant
    to itself and sends each pattern atom to {e some} target atom.  This is
    the core primitive behind the Chandra–Merlin containment test, query
    minimization, tuple-core computation and the relational evaluator
    (facts are ground atoms).

    The search is backtracking and worst-case exponential — deciding
    containment of conjunctive queries is NP-complete — but the
    most-constrained-first atom ordering and predicate indexing keep it
    fast at the scales of the paper's workloads.  Because the search has
    no polynomial bound, every entry point accepts a [?budget]
    ({!Vplan_core.Budget.t}) ticked once per candidate tried, so a
    deadline or cancellation cuts the search off within one step. *)

open Vplan_cq

(** [find ~seed patterns targets] returns a substitution extending [seed]
    that maps every atom of [patterns] to an atom of [targets], or [None].
    [seed] typically carries the head correspondence. *)
val find :
  ?budget:Vplan_core.Budget.t ->
  ?seed:Subst.t -> Atom.t list -> Atom.t list -> Subst.t option

(** [exists ~seed patterns targets] is [find ... <> None]. *)
val exists :
  ?budget:Vplan_core.Budget.t ->
  ?seed:Subst.t -> Atom.t list -> Atom.t list -> bool

(** [find_all ~seed ~limit patterns targets] enumerates distinct
    homomorphisms (at most [limit] of them when given).  Two search
    branches producing the same substitution are deduplicated. *)
val find_all :
  ?budget:Vplan_core.Budget.t ->
  ?seed:Subst.t -> ?limit:int -> Atom.t list -> Atom.t list -> Subst.t list

(** [iter_all ~seed patterns targets ~f] calls [f] on every homomorphism
    found, without materializing the list; [f] returning [`Stop] aborts the
    enumeration.  Duplicate substitutions may be visited more than once
    when distinct target atoms induce the same bindings. *)
val iter_all :
  ?budget:Vplan_core.Budget.t ->
  ?seed:Subst.t -> Atom.t list -> Atom.t list -> f:(Subst.t -> [ `Continue | `Stop ]) -> unit
