(** Bottom-up evaluation of Datalog programs.

    {!naive} recomputes every rule against the full database each round;
    {!evaluate} is the standard semi-naive refinement that joins each
    rule once per IDB body position against only the {e delta} facts of
    the previous round.  Both compute the minimal model restricted to the
    given EDB. *)

open Vplan_cq
open Vplan_relational

(** [evaluate program edb] returns the fixpoint database (EDB facts plus
    all derived IDB facts).  [max_rounds] guards against runaway growth
    (default 10_000; raises [Vplan_error.Error (Step_limit _)] when
    exceeded).  A [?budget] is additionally ticked once per round, so a
    shared deadline or cancellation stops the fixpoint between rounds. *)
val evaluate :
  ?budget:Vplan_core.Budget.t -> ?max_rounds:int -> Program.t -> Database.t -> Database.t

(** [naive program edb] — reference implementation for testing. *)
val naive :
  ?budget:Vplan_core.Budget.t -> ?max_rounds:int -> Program.t -> Database.t -> Database.t

(** [query program edb q] — evaluate the program and then the conjunctive
    query [q] over the fixpoint. *)
val query :
  ?budget:Vplan_core.Budget.t ->
  ?max_rounds:int -> Program.t -> Database.t -> Query.t -> Relation.t
