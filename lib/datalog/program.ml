open Vplan_cq

type rule = Query.t

type t = {
  rules : rule list;
  idb : Names.Sset.t;
}

let collect_arities rules =
  List.fold_left
    (fun acc (r : Query.t) ->
      List.fold_left
        (fun acc (a : Atom.t) ->
          match acc with
          | Error _ as e -> e
          | Ok m -> (
              match Names.Smap.find_opt a.pred m with
              | Some arity when arity <> Atom.arity a ->
                  Error
                    (Printf.sprintf "predicate %s used with arities %d and %d" a.pred arity
                       (Atom.arity a))
              | Some _ -> Ok m
              | None -> Ok (Names.Smap.add a.pred (Atom.arity a) m)))
        acc (r.head :: r.body))
    (Ok Names.Smap.empty) rules

let make rules =
  match collect_arities rules with
  | Error e -> Error e
  | Ok _ ->
      let idb =
        List.fold_left
          (fun acc (r : Query.t) -> Names.Sset.add r.head.Atom.pred acc)
          Names.Sset.empty rules
      in
      Ok { rules; idb }

let make_exn rules =
  match make rules with Ok p -> p | Error e -> invalid_arg ("Program.make_exn: " ^ e)

let parse src =
  match Parser.parse_program src with
  | Error e -> Error (Vplan_core.Vplan_error.parse_to_string e)
  | Ok rules -> make rules

let rules t = t.rules
let idb_predicates t = t.idb

let edb_predicates t =
  List.fold_left
    (fun acc (r : Query.t) ->
      List.fold_left
        (fun acc (a : Atom.t) ->
          if Names.Sset.mem a.pred t.idb then acc else Names.Sset.add a.pred acc)
        acc r.body)
    Names.Sset.empty t.rules

let is_recursive t =
  (* DFS over the IDB dependency graph *)
  let deps pred =
    List.concat_map
      (fun (r : Query.t) ->
        if String.equal r.head.Atom.pred pred then
          List.filter_map
            (fun (a : Atom.t) -> if Names.Sset.mem a.pred t.idb then Some a.pred else None)
            r.body
        else [])
      t.rules
    |> List.sort_uniq String.compare
  in
  let reaches start =
    let visited = ref Names.Sset.empty in
    let rec dfs p =
      List.exists
        (fun d ->
          String.equal d start
          ||
          if Names.Sset.mem d !visited then false
          else begin
            visited := Names.Sset.add d !visited;
            dfs d
          end)
        (deps p)
    in
    dfs start
  in
  Names.Sset.exists reaches t.idb

let pp ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a.@." Query.pp r) t.rules
