open Vplan_cq
open Vplan_relational
module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error

(* The round cap and an optional shared budget are both checked at the
   head of every fixpoint round: a non-terminating (or merely huge)
   recursion stops with a typed resource error instead of an opaque
   [Failure], and cancellation from another domain lands between rounds. *)
let round_check ?budget ~max_rounds round =
  if round > max_rounds then
    raise (Vplan_error.Error (Step_limit { limit = max_rounds }));
  Budget.tick budget

let derive_rule db (r : Query.t) =
  Eval.satisfying_envs db r.body
  |> List.map (fun env -> Eval.tuple_of_env env r.head.Atom.args)

let add_facts pred tuples db =
  List.fold_left (fun db t -> Database.add_fact pred t db) db tuples

let naive ?budget ?(max_rounds = 10_000) program edb =
  let rec loop db round =
    round_check ?budget ~max_rounds round;
    let db' =
      List.fold_left
        (fun acc (r : Query.t) -> add_facts r.head.Atom.pred (derive_rule db r) acc)
        db (Program.rules program)
    in
    if Database.equal db db' then db else loop db' (round + 1)
  in
  loop edb 1

(* Semi-naive: each rule with k IDB body atoms yields k delta variants;
   variant i reads atom i from the delta relations and the other atoms
   from the full database.  Delta relations are stored in the same
   database under a reserved name. *)
let delta_name pred = "\x01delta:" ^ pred

let delta_variants ~idb (r : Query.t) =
  let rec variants prefix = function
    | [] -> []
    | (a : Atom.t) :: rest ->
        let this =
          if Names.Sset.mem a.pred idb then
            [ List.rev_append prefix (Atom.make (delta_name a.pred) a.args :: rest) ]
          else []
        in
        this @ variants (a :: prefix) rest
  in
  variants [] r.body

let evaluate ?budget ?(max_rounds = 10_000) program edb =
  let idb = Program.idb_predicates program in
  let rules = Program.rules program in
  (* round 0: plain evaluation of every rule against the EDB *)
  let initial_delta =
    List.fold_left
      (fun acc (r : Query.t) ->
        let tuples = derive_rule edb r in
        add_facts r.head.Atom.pred tuples acc)
      Database.empty rules
  in
  let with_deltas db delta =
    Names.Sset.fold
      (fun pred acc ->
        match Database.find pred delta with
        | Some rel -> Database.add_relation (delta_name pred) rel acc
        | None -> acc)
      idb db
  in
  let union_into db delta =
    Names.Sset.fold
      (fun pred acc ->
        match Database.find pred delta with
        | None -> acc
        | Some rel ->
            Relation.fold (fun t acc -> Database.add_fact pred t acc) rel acc)
      idb db
  in
  let rec loop db delta round =
    round_check ?budget ~max_rounds round;
    if Database.total_size delta = 0 then db
    else begin
      (* merge the delta first: non-delta body positions must see the
         complete current database, or derivations needing two new facts
         at different positions would be missed *)
      let db = union_into db delta in
      let scratch = with_deltas db delta in
      let fresh =
        List.fold_left
          (fun acc (r : Query.t) ->
            List.fold_left
              (fun acc body ->
                Eval.satisfying_envs scratch body
                |> List.fold_left
                     (fun acc env ->
                       let tuple = Eval.tuple_of_env env r.head.Atom.args in
                       let existing =
                         match Database.find r.head.Atom.pred db with
                         | Some rel -> Relation.mem tuple rel
                         | None -> false
                       in
                       if existing then acc
                       else Database.add_fact r.head.Atom.pred tuple acc)
                     acc)
              acc
              (delta_variants ~idb r))
          Database.empty rules
      in
      (* facts derived this round that are not yet known become the next
         delta *)
      let next_delta =
        Names.Sset.fold
          (fun pred acc ->
            match Database.find pred fresh with
            | None -> acc
            | Some rel ->
                Relation.fold
                  (fun t acc ->
                    let known =
                      match Database.find pred db with
                      | Some r -> Relation.mem t r
                      | None -> false
                    in
                    if known then acc else Database.add_fact pred t acc)
                  rel acc)
          idb Database.empty
      in
      loop db next_delta (round + 1)
    end
  in
  loop edb initial_delta 1

let query ?budget ?max_rounds program edb q =
  Eval.answers (evaluate ?budget ?max_rounds program edb) q
