(** The flight recorder: a fixed-size lock-free ring buffer of recent
    request records, written by every worker domain and dumped on
    demand (`recorder dump` on the server).

    A record is immutable once built; {!append} claims a sequence number
    with one [fetch_and_add] and publishes the record with one atomic
    store into its slot, so concurrent writers can never tear a record —
    a reader sees a whole record or the slot's previous occupant.  The
    ring keeps the last {!capacity} records; older ones are overwritten.

    Slow or analyzed requests retain their full span tree and operator
    profile in the record (the `trace dump <id>` surface), replacing the
    old one-line stderr slow log — which survives as {!log_line}, a
    shared sink that writes one whole line per call instead of the torn
    interleavings of per-domain [Format.eprintf]. *)

type record = {
  seq : int;  (** monotonically increasing append order *)
  ts_ms : float;  (** wall-clock milliseconds at append *)
  trace : int;  (** request trace id; [-1] = none *)
  kind : string;  (** request kind: [rewrite], [plan], [analyze], [shed], ... *)
  latency_ms : float;
  source : string;  (** cache [hit]/[miss], [""] = n/a *)
  mode : string;  (** cost mode in effect, [""] = n/a *)
  classification : string;  (** body classification, [""] = n/a *)
  qerror : float;  (** per-query q-error; [nan] = not measured *)
  answers : int;  (** answer count; [-1] = n/a *)
  truncated : string;  (** truncation/shed reason, [""] = complete *)
  slow : bool;  (** crossed the slow-query threshold *)
  detail : string;  (** free-form context, e.g. the query head *)
  spans : Trace.span list;  (** retained span tree (slow/analyzed only) *)
  profile : Profile.node option;  (** retained operator profile *)
}

(** Ring size: how many recent records a dump can return. *)
val capacity : int

(** The recorder is on by default; turning it off makes {!append} a
    no-op (one atomic load) — the bench's overhead baseline. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Append one record.  Lock-free; safe from any domain. *)
val append :
  ?trace:int ->
  ?latency_ms:float ->
  ?source:string ->
  ?mode:string ->
  ?classification:string ->
  ?qerror:float ->
  ?answers:int ->
  ?truncated:string ->
  ?slow:bool ->
  ?detail:string ->
  ?spans:Trace.span list ->
  ?profile:Profile.node ->
  kind:string ->
  unit ->
  unit

(** Records currently in the ring, oldest first. *)
val dump : unit -> record list

(** Most recent record carrying the given trace id. *)
val find_trace : int -> record option

(** One record as a single text line (deterministic field order; spans
    and profile appear as counts). *)
val render : record -> string

(** One record as a single JSON object (spans/profile as counts). *)
val to_json : record -> string

(** Empty the ring and re-enable it.  For tests and benchmarks. *)
val reset : unit -> unit

(** [log_line s] writes [s] plus a newline to stderr as one whole line:
    the shared sink for operational one-liners (slow-query log), safe
    against interleaving across domains. *)
val log_line : string -> unit
