(* Flight recorder: lock-free ring of recent request records.

   Writers claim a slot with [fetch_and_add] on the sequence counter and
   publish with a single [Atomic.set] of an immutable record — no torn
   reads are possible.  Two writers race for the same slot only when the
   ring wraps between their claims; whichever publishes last wins with a
   whole record, which is the ring's overwrite semantics anyway.
   Readers snapshot the slots and order by sequence number. *)

type record = {
  seq : int;
  ts_ms : float;
  trace : int;
  kind : string;
  latency_ms : float;
  source : string;
  mode : string;
  classification : string;
  qerror : float;
  answers : int;
  truncated : string;
  slow : bool;
  detail : string;
  spans : Trace.span list;
  profile : Profile.node option;
}

let capacity = 512
let slots : record option Atomic.t array = Array.init capacity (fun _ -> Atomic.make None)
let next : int Atomic.t = Atomic.make 0
let on : bool Atomic.t = Atomic.make true

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let append ?(trace = -1) ?(latency_ms = 0.) ?(source = "") ?(mode = "")
    ?(classification = "") ?(qerror = Float.nan) ?(answers = -1)
    ?(truncated = "") ?(slow = false) ?(detail = "") ?(spans = []) ?profile
    ~kind () =
  if Atomic.get on then begin
    let seq = Atomic.fetch_and_add next 1 in
    let r =
      {
        seq;
        ts_ms = Unix.gettimeofday () *. 1000.;
        trace;
        kind;
        latency_ms;
        source;
        mode;
        classification;
        qerror;
        answers;
        truncated;
        slow;
        detail;
        spans;
        profile;
      }
    in
    Atomic.set slots.(seq mod capacity) (Some r)
  end

let dump () =
  let rs =
    Array.to_list slots
    |> List.filter_map Atomic.get
    |> List.sort (fun a b -> compare a.seq b.seq)
  in
  rs

let find_trace id =
  List.fold_left
    (fun acc r -> if r.trace = id then Some r else acc)
    None (dump ())

let opt_str s = if s = "" then "-" else s
let opt_int n = if n < 0 then "-" else string_of_int n
let opt_q q = if Float.is_nan q then "-" else Printf.sprintf "%.2f" q

let render r =
  Printf.sprintf
    "seq=%d trace=%s kind=%s ms=%.3f source=%s mode=%s class=%s answers=%s \
     qerror=%s truncated=%s slow=%s spans=%d profile=%s%s"
    r.seq
    (opt_int r.trace)
    r.kind r.latency_ms (opt_str r.source) (opt_str r.mode)
    (opt_str r.classification) (opt_int r.answers) (opt_q r.qerror)
    (opt_str r.truncated)
    (if r.slow then "yes" else "no")
    (List.length r.spans)
    (match r.profile with Some _ -> "yes" | None -> "no")
    (if r.detail = "" then "" else " " ^ r.detail)

let to_json r =
  let str k v = Printf.sprintf "\"%s\":\"%s\"" k (Trace.json_escape v) in
  let num k v = Printf.sprintf "\"%s\":%s" k v in
  String.concat ","
    [
      num "seq" (string_of_int r.seq);
      num "ts_ms" (Printf.sprintf "%.3f" r.ts_ms);
      num "trace" (string_of_int r.trace);
      str "kind" r.kind;
      num "ms" (Printf.sprintf "%.3f" r.latency_ms);
      str "source" r.source;
      str "mode" r.mode;
      str "class" r.classification;
      num "answers" (string_of_int r.answers);
      num "qerror" (if Float.is_nan r.qerror then "null" else Printf.sprintf "%.4f" r.qerror);
      str "truncated" r.truncated;
      num "slow" (if r.slow then "true" else "false");
      num "spans" (string_of_int (List.length r.spans));
      num "profile" (match r.profile with Some _ -> "true" | None -> "false");
      str "detail" r.detail;
    ]
  |> Printf.sprintf "{%s}"

let reset () =
  Atomic.set on true;
  Atomic.set next 0;
  Array.iter (fun s -> Atomic.set s None) slots

(* ------------------------------------------------------------------ *)
(* Shared line sink                                                    *)

let sink_lock = Mutex.create ()

let log_line s =
  Mutex.lock sink_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink_lock)
    (fun () ->
      output_string stderr (s ^ "\n");
      flush stderr)
