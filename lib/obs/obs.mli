(** Pipeline-phase instrumentation: {!phase} is what CoreCover's stages
    (and plan selection) wrap themselves in.

    [phase name f] runs [f], observing its wall time into the
    [vplan_phase_<name>_ms] histogram of {!Metrics} unconditionally, and
    opening a {!Trace} span named [name] when a trace is active.
    Exceptions still record both, then propagate. *)

(** The histogram behind a phase name ([vplan_phase_<name>_ms]),
    registering it on first use. *)
val phase_histogram : string -> Metrics.histogram

val phase : string -> (unit -> 'a) -> 'a
