(** A span-based tracer with per-domain buffers and zero disabled cost.

    A trace is collected by {!run}: while it executes, every
    {!with_span} anywhere in the process records a timed span into the
    recording domain's own buffer (registered with the session once per
    domain; appends take no lock), and the buffers are merged into one
    span list when {!run} returns.  Parent links come from the
    per-domain stack of open spans; {!Vplan_parallel.Parallel.map}
    forwards the spawning domain's {!context} into its workers, so spans
    recorded inside a parallel fan-out attach under the span that was
    open at the spawn point.

    When no trace is active — the steady state — {!with_span} is a
    single atomic load and branch in front of the wrapped function, so
    instrumented hot paths keep their uninstrumented cost.

    Timestamps come from one process-wide wall clock read at span entry
    and exit ([Unix.gettimeofday]; the stdlib exposes no monotonic
    clock), with durations of sibling spans measured against the same
    clock — a clock step during a trace can skew spans, never crash.

    Two session kinds exist.  A *global* session ({!run}) captures spans
    from every domain; at most one is active at a time, and a {!run}
    nested inside any session contributes its spans there and returns an
    empty list.  A *scoped* session ({!run_scoped}) is bound to the
    calling domain, so concurrent server workers can each trace their own
    request without interleaving; any number may run at once. *)

type span = {
  id : int;
  parent : int;  (** span id of the parent; [-1] for top-level spans *)
  name : string;
  start_ms : float;  (** offset from the session start *)
  dur_ms : float;
  domain : int;  (** id of the domain that recorded the span *)
  kv : (string * float) list;  (** annotations, in {!annotate} order *)
}

(** Whether a trace session is currently active. *)
val enabled : unit -> bool

(** [with_span name f] runs [f], recording a span around it when a trace
    is active (exceptions still record the span, then propagate); calls
    [f] directly otherwise. *)
val with_span : string -> (unit -> 'a) -> 'a

(** [annotate key value] attaches a key/value pair to the innermost open
    span on the calling domain; a no-op when tracing is disabled or no
    span is open here.  Annotating an existing key adds to its value, so
    a phase that runs in several passes reports totals. *)
val annotate : string -> float -> unit

(** A capture of (active session, innermost open span) for handing to
    another domain. *)
type ctx

val context : unit -> ctx option

(** [with_context ctx f] runs [f] with its top-level spans parented
    under [ctx]'s span.  [with_context None f] is [f ()]. *)
val with_context : ctx option -> (unit -> 'a) -> 'a

(** [run f] collects a trace of [f]: returns [f ()] and the finished
    spans, sorted by start time.  Spans still open when [f] raises are
    lost; the session always ends. *)
val run : (unit -> 'a) -> 'a * span list

(** [run_scoped f] collects a trace of [f] in a session visible only to
    the calling domain (plus workers it spawns through
    {!context}/{!with_context} forwarding).  Concurrent scoped sessions
    on different domains do not see each other's spans.  Inside a global
    session — or another scoped session on this domain — it behaves like
    a nested {!run}: [f]'s spans go to the enclosing session and the
    returned list is empty. *)
val run_scoped : (unit -> 'a) -> 'a * span list

(** Sum of the durations of top-level spans — the traced portion of the
    request, to compare against its measured latency. *)
val top_level_total : span list -> float

(** Render the spans as an ASCII tree (one line per span: name,
    duration, annotations), children indented under their parents. *)
val pp_tree : Format.formatter -> span list -> unit

(** Escape a string for embedding in a JSON string literal. *)
val json_escape : string -> string

(** One Chrome trace-event object (JSON text, ["ph":"X"] complete event,
    microsecond timestamps).  Non-finite [args] values are clamped to
    keep the output valid JSON. *)
val chrome_event :
  name:string ->
  ts_us:float ->
  dur_us:float ->
  ?tid:int ->
  ?args:(string * float) list ->
  unit ->
  string

(** [chrome_json spans] serializes the spans as a Chrome [trace.json]
    document ([{"traceEvents": [...]}]), loadable in chrome://tracing or
    Perfetto; span annotations become event [args] and the recording
    domain becomes the [tid].  [extra] appends pre-rendered events
    (e.g. {!Profile.chrome_events}). *)
val chrome_json : ?extra:string list -> span list -> string
