(** Operator-level execution profiles: a tree of per-operator runtime
    facts (rows in/out, build side size, wall time, partition counts,
    estimated cardinality) recorded by the execution engine and rendered
    by [explain analyze].

    The same zero-disabled-cost discipline as {!Trace} applies, enforced
    structurally rather than by a global flag: every recording entry
    point takes an [option] — the engine threads [?profile] through its
    call graph and each instrumentation site is a single pattern match
    when profiling is off.  A profile belongs to one request on one
    domain; unlike {!Trace} there is no cross-domain registration,
    because operators of one execution run sequentially.

    Estimated rows come from a caller-supplied callback (the execution
    engine knows the operator order, the cost layer knows the
    statistics); {!qerror} folds an (estimate, actual) pair into the
    standard q-error [max (est/act, act/est)] with both sides floored at
    one tuple. *)

type node = {
  op : string;  (** operator kind: [query], [exec], [select], [semijoin],
                    [yannakakis], [scan], [join], [cross], [dedup] *)
  name : string;  (** predicate / relation name, [""] when not applicable *)
  detail : string;  (** rendered atom or operator arguments *)
  mutable rows_in : int;  (** probe-side input rows; [-1] = not applicable *)
  mutable build_rows : int;  (** build-side rows of a hash join; [-1] = n/a *)
  mutable rows_out : int;  (** output rows; [-1] = not recorded *)
  mutable est_rows : float;  (** estimated output rows; [nan] = no estimate *)
  mutable start_ms : float;  (** offset from profile start *)
  mutable dur_ms : float;
  mutable partitions : int;  (** grace/radix partition count; [0] = in-memory *)
  mutable children : node list;
}

type t

(** [create ~name ()] starts a profile whose root node is a [query]
    operator called [name]. *)
val create : ?name:string -> unit -> t

(** [step p ~op ~name ~detail f] — with [Some p], opens a child node
    under the innermost open node, runs [f (Some node)] timing it into
    the node, and closes it (also on exceptions).  With [None], runs
    [f None]: profiling off costs one match. *)
val step :
  t option ->
  op:string ->
  ?name:string ->
  ?detail:string ->
  (node option -> 'a) ->
  'a

(** Field setters, no-ops on [None] so instrumentation sites stay
    branch-free when profiling is off. *)
val set_rows_in : node option -> int -> unit

val set_build_rows : node option -> int -> unit
val set_rows_out : node option -> int -> unit
val set_est_rows : node option -> float -> unit
val set_partitions : node option -> int -> unit

(** [finish p] closes the root (recording total duration) and returns
    the tree with children in execution order. *)
val finish : t -> node

(** [qerror ~est ~actual] — the q-error [max (est/act, act/est)] with
    both sides floored at 1.0 (an empty operator estimated empty is
    perfect, not undefined).  [nan] when [est] is [nan]. *)
val qerror : est:float -> actual:int -> float

(** Largest q-error over every node of the tree carrying an estimate;
    [nan] when no node has one. *)
val max_qerror : node -> float

(** Nodes of the tree in preorder. *)
val preorder : node -> node list

(** Render the tree, one operator per line: rows in/out, build rows,
    estimated rows with per-operator q-error, duration, partition
    count. *)
val pp_tree : Format.formatter -> node -> unit

(** Chrome trace-event objects (["ph":"X"] complete events, microsecond
    timestamps) for every node of the tree, for embedding in a
    [trace.json] — see {!Trace.chrome_json}. *)
val chrome_events : ?tid:int -> node -> string list
