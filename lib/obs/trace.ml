(* A span-based tracer with per-domain buffers.

   One trace session may be active per process ([run]).  Each domain
   records finished spans into its own buffer — registered with the
   session once per domain (the only locked operation) and appended to
   lock-free afterwards — so Parallel.map workers trace without
   contending.  Buffers are merged when [run] returns, i.e. after every
   worker has been joined.

   When no session is active, [with_span] is one atomic load and a
   branch in front of the traced function: the disabled tracer costs
   nothing on the hot paths. *)

type span = {
  id : int;
  parent : int; (* -1 = top-level *)
  name : string;
  start_ms : float; (* relative to the session start *)
  dur_ms : float;
  domain : int;
  kv : (string * float) list;
}

type session = {
  t0 : float;
  next_id : int Atomic.t;
  mutable buffers : span list ref list;
  reg : Mutex.t;
}

(* An open (not yet finished) span on this domain's stack. *)
type frame = { fid : int; mutable fkv : (string * float) list }

(* Domain-local tracing state.  [sess] remembers which session the
   buffer was registered with: a stale binding (from a previous trace)
   is re-initialized on first use under the new session. *)
type local = {
  mutable sess : session option;
  mutable buf : span list ref;
  mutable stack : frame list; (* innermost open span first *)
  mutable root_parent : int; (* parent of top-level spans on this domain *)
}

let dls : local Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { sess = None; buf = ref []; stack = []; root_parent = -1 })

let active : session option Atomic.t = Atomic.make None

let enabled () = match Atomic.get active with Some _ -> true | None -> false

let now_ms () = Unix.gettimeofday () *. 1000.

let bound_local sess =
  let l = Domain.DLS.get dls in
  let stale = match l.sess with Some s -> s != sess | None -> true in
  if stale then begin
    l.sess <- Some sess;
    l.buf <- ref [];
    l.stack <- [];
    l.root_parent <- -1;
    Mutex.lock sess.reg;
    sess.buffers <- l.buf :: sess.buffers;
    Mutex.unlock sess.reg
  end;
  l

let with_span name f =
  match Atomic.get active with
  | None -> f ()
  | Some sess ->
      let l = bound_local sess in
      let parent =
        match l.stack with fr :: _ -> fr.fid | [] -> l.root_parent
      in
      let id = Atomic.fetch_and_add sess.next_id 1 in
      let frame = { fid = id; fkv = [] } in
      l.stack <- frame :: l.stack;
      let start = now_ms () in
      let finish () =
        let stop = now_ms () in
        (match l.stack with _ :: rest -> l.stack <- rest | [] -> ());
        l.buf :=
          {
            id;
            parent;
            name;
            start_ms = start -. sess.t0;
            dur_ms = stop -. start;
            domain = (Domain.self () :> int);
            kv = List.rev frame.fkv;
          }
          :: !(l.buf)
      in
      Fun.protect ~finally:finish f

let annotate key value =
  match Atomic.get active with
  | None -> ()
  | Some sess -> (
      let l = Domain.DLS.get dls in
      match l.sess with
      | Some s when s == sess -> (
          match l.stack with
          | fr :: _ ->
              (* repeated keys accumulate, so a phase run in several
                 passes (set-cover size levels) reports totals *)
              fr.fkv <-
                (match List.assoc_opt key fr.fkv with
                | Some v0 -> (key, v0 +. value) :: List.remove_assoc key fr.fkv
                | None -> (key, value) :: fr.fkv)
          | [] -> ())
      | _ -> ())

type ctx = session * int

let context () =
  match Atomic.get active with
  | None -> None
  | Some sess ->
      let l = bound_local sess in
      let parent =
        match l.stack with fr :: _ -> fr.fid | [] -> l.root_parent
      in
      Some (sess, parent)

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some (sess, parent) -> (
      (* only honor the context while its session is still the active
         one; a context surviving past its [run] is ignored *)
      match Atomic.get active with
      | Some live when live == sess ->
          let l = bound_local sess in
          let saved = l.root_parent in
          l.root_parent <- parent;
          Fun.protect ~finally:(fun () -> l.root_parent <- saved) f
      | _ -> f ())

let run f =
  match Atomic.get active with
  | Some _ ->
      (* nested traces do not exist: the inner [run] contributes its
         spans to the outer session instead of starting one *)
      (f (), [])
  | None ->
      let sess =
        { t0 = now_ms (); next_id = Atomic.make 0; buffers = []; reg = Mutex.create () }
      in
      Atomic.set active (Some sess);
      let result =
        Fun.protect ~finally:(fun () -> Atomic.set active None) f
      in
      (* every domain that recorded has finished by now: [run] is
         synchronous and Parallel.map joins all its workers *)
      let spans = List.concat_map (fun b -> !b) sess.buffers in
      (result, List.sort (fun a b -> Float.compare a.start_ms b.start_ms) spans)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let children spans id =
  List.filter (fun s -> s.parent = id) spans

let top_level_total spans =
  List.fold_left
    (fun acc s -> if s.parent = -1 then acc +. s.dur_ms else acc)
    0. spans

let pp_kv ppf kv =
  match kv with
  | [] -> ()
  | kv ->
      Format.fprintf ppf "  [%s]"
        (String.concat " "
           (List.map
              (fun (k, v) ->
                if Float.is_integer v && Float.abs v < 1e15 then
                  Printf.sprintf "%s=%.0f" k v
                else Printf.sprintf "%s=%g" k v)
              kv))

let pp_tree ppf spans =
  let rec pp_forest prefix nodes =
    let n = List.length nodes in
    List.iteri
      (fun i s ->
        let last = i = n - 1 in
        let branch = if last then "`- " else "|- " in
        Format.fprintf ppf "%s%s%-18s %10.3f ms%a@." prefix branch s.name s.dur_ms
          pp_kv s.kv;
        let prefix' = prefix ^ if last then "   " else "|  " in
        pp_forest prefix' (children spans s.id))
      nodes
  in
  pp_forest "" (children spans (-1))
