(* A span-based tracer with per-domain buffers.

   Two kinds of session exist.  A *global* session ([run]) captures
   spans from every domain in the process — at most one is active at a
   time.  A *scoped* session ([run_scoped]) is bound to the calling
   domain through its domain-local state, so each worker domain of a
   server can trace its own request concurrently without seeing its
   neighbours' spans; workers spawned from inside a scoped session still
   join it through [context]/[with_context], exactly as with a global
   session.

   Each domain records finished spans into its own buffer — registered
   with the session once per domain (the only locked operation) and
   appended to lock-free afterwards — so Parallel.map workers trace
   without contending.  Buffers are merged when the session's run
   returns, i.e. after every worker has been joined.

   When no session is active, [with_span] is two atomic loads and a
   branch in front of the traced function: the disabled tracer costs
   nothing on the hot paths. *)

type span = {
  id : int;
  parent : int; (* -1 = top-level *)
  name : string;
  start_ms : float; (* relative to the session start *)
  dur_ms : float;
  domain : int;
  kv : (string * float) list;
}

type session = {
  t0 : float;
  next_id : int Atomic.t;
  mutable buffers : span list ref list;
  reg : Mutex.t;
  live : bool Atomic.t; (* scoped sessions outlive their domain binding *)
  global : bool;
}

(* An open (not yet finished) span on this domain's stack. *)
type frame = { fid : int; mutable fkv : (string * float) list }

(* Domain-local tracing state.  [sess] remembers which session the
   buffer was registered with: a stale binding (from a previous trace)
   is re-initialized on first use under the new session. *)
type local = {
  mutable sess : session option;
  mutable buf : span list ref;
  mutable stack : frame list; (* innermost open span first *)
  mutable root_parent : int; (* parent of top-level spans on this domain *)
}

let dls : local Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { sess = None; buf = ref []; stack = []; root_parent = -1 })

let active : session option Atomic.t = Atomic.make None

(* Count of live scoped sessions process-wide: the disabled fast path
   must not touch domain-local state, so [with_span] checks this counter
   next to [active] and only consults the DLS when either fires. *)
let scoped : int Atomic.t = Atomic.make 0

let now_ms () = Unix.gettimeofday () *. 1000.

(* The scoped session bound to this domain, if it is still running. *)
let scoped_here l =
  if Atomic.get scoped = 0 then None
  else
    match l.sess with
    | Some s when (not s.global) && Atomic.get s.live -> Some s
    | _ -> None

(* The session a span recorded on this domain belongs to: the domain's
   own scoped session first (so a worker tracing its request never leaks
   spans into a concurrently started global trace), else the global
   one. *)
let session_here l =
  match scoped_here l with Some s -> Some s | None -> Atomic.get active

let enabled () =
  (match Atomic.get active with Some _ -> true | None -> false)
  || (Atomic.get scoped > 0 && scoped_here (Domain.DLS.get dls) <> None)

let bound_local l sess =
  let stale = match l.sess with Some s -> s != sess | None -> true in
  if stale then begin
    l.sess <- Some sess;
    l.buf <- ref [];
    l.stack <- [];
    l.root_parent <- -1;
    Mutex.lock sess.reg;
    sess.buffers <- l.buf :: sess.buffers;
    Mutex.unlock sess.reg
  end;
  l

let disabled () = Atomic.get active == None && Atomic.get scoped = 0

let with_span name f =
  if disabled () then f ()
  else
    let l = Domain.DLS.get dls in
    match session_here l with
    | None -> f ()
    | Some sess ->
        let l = bound_local l sess in
        let parent =
          match l.stack with fr :: _ -> fr.fid | [] -> l.root_parent
        in
        let id = Atomic.fetch_and_add sess.next_id 1 in
        let frame = { fid = id; fkv = [] } in
        l.stack <- frame :: l.stack;
        let start = now_ms () in
        let finish () =
          let stop = now_ms () in
          (match l.stack with _ :: rest -> l.stack <- rest | [] -> ());
          l.buf :=
            {
              id;
              parent;
              name;
              start_ms = start -. sess.t0;
              dur_ms = stop -. start;
              domain = (Domain.self () :> int);
              kv = List.rev frame.fkv;
            }
            :: !(l.buf)
        in
        Fun.protect ~finally:finish f

let annotate key value =
  if disabled () then ()
  else
    let l = Domain.DLS.get dls in
    match session_here l with
    | None -> ()
    | Some sess -> (
        match l.sess with
        | Some s when s == sess -> (
            match l.stack with
            | fr :: _ ->
                (* repeated keys accumulate, so a phase run in several
                   passes (set-cover size levels) reports totals *)
                fr.fkv <-
                  (match List.assoc_opt key fr.fkv with
                  | Some v0 -> (key, v0 +. value) :: List.remove_assoc key fr.fkv
                  | None -> (key, value) :: fr.fkv)
            | [] -> ())
        | _ -> ())

type ctx = session * int

let context () =
  if disabled () then None
  else
    let l = Domain.DLS.get dls in
    match session_here l with
    | None -> None
    | Some sess ->
        let l = bound_local l sess in
        let parent =
          match l.stack with fr :: _ -> fr.fid | [] -> l.root_parent
        in
        Some (sess, parent)

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some (sess, parent) ->
      (* only honor the context while its session is still running; a
         context surviving past its run is ignored *)
      let still_live =
        if sess.global then (
          match Atomic.get active with
          | Some live -> live == sess
          | None -> false)
        else Atomic.get sess.live
      in
      if not still_live then f ()
      else begin
        let l = bound_local (Domain.DLS.get dls) sess in
        let saved = l.root_parent in
        l.root_parent <- parent;
        Fun.protect ~finally:(fun () -> l.root_parent <- saved) f
      end

let make_session ~global =
  {
    t0 = now_ms ();
    next_id = Atomic.make 0;
    buffers = [];
    reg = Mutex.create ();
    live = Atomic.make true;
    global;
  }

let collect sess =
  (* every domain that recorded has finished by now: runs are
     synchronous and Parallel.map joins all its workers *)
  let spans = List.concat_map (fun b -> !b) sess.buffers in
  List.sort (fun a b -> Float.compare a.start_ms b.start_ms) spans

let run f =
  if (not (disabled ())) && session_here (Domain.DLS.get dls) <> None then
    (* nested traces do not exist: the inner [run] contributes its spans
       to the session already covering this domain *)
    (f (), [])
  else
    let sess = make_session ~global:true in
    if not (Atomic.compare_and_set active None (Some sess)) then (f (), [])
    else
      let result =
        Fun.protect
          ~finally:(fun () ->
            Atomic.set active None;
            Atomic.set sess.live false)
          f
      in
      (result, collect sess)

let run_scoped f =
  let l = Domain.DLS.get dls in
  if (not (disabled ())) && session_here l <> None then
    (* already traced (enclosing global or scoped session): contribute *)
    (f (), [])
  else begin
    let sess = make_session ~global:false in
    let saved_sess = l.sess
    and saved_buf = l.buf
    and saved_stack = l.stack
    and saved_root = l.root_parent in
    l.sess <- Some sess;
    l.buf <- ref [];
    l.stack <- [];
    l.root_parent <- -1;
    sess.buffers <- [ l.buf ];
    Atomic.incr scoped;
    let finish () =
      Atomic.set sess.live false;
      Atomic.decr scoped;
      l.sess <- saved_sess;
      l.buf <- saved_buf;
      l.stack <- saved_stack;
      l.root_parent <- saved_root
    in
    let result = Fun.protect ~finally:finish f in
    (result, collect sess)
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let children spans id =
  List.filter (fun s -> s.parent = id) spans

let top_level_total spans =
  List.fold_left
    (fun acc s -> if s.parent = -1 then acc +. s.dur_ms else acc)
    0. spans

let pp_kv ppf kv =
  match kv with
  | [] -> ()
  | kv ->
      Format.fprintf ppf "  [%s]"
        (String.concat " "
           (List.map
              (fun (k, v) ->
                if Float.is_integer v && Float.abs v < 1e15 then
                  Printf.sprintf "%s=%.0f" k v
                else Printf.sprintf "%s=%g" k v)
              kv))

let pp_tree ppf spans =
  let rec pp_forest prefix nodes =
    let n = List.length nodes in
    List.iteri
      (fun i s ->
        let last = i = n - 1 in
        let branch = if last then "`- " else "|- " in
        Format.fprintf ppf "%s%s%-18s %10.3f ms%a@." prefix branch s.name s.dur_ms
          pp_kv s.kv;
        let prefix' = prefix ^ if last then "   " else "|  " in
        pp_forest prefix' (children spans s.id))
      nodes
  in
  pp_forest "" (children spans (-1))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_nan v then "0"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let chrome_event ~name ~ts_us ~dur_us ?(tid = 0) ?(args = []) () =
  let args_s =
    match args with
    | [] -> ""
    | kv ->
        Printf.sprintf ",\"args\":{%s}"
          (String.concat ","
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v))
                kv))
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"vplan\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d%s}"
    (json_escape name) ts_us dur_us tid args_s

let chrome_json ?(extra = []) spans =
  let evs =
    List.map
      (fun s ->
        chrome_event ~name:s.name ~ts_us:(s.start_ms *. 1000.)
          ~dur_us:(s.dur_ms *. 1000.) ~tid:s.domain ~args:s.kv ())
      spans
  in
  "{\"traceEvents\":[" ^ String.concat "," (evs @ extra)
  ^ "],\"displayTimeUnit\":\"ms\"}"
