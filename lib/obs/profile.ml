(* Operator profile trees for the execution engine.

   A profile is built by one domain for one execution: [step] pushes a
   node under the innermost open node, times the wrapped function, and
   pops.  Children are accumulated in reverse and put back into
   execution order by [finish].  Every entry point takes an [option] so
   the disabled path ([None] threaded through the engine) is a single
   pattern match per site — the {!Trace} discipline, enforced by types
   instead of a global flag. *)

type node = {
  op : string;
  name : string;
  detail : string;
  mutable rows_in : int;
  mutable build_rows : int;
  mutable rows_out : int;
  mutable est_rows : float;
  mutable start_ms : float;
  mutable dur_ms : float;
  mutable partitions : int;
  mutable children : node list; (* reverse execution order while open *)
}

type t = {
  t0 : float;
  root : node;
  mutable stack : node list; (* innermost open node first; root at bottom *)
}

let now_ms () = Unix.gettimeofday () *. 1000.

let mk op name detail =
  {
    op;
    name;
    detail;
    rows_in = -1;
    build_rows = -1;
    rows_out = -1;
    est_rows = Float.nan;
    start_ms = 0.;
    dur_ms = 0.;
    partitions = 0;
    children = [];
  }

let create ?(name = "") () = { t0 = now_ms (); root = mk "query" name ""; stack = [] }

let step p ~op ?(name = "") ?(detail = "") f =
  match p with
  | None -> f None
  | Some p ->
      let n = mk op name detail in
      n.start_ms <- now_ms () -. p.t0;
      let parent = match p.stack with top :: _ -> top | [] -> p.root in
      parent.children <- n :: parent.children;
      p.stack <- n :: p.stack;
      let finish () =
        n.dur_ms <- now_ms () -. p.t0 -. n.start_ms;
        match p.stack with top :: rest when top == n -> p.stack <- rest | _ -> ()
      in
      Fun.protect ~finally:finish (fun () -> f (Some n))

let set_rows_in n v = match n with None -> () | Some n -> n.rows_in <- v
let set_build_rows n v = match n with None -> () | Some n -> n.build_rows <- v
let set_rows_out n v = match n with None -> () | Some n -> n.rows_out <- v
let set_est_rows n v = match n with None -> () | Some n -> n.est_rows <- v
let set_partitions n v = match n with None -> () | Some n -> n.partitions <- v

let finish p =
  p.root.dur_ms <- now_ms () -. p.t0;
  p.stack <- [];
  let rec order n =
    n.children <- List.rev n.children;
    List.iter order n.children
  in
  order p.root;
  p.root

(* Both sides floored at one tuple: estimating 0.3 rows for an empty
   result is a perfect guess, not a division by zero. *)
let qerror ~est ~actual =
  if Float.is_nan est then Float.nan
  else
    let e = Float.max est 1. in
    let a = Float.max (float_of_int (max actual 0)) 1. in
    Float.max (e /. a) (a /. e)

let preorder root =
  let rec go acc n = List.fold_left go (n :: acc) n.children in
  List.rev (go [] root)

let max_qerror root =
  List.fold_left
    (fun acc n ->
      if Float.is_nan n.est_rows || n.rows_out < 0 then acc
      else
        let q = qerror ~est:n.est_rows ~actual:n.rows_out in
        if Float.is_nan acc then q else Float.max acc q)
    Float.nan (preorder root)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let node_fields n =
  let b = Buffer.create 48 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if n.rows_in >= 0 then add " in=%d" n.rows_in;
  if n.build_rows >= 0 then add " build=%d" n.build_rows;
  if n.rows_out >= 0 then add " out=%d" n.rows_out;
  if not (Float.is_nan n.est_rows) then begin
    add " est=%.1f" n.est_rows;
    if n.rows_out >= 0 then add " q=%.2f" (qerror ~est:n.est_rows ~actual:n.rows_out)
  end;
  if n.partitions > 0 then add " parts=%d" n.partitions;
  Buffer.contents b

let node_label n =
  let extra = if n.detail <> "" then n.detail else n.name in
  if extra = "" then n.op else n.op ^ " " ^ extra

let pp_tree ppf root =
  let line prefix branch n =
    let left = prefix ^ branch ^ node_label n in
    let pad = max 1 (42 - String.length left) in
    Format.fprintf ppf "%s%s %s %10.3f ms@." left (String.make pad ' ')
      (node_fields n) n.dur_ms
  in
  let rec forest prefix nodes =
    let count = List.length nodes in
    List.iteri
      (fun i n ->
        let last = i = count - 1 in
        line prefix (if last then "`- " else "|- ") n;
        forest (prefix ^ if last then "   " else "|  ") n.children)
      nodes
  in
  line "" "" root;
  forest "" root.children

let chrome_events ?(tid = 0) root =
  List.map
    (fun n ->
      let args =
        List.filter_map
          (fun (k, v) -> if v >= 0. then Some (k, v) else None)
          [
            ("rows_in", float_of_int n.rows_in);
            ("build_rows", float_of_int n.build_rows);
            ("rows_out", float_of_int n.rows_out);
            ("partitions", if n.partitions > 0 then float_of_int n.partitions else -1.);
            ("est_rows", if Float.is_nan n.est_rows then -1. else n.est_rows);
          ]
      in
      Trace.chrome_event ~name:(node_label n)
        ~ts_us:(n.start_ms *. 1000.)
        ~dur_us:(n.dur_ms *. 1000.)
        ~tid ~args ())
    (preorder root)
