(* The one-line instrumentation entry point the pipeline stages use:
   [Obs.phase "set_cover" f] times [f] into the phase's latency
   histogram (always on — two clock reads per call) and wraps it in a
   trace span (only when a trace is active). *)

let phase_hists : (string, Metrics.histogram) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let phase_histogram name =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match Hashtbl.find_opt phase_hists name with
      | Some h -> h
      | None ->
          let h = Metrics.histogram ("vplan_phase_" ^ name ^ "_ms") in
          Hashtbl.add phase_hists name h;
          h)

let phase name f =
  let h = phase_histogram name in
  let t0 = Unix.gettimeofday () in
  let finish () = Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1000.) in
  Trace.with_span name (fun () -> Fun.protect ~finally:finish f)
