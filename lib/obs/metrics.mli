(** A process-global metrics registry: counters, gauges, and fixed-bucket
    latency histograms, all lock-free to update.

    Handles are obtained by name ({!counter}, {!gauge}, {!histogram});
    the same name always returns the same underlying metric, so modules
    register their metrics once at initialization and increment plain
    handles afterwards.  Every sample lands in an [Atomic.t], so
    counters and histograms may be bumped concurrently from any domain —
    in particular from {!Vplan_parallel.Parallel.map} workers — without
    locks; only registration itself takes the (rarely contended)
    registry mutex.

    Naming scheme (see DESIGN.md §12): [vplan_<subsystem>_<what>_total]
    for counters, [vplan_<subsystem>_<what>] for gauges and
    [vplan_<what>_ms] for latency histograms. *)

type counter
type gauge
type histogram

(** [counter name] — the counter registered under [name], creating it at
    zero on first use.  [help] sets the family's [# HELP] text in
    {!dump} (first registration to supply one wins; families without one
    get a default derived from the name).
    @raise Invalid_argument if [name] is already registered as a
    different metric type. *)
val counter : ?help:string -> string -> counter

val gauge : ?help:string -> string -> gauge
val histogram : ?help:string -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** [set g v] — gauges are set, not accumulated. *)
val set : gauge -> int -> unit

(** [observe h ms] records one latency sample, in milliseconds.
    Negative and NaN samples are clamped to [0.]. *)
val observe : histogram -> float -> unit

type summary = {
  count : int;
  sum_ms : float;
  p50_ms : float;  (** upper bound of the bucket holding the median *)
  p90_ms : float;
  p99_ms : float;  (** [infinity] when the rank falls in the overflow bucket *)
}

(** Bucketed quantile readout: each percentile reports the upper bound
    of the first bucket whose cumulative count reaches the rank
    [ceil (q * count)] — an overestimate by at most one bucket width. *)
val summary : histogram -> summary

val hist_count : histogram -> int

(** Upper bucket bounds in milliseconds, ascending; samples above the
    last bound land in an implicit overflow bucket. *)
val bucket_bounds : float array

(** [bucket_index v] — the bucket a sample of [v] ms lands in: the first
    index with [v <= bucket_bounds.(i)] (Prometheus [le] semantics), or
    [Array.length bucket_bounds] for the overflow bucket. *)
val bucket_index : float -> int

(** Emit every registered metric in Prometheus text exposition format:
    [# HELP]/[# TYPE] lines per family, [name value] for counters and
    gauges, and cumulative [name_bucket{le="..."}] series ending in
    [+Inf] plus [name_sum] (milliseconds, matching the [_ms] naming) and
    [name_count] for histograms.  Families appear in registration
    order. *)
val dump : Format.formatter -> unit

(** Zero every registered metric (registrations survive).  For tests and
    benchmarks; racing updates may be lost. *)
val reset : unit -> unit
