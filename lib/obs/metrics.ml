(* A process-global metrics registry: counters, gauges, and fixed-bucket
   latency histograms.

   All samples land in [Atomic.t] cells, so any domain may increment any
   metric without holding a lock; the registry mutex guards only
   registration (one hit per metric name per process, normally at module
   initialization).  Registration order is preserved so that {!dump}
   output is stable. *)

type counter = int Atomic.t
type gauge = int Atomic.t

(* Histogram samples are milliseconds; the sum is kept in integral
   nanoseconds so it can live in a lock-free [Atomic.t] too (a float sum
   would need a CAS loop and lose associativity across domains). *)
type histogram = {
  counts : int Atomic.t array; (* counts.(i) <- samples with v <= bounds.(i) *)
  sum_ns : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* Upper bucket bounds in milliseconds, ascending; the implicit last
   bucket is +infinity.  The 1-2.5-5 decade ladder spans 10us..10s, the
   range a rewrite request can realistically land in. *)
let bucket_bounds =
  [|
    0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.;
    500.; 1000.; 2500.; 5000.; 10000.;
  |]

let num_buckets = Array.length bucket_bounds + 1

(* [bucket_index v] — the first bucket whose upper bound is >= v
   (Prometheus [le] semantics: a sample exactly on a bound belongs to
   that bound's bucket); the overflow bucket otherwise. *)
let bucket_index v =
  let n = Array.length bucket_bounds in
  let rec go i = if i >= n then n else if v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let helps : (string, string) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref [] (* reverse registration order *)
let reg_lock = Mutex.create ()

let registered name help make cast =
  Mutex.lock reg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg_lock)
    (fun () ->
      (match help with
      | Some h when not (Hashtbl.mem helps name) -> Hashtbl.add helps name h
      | _ -> ());
      match Hashtbl.find_opt registry name with
      | Some m -> cast m
      | None ->
          let m = make () in
          Hashtbl.add registry name m;
          order := name :: !order;
          cast m)

let counter ?help name =
  registered name help
    (fun () -> Counter (Atomic.make 0))
    (function
      | Counter c -> c
      | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another type"))

let gauge ?help name =
  registered name help
    (fun () -> Gauge (Atomic.make 0))
    (function
      | Gauge g -> g
      | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another type"))

let histogram ?help name =
  registered name help
    (fun () ->
      Histogram
        { counts = Array.init num_buckets (fun _ -> Atomic.make 0); sum_ns = Atomic.make 0 })
    (function
      | Histogram h -> h
      | _ ->
          invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another type"))

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c
let set g v = Atomic.set g v

let observe h ms =
  let ms = if Float.is_nan ms || ms < 0. then 0. else ms in
  Atomic.incr h.counts.(bucket_index ms);
  ignore (Atomic.fetch_and_add h.sum_ns (int_of_float (ms *. 1e6)))

type summary = {
  count : int;
  sum_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

(* Quantile estimate from the bucket counts: the upper bound of the first
   bucket at which the cumulative count reaches [ceil (q * count)].  A
   rank landing in the overflow bucket reports [infinity] — the histogram
   only knows the sample exceeded its largest bound. *)
let quantile_of_counts counts total q =
  if total = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int total)) in
    let rank = max 1 rank in
    let cum = ref 0 and result = ref Float.infinity in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             (if i < Array.length bucket_bounds then result := bucket_bounds.(i));
             raise Exit
           end)
         counts
     with Exit -> ());
    !result
  end

let summary h =
  let counts = Array.map Atomic.get h.counts in
  let total = Array.fold_left ( + ) 0 counts in
  {
    count = total;
    sum_ms = float_of_int (Atomic.get h.sum_ns) /. 1e6;
    p50_ms = quantile_of_counts counts total 0.50;
    p90_ms = quantile_of_counts counts total 0.90;
    p99_ms = quantile_of_counts counts total 0.99;
  }

let hist_count h = (summary h).count

let pp_bound ppf b =
  if Float.is_integer b then Format.fprintf ppf "%.0f" b
  else Format.fprintf ppf "%g" b

(* Help text defaults to the metric name with underscores spaced out, so
   every family carries a HELP line even when the registration site gave
   none. *)
let help_of name =
  match Hashtbl.find_opt helps name with
  | Some h -> h
  | None -> String.map (fun c -> if c = '_' then ' ' else c) name

(* Prometheus text exposition format: each family gets [# HELP] and
   [# TYPE] lines, histograms emit cumulative [_bucket{le=...}] series
   ending in [+Inf] plus [_sum] and [_count].  A real scraper can ingest
   the output unmodified. *)
let dump ppf =
  let header name kind =
    Format.fprintf ppf "# HELP %s %s@." name (help_of name);
    Format.fprintf ppf "# TYPE %s %s@." name kind
  in
  let emit name = function
    | Counter c ->
        header name "counter";
        Format.fprintf ppf "%s %d@." name (Atomic.get c)
    | Gauge g ->
        header name "gauge";
        Format.fprintf ppf "%s %d@." name (Atomic.get g)
    | Histogram h ->
        header name "histogram";
        let counts = Array.map Atomic.get h.counts in
        let total = Array.fold_left ( + ) 0 counts in
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            if i < Array.length bucket_bounds then
              Format.fprintf ppf "%s_bucket{le=\"%a\"} %d@." name pp_bound
                bucket_bounds.(i) !cum
            else Format.fprintf ppf "%s_bucket{le=\"+Inf\"} %d@." name !cum)
          counts;
        Format.fprintf ppf "%s_sum %.3f@." name
          (float_of_int (Atomic.get h.sum_ns) /. 1e6);
        Format.fprintf ppf "%s_count %d@." name total
  in
  Mutex.lock reg_lock;
  let names = List.rev !order in
  Mutex.unlock reg_lock;
  List.iter (fun name -> emit name (Hashtbl.find registry name)) names

let reset () =
  Mutex.lock reg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c | Gauge c -> Atomic.set c 0
          | Histogram h ->
              Array.iter (fun c -> Atomic.set c 0) h.counts;
              Atomic.set h.sum_ns 0)
        registry)
