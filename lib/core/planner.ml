open Vplan_cq
open Vplan_views
open Vplan_relational
open Vplan_rewrite
open Vplan_cost
open Vplan_baselines

type problem = {
  query : Query.t;
  views : View.t list;
}

let problem_of_program = function
  | [] -> Error "empty program: expected a query rule followed by view rules"
  | query :: views -> (
      match View.validate_set views with
      | Ok () -> Ok { query; views }
      | Error msg -> Error msg)

let parse_problem src =
  match Parser.parse_program src with
  | Error e -> Error (Vplan_core.Vplan_error.parse_to_string e)
  | Ok rules -> problem_of_program rules

type analysis = {
  problem : problem;
  minimized_query : Query.t;
  gmrs : Query.t list;
  minimal_rewritings : Query.t list;
  filters : View_tuple.t list;
  maximally_contained : Ucq.t option;
}

let analyze problem =
  let { query; views } = problem in
  let all = Corecover.all_minimal ~query ~views () in
  let gmrs = M1.best all.Corecover.rewritings in
  let maximally_contained =
    if all.Corecover.rewritings = [] then Minicon.maximally_contained ~query ~views ()
    else None
  in
  {
    problem;
    minimized_query = all.Corecover.minimized_query;
    gmrs;
    minimal_rewritings = all.Corecover.rewritings;
    filters = all.Corecover.filters;
    maximally_contained;
  }

type plan =
  | Logical of Query.t
  | Ordered of {
      rewriting : Query.t;
      order : Atom.t list;
      cost : int;
    }
  | Annotated of {
      rewriting : Query.t;
      plan : M3.plan;
      cost : int;
    }

type cost_model = [ `M1 | `M2 | `M3 of [ `Supplementary | `Heuristic ] ]

let plan ~cost_model problem ~base =
  let t = Optimizer.create ~query:problem.query ~views:problem.views ~base in
  match cost_model with
  | `M1 -> Option.map (fun p -> Logical p) (Optimizer.best_m1 t)
  | `M2 ->
      Option.map
        (fun (c : Optimizer.m2_choice) ->
          Ordered { rewriting = c.m2_rewriting; order = c.m2_order; cost = c.m2_cost })
        (Optimizer.best_m2 t)
  | `M3 strategy ->
      Option.map
        (fun (c : Optimizer.m3_choice) ->
          Annotated { rewriting = c.m3_rewriting; plan = c.m3_plan; cost = c.m3_cost })
        (Optimizer.best_m3 ~strategy t)

let execute problem ~base p =
  let view_db = Materialize.views base problem.views in
  match p with
  | Logical rewriting | Ordered { rewriting; _ } ->
      Materialize.answers_via_rewriting view_db rewriting
  | Annotated { rewriting; plan; _ } -> M3.answers view_db ~head:rewriting.Query.head plan

let answer_via_views ~cost_model problem ~base =
  match plan ~cost_model problem ~base with
  | Some p -> `Equivalent (p, execute problem ~base p)
  | None -> (
      match Minicon.maximally_contained ~query:problem.query ~views:problem.views () with
      | None -> `No_rewriting
      | Some union ->
          let view_db = Materialize.views base problem.views in
          `Fallback_certain (Eval.answers_ucq view_db union))
