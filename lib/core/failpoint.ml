type action =
  | Crash
  | Io_error of string
  | Torn of int

type point = {
  act : action;
  mutable remaining : int;  (* hits before the action fires; <= 0 = firing *)
}

(* [armed] is the only state the disarmed fast path reads: one atomic
   load decides that [hit] is a no-op.  The table itself is guarded by a
   mutex — failpoints fire on I/O paths where a lock is noise, and the
   store's own locking already serializes most callers. *)
let armed = Atomic.make 0
let table : (string, point) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(after = 1) name act =
  locked (fun () ->
      if not (Hashtbl.mem table name) then Atomic.incr armed;
      Hashtbl.replace table name { act; remaining = max 1 after })

let disarm name =
  locked (fun () ->
      if Hashtbl.mem table name then begin
        Hashtbl.remove table name;
        Atomic.decr armed
      end)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set armed 0)

let crash () = Unix._exit 137

let hit name =
  if Atomic.get armed = 0 then None
  else
    let fired =
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | None -> None
          | Some p ->
              p.remaining <- p.remaining - 1;
              if p.remaining <= 0 then Some p.act else None)
    in
    match fired with
    | Some Crash -> crash ()
    | (Some (Io_error _ | Torn _) | None) as a -> a

let parse_action s =
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "crash" -> Some Crash
      | "enospc" -> Some (Io_error "ENOSPC")
      | _ -> None)
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "io" when arg <> "" -> Some (Io_error arg)
      | "torn" -> (
          match int_of_string_opt arg with
          | Some n when n >= 0 -> Some (Torn n)
          | _ -> None)
      | _ -> None)

let parse_item item =
  match String.index_opt item '=' with
  | None -> None
  | Some i -> (
      let name = String.trim (String.sub item 0 i) in
      let rhs = String.sub item (i + 1) (String.length item - i - 1) in
      let act_s, after =
        match String.index_opt rhs '@' with
        | None -> (rhs, 1)
        | Some j -> (
            let n = String.sub rhs (j + 1) (String.length rhs - j - 1) in
            ( String.sub rhs 0 j,
              match int_of_string_opt n with Some v when v >= 1 -> v | _ -> 1 ))
      in
      match (name, parse_action (String.trim act_s)) with
      | "", _ | _, None -> None
      | name, Some act -> Some (name, after, act))

let init_from_env () =
  match Sys.getenv_opt "VPLAN_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec ->
      List.iter
        (fun item ->
          match parse_item (String.trim item) with
          | Some (name, after, act) -> arm ~after name act
          | None -> ())
        (String.split_on_char ',' spec)
