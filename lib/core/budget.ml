(* One increment per budget that actually trips (first CAS winner only):
   re-raises of an already-tripped budget do not count. *)
let cutoffs_total = Vplan_obs.Metrics.counter "vplan_budget_cutoffs_total"

type t = {
  start : float;
  deadline : float option; (* absolute, seconds since epoch *)
  limit_ms : float;
  max_steps : int option;
  steps : int Atomic.t;
  stop : Vplan_error.t option Atomic.t;
}

let create ?deadline_ms ?max_steps () =
  let start = Unix.gettimeofday () in
  let deadline =
    Option.map (fun ms -> start +. (ms /. 1000.)) deadline_ms
  in
  {
    start;
    deadline;
    limit_ms = Option.value deadline_ms ~default:0.;
    max_steps;
    steps = Atomic.make 0;
    stop = Atomic.make None;
  }

let elapsed_ms t = (Unix.gettimeofday () -. t.start) *. 1000.

(* First trip wins across domains: a failed CAS means another domain
   already recorded its reason, which we must preserve. *)
let trip t err =
  if Atomic.compare_and_set t.stop None (Some err) then
    Vplan_obs.Metrics.incr cutoffs_total;
  match Atomic.get t.stop with
  | Some e -> raise (Vplan_error.Error e)
  | None -> assert false

let check t =
  (match Atomic.get t.stop with
  | Some e -> raise (Vplan_error.Error e)
  | None -> ());
  let n = Atomic.fetch_and_add t.steps 1 in
  (match t.max_steps with
  | Some limit when n >= limit -> trip t (Vplan_error.Step_limit { limit })
  | _ -> ());
  match t.deadline with
  | Some d when n land 63 = 0 ->
      let now = Unix.gettimeofday () in
      if now > d then
        trip t
          (Vplan_error.Timeout
             { elapsed_ms = (now -. t.start) *. 1000.; limit_ms = t.limit_ms })
  | _ -> ()

let tick = function None -> () | Some t -> check t

let cancel t =
  ignore (Atomic.compare_and_set t.stop None (Some Vplan_error.Cancelled))

let stopped t = Atomic.get t.stop
