(** A bounded multi-producer multi-consumer queue over domains.

    The queue is a fixed-capacity ring guarded by one mutex and two
    condition variables; any number of domains may push and pop
    concurrently.  Capacity is the admission-control surface: a full
    queue makes {!try_push} return [false] immediately, which is what
    lets a server shed load with a fast error instead of queueing
    unbounded latency behind slow requests.

    {!close} drains gracefully: pending elements are still delivered,
    new pushes are refused, and once the ring is empty every blocked
    {!pop} returns [None] — the idiom for shutting a worker pool down
    without losing accepted work. *)

type 'a t

(** [create ~capacity] — @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> 'a t

(** [try_push t x] enqueues [x] unless the queue is full or closed;
    [false] means the element was {e not} accepted.  Never blocks. *)
val try_push : 'a t -> 'a -> bool

(** [push t x] blocks until space is available; [false] only when the
    queue is (or becomes) closed while waiting. *)
val push : 'a t -> 'a -> bool

(** [pop t] blocks until an element is available, FIFO.  [None] once
    the queue is closed {e and} drained. *)
val pop : 'a t -> 'a option

(** [try_pop t] is nonblocking: [None] when currently empty (even if
    not closed). *)
val try_pop : 'a t -> 'a option

(** [close t] refuses further pushes and wakes every waiter.  Elements
    already accepted are still delivered to {!pop}.  Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** Current number of queued elements (a racy snapshot, like any
    concurrent size). *)
val length : 'a t -> int

val capacity : 'a t -> int
