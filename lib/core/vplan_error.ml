type parse_error = {
  line : int;
  col : int;
  msg : string;
}

type t =
  | Timeout of { elapsed_ms : float; limit_ms : float }
  | Step_limit of { limit : int }
  | Cover_limit of { limit : int }
  | Cancelled
  | Width_limit of { subgoals : int; max_subgoals : int }
  | Parse of parse_error

exception Error of t

let is_resource = function
  | Timeout _ | Step_limit _ | Cover_limit _ | Cancelled -> true
  | Width_limit _ | Parse _ -> false

let parse_to_string e = Printf.sprintf "%d:%d: %s" e.line e.col e.msg

(* Elapsed times are omitted on purpose: error output must be identical
   run to run so the cram tests (and users' scripts) can match on it. *)
let to_string = function
  | Timeout { limit_ms; _ } ->
      Printf.sprintf "wall-clock deadline of %gms exceeded" limit_ms
  | Step_limit { limit } -> Printf.sprintf "step budget of %d exhausted" limit
  | Cover_limit { limit } ->
      Printf.sprintf "cover enumeration capped at %d results" limit
  | Cancelled -> "cancelled"
  | Width_limit { subgoals; max_subgoals } ->
      Printf.sprintf "query has %d subgoals after minimization; at most %d supported"
        subgoals max_subgoals
  | Parse e -> parse_to_string e

let pp ppf e = Format.pp_print_string ppf (to_string e)

let parse_at ~line ~col msg = raise (Error (Parse { line; col; msg }))
