(** A minimal Domain-based fork/join pool (OCaml 5 stdlib, no dependencies).

    The pool is {e work-stealing-free}: the input is split into one
    contiguous chunk per worker up front and results are reassembled in
    chunk order.  Consequently [map ~domains f xs = List.map f xs] for any
    pure [f] and any worker count — parallelism never changes results,
    only wall-clock time.  This is the determinism contract CoreCover
    relies on when fanning per-view and per-tuple work out.

    [map] is also an {e exception barrier}: every spawned domain is
    joined before the call returns or raises, whichever chunk failed —
    no domain ever leaks, so repeated failing calls cannot exhaust the
    runtime's domain limit. *)

(** [recommended ()] is [Domain.recommended_domain_count ()]: a sensible
    upper bound for the [domains] argument on this machine. *)
val recommended : unit -> int

(** [map ~domains f xs] applies [f] to every element of [xs] using up to
    [domains] domains (including the calling one) and returns the results
    in input order.  [domains <= 1] (the default) runs sequentially with
    no domain spawned.

    Error handling is deterministic: if any chunk raises, all domains
    are first joined, then the exception of the {e lowest-numbered}
    failing chunk is re-raised with its original backtrace — the same
    exception a sequential [List.map f xs] would surface first.  When a
    [?budget] is supplied, a failing chunk also {!Budget.cancel}s it so
    sibling chunks that tick the budget stop within one loop iteration
    instead of running to completion; such induced [Cancelled] failures
    are never chosen over the root cause.  [f] must not rely on shared
    mutable state unless that state is itself domain-safe. *)
val map :
  ?budget:Vplan_core.Budget.t -> ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
