(** A minimal Domain-based fork/join pool (OCaml 5 stdlib, no dependencies).

    The pool is {e work-stealing-free}: the input is split into one
    contiguous chunk per worker up front and results are reassembled in
    chunk order.  Consequently [map ~domains f xs = List.map f xs] for any
    pure [f] and any worker count — parallelism never changes results,
    only wall-clock time.  This is the determinism contract CoreCover
    relies on when fanning per-view and per-tuple work out. *)

(** [recommended ()] is [Domain.recommended_domain_count ()]: a sensible
    upper bound for the [domains] argument on this machine. *)
val recommended : unit -> int

(** [map ~domains f xs] applies [f] to every element of [xs] using up to
    [domains] domains (including the calling one) and returns the results
    in input order.  [domains <= 1] (the default) runs sequentially with
    no domain spawned.  If [f] raises in any chunk, the exception is
    re-raised after the calling domain's own chunk completes; remaining
    domains finish their chunks before being discarded. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
