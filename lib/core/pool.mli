(** A fixed pool of long-lived worker domains.

    Where {!Vplan_parallel.Parallel.map} is fork/join — domains spawned
    for one call and joined before it returns — a [Pool.t] is resident:
    the domains start once and keep running the worker body (typically a
    loop popping a {!Bounded_queue}) until that body returns.  {!join}
    is the only way to reclaim them, and it is an exception barrier in
    the same style as [Parallel.map]: every domain is joined before the
    lowest-indexed worker's failure is re-raised. *)

type t

(** [spawn ~workers f] starts [workers] domains ([>= 1]), each running
    [f i] with its worker index.  Exceptions inside [f] are caught and
    held for {!join}. *)
val spawn : workers:int -> (int -> unit) -> t

(** Blocks until every worker body has returned, then re-raises the
    first (lowest worker index) failure, if any. *)
val join : t -> unit

val size : t -> int
