(* A fixed ring under one mutex: at the scale of a request queue the
   lock is uncontended next to the work each element represents, and a
   single ordering makes FIFO and close-then-drain semantics easy to
   get right across domains. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable head : int;  (* next pop position *)
  mutable len : int;
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
  {
    buf = Array.make capacity None;
    cap = capacity;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let enqueue t x =
  t.buf.((t.head + t.len) mod t.cap) <- Some x;
  t.len <- t.len + 1;
  Condition.signal t.not_empty

let dequeue t =
  let x = t.buf.(t.head) in
  t.buf.(t.head) <- None;
  t.head <- (t.head + 1) mod t.cap;
  t.len <- t.len - 1;
  Condition.signal t.not_full;
  match x with Some v -> v | None -> assert false

let try_push t x =
  locked t (fun () ->
      if t.closed || t.len = t.cap then false
      else begin
        enqueue t x;
        true
      end)

let push t x =
  locked t (fun () ->
      while (not t.closed) && t.len = t.cap do
        Condition.wait t.not_full t.lock
      done;
      if t.closed then false
      else begin
        enqueue t x;
        true
      end)

let pop t =
  locked t (fun () ->
      while t.len = 0 && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      if t.len = 0 then None else Some (dequeue t))

let try_pop t =
  locked t (fun () -> if t.len = 0 then None else Some (dequeue t))

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)

let is_closed t = locked t (fun () -> t.closed)
let length t = locked t (fun () -> t.len)
let capacity t = t.cap
