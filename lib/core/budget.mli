(** Cooperative resource budgets for the exponential search loops.

    A [Budget.t] bounds a library call three ways at once:

    - a wall-clock deadline ([?deadline_ms], relative to {!create});
    - a step budget ([?max_steps]) counting loop-head ticks — search
      nodes in homomorphism/tuple-core/set-cover enumeration, fixpoint
      rounds in seminaive evaluation — which, unlike wall-clock time, is
      deterministic and therefore reproducible in tests;
    - a cancellation flag, settable from any domain with {!cancel}.

    The budget is shared: the same [t] is passed to every stage of a
    pipeline (and to every worker domain of [Parallel.map]), so the
    first limit tripped anywhere stops all of them.  All state lives in
    [Atomic.t] cells, so a budget may be freely read and tripped from
    multiple domains; the first trip wins and its reason sticks.

    Checking is cooperative: loops call {!tick} at their heads.  A
    tripped budget makes every subsequent {!tick}/{!check} raise
    [Vplan_error.Error], so cancellation reaches each domain within one
    loop iteration.  [tick None] is a no-op, keeping unbudgeted calls
    on their original code path. *)

type t

(** [create ?deadline_ms ?max_steps ()] starts the clock now.
    Omitted limits are unlimited. *)
val create : ?deadline_ms:float -> ?max_steps:int -> unit -> t

(** Count one unit of work and raise [Vplan_error.Error] if any limit
    has been reached (the deadline is polled every 64 steps to keep the
    check cheap).  Once a budget trips, every later [check] re-raises
    the same reason. *)
val check : t -> unit

(** [tick (Some b)] is [check b]; [tick None] does nothing. *)
val tick : t option -> unit

(** Trip the budget with [Vplan_error.Cancelled] (idempotent: a budget
    that already tripped keeps its original reason).  Safe to call from
    any domain. *)
val cancel : t -> unit

(** The reason the budget tripped, if it has. *)
val stopped : t -> Vplan_error.t option

(** Milliseconds of wall-clock time since {!create}. *)
val elapsed_ms : t -> float
