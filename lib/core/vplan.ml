(** Umbrella module: the public API of the vplan library.

    Re-exports every sub-library under one namespace so that users write
    [Vplan.Query], [Vplan.Corecover], ... without caring about the
    internal library split.

    Typical pipeline:
    {[
      let query = Vplan.Parser.parse_rule_exn
        "q(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)." in
      let views = List.map Vplan.Parser.parse_rule_exn [ ... ] in
      let result = Vplan.Corecover.gmrs ~query ~views () in
      List.iter (Format.printf "%a@." Vplan.Query.pp) result.rewritings
    ]} *)

(* resource governance: budgets, typed errors *)
module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error

(* observability: metrics registry, span tracer, phase instrumentation,
   operator profiles, flight recorder *)
module Metrics = Vplan_obs.Metrics
module Trace = Vplan_obs.Trace
module Obs = Vplan_obs.Obs
module Profile = Vplan_obs.Profile
module Recorder = Vplan_obs.Recorder

(* conjunctive-query kernel *)
module Names = Vplan_cq.Names
module Term = Vplan_cq.Term
module Subst = Vplan_cq.Subst
module Unify = Vplan_cq.Unify
module Atom = Vplan_cq.Atom
module Query = Vplan_cq.Query
module Parser = Vplan_cq.Parser

(* query hypergraphs: GYO reduction, join trees *)
module Hypergraph = Vplan_hypergraph.Hypergraph

(* containment engine *)
module Homomorphism = Vplan_containment.Homomorphism
module Containment = Vplan_containment.Containment
module Minimize = Vplan_containment.Minimize

(* relational engine *)
module Prng = Vplan_relational.Prng
module Relation = Vplan_relational.Relation
module Database = Vplan_relational.Database
module Eval = Vplan_relational.Eval
module Indexed_db = Vplan_relational.Indexed_db
module Datagen = Vplan_relational.Datagen

(* data-scale execution: interned columnar storage, hash-join engine *)
module Interned = Vplan_exec.Interned
module Exec = Vplan_exec.Exec

(* data statistics: cardinalities, distinct counts, histograms *)
module Histogram = Vplan_stats.Histogram
module Stats = Vplan_stats.Stats
module Qerror = Vplan_stats.Qerror

(* domain-based fan-out *)
module Parallel = Vplan_parallel.Parallel

(* view machinery *)
module View = Vplan_views.View
module Expansion = Vplan_views.Expansion
module Canonical = Vplan_views.Canonical
module View_tuple = Vplan_views.View_tuple
module Materialize = Vplan_views.Materialize
module Equiv_class = Vplan_views.Equiv_class

(* rewriting generation *)
module Tuple_core = Vplan_rewrite.Tuple_core
module Set_cover = Vplan_rewrite.Set_cover
module Corecover = Vplan_rewrite.Corecover
module Classify = Vplan_rewrite.Classify
module Lattice = Vplan_rewrite.Lattice
module Naive = Vplan_rewrite.Naive
module Normalize = Vplan_rewrite.Normalize
module View_selection = Vplan_rewrite.View_selection

(* cost models and optimizer *)
module Orderings = Vplan_cost.Orderings
module Estimate = Vplan_cost.Estimate
module M1 = Vplan_cost.M1
module M2 = Vplan_cost.M2
module M3 = Vplan_cost.M3
module Filter = Vplan_cost.Filter
module Explain = Vplan_cost.Explain
module Subplan = Vplan_cost.Subplan
module Select = Vplan_cost.Select
module Optimizer = Vplan_cost.Optimizer

(* baselines *)
module Bucket = Vplan_baselines.Bucket
module Minicon = Vplan_baselines.Minicon

module Inverse_rules = Vplan_baselines.Inverse_rules

(* unions of conjunctive queries (Section 8) *)
module Ucq = Vplan_cq.Ucq
module Ucq_containment = Vplan_containment.Ucq_containment

(* built-in comparison predicates (Section 8) *)
module Order_constraint = Vplan_builtins.Order_constraint
module Ccq = Vplan_builtins.Ccq

(* Datalog engine: semi-naive evaluation, magic sets, recursive queries
   over views *)
module Program = Vplan_datalog.Program
module Seminaive = Vplan_datalog.Seminaive
module Magic = Vplan_datalog.Magic
module Recursive_views = Vplan_datalog.Recursive_views

(* resident rewriting service: view-catalog sessions, canonical-query
   rewrite cache, concurrent request dispatch *)
module Catalog = Vplan_service.Catalog
module Rewrite_cache = Vplan_service.Rewrite_cache
module Service = Vplan_service.Service

(* durability: checksummed snapshots, write-ahead journal, crash
   recovery, fault injection *)
module Failpoint = Vplan_core.Failpoint
module Crc32 = Vplan_store.Crc32
module Codec = Vplan_store.Codec
module Record = Vplan_store.Record
module Journal = Vplan_store.Journal
module Snapshot = Vplan_store.Snapshot
module Store = Vplan_store.Store
module Persist = Vplan_service.Persist

(* concurrent serving tier: bounded MPMC queue, resident worker pool,
   line-protocol front end, TCP socket server, load generator *)
module Bounded_queue = Vplan_parallel.Bounded_queue
module Pool = Vplan_parallel.Pool
module Protocol = Vplan_service.Protocol
module Net_server = Vplan_service.Net_server
module Loadgen = Vplan_service.Loadgen

(* workloads *)
module Generator = Vplan_workload.Generator

(* high-level facade *)
module Planner = Planner
