(** Typed errors for the library boundaries.

    Every stage of the CoreCover pipeline is worst-case exponential, so
    production callers run it under a {!Budget}.  When a limit fires —
    or an input is structurally unsupported — the library raises (or
    returns) a value of this type instead of an ad-hoc [Failure] or
    [Invalid_argument] string, so callers can distinguish "out of budget"
    (retry with more, or accept a truncated result) from "bad input"
    (fix the query) without parsing exception messages. *)

(** A syntax error with its source position (1-based line and column). *)
type parse_error = {
  line : int;
  col : int;
  msg : string;
}

type t =
  | Timeout of { elapsed_ms : float; limit_ms : float }
      (** the wall-clock deadline of a {!Budget} expired *)
  | Step_limit of { limit : int }
      (** the step budget (search nodes, fixpoint rounds) ran out *)
  | Cover_limit of { limit : int }
      (** the set-cover enumeration was capped at [limit] results *)
  | Cancelled
      (** cooperative cancellation: a sibling domain failed, or the
          caller cancelled the shared {!Budget} *)
  | Width_limit of { subgoals : int; max_subgoals : int }
      (** the (minimized) query has more subgoals than fit in a
          native-int cover bitmask *)
  | Parse of parse_error  (** a syntax error in the Datalog surface syntax *)

exception Error of t

(** [is_resource e] is [true] for the budget-style errors — [Timeout],
    [Step_limit], [Cover_limit] and [Cancelled] — after which an anytime
    caller may return a sound-but-incomplete result.  [Width_limit] and
    [Parse] are input errors: retrying with a bigger budget cannot help. *)
val is_resource : t -> bool

(** Render the error as one deterministic human-readable line (elapsed
    wall-clock times are deliberately omitted so output is reproducible). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [parse_to_string e] renders a parse error as ["line:col: msg"] —
    prefix it with a file name to obtain the conventional
    [file:line:col: msg] form. *)
val parse_to_string : parse_error -> string

(** [parse_at ~line ~col msg] raises [Error (Parse _)]. *)
val parse_at : line:int -> col:int -> string -> 'a
