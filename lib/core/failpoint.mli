(** Fault injection points.

    A failpoint is a named site in the code — typically an I/O boundary
    of the durability layer — where a test can make the process
    misbehave on purpose: die as if [kill -9]'d, write only a prefix of
    the bytes it meant to write, or fail with an I/O error such as
    ENOSPC.  The crash-matrix tests drive one child process per
    (site, occurrence) pair and then assert that recovery restores
    exactly the acked prefix.

    Cost when disarmed is one atomic load per {!hit} — the registry is
    compiled out of the hot path in the sense that matters: no
    allocation, no lock, no string hashing unless at least one
    failpoint is armed anywhere in the process.

    Activation is either programmatic ({!arm}) or, for child processes
    spawned by tests, via the [VPLAN_FAILPOINTS] environment variable
    parsed by {!init_from_env}:

    {v
      VPLAN_FAILPOINTS="store.journal.append.before_fsync=crash@3"
      VPLAN_FAILPOINTS="store.journal.append=enospc,store.save=crash"
      VPLAN_FAILPOINTS="store.journal.append.write=torn:5@2"
    v}

    [@N] makes the action fire on the N-th hit of the site (1-based;
    default 1).  Once fired, an action keeps firing on every later hit —
    a disk that ran out of space stays full. *)

type action =
  | Crash  (** terminate immediately, no flushing — simulates [kill -9] *)
  | Io_error of string
      (** surface as an I/O failure with this message (e.g. ["ENOSPC"]) *)
  | Torn of int
      (** truncate the write to this many bytes, then crash — a torn
          write that never finished *)

(** [arm name ?after action] arms [name] to fire [action] on the
    [after]-th hit (1-based, default 1) and on every hit thereafter. *)
val arm : ?after:int -> string -> action -> unit

val disarm : string -> unit

(** Disarm everything. *)
val reset : unit -> unit

(** [hit name] is the action to perform now at site [name], or [None].
    [Crash] never returns: the process exits with status 137 without
    running [at_exit] handlers.  [Torn] is returned to the caller, which
    performs the partial write and then calls {!crash}. *)
val hit : string -> action option

(** [crash ()] exits immediately with status 137 (the [kill -9] status),
    bypassing [at_exit] — nothing buffered is flushed. *)
val crash : unit -> 'a

(** Parse [VPLAN_FAILPOINTS] (comma-separated [name=action[@N]] items;
    actions: [crash], [enospc], [io:MSG], [torn:BYTES]) and arm each
    entry.  Unknown or malformed items are ignored: a test that
    misspells an action sees the failure as "nothing fired", never as a
    crashed production path.  Called by binaries at startup. *)
val init_from_env : unit -> unit
