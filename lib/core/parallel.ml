(* A minimal Domain-based fork/join pool (OCaml 5 stdlib only).

   Work is split into one contiguous chunk per worker before any domain is
   spawned: there is no shared queue, no work stealing, and therefore no
   scheduling nondeterminism.  Results are reassembled in chunk order, so
   [map f xs] returns exactly [List.map f xs] for a pure [f], whatever the
   worker count.  [f] must not rely on shared mutable state unless that
   state is itself domain-safe. *)

let recommended () = Domain.recommended_domain_count ()

let chunk_bounds ~workers n =
  (* worker [w] handles [fst bounds.(w) .. snd bounds.(w) - 1]; the first
     [n mod workers] chunks take one extra element *)
  let base = n / workers and extra = n mod workers in
  Array.init workers (fun w ->
      let start = (w * base) + min w extra in
      let len = base + if w < extra then 1 else 0 in
      (start, start + len))

let map ?(domains = 1) f xs =
  let n = List.length xs in
  let workers = max 1 (min domains n) in
  if workers = 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let bounds = chunk_bounds ~workers n in
    let run_chunk w =
      let start, stop = bounds.(w) in
      List.init (stop - start) (fun i -> f arr.(start + i))
    in
    (* spawn workers 1..n-1; the calling domain computes chunk 0 itself *)
    let handles =
      Array.init (workers - 1) (fun i -> Domain.spawn (fun () -> run_chunk (i + 1)))
    in
    let first = run_chunk 0 in
    let rest = Array.to_list (Array.map Domain.join handles) in
    List.concat (first :: rest)
  end
