(* A minimal Domain-based fork/join pool (OCaml 5 stdlib only).

   Work is split into one contiguous chunk per worker before any domain is
   spawned: there is no shared queue, no work stealing, and therefore no
   scheduling nondeterminism.  Results are reassembled in chunk order, so
   [map f xs] returns exactly [List.map f xs] for a pure [f], whatever the
   worker count.  [f] must not rely on shared mutable state unless that
   state is itself domain-safe.

   [map] is an exception barrier: a chunk's exception is caught inside its
   own domain (so Domain.join never raises) and every handle is joined
   before the first failure — by chunk index, not completion order — is
   re-raised on the calling domain. *)

module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error
module Trace = Vplan_obs.Trace

let recommended () = Domain.recommended_domain_count ()

let chunk_bounds ~workers n =
  (* worker [w] handles [fst bounds.(w) .. snd bounds.(w) - 1]; the first
     [n mod workers] chunks take one extra element *)
  let base = n / workers and extra = n mod workers in
  Array.init workers (fun w ->
      let start = (w * base) + min w extra in
      let len = base + if w < extra then 1 else 0 in
      (start, start + len))

let map ?budget ?(domains = 1) f xs =
  let n = List.length xs in
  let workers = max 1 (min domains n) in
  if workers = 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let bounds = chunk_bounds ~workers n in
    let run_chunk w =
      let start, stop = bounds.(w) in
      List.init (stop - start) (fun i -> f arr.(start + i))
    in
    let attempt w =
      match run_chunk w with
      | r -> Ok r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          (* wake sibling chunks that poll the shared budget *)
          Option.iter Budget.cancel budget;
          Error (e, bt)
    in
    (* spawn workers 1..n-1; the calling domain computes chunk 0 itself.
       The spawner's trace context rides along so any span a worker
       records attaches under the span open at the fan-out point. *)
    let ctx = Trace.context () in
    let handles =
      Array.init (workers - 1) (fun i ->
          Domain.spawn (fun () -> Trace.with_context ctx (fun () -> attempt (i + 1))))
    in
    let first = attempt 0 in
    (* [attempt] catches everything, so every join succeeds: all domains
       are reclaimed before any error propagates *)
    let results = Array.append [| first |] (Array.map Domain.join handles) in
    let is_cancelled = function
      | Error (Vplan_error.Error Vplan_error.Cancelled, _) -> true
      | _ -> false
    in
    (* Deterministic surfacing: prefer the lowest-indexed root cause; a
       Cancelled failure is only the root cause if nothing else failed
       (it may have been induced by another chunk's cancel above). *)
    let first_error =
      match Array.find_opt (fun r -> Result.is_error r && not (is_cancelled r)) results with
      | Some e -> Some e
      | None -> Array.find_opt Result.is_error results
    in
    match first_error with
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some (Ok _) | None ->
        List.concat_map (function Ok r -> r | Error _ -> assert false)
          (Array.to_list results)
  end
