type outcome = (unit, exn * Printexc.raw_backtrace) result

type t = outcome Domain.t array

let spawn ~workers f =
  if workers < 1 then invalid_arg "Pool.spawn: workers < 1";
  Array.init workers (fun i ->
      Domain.spawn (fun () ->
          match f i with
          | () -> Ok ()
          | exception e -> Error (e, Printexc.get_raw_backtrace ())))

let join t =
  (* every domain is reclaimed before any failure propagates; the
     lowest index wins so the surfaced error is deterministic *)
  let results = Array.map Domain.join t in
  Array.iter
    (function
      | Ok () -> ()
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let size t = Array.length t
