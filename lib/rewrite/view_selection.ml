open Vplan_views
module Minimize = Vplan_containment.Minimize

let is_answering_set ~query views = Corecover.has_rewriting ~query ~views

let relevant_views ~query ~views =
  let qm = Minimize.minimize query in
  List.filter
    (fun view ->
      View_tuple.compute ~query:qm [ view ]
      |> List.exists (fun tv ->
             not (Tuple_core.is_empty (Tuple_core.compute ~query:qm tv))))
    views

let minimal_answering_set ~query ~views =
  if not (is_answering_set ~query views) then None
  else begin
    (* start from the relevant views only, then drop greedily *)
    let start =
      let relevant = relevant_views ~query ~views in
      if is_answering_set ~query relevant then relevant else views
    in
    let rec shrink kept =
      let try_drop v =
        let without = List.filter (fun v' -> v' != v) kept in
        if is_answering_set ~query without then Some without else None
      in
      match List.find_map try_drop kept with
      | Some smaller -> shrink smaller
      | None -> kept
    in
    Some (shrink start)
  end
