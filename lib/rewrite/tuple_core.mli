(** Tuple-cores (Definition 4.1): the query subgoals covered by a view
    tuple.

    For a minimal query [Q] and a view tuple [t{_v}], the tuple-core is the
    {e maximal} collection [G] of [Q]'s subgoals admitting a containment
    mapping [φ] from [G] into the expansion [t{_v}{^exp}] such that:

    + [φ] is one-to-one on arguments and the identity on arguments of [G]
      that appear in [t{_v}];
    + every distinguished variable of [Q] in [G] maps to a distinguished
      argument of the expansion (hence, by (1), to itself);
    + if a nondistinguished variable [X] of [G] maps to an existential
      variable of the expansion, then [G] contains {e all} subgoals of [Q]
      that use [X].

    Lemma 4.2: the tuple-core of a view tuple for a minimal query is
    unique.  {!compute} returns it; {!compute_all_maximal} exposes the raw
    maximal candidates so that uniqueness can be property-tested. *)

open Vplan_cq
open Vplan_views

type t = {
  subgoals : Atom.t list;  (** covered subgoals, in query-body order *)
  mask : int;  (** same set as a bitmask over body positions *)
  mapping : Subst.t;  (** the witnessing containment mapping φ *)
}

val is_empty : t -> bool
val pp : Format.formatter -> t -> unit

(** [same_cover c1 c2] compares cores by covered subgoal set only. *)
val same_cover : t -> t -> bool

(** [compute ~query tv] computes the tuple-core of [tv] for the (minimal)
    [query].  Raises [Vplan_error.Error (Width_limit _)] when the query
    body exceeds 62 subgoals.  A [?budget] is ticked at every node of the
    subset search. *)
val compute : ?budget:Vplan_core.Budget.t -> query:Query.t -> View_tuple.t -> t

(** All inclusion-maximal candidate cores — singleton for minimal queries
    (Lemma 4.2). *)
val compute_all_maximal :
  ?budget:Vplan_core.Budget.t -> query:Query.t -> View_tuple.t -> t list
