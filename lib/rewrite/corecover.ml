open Vplan_cq
open Vplan_views
module Minimize = Vplan_containment.Minimize
module Parallel = Vplan_parallel.Parallel
module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error
module Obs = Vplan_obs.Obs
module Trace = Vplan_obs.Trace

type stats = {
  num_views : int;
  num_view_classes : int;
  num_view_tuples : int;
  num_representative_tuples : int;
}

type completeness = Complete | Truncated of Vplan_error.t

type result = {
  minimized_query : Query.t;
  view_classes : View.t list list;
  view_tuples : View_tuple.t list;
  cores : (View_tuple.t * Tuple_core.t) list;
  tuple_classes : View_tuple.t list list;
  filters : View_tuple.t list;
  rewritings : Query.t list;
  completeness : completeness;
  stats : stats;
}

(* Steps 1-3 of both variants: minimize, compute view tuples over the
   canonical database, compute tuple-cores, group views into equivalence
   classes and view tuples into same-core classes, and keep one
   representative (view tuple, core) pair per class.  The budget is the
   same object throughout, so a deadline tripping in any stage (or any
   worker domain) stops the remaining ones at their next tick. *)
let prepare ~budget ~view_classes ~group_views ~indexed ~buckets ~domains ~query
    ~views =
  let qm = Obs.phase "minimize" (fun () -> Minimize.minimize ?budget query) in
  (* Subgoal sets are bitmasks in a native int ([Tuple_core.mask], the
     cover universe): more subgoals than bits would overflow silently. *)
  if List.length qm.Query.body > Sys.int_size - 1 then
    raise
      (Vplan_error.Error
         (Width_limit
            {
              subgoals = List.length qm.Query.body;
              max_subgoals = Sys.int_size - 1;
            }));
  let view_classes =
    Obs.phase "view_classes" (fun () ->
        (* a resident catalog (lib/service) groups its views once and
           passes the classes in; per-call grouping is the cold-start
           path *)
        let classes =
          match view_classes with
          | Some classes -> classes
          | None ->
              if group_views then Equiv_class.group_views ?budget ~buckets views
              else List.map (fun v -> [ v ]) views
        in
        Trace.annotate "classes" (float_of_int (List.length classes));
        classes)
  in
  let representative_views = Equiv_class.representatives view_classes in
  let engine = if indexed then `Indexed else `Nested_loop in
  let view_tuples =
    View_tuple.compute ?budget ~engine ~domains ~query:qm representative_views
  in
  let tuple_classes =
    Obs.phase "tuple_cores" (fun () ->
        let with_cores =
          Parallel.map ?budget ~domains
            (fun tv -> (tv, Tuple_core.compute ?budget ~query:qm tv))
            view_tuples
        in
        (* [same_cover] is mask equality, so hash-bucketing by mask gives
           the same classes in one probe per tuple instead of a pairwise
           scan *)
        let classes =
          if buckets then
            Equiv_class.group_by ~key:(fun (_, c) -> c.Tuple_core.mask) with_cores
          else
            Equiv_class.group
              ~eq:(fun (_, c1) (_, c2) -> Tuple_core.same_cover c1 c2)
              with_cores
        in
        Trace.annotate "tuples" (float_of_int (List.length with_cores));
        Trace.annotate "classes" (float_of_int (List.length classes));
        classes)
  in
  let reps = Equiv_class.representatives tuple_classes in
  (qm, view_classes, view_tuples, tuple_classes, reps)

let build_rewriting (qm : Query.t) (chosen : View_tuple.t list) =
  Query.make_exn qm.head (List.map (fun tv -> tv.View_tuple.atom) chosen)

let run ~budget ~view_classes ~group_views ~indexed ~buckets ~domains ~verify
    ~query ~views ~covers_of =
  (* Anytime degradation: a budget tripping before any cover was produced
     (during minimization, view-tuple or tuple-core computation) yields an
     empty-but-sound result rather than an exception.  Input errors such
     as [Width_limit] still raise. *)
  Obs.phase "corecover" @@ fun () ->
  let fallback e =
    {
      minimized_query = query;
      view_classes = [];
      view_tuples = [];
      cores = [];
      tuple_classes = [];
      filters = [];
      rewritings = [];
      completeness = Truncated e;
      stats =
        {
          num_views = List.length views;
          num_view_classes = 0;
          num_view_tuples = 0;
          num_representative_tuples = 0;
        };
    }
  in
  match
    let qm, view_classes, view_tuples, tuple_classes, reps =
      prepare ~budget ~view_classes ~group_views ~indexed ~buckets ~domains
        ~query ~views
    in
    let nonempty =
      List.filter (fun (_, core) -> not (Tuple_core.is_empty core)) reps
    in
    let filters =
      List.filter_map
        (fun (tv, core) -> if Tuple_core.is_empty core then Some tv else None)
        reps
    in
    let tuples = Array.of_list (List.map fst nonempty) in
    let sets = Array.of_list (List.map (fun (_, c) -> c.Tuple_core.mask) nonempty) in
    let universe = (1 lsl List.length qm.Query.body) - 1 in
    let outcome = Obs.phase "set_cover" (fun () -> covers_of ~budget ~universe sets) in
    let rewritings =
      List.map
        (fun cover -> build_rewriting qm (List.map (fun i -> tuples.(i)) cover))
        outcome.Set_cover.covers
    in
    let rewritings =
      if not verify then rewritings
      else
        Obs.phase "verify" (fun () ->
            (* Keep only rewritings fully verified before a budget cutoff,
               so everything returned was actually double-checked. *)
            let verified = ref [] in
            (try
               List.iter
                 (fun p ->
                   if Expansion.is_equivalent_rewriting ?budget ~views ~query p then
                     verified := p :: !verified
                   else
                     failwith
                       (Format.asprintf
                          "CoreCover produced a non-equivalent rewriting: %a" Query.pp p))
                 rewritings
             with Vplan_error.Error e when Vplan_error.is_resource e -> ());
            List.rev !verified)
    in
    let completeness =
      match Option.bind budget Budget.stopped with
      | Some e -> Truncated e
      | None -> (
          match outcome.Set_cover.stopped with
          | Some e -> Truncated e
          | None -> Complete)
    in
    {
      minimized_query = qm;
      view_classes;
      view_tuples;
      cores = reps;
      tuple_classes = List.map (List.map fst) tuple_classes;
      filters;
      rewritings;
      completeness;
      stats =
        {
          num_views = List.length views;
          num_view_classes = List.length view_classes;
          num_view_tuples = List.length view_tuples;
          num_representative_tuples = List.length reps;
        };
    }
  with
  | r -> r
  | exception Vplan_error.Error e when Vplan_error.is_resource e -> fallback e

let gmrs ?budget ?view_classes ?max_covers ?(group_views = true)
    ?(indexed = true) ?(buckets = true) ?(domains = 1) ?(verify = false) ~query
    ~views () =
  run ~budget ~view_classes ~group_views ~indexed ~buckets ~domains ~verify
    ~query ~views
    ~covers_of:(fun ~budget ~universe sets ->
      Set_cover.minimum_covers_anytime ?budget ?max_results:max_covers ~universe sets)

let all_minimal ?budget ?view_classes ?(group_views = true) ?(indexed = true)
    ?(buckets = true) ?(domains = 1) ?(verify = false) ?(max_results = 10_000)
    ~query ~views () =
  run ~budget ~view_classes ~group_views ~indexed ~buckets ~domains ~verify
    ~query ~views
    ~covers_of:(fun ~budget ~universe sets ->
      Set_cover.irredundant_covers_anytime ?budget ~max_results ~universe sets)

let has_rewriting ~query ~views =
  let qm, _, _, _, reps =
    prepare ~budget:None ~view_classes:None ~group_views:true ~indexed:true
      ~buckets:true ~domains:1 ~query ~views
  in
  let universe = (1 lsl List.length qm.Query.body) - 1 in
  let union = List.fold_left (fun acc (_, core) -> acc lor core.Tuple_core.mask) 0 reps in
  union land universe = universe
