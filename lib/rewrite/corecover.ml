open Vplan_cq
open Vplan_views
module Minimize = Vplan_containment.Minimize
module Parallel = Vplan_parallel.Parallel

type stats = {
  num_views : int;
  num_view_classes : int;
  num_view_tuples : int;
  num_representative_tuples : int;
}

type result = {
  minimized_query : Query.t;
  view_classes : View.t list list;
  view_tuples : View_tuple.t list;
  cores : (View_tuple.t * Tuple_core.t) list;
  tuple_classes : View_tuple.t list list;
  filters : View_tuple.t list;
  rewritings : Query.t list;
  stats : stats;
}

(* Steps 1-3 of both variants: minimize, compute view tuples over the
   canonical database, compute tuple-cores, group views into equivalence
   classes and view tuples into same-core classes, and keep one
   representative (view tuple, core) pair per class. *)
let prepare ~group_views ~indexed ~buckets ~domains ~query ~views =
  let qm = Minimize.minimize query in
  (* Subgoal sets are bitmasks in a native int ([Tuple_core.mask], the
     cover universe): more subgoals than bits would overflow silently. *)
  if List.length qm.Query.body > Sys.int_size - 1 then
    invalid_arg
      (Printf.sprintf "Corecover: query has %d subgoals after minimization; at most %d supported"
         (List.length qm.Query.body) (Sys.int_size - 1));
  let view_classes =
    if group_views then Equiv_class.group_views ~buckets views
    else List.map (fun v -> [ v ]) views
  in
  let representative_views = Equiv_class.representatives view_classes in
  let engine = if indexed then `Indexed else `Nested_loop in
  let view_tuples = View_tuple.compute ~engine ~domains ~query:qm representative_views in
  let with_cores =
    Parallel.map ~domains (fun tv -> (tv, Tuple_core.compute ~query:qm tv)) view_tuples
  in
  let tuple_classes =
    (* [same_cover] is mask equality, so hash-bucketing by mask gives the
       same classes in one probe per tuple instead of a pairwise scan *)
    if buckets then Equiv_class.group_by ~key:(fun (_, c) -> c.Tuple_core.mask) with_cores
    else Equiv_class.group ~eq:(fun (_, c1) (_, c2) -> Tuple_core.same_cover c1 c2) with_cores
  in
  let reps = Equiv_class.representatives tuple_classes in
  (qm, view_classes, view_tuples, tuple_classes, reps)

let build_rewriting (qm : Query.t) (chosen : View_tuple.t list) =
  Query.make_exn qm.head (List.map (fun tv -> tv.View_tuple.atom) chosen)

let run ~group_views ~indexed ~buckets ~domains ~verify ~query ~views ~covers_of =
  let qm, view_classes, view_tuples, tuple_classes, reps =
    prepare ~group_views ~indexed ~buckets ~domains ~query ~views
  in
  let nonempty =
    List.filter (fun (_, core) -> not (Tuple_core.is_empty core)) reps
  in
  let filters =
    List.filter_map
      (fun (tv, core) -> if Tuple_core.is_empty core then Some tv else None)
      reps
  in
  let tuples = Array.of_list (List.map fst nonempty) in
  let sets = Array.of_list (List.map (fun (_, c) -> c.Tuple_core.mask) nonempty) in
  let universe = (1 lsl List.length qm.Query.body) - 1 in
  let covers = covers_of ~universe sets in
  let rewritings =
    List.map (fun cover -> build_rewriting qm (List.map (fun i -> tuples.(i)) cover)) covers
  in
  if verify then
    List.iter
      (fun p ->
        if not (Expansion.is_equivalent_rewriting ~views ~query p) then
          failwith
            (Format.asprintf "CoreCover produced a non-equivalent rewriting: %a" Query.pp p))
      rewritings;
  {
    minimized_query = qm;
    view_classes;
    view_tuples;
    cores = reps;
    tuple_classes = List.map (List.map fst) tuple_classes;
    filters;
    rewritings;
    stats =
      {
        num_views = List.length views;
        num_view_classes = List.length view_classes;
        num_view_tuples = List.length view_tuples;
        num_representative_tuples = List.length reps;
      };
  }

let gmrs ?(group_views = true) ?(indexed = true) ?(buckets = true) ?(domains = 1)
    ?(verify = false) ~query ~views () =
  run ~group_views ~indexed ~buckets ~domains ~verify ~query ~views
    ~covers_of:(fun ~universe sets -> Set_cover.minimum_covers ~universe sets)

let all_minimal ?(group_views = true) ?(indexed = true) ?(buckets = true) ?(domains = 1)
    ?(verify = false) ?(max_results = 10_000) ~query ~views () =
  run ~group_views ~indexed ~buckets ~domains ~verify ~query ~views
    ~covers_of:(fun ~universe sets -> Set_cover.irredundant_covers ~max_results ~universe sets)

let has_rewriting ~query ~views =
  let qm, _, _, _, reps =
    prepare ~group_views:true ~indexed:true ~buckets:true ~domains:1 ~query ~views
  in
  let universe = (1 lsl List.length qm.Query.body) - 1 in
  let union = List.fold_left (fun acc (_, core) -> acc lor core.Tuple_core.mask) 0 reps in
  union land universe = universe
