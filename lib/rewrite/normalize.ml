open Vplan_cq
open Vplan_views
module Containment = Vplan_containment.Containment

(* ------------------------------------------------------------------ *)
(* Order-insensitive canonicalization (cache keying).

   [Query.canonical] is invariant under variable renaming only when the
   body order is preserved; a cache keyed by it would miss alpha-variant
   resubmissions with permuted subgoals.  [canonicalize] computes a
   canonical form invariant under BOTH variable renaming and body
   permutation, and complete for that relation: two deduplicated queries
   get the same canonical form iff they are identical up to a variable
   renaming and a body reordering (the canonical form is itself a query,
   so equal renderings are isomorphic by construction).

   Head variables are forced: a renaming must preserve the head, so they
   are labeled V0, V1, ... by first occurrence in the head.  Existential
   variables are labeled by a small canonical-labeling search: variables
   are first partitioned by a renaming-invariant occurrence profile
   (cells sorted by profile), then labels are assigned cell by cell,
   backtracking over the members of each cell and keeping the assignment
   whose sorted body rendering is lexicographically least.  Everything
   the search branches on is a function of the query's isomorphism class
   alone, so alpha-variant inputs with permuted bodies explore the same
   candidate set and elect the same minimum. *)

let label i = "V" ^ string_of_int i

(* Renaming-invariant profile of an existential variable: the sorted
   multiset of its occurrences, each rendered with co-argument kinds
   (constant, head variable by forced label, self, other existential). *)
let occurrence_profile ~head_rank (body : Atom.t list) x =
  let entry (a : Atom.t) pos =
    let buf = Buffer.create 32 in
    Buffer.add_string buf (a.pred ^ "/" ^ string_of_int (Atom.arity a));
    Buffer.add_string buf ("@" ^ string_of_int pos ^ "[");
    List.iter
      (fun arg ->
        match arg with
        | Term.Cst c -> Buffer.add_string buf ("c" ^ Term.const_to_string c ^ ";")
        | Term.Var y when String.equal y x -> Buffer.add_string buf "self;"
        | Term.Var y -> (
            match Hashtbl.find_opt head_rank y with
            | Some i -> Buffer.add_string buf ("h" ^ string_of_int i ^ ";")
            | None -> Buffer.add_string buf "*;"))
      a.args;
    Buffer.add_char buf ']';
    Buffer.contents buf
  in
  let entries =
    List.concat_map
      (fun (a : Atom.t) ->
        List.mapi (fun pos arg -> (pos, arg)) a.args
        |> List.filter_map (fun (pos, arg) ->
               match arg with
               | Term.Var y when String.equal y x -> Some (entry a pos)
               | _ -> None))
      body
  in
  String.concat "|" (List.sort String.compare entries)

(* Bound on the canonical-labeling search: queries whose existential
   symmetry is too tangled are reported uncacheable rather than risking
   a factorial blow-up on an adversarial input. *)
let search_cap = 20_000

exception Blown

let canonicalize (q : Query.t) =
  let q = Query.dedup_body q in
  let head_vars = Query.head_vars q in
  let head_rank = Hashtbl.create 8 in
  List.iteri (fun i x -> Hashtbl.replace head_rank x i) head_vars;
  let ex_vars =
    List.filter (fun x -> not (Hashtbl.mem head_rank x)) (Query.vars q)
  in
  if List.length ex_vars > 24 then None
  else begin
    let base =
      List.mapi (fun i x -> (x, Term.Var (label i))) head_vars |> Subst.of_list
    in
    let render subst =
      let body =
        List.map (fun a -> Atom.apply subst a) q.body
        |> List.map (fun a -> (Atom.to_string a, a))
        |> List.sort (fun (s1, _) (s2, _) -> String.compare s1 s2)
      in
      ( Atom.to_string (Atom.apply subst q.head)
        ^ " :- "
        ^ String.concat ", " (List.map fst body),
        List.map snd body )
    in
    (* cells of existential variables, sorted by invariant profile *)
    let cells =
      List.map (fun x -> (occurrence_profile ~head_rank q.body x, x)) ex_vars
      |> List.sort (fun (p1, _) (p2, _) -> String.compare p1 p2)
      |> List.fold_left
           (fun acc (p, x) ->
             match acc with
             | (p', xs) :: rest when String.equal p p' -> (p', x :: xs) :: rest
             | _ -> (p, [ x ]) :: acc)
           []
      |> List.rev_map (fun (_, xs) -> List.rev xs)
    in
    let nodes = ref 0 in
    let best = ref None in
    let n_head = List.length head_vars in
    let rec assign next subst = function
      | [] ->
          incr nodes;
          if !nodes > search_cap then raise Blown;
          let rendering, body = render subst in
          (match !best with
          | Some (b, _, _) when String.compare b rendering <= 0 -> ()
          | _ -> best := Some (rendering, body, subst))
      | [] :: cells -> assign next subst cells
      | cell :: cells ->
          List.iter
            (fun x ->
              incr nodes;
              if !nodes > search_cap then raise Blown;
              let rest = List.filter (fun y -> not (String.equal x y)) cell in
              assign (next + 1)
                (Subst.bind x (Term.Var (label next)) subst)
                (rest :: cells))
            cell
    in
    match assign n_head base cells with
    | () -> (
        match !best with
        | None -> None
        | Some (_, body, subst) ->
            let head = Atom.apply subst q.head in
            Some (Query.make_exn head body, subst))
    | exception Blown -> None
  end

let cache_key q = Option.map (fun (c, _) -> Query.to_string c) (canonicalize q)

let to_view_tuple_form ~views ~query (p : Query.t) =
  if not (Expansion.is_equivalent_rewriting ~views ~query p) then None
  else
    match Expansion.expand ~views p with
    | Error `Unsatisfiable -> None
    | Ok pexp -> (
        (* a containment mapping from P^exp to Q exists by equivalence;
           restricting it to P's variables rewrites every view atom into
           a view tuple *)
        match Containment.mapping ~from_q:pexp ~to_q:query with
        | None -> None
        | Some phi ->
            let p' = Query.dedup_body (Query.apply phi p) in
            Some p')
