open Vplan_cq
open Vplan_views

type t = {
  subgoals : Atom.t list;
  mask : int;
  mapping : Subst.t;
}

let is_empty c = c.mask = 0
let same_cover c1 c2 = c1.mask = c2.mask

let pp ppf c =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Atom.pp)
    c.subgoals

(* The search enumerates, for every subset of query subgoals, the ways to
   map each included subgoal into an atom of the view-tuple expansion
   under Definition 4.1's constraints, then keeps the inclusion-maximal
   consistent subsets.  Queries have few subgoals (8 in the paper's
   experiments), so the exhaustive search with unification pruning is
   cheap in practice. *)

type ctx = {
  query : Query.t;
  tv_args : Names.Sset.t;  (* variables appearing in the view tuple *)
  expansion : Atom.t list;
  existentials : Names.Sset.t;  (* fresh variables of the expansion *)
  body : Atom.t array;
  var_occurrences : int Names.Smap.t;  (* var -> bitmask of subgoals using it *)
}

let make_ctx ~query tv =
  let body = Array.of_list query.Query.body in
  if Array.length body > 62 then
    raise
      (Vplan_core.Vplan_error.Error
         (Width_limit { subgoals = Array.length body; max_subgoals = 62 }));
  let expansion, existentials = View_tuple.expansion ~avoid:(Query.var_set query) tv in
  let var_occurrences =
    Array.to_list body
    |> List.mapi (fun i a -> (i, a))
    |> List.fold_left
         (fun m (i, a) ->
           List.fold_left
             (fun m x ->
               let mask = match Names.Smap.find_opt x m with Some v -> v | None -> 0 in
               Names.Smap.add x (mask lor (1 lsl i)) m)
             m (Atom.vars a))
         Names.Smap.empty
  in
  {
    query;
    tv_args = Atom.var_set tv.View_tuple.atom;
    expansion;
    existentials;
    body;
    var_occurrences;
  }

(* Extend the partial mapping by sending subgoal [a] to expansion atom
   [e], enforcing: constants match; distinguished variables and variables
   of the view tuple map to themselves; every other variable maps to an
   existential variable of the expansion.  The last restriction is what
   makes the tuple-core unique (Lemma 4.2) and lets the per-tuple mappings
   combine seamlessly into one containment mapping from the query to a
   rewriting's expansion: a variable mapped onto another view-tuple
   argument would collide with that argument's own identity image. *)
let constrained_unify ctx subst (a : Atom.t) (e : Atom.t) =
  if (not (String.equal a.pred e.Atom.pred)) || Atom.arity a <> Atom.arity e then None
  else
    List.fold_left2
      (fun acc pat target ->
        match acc with
        | None -> None
        | Some s -> (
            match pat with
            | Term.Cst c -> (
                match target with
                | Term.Cst c' when Term.equal_const c c' -> Some s
                | Term.Cst _ | Term.Var _ -> None)
            | Term.Var x ->
                let must_be_identity =
                  Query.is_distinguished ctx.query x || Names.Sset.mem x ctx.tv_args
                in
                if must_be_identity then
                  if Term.equal target (Term.Var x) then Subst.extend x target s else None
                else (
                  match target with
                  | Term.Var y when Names.Sset.mem y ctx.existentials ->
                      Subst.extend x target s
                  | Term.Var _ | Term.Cst _ -> None)))
      (Some subst) a.args e.args

(* One-to-one on arguments: the map {arg of G -> image} must be injective,
   where constants map to themselves and variables via the substitution. *)
let injective ctx subst mask =
  let args =
    let acc = ref Term.Set.empty in
    Array.iteri
      (fun i a -> if mask land (1 lsl i) <> 0 then acc := Term.Set.union !acc (Atom.terms a))
      ctx.body;
    Term.Set.elements !acc
  in
  let images =
    List.map
      (function
        | Term.Cst _ as c -> c
        | Term.Var x as v -> ( match Subst.find x subst with Some t -> t | None -> v))
      args
  in
  List.length (List.sort_uniq Term.compare images) = List.length args

(* Property (3): a variable mapped to an existential expansion variable
   drags every subgoal using it into G. *)
let closure_ok ctx subst mask =
  Names.Smap.for_all
    (fun x occurrences ->
      if occurrences land mask = 0 then true
      else
        match Subst.find x subst with
        | Some (Term.Var y) when Names.Sset.mem y ctx.existentials ->
            occurrences land mask = occurrences
        | Some _ | None -> true)
    ctx.var_occurrences

let candidates ?budget ctx =
  let n = Array.length ctx.body in
  let results = ref [] in
  let rec go i subst mask =
    Vplan_core.Budget.tick budget;
    if i = n then begin
      if injective ctx subst mask && closure_ok ctx subst mask then
        results := (mask, subst) :: !results
    end
    else begin
      (* exclude subgoal i *)
      go (i + 1) subst mask;
      (* include subgoal i, one target expansion atom at a time *)
      List.iter
        (fun e ->
          match constrained_unify ctx subst ctx.body.(i) e with
          | Some subst' -> go (i + 1) subst' (mask lor (1 lsl i))
          | None -> ())
        ctx.expansion
    end
  in
  go 0 Subst.empty 0;
  !results

let restrict_mapping subst mask (body : Atom.t array) =
  let vars = ref Names.Sset.empty in
  Array.iteri
    (fun i a -> if mask land (1 lsl i) <> 0 then vars := Names.Sset.union !vars (Atom.var_set a))
    body;
  Subst.of_list
    (List.filter (fun (x, _) -> Names.Sset.mem x !vars) (Subst.bindings subst))

let of_candidate ctx (mask, subst) =
  let subgoals =
    Array.to_list ctx.body
    |> List.mapi (fun i a -> (i, a))
    |> List.filter_map (fun (i, a) -> if mask land (1 lsl i) <> 0 then Some a else None)
  in
  { subgoals; mask; mapping = restrict_mapping subst mask ctx.body }

let compute_all_maximal ?budget ~query tv =
  let ctx = make_ctx ~query tv in
  let cands = candidates ?budget ctx in
  let maximal =
    List.filter
      (fun (mask, _) ->
        not
          (List.exists
             (fun (mask', _) -> mask <> mask' && mask land mask' = mask)
             cands))
      cands
  in
  (* Deduplicate by covered set: different witnessing mappings for the
     same subgoal set represent the same core. *)
  let dedup =
    List.fold_left
      (fun acc ((mask, _) as cand) ->
        if List.exists (fun (m, _) -> m = mask) acc then acc else cand :: acc)
      [] maximal
  in
  List.rev_map (of_candidate ctx) dedup

let compute ?budget ~query tv =
  match compute_all_maximal ?budget ~query tv with
  | [] -> { subgoals = []; mask = 0; mapping = Subst.empty }
  | [ core ] -> core
  | multiple ->
      (* Lemma 4.2 guarantees uniqueness for minimal queries; if the input
         was not minimal, fall back to the largest candidate. *)
      List.fold_left
        (fun best c ->
          if List.length c.subgoals > List.length best.subgoals then c else best)
        (List.hd multiple) (List.tl multiple)
