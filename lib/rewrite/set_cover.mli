(** Set covering over bitmask-encoded subgoal sets.

    CoreCover's last step is a classic set-cover problem: cover the query
    subgoals with as few tuple-cores as possible (minimum covers, cost
    model M1) or with any irredundant combination (CoreCover{^ *}, cost
    model M2).  Universes are small (one bit per query subgoal), so exact
    branch-and-bound search is used throughout.

    The [_anytime] variants run under an optional {!Vplan_core.Budget.t}
    and return an {!outcome}: the covers enumerated so far plus the reason
    the enumeration stopped early, if it did.  Every returned cover is a
    genuine cover — truncation only costs exhaustiveness. *)

type outcome = {
  covers : int list list;
  stopped : Vplan_core.Vplan_error.t option;
      (** [None] when the enumeration ran to completion *)
}

(** [minimum_covers ~universe sets] returns all covers of the full
    [universe] mask of minimum cardinality, as sorted index lists into
    [sets].  Empty when no cover exists.  Sets equal to [0] never help and
    are skipped. *)
val minimum_covers : universe:int -> int array -> int list list

(** [irredundant_covers ~universe sets] returns every irredundant cover
    (no chosen set can be dropped without uncovering the universe), as
    sorted index lists.  [max_results] truncates the enumeration (default
    [max_int]). *)
val irredundant_covers : ?max_results:int -> universe:int -> int array -> int list list

(** Anytime {!minimum_covers}: covers found at cardinality [k] are genuine
    minimum covers even if the size-[k] pass is cut short, because all
    smaller cardinalities were exhausted first. *)
val minimum_covers_anytime :
  ?budget:Vplan_core.Budget.t ->
  ?max_results:int ->
  universe:int ->
  int array ->
  outcome

(** Anytime {!irredundant_covers}; [stopped = Some (Cover_limit _)] when
    the [max_results] cap fired. *)
val irredundant_covers_anytime :
  ?budget:Vplan_core.Budget.t ->
  ?max_results:int ->
  universe:int ->
  int array ->
  outcome

(** [is_cover ~universe sets indices]. *)
val is_cover : universe:int -> int array -> int list -> bool

(** [is_irredundant ~universe sets indices]. *)
val is_irredundant : universe:int -> int array -> int list -> bool
