(** Lemma 3.2's constructive transformation: any equivalent rewriting can
    be turned into one, at least as contained, that uses only view tuples
    of [T(Q,V)].

    The proof is the algorithm: take a containment mapping φ from the
    rewriting's expansion to the query and replace every variable [X] of
    the rewriting by its target [φ(X)]; after deduplication the body
    atoms are view tuples.  The paper's worked instance turns [P1] of the
    car-loc-part example into [P2]. *)

open Vplan_cq
open Vplan_views

(** [to_view_tuple_form ~views ~query p] — [None] when [p] is not an
    equivalent rewriting of [query].  The result is an equivalent
    rewriting contained in [p] whose atoms are view tuples. *)
val to_view_tuple_form :
  views:View.t list -> query:Query.t -> Query.t -> Query.t option

(** [canonicalize q] computes a canonical form of [q] invariant under
    {e both} variable renaming and body-atom reordering — unlike
    {!Vplan_cq.Query.canonical}, which is order-sensitive.  Returns
    [Some (canon, sigma)] where [sigma] is a total bijective renaming of
    [q]'s variables with [Query.apply sigma q] equal to [canon] up to
    body order; inverting [sigma] maps results computed over [canon]
    back into [q]'s variables.

    The form is complete for the relation it is invariant under: two
    queries have equal (as [Query.equal], after {!Vplan_cq.Query.dedup_body})
    canonical forms iff they are identical up to a variable renaming and
    a body permutation — exactly
    {!Vplan_containment.Containment.isomorphic}.  This is what makes it
    usable as a rewrite-cache key: equal keys never conflate queries
    with different rewritings.

    Head variables are labeled by their forced first-occurrence order;
    existential variables by a canonical-labeling search seeded with a
    renaming-invariant occurrence-profile partition.  [None] when the
    search exceeds its internal node cap (pathologically symmetric
    existential structure) — callers should treat such a query as
    uncacheable, never guess. *)
val canonicalize : Query.t -> (Query.t * Subst.t) option

(** [cache_key q] is the canonical form rendered as a string, or [None]
    when [q] is uncacheable.  [cache_key q1 = cache_key q2 <> None] iff
    the queries are isomorphic. *)
val cache_key : Query.t -> string option
