module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error
module Metrics = Vplan_obs.Metrics

(* Search nodes are counted in a local ref inside the (hot) enumeration
   loop and flushed to the atomic registry counter once per call, so the
   instrumented loop body costs one non-atomic increment. *)
let nodes_total = Metrics.counter "vplan_set_cover_nodes_total"
let covers_total = Metrics.counter "vplan_set_cover_covers_total"

type outcome = {
  covers : int list list;
  stopped : Vplan_error.t option;
}

let union_of sets indices = List.fold_left (fun acc i -> acc lor sets.(i)) 0 indices

let is_cover ~universe sets indices = union_of sets indices land universe = universe

let is_irredundant ~universe sets indices =
  is_cover ~universe sets indices
  && List.for_all
       (fun i -> not (is_cover ~universe sets (List.filter (fun j -> j <> i) indices)))
       indices

let lowest_uncovered ~universe covered =
  let remaining = universe land lnot covered in
  if remaining = 0 then None
  else
    let rec find bit = if remaining land (1 lsl bit) <> 0 then bit else find (bit + 1) in
    Some (find 0)

(* Enumerate covers by always branching on the lowest uncovered subgoal.
   Every irredundant cover admits an ordering in which each chosen set
   covers the then-lowest uncovered subgoal, so this enumeration reaches
   all of them.

   Each chosen set "claims" the bit it was chosen for.  To generate every
   cover exactly once (rather than once per claim assignment, deduplicated
   afterwards), only canonical claim assignments are explored: the
   claimant of a bit must be the smallest-index member of the final cover
   containing that bit.  Concretely, candidate [i] is rejected when some
   earlier claim [(b, s)] has [i] containing [b] with [i < s] — in any
   completion, [s] would not be [b]'s smallest-index claimant.  The
   canonical assignment itself always survives this test, so exactly one
   search path reaches each cover.

   The enumeration is anytime: covers accumulated before a budget trip or
   the [max_results] cap are returned with the reason in [stopped]; each
   is a genuine cover, only exhaustiveness is lost. *)
let enumerate ?budget ~universe sets ~size_bound ~keep ~max_results =
  let n = Array.length sets in
  let nbits =
    let rec go b = if universe lsr b = 0 then b else go (b + 1) in
    go 0
  in
  (* candidates.(b): indices of sets containing bit b, ascending — the
     branching loop touches only sets that can claim the bit. *)
  let candidates = Array.make (max nbits 1) [] in
  for i = n - 1 downto 0 do
    let s = sets.(i) land universe in
    if s <> 0 then
      for b = 0 to nbits - 1 do
        if s land (1 lsl b) <> 0 then candidates.(b) <- i :: candidates.(b)
      done
  done;
  let results = ref [] in
  let count = ref 0 in
  let stopped = ref None in
  let nodes = ref 0 in
  let rec go chosen covered depth claims =
    if !count >= max_results then begin
      if max_results < max_int && !stopped = None then
        stopped := Some (Vplan_error.Cover_limit { limit = max_results })
    end
    else begin
      incr nodes;
      Budget.tick budget;
      match lowest_uncovered ~universe covered with
      | None ->
          let cover = List.sort Int.compare chosen in
          if keep cover then begin
            results := cover :: !results;
            incr count
          end
      | Some bit ->
          if depth < size_bound then
            List.iter
              (fun i ->
                let canonical =
                  List.for_all
                    (fun (b_mask, s) -> sets.(i) land b_mask = 0 || i > s)
                    claims
                in
                if canonical then
                  go (i :: chosen)
                    (covered lor sets.(i))
                    (depth + 1)
                    ((1 lsl bit, i) :: claims))
              candidates.(bit)
    end
  in
  (try go [] 0 0 []
   with Vplan_error.Error e when Vplan_error.is_resource e -> stopped := Some e);
  Metrics.add nodes_total !nodes;
  Metrics.add covers_total !count;
  Vplan_obs.Trace.annotate "nodes" (float_of_int !nodes);
  Vplan_obs.Trace.annotate "covers" (float_of_int !count);
  (* DFS emission follows claim order, not index order; sort to present
     covers in lexicographic order of their sorted index lists. *)
  { covers = List.sort (List.compare Int.compare) !results; stopped = !stopped }

let minimum_covers_anytime ?budget ?(max_results = max_int) ~universe sets =
  if universe = 0 then { covers = [ [] ]; stopped = None }
  else
    let n = Array.length sets in
    let rec try_size k =
      if k > n then { covers = []; stopped = None }
      else
        let o =
          enumerate ?budget ~universe sets ~size_bound:k
            ~keep:(fun cover -> List.length cover = k)
            ~max_results
        in
        match o with
        | { covers = []; stopped = None } -> try_size (k + 1)
        (* Covers found at size [k] are genuine minimum covers even when
           the size-[k] pass was cut short: all smaller sizes completed
           with no cover. *)
        | o -> o
    in
    try_size 1

let irredundant_covers_anytime ?budget ?(max_results = max_int) ~universe sets =
  if universe = 0 then { covers = [ [] ]; stopped = None }
  else
    enumerate ?budget ~universe sets ~size_bound:(Array.length sets)
      ~keep:(is_irredundant ~universe sets)
      ~max_results

let minimum_covers ~universe sets = (minimum_covers_anytime ~universe sets).covers

let irredundant_covers ?max_results ~universe sets =
  (irredundant_covers_anytime ?max_results ~universe sets).covers
