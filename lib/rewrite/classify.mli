(** Classification of rewritings (Section 3.2, Figure 1).

    The paper organizes rewritings into nested regions:

    - {e minimal}: no redundant subgoal {e as a query} (its own core);
    - {e locally minimal} (LMR): no subgoal can be removed while remaining
      an equivalent rewriting of the query;
    - {e containment minimal} (CMR): an LMR with no other LMR properly
      contained in it as queries;
    - {e globally minimal} (GMR): fewest subgoals among all rewritings.

    CMR and GMR quantify over all rewritings, so the predicates here take
    the candidate space explicitly (the LMRs over view tuples suffice by
    Lemma 3.3 / Theorem 3.1). *)

open Vplan_cq
open Vplan_views

(** [is_rewriting ~views ~query p] — alias of
    {!Expansion.is_equivalent_rewriting}. *)
val is_rewriting :
  ?budget:Vplan_core.Budget.t -> views:View.t list -> query:Query.t -> Query.t -> bool

(** [is_minimal_query p] — [p] contains no redundant subgoal as a query. *)
val is_minimal_query : Query.t -> bool

(** [is_lmr ~views ~query p] — [p] is a rewriting and removing any single
    subgoal stops it from being one. *)
val is_lmr : views:View.t list -> query:Query.t -> Query.t -> bool

(** [lmr_of ~views ~query p] greedily removes subgoals from the rewriting
    [p] while the result remains a rewriting — the two-step minimization
    of Section 3.1.  Requires [p] to be a rewriting. *)
val lmr_of : views:View.t list -> query:Query.t -> Query.t -> Query.t

(** [is_cmr_among ~lmrs p] — no LMR in [lmrs] is properly contained in [p]
    as queries. *)
val is_cmr_among : lmrs:Query.t list -> Query.t -> bool

(** [is_gmr_among ~candidates p] — [p] has the minimum subgoal count among
    [candidates] (which must contain at least one rewriting). *)
val is_gmr_among : candidates:Query.t list -> Query.t -> bool
