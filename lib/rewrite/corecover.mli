(** The CoreCover algorithm (Section 4) and its CoreCover{^ *} variant
    (Section 5).

    CoreCover finds all globally-minimal rewritings (GMRs — optimal under
    cost model M1) of a query using views:

    + minimize the query;
    + compute the view tuples [T(Q,V)] on the canonical database;
    + compute the tuple-core of each view tuple;
    + cover the query subgoals with a minimum number of tuple-cores; each
      cover yields a GMR.

    CoreCover{^ *} replaces step 4 by the enumeration of {e all}
    irredundant covers; together with the empty-core view tuples (usable as
    filtering subgoals) this search space contains an M2-optimal rewriting
    (Theorem 5.1).

    Both variants can first group views into equivalence classes and view
    tuples into same-core classes, running the cover search on one
    representative per class (Section 5.2) — the key to scalability. *)

open Vplan_cq
open Vplan_views

type stats = {
  num_views : int;
  num_view_classes : int;  (** equivalence classes of views *)
  num_view_tuples : int;  (** |T(Q,V)| over the views considered *)
  num_representative_tuples : int;  (** distinct tuple-cores (incl. empty) *)
}

(** Whether the run explored its whole search space.  [Truncated e] marks
    an {e anytime} result: a budget or result cap fired ([e] says which),
    every returned rewriting is still a sound equivalent rewriting, but
    others may exist beyond the cutoff. *)
type completeness = Complete | Truncated of Vplan_core.Vplan_error.t

type result = {
  minimized_query : Query.t;
  view_classes : View.t list list;
  view_tuples : View_tuple.t list;
  cores : (View_tuple.t * Tuple_core.t) list;
      (** representative view tuples with their cores *)
  tuple_classes : View_tuple.t list list;
      (** view tuples grouped by equal core; aligned with [cores] *)
  filters : View_tuple.t list;
      (** representative empty-core view tuples (M2 filter candidates) *)
  rewritings : Query.t list;
  completeness : completeness;
      (** [Complete] unless a budget or cover cap cut the run short *)
  stats : stats;
}

(** [gmrs ~query ~views ()] runs CoreCover and returns all GMRs (up to the
    equivalence-class representative choice).

    [group_views] (default [true]) groups equivalent views first.
    [view_classes] supplies a precomputed equivalence-class partition of
    [views] (as built once by a resident {e catalog},
    {!Vplan_service.Catalog}), skipping the per-call grouping entirely;
    when present it overrides [group_views]/[buckets] for that stage.
    The caller must guarantee the classes partition exactly [views] under
    view equivalence — the result is then identical to grouping in-call.
    [indexed] (default [true]) evaluates views over the canonical database
    with the hash-indexed engine ({!Vplan_relational.Indexed_db}) instead
    of the plain nested-loop join.
    [buckets] (default [true]) buckets views by canonical signature before
    the pairwise equivalence checks and view tuples by core bitmask.
    [domains] (default 1) fans the per-view evaluation and per-tuple core
    computation across that many domains.
    All four toggles are pure performance knobs: every combination returns
    the same [result].
    [verify] (default [false]) double-checks every produced rewriting with
    the expansion-equivalence test and raises [Failure] on a counterexample
    — used by the test suite.

    [budget] makes the run {e anytime}: when the deadline, step budget or
    cancellation fires, the call returns normally with every rewriting
    fully produced (and, under [verify], fully verified) before the
    cutoff and [completeness = Truncated reason] instead of raising.
    [max_covers] caps the number of covers enumerated, reported the same
    way.  Without either, [completeness] is [Complete] and the behavior
    is unchanged.

    @raise Vplan_error.Error with [Width_limit] if the minimized query has
    more subgoals than fit in a native-int bitmask ([Sys.int_size - 1],
    i.e. 62 on 64-bit) — an input error, raised even under a budget. *)
val gmrs :
  ?budget:Vplan_core.Budget.t ->
  ?view_classes:View.t list list ->
  ?max_covers:int ->
  ?group_views:bool ->
  ?indexed:bool ->
  ?buckets:bool ->
  ?domains:int ->
  ?verify:bool ->
  query:Query.t ->
  views:View.t list ->
  unit ->
  result

(** [all_minimal ~query ~views ()] runs CoreCover{^ *}: every irredundant
    cover yields a minimal rewriting; [max_results] bounds the enumeration
    (default 10_000, reported as [Truncated (Cover_limit _)] when it
    fires).  The [filters] field lists the empty-core view tuples an
    optimizer may append as filtering subgoals under M2.  Performance
    toggles, [budget] semantics and the subgoal-count guard are as in
    {!gmrs}. *)
val all_minimal :
  ?budget:Vplan_core.Budget.t ->
  ?view_classes:View.t list list ->
  ?group_views:bool ->
  ?indexed:bool ->
  ?buckets:bool ->
  ?domains:int ->
  ?verify:bool ->
  ?max_results:int ->
  query:Query.t ->
  views:View.t list ->
  unit ->
  result

(** [has_rewriting ~query ~views] decides existence of an equivalent
    rewriting (the union of all tuple-cores must cover the query subgoals —
    Theorem 4.1).

    @raise Vplan_error.Error with [Width_limit] on over-wide queries, as
    in {!gmrs}. *)
val has_rewriting : query:Query.t -> views:View.t list -> bool
