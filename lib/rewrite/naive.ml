open Vplan_cq
open Vplan_views
module Minimize = Vplan_containment.Minimize

let rec combinations k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest

let candidate_rewriting (qm : Query.t) tuples =
  let body = List.map (fun tv -> tv.View_tuple.atom) tuples in
  match Query.make qm.head body with Ok p -> Some p | Error _ -> None

let rewritings_of_size ~query ~views k =
  let qm = Minimize.minimize query in
  let tuples = View_tuple.compute ~query:qm views in
  combinations k tuples
  |> List.filter_map (candidate_rewriting qm)
  |> List.filter (Expansion.is_equivalent_rewriting ~views ~query)

let gmrs ~query ~views =
  let qm = Minimize.minimize query in
  let bound = List.length qm.Query.body in
  let rec try_size k =
    if k > bound then []
    else
      match rewritings_of_size ~query ~views k with
      | [] -> try_size (k + 1)
      | found -> found
  in
  try_size 1
