(** Indexed conjunctive-query evaluation.

    An {!t} is an interned, array-stored image of a {!Database.t} together
    with a cache of hash indexes.  Constants are interned to dense integer
    ids and tuples stored as int arrays; an index for a
    [(predicate, bound-position mask)] pair maps the projection of a tuple
    onto the bound positions to the matching tuple numbers.  Indexes are
    built lazily on first use and cached for the lifetime of the value, so
    evaluating many query bodies against the same database (CoreCover
    evaluates every view against one canonical database) pays each index
    once.

    {!answers} schedules atoms selectivity-first (most bound arguments,
    then smallest relation), probes the per-atom index instead of scanning,
    and defers deduplication to projection time.  It computes exactly the
    same relation as {!Eval.answers} — set semantics make the two engines
    indistinguishable except for speed.

    Index construction is mutex-guarded: a single [t] may be shared by the
    parallel per-view fan-out ({!Vplan_parallel.Parallel}). *)

open Vplan_cq

type t

(** [of_database db] interns [db].  Cost: one pass over the database; no
    index is built yet. *)
val of_database : Database.t -> t

(** The database this value was built from. *)
val database : t -> Database.t

(** [answers t q] computes the answer relation of [q] (distinct head
    tuples), equal to [Eval.answers (database t) q]. *)
val answers : t -> Query.t -> Relation.t
