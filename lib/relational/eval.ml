open Vplan_cq

type env = Term.const Names.Smap.t

let empty_env = Names.Smap.empty
let env_find env x = Names.Smap.find_opt x env
let env_bindings env = Names.Smap.bindings env

let env_of_bindings l =
  List.fold_left (fun e (x, c) -> Names.Smap.add x c e) empty_env l

let match_args env args tuple =
  let bind_one acc arg value =
    match acc with
    | None -> None
    | Some env -> (
        match arg with
        | Term.Cst c -> if Term.equal_const c value then Some env else None
        | Term.Var x -> (
            match Names.Smap.find_opt x env with
            | Some c -> if Term.equal_const c value then Some env else None
            | None -> Some (Names.Smap.add x value env)))
  in
  List.fold_left2 bind_one (Some env) args tuple

let match_atom db env (a : Atom.t) =
  match Database.find a.pred db with
  | None -> []
  | Some r ->
      Relation.fold
        (fun tuple acc ->
          match match_args env a.args tuple with Some e -> e :: acc | None -> acc)
        r []

module Env_set = Set.Make (struct
  type t = env

  let compare = Names.Smap.compare Term.compare_const
end)

let dedup envs = Env_set.elements (Env_set.of_list envs)
let extend db envs atom = dedup (List.concat_map (fun e -> match_atom db e atom) envs)

(* Selectivity-ordered scheduling: repeatedly pick the atom with the most
   bound arguments (constants, or variables bound by an already-scheduled
   atom), tie-breaking on smaller relation, then on original position.  A
   static greedy order — reordering a join never changes the resulting
   environment set, only the intermediate sizes. *)
let schedule db atoms =
  let relation_card (a : Atom.t) =
    match Database.find a.pred db with Some r -> Relation.cardinality r | None -> 0
  in
  let rec pick bound acc = function
    | [] -> List.rev acc
    | remaining ->
        let score (i, (a : Atom.t)) =
          let b =
            List.length
              (List.filter
                 (function
                   | Term.Cst _ -> true
                   | Term.Var x -> Names.Sset.mem x bound)
                 a.args)
          in
          (-b, relation_card a, i)
        in
        let best =
          List.fold_left
            (fun best cand -> if score cand < score best then cand else best)
            (List.hd remaining) (List.tl remaining)
        in
        let bound = Names.Sset.union bound (Atom.var_set (snd best)) in
        pick bound (snd best :: acc)
          (List.filter (fun (i, _) -> i <> fst best) remaining)
  in
  pick Names.Sset.empty [] (List.mapi (fun i a -> (i, a)) atoms)

(* Starting from the single empty environment, every environment alive
   after k join steps binds exactly the variables of the k processed
   atoms, and an environment together with an atom's pattern determines
   the matched tuple — so no two environments can collapse into one and
   the per-step dedup of [extend] would be a no-op.  Deduplication is
   therefore deferred to projection time (callers build sets from the
   result). *)
let satisfying_envs db atoms =
  List.fold_left
    (fun envs atom -> List.concat_map (fun e -> match_atom db e atom) envs)
    [ empty_env ] (schedule db atoms)

let project ~onto envs =
  dedup (List.map (fun env -> Names.Smap.filter (fun x _ -> Names.Sset.mem x onto) env) envs)

let distinct_count envs = Env_set.cardinal (Env_set.of_list envs)

let tuple_of_env env terms =
  List.map
    (function
      | Term.Cst c -> c
      | Term.Var x -> (
          match env_find env x with
          | Some c -> c
          | None -> invalid_arg ("Eval.tuple_of_env: unbound variable " ^ x)))
    terms

let answers db (q : Query.t) =
  let envs = satisfying_envs db q.body in
  let tuples = List.map (fun env -> tuple_of_env env q.head.Atom.args) envs in
  Relation.of_tuples (Atom.arity q.head) tuples

let matching_count db atom = List.length (match_atom db empty_env atom)

let relation_size db (a : Atom.t) =
  match Database.find a.pred db with Some r -> Relation.cardinality r | None -> 0

let answers_ucq db u =
  match List.map (answers db) (Ucq.disjuncts u) with
  | [] -> invalid_arg "Eval.answers_ucq: empty union"
  | first :: rest -> List.fold_left Relation.union first rest
