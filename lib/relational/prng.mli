(** A small deterministic pseudo-random number generator (splitmix64).

    All data and workload generation in this repository is driven by this
    PRNG so that every experiment is reproducible from its seed, without
    depending on the global [Random] state. *)

type t

val create : int -> t

(** [int t bound] draws uniformly from [0 .. bound-1]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [range t lo hi] draws uniformly from [lo .. hi] inclusive. *)
val range : t -> int -> int -> int

(** [bool t] draws a fair coin. *)
val bool : t -> bool

(** [float t] draws uniformly from [0, 1). *)
val float : t -> float

(** [pick t l] draws a uniformly random element; raises [Invalid_argument]
    on an empty list. *)
val pick : t -> 'a list -> 'a

(** [shuffle t l] returns a uniformly random permutation. *)
val shuffle : t -> 'a list -> 'a list

(** [split t] derives an independent generator (useful to decorrelate
    sub-streams). *)
val split : t -> t
