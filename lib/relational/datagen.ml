open Vplan_cq

type spec = {
  predicate : string;
  arity : int;
  tuples : int;
  domain : int;
}

let random_tuple rng ~arity ~domain = List.init arity (fun _ -> Term.Int (Prng.int rng domain))

let random rng specs =
  List.fold_left
    (fun db spec ->
      let r =
        List.init spec.tuples (fun _ -> random_tuple rng ~arity:spec.arity ~domain:spec.domain)
        |> Relation.of_tuples spec.arity
      in
      Database.add_relation spec.predicate r db)
    Database.empty specs

let arities_of_query (q : Query.t) =
  List.fold_left
    (fun m (a : Atom.t) ->
      match Names.Smap.find_opt a.pred m with
      | Some arity when arity = Atom.arity a -> m
      | Some _ -> invalid_arg ("Datagen: predicate " ^ a.pred ^ " used with two arities")
      | None -> Names.Smap.add a.pred (Atom.arity a) m)
    Names.Smap.empty q.body

let for_query rng ~tuples ~domain q =
  let specs =
    Names.Smap.bindings (arities_of_query q)
    |> List.map (fun (predicate, arity) -> { predicate; arity; tuples; domain })
  in
  random rng specs

let for_query_nonempty rng ~tuples ~domain q =
  let db = for_query rng ~tuples ~domain q in
  (* Instantiate the body with random constants and plant it as facts so
     that the query is satisfiable; witnesses use the same domain as the
     random tuples. *)
  let witnesses = max 1 (tuples / 10) in
  let plant db _ =
    let assignment =
      List.fold_left
        (fun s x -> Subst.bind x (Term.Cst (Term.Int (Prng.int rng domain))) s)
        Subst.empty (Query.vars q)
    in
    List.fold_left
      (fun db (a : Atom.t) ->
        let ground = Atom.apply assignment a in
        let tuple =
          List.map
            (function
              | Term.Cst c -> c
              | Term.Var x -> invalid_arg ("Datagen: unbound variable " ^ x))
            ground.Atom.args
        in
        Database.add_fact a.pred tuple db)
      db q.body
  in
  List.fold_left plant db (List.init witnesses Fun.id)

(* Nested sampling skews mass toward small values: value v is drawn
   uniformly from [0, u) where u is itself uniform. *)
let skewed_value rng ~domain =
  let upper = 1 + Prng.int rng domain in
  Term.Int (Prng.int rng upper)

let random_skewed rng specs =
  List.fold_left
    (fun db spec ->
      let r =
        List.init spec.tuples (fun _ ->
            List.init spec.arity (fun _ -> skewed_value rng ~domain:spec.domain))
        |> Relation.of_tuples spec.arity
      in
      Database.add_relation spec.predicate r db)
    Database.empty specs

(* YCSB-style bounded Zipf sampler over [0, domain): inverse-CDF with a
   precomputed harmonic sum.  theta = 0 degenerates to uniform; theta in
   (0, 1) skews mass toward small values with a long tail. *)
let zipf rng ~domain ~theta =
  if domain <= 0 then invalid_arg "Datagen.zipf: domain must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Datagen.zipf: theta must be in [0, 1)";
  if domain = 1 then fun () -> 0
  else begin
    let n = float_of_int domain in
    let zetan = ref 0.0 in
    for i = 1 to domain do
      zetan := !zetan +. (1.0 /. (float_of_int i ** theta))
    done;
    let zetan = !zetan in
    let zeta2 = 1.0 +. (0.5 ** theta) in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta = (1.0 -. ((2.0 /. n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan)) in
    fun () ->
      let u = Prng.float rng in
      let uz = u *. zetan in
      if uz < 1.0 then 0
      else if uz < zeta2 then 1
      else
        let v = int_of_float (n *. (((eta *. u) -. eta +. 1.0) ** alpha)) in
        max 0 (min (domain - 1) v)
  end

type distribution =
  | Uniform
  | Zipf of float

let column_sampler rng ~domain = function
  | Uniform -> fun () -> Prng.int rng domain
  | Zipf theta -> zipf rng ~domain ~theta

let random_dist rng specs =
  List.fold_left
    (fun db (spec, dists) ->
      let samplers =
        Array.init spec.arity (fun i ->
            let d = try List.nth dists i with Failure _ -> Uniform in
            column_sampler rng ~domain:spec.domain d)
      in
      let r =
        List.init spec.tuples (fun _ ->
            List.init spec.arity (fun i -> Term.Int (samplers.(i) ())))
        |> Relation.of_tuples spec.arity
      in
      Database.add_relation spec.predicate r db)
    Database.empty specs

let for_query_skewed rng ~tuples ~domain q =
  let specs =
    Names.Smap.bindings (arities_of_query q)
    |> List.map (fun (predicate, arity) -> { predicate; arity; tuples; domain })
  in
  random_skewed rng specs
