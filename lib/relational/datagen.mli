(** Synthetic database generation for tests, examples and cost-model
    benchmarks.

    The paper evaluates rewriting {e generation}, not execution, so no
    datasets are published; cost models M2/M3 nevertheless need concrete
    instances.  These generators produce seeded, reproducible instances
    over a given schema. *)

open Vplan_cq

type spec = {
  predicate : string;
  arity : int;
  tuples : int;  (** number of tuples to draw (duplicates collapse) *)
  domain : int;  (** values are drawn from [Int 0 .. Int (domain-1)] *)
}

(** [random rng specs] draws each relation independently. *)
val random : Prng.t -> spec list -> Database.t

(** [for_query rng ~tuples ~domain q] builds a random instance covering
    every body predicate of [q], each with the same size and domain. *)
val for_query : Prng.t -> tuples:int -> domain:int -> Query.t -> Database.t

(** [for_query_nonempty rng ~tuples ~domain q] additionally plants enough
    correlated facts that [q] has at least one answer: the query body is
    instantiated with random constants and inserted as facts (the frozen
    body acts as a witness). *)
val for_query_nonempty : Prng.t -> tuples:int -> domain:int -> Query.t -> Database.t

(** [random_skewed rng specs] draws with a skewed (roughly Zipf-like)
    value distribution: small domain values are much more frequent.
    Uniform-assumption estimators systematically misjudge such data,
    which is what the plan-quality ablation needs. *)
val random_skewed : Prng.t -> spec list -> Database.t

(** [for_query_skewed rng ~tuples ~domain q] — skewed variant of
    {!for_query}. *)
val for_query_skewed : Prng.t -> tuples:int -> domain:int -> Query.t -> Database.t

(** Per-column value distribution for {!random_dist}. *)
type distribution =
  | Uniform
  | Zipf of float  (** skew parameter theta in [0, 1); 0 is uniform *)

(** [zipf rng ~domain ~theta] returns a sampler drawing from
    [0 .. domain-1] under a bounded Zipf distribution (YCSB-style
    inverse CDF).  Deterministic given the generator state. *)
val zipf : Prng.t -> domain:int -> theta:float -> unit -> int

(** [random_dist rng specs] draws each relation with an explicit
    per-column distribution list (missing entries default to
    [Uniform]). *)
val random_dist : Prng.t -> (spec * distribution list) list -> Database.t
