open Vplan_cq

(* Interned, array-stored image of a Database.t with lazily built hash
   indexes.  Constants are mapped to dense integer ids; each relation's
   tuples become int arrays; an index for a (predicate, bound-position
   mask) pair maps the projection of a tuple onto the bound positions to
   the list of matching tuple numbers.  Indexes are built on first use by
   [answers] and cached, so evaluating many queries against the same
   database (the view-tuple computation evaluates up to 1000 view bodies
   against one canonical database) pays each index once.

   Index construction is guarded by a mutex so that [answers] may be
   called concurrently from several domains (the parallel view fan-out);
   a bucket table is never mutated after it is published. *)

type pred_data = {
  arity : int;
  tuples : int array array;  (* tuples.(i).(pos) = interned constant *)
  indexes : (int, (int array, int list) Hashtbl.t) Hashtbl.t;
      (* bound-position mask -> key (values at bound positions, ascending
         position order) -> tuple numbers *)
}

type t = {
  db : Database.t;
  const_ids : (Term.const, int) Hashtbl.t;
  consts : Term.const array;  (* id -> constant *)
  preds : (string, pred_data) Hashtbl.t;
  lock : Mutex.t;
}

let database t = t.db

let of_database db =
  let const_ids = Hashtbl.create 256 in
  let rev_consts = ref [] in
  let n_consts = ref 0 in
  let intern c =
    match Hashtbl.find_opt const_ids c with
    | Some id -> id
    | None ->
        let id = !n_consts in
        Hashtbl.add const_ids c id;
        rev_consts := c :: !rev_consts;
        incr n_consts;
        id
  in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let r = Database.find_exn name db in
      let tuples =
        Relation.tuples r
        |> List.map (fun tuple -> Array.of_list (List.map intern tuple))
        |> Array.of_list
      in
      Hashtbl.add preds name
        { arity = Relation.arity r; tuples; indexes = Hashtbl.create 4 })
    (Database.predicates db);
  {
    db;
    const_ids;
    consts = Array.of_list (List.rev !rev_consts);
    preds;
    lock = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Index construction                                                  *)

let build_index pd mask =
  let positions =
    List.filter (fun pos -> mask land (1 lsl pos) <> 0) (List.init pd.arity Fun.id)
    |> Array.of_list
  in
  let table = Hashtbl.create (max 16 (Array.length pd.tuples)) in
  Array.iteri
    (fun i tuple ->
      let key = Array.map (fun pos -> tuple.(pos)) positions in
      let existing = match Hashtbl.find_opt table key with Some l -> l | None -> [] in
      Hashtbl.replace table key (i :: existing))
    pd.tuples;
  table

let index_for t pd mask =
  Mutex.lock t.lock;
  let table =
    match Hashtbl.find_opt pd.indexes mask with
    | Some table -> table
    | None ->
        let table = build_index pd mask in
        Hashtbl.add pd.indexes mask table;
        table
  in
  Mutex.unlock t.lock;
  table

(* ------------------------------------------------------------------ *)
(* Query compilation                                                   *)

type carg =
  | Const of int  (* interned constant *)
  | Var of int  (* variable number *)
  | Unmatchable  (* constant absent from the database: no tuple matches *)

type catom = {
  pred : string;
  args : carg array;
  data : pred_data option;  (* None when the predicate has no relation *)
}

let compile_atom t var_id (a : Atom.t) =
  let args =
    Array.of_list
      (List.map
         (function
           | Term.Cst c -> (
               match Hashtbl.find_opt t.const_ids c with
               | Some id -> Const id
               | None -> Unmatchable)
           | Term.Var x -> Var (var_id x))
         a.Atom.args)
  in
  let data =
    match Hashtbl.find_opt t.preds a.pred with
    | Some pd when pd.arity = Array.length args -> Some pd
    | Some _ | None -> None
  in
  { pred = a.pred; args; data }

(* Selectivity-ordered scheduling: repeatedly pick the atom with the most
   bound arguments (constants or variables bound by already-scheduled
   atoms), tie-breaking on smaller relation, then on original position —
   a static greedy order, deterministic by construction. *)
let schedule atoms =
  let n = Array.length atoms in
  let bound_vars = Hashtbl.create 16 in
  let taken = Array.make n false in
  let bound_count (ca : catom) =
    Array.fold_left
      (fun acc arg ->
        match arg with
        | Const _ | Unmatchable -> acc + 1
        | Var v -> if Hashtbl.mem bound_vars v then acc + 1 else acc)
      0 ca.args
  in
  let cardinality ca =
    match ca.data with Some pd -> Array.length pd.tuples | None -> 0
  in
  List.init n (fun _ ->
      let best = ref (-1) and best_score = ref (0, 0, 0) in
      for i = 0 to n - 1 do
        if not taken.(i) then begin
          let score = (-bound_count atoms.(i), cardinality atoms.(i), i) in
          if !best < 0 || score < !best_score then begin
            best := i;
            best_score := score
          end
        end
      done;
      taken.(!best) <- true;
      Array.iter
        (function Var v -> Hashtbl.replace bound_vars v () | Const _ | Unmatchable -> ())
        atoms.(!best).args;
      atoms.(!best))

(* ------------------------------------------------------------------ *)
(* Join                                                                *)

(* Environments are int arrays indexed by variable number, -1 = unbound.
   All environments alive at a given join step bind exactly the variables
   of the atoms already processed, so the bound-position mask of the next
   atom is computed once per step, not once per environment — and no two
   environments can collapse into one, which is why deduplication can wait
   until projection time. *)

let unbound = -1

let step t (ca : catom) envs =
  match (ca.data, envs) with
  | None, _ | _, [] -> []
  | Some pd, _ ->
      let arity = Array.length ca.args in
      if Array.exists (function Unmatchable -> true | _ -> false) ca.args then []
      else begin
        let sample = match envs with e :: _ -> e | [] -> [||] in
        let mask = ref 0 in
        for pos = 0 to arity - 1 do
          match ca.args.(pos) with
          | Const _ -> mask := !mask lor (1 lsl pos)
          | Var v -> if sample.(v) <> unbound then mask := !mask lor (1 lsl pos)
          | Unmatchable -> ()
        done;
        let mask = !mask in
        let bound_positions =
          List.filter (fun pos -> mask land (1 lsl pos) <> 0) (List.init arity Fun.id)
          |> Array.of_list
        in
        let extend env tuple acc =
          (* bound positions already match via the index key; bind the
             free positions, checking consistency of repeated variables *)
          let env' = ref env and ok = ref true in
          for pos = 0 to arity - 1 do
            if !ok && mask land (1 lsl pos) = 0 then
              match ca.args.(pos) with
              | Var v ->
                  let bound = !env'.(v) in
                  if bound = unbound then begin
                    if !env' == env then env' := Array.copy env;
                    !env'.(v) <- tuple.(pos)
                  end
                  else if bound <> tuple.(pos) then ok := false
              | Const _ | Unmatchable -> ()
          done;
          if !ok then !env' :: acc else acc
        in
        if mask = 0 then
          (* no bound position: scan the whole relation *)
          List.concat_map
            (fun env ->
              Array.fold_left (fun acc tuple -> extend env tuple acc) [] pd.tuples
              |> List.rev)
            envs
        else begin
          let table = index_for t pd mask in
          List.concat_map
            (fun env ->
              let key =
                Array.map
                  (fun pos ->
                    match ca.args.(pos) with
                    | Const id -> id
                    | Var v -> env.(v)
                    | Unmatchable -> assert false)
                  bound_positions
              in
              match Hashtbl.find_opt table key with
              | None -> []
              | Some tuple_ids ->
                  List.fold_left
                    (fun acc i -> extend env pd.tuples.(i) acc)
                    [] tuple_ids)
            envs
        end
      end

let answers t (q : Query.t) =
  let var_ids = Hashtbl.create 16 in
  let n_vars = ref 0 in
  let var_id x =
    match Hashtbl.find_opt var_ids x with
    | Some v -> v
    | None ->
        let v = !n_vars in
        Hashtbl.add var_ids x v;
        incr n_vars;
        v
  in
  let body = Array.of_list (List.map (compile_atom t var_id) q.Query.body) in
  (* head variables are safe (appear in the body), so every variable the
     projection needs already has an id after compiling the body *)
  let ordered = schedule body in
  let envs = List.fold_left (fun envs ca -> step t ca envs) [ Array.make !n_vars unbound ] ordered in
  let head = q.Query.head in
  let tuples =
    List.map
      (fun env ->
        List.map
          (function
            | Term.Cst c -> c
            | Term.Var x -> t.consts.(env.(Hashtbl.find var_ids x)))
          head.Atom.args)
      envs
  in
  Relation.of_tuples (Atom.arity head) tuples
