(** Evaluation of conjunctive queries over database instances.

    Evaluation is a backtracking multiway join: atoms are processed left to
    right, accumulating bindings of variables to constants.  The same
    primitives drive (a) computing query answers, (b) applying view
    definitions to the canonical database, and (c) measuring the
    intermediate-relation sizes needed by cost models M2 and M3. *)

open Vplan_cq

(** An assignment of constants to (a subset of) the query's variables. *)
type env

val empty_env : env
val env_find : env -> string -> Term.const option
val env_bindings : env -> (string * Term.const) list
val env_of_bindings : (string * Term.const) list -> env

(** [match_atom db env atom] extends [env] in every way that makes [atom]
    a fact of [db].  Constants and already-bound variables act as
    selections; repeated variables enforce equality. *)
val match_atom : Database.t -> env -> Atom.t -> env list

(** [extend db envs atom] joins a set of environments with an atom:
    [List.concat_map (fun e -> match_atom db e atom) envs], deduplicated. *)
val extend : Database.t -> env list -> Atom.t -> env list

(** [schedule db atoms] is the selectivity-first static join order used by
    {!satisfying_envs}: repeatedly pick the atom with the most bound
    arguments, tie-breaking on smaller relation, then original position.
    Exposed so other evaluators (the hash-join engine in [Vplan_exec])
    drive the same order. *)
val schedule : Database.t -> Atom.t list -> Atom.t list

(** [satisfying_envs db atoms] joins all atoms, starting from the empty
    environment.  Atoms are scheduled selectivity-first (most bound
    arguments, then smallest relation) — reordering never changes the
    resulting environment set — and deduplication is deferred to
    projection time: starting from the single empty environment no two
    intermediate environments can be equal, so the result is
    duplicate-free by construction.  The order of the returned list is
    unspecified. *)
val satisfying_envs : Database.t -> Atom.t list -> env list

(** [project ~onto envs] deduplicates environments restricted to the
    variables [onto] (unbound variables are simply absent).  This is the
    attribute-dropping primitive of cost model M3. *)
val project : onto:Names.Sset.t -> env list -> env list

(** [distinct_count envs] is the number of distinct environments. *)
val distinct_count : env list -> int

(** [tuple_of_env env terms] instantiates a term list under [env]; raises
    [Invalid_argument] if a variable is unbound. *)
val tuple_of_env : env -> Term.t list -> Relation.tuple

(** [answers db q] computes the answer relation of [q] on [db] (distinct
    head tuples). *)
val answers : Database.t -> Query.t -> Relation.t

(** [matching_count db atom] is the number of facts matching the atom's
    pattern (selections applied). *)
val matching_count : Database.t -> Atom.t -> int

(** [relation_size db atom] is the cardinality of the stored relation named
    by the atom's predicate (0 when absent): the paper's [size(g_i)]. *)
val relation_size : Database.t -> Atom.t -> int

(** [answers_ucq db u] evaluates a union of conjunctive queries: the union
    of the disjuncts' answers. *)
val answers_ucq : Database.t -> Ucq.t -> Relation.t
