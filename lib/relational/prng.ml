type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to the native 63-bit positive range before reducing *)
  let x = Int64.to_int (next t) land max_int in
  x mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  (* top 53 bits give a uniform double in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next t) 11)
  *. (1.0 /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t = { state = mix (next t) }
