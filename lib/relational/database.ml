open Vplan_cq

type t = Relation.t Names.Smap.t

let empty = Names.Smap.empty
let add_relation name r db = Names.Smap.add name r db

let add_fact name tuple db =
  let r =
    match Names.Smap.find_opt name db with
    | Some r -> r
    | None -> Relation.empty (List.length tuple)
  in
  Names.Smap.add name (Relation.add tuple r) db

(* Bulk load: group facts by predicate, then build each relation with a
   single sort+dedup pass.  The first tuple of a predicate fixes its
   arity, matching the incremental [add_fact] behaviour (and error). *)
let of_facts facts =
  let by_pred : (string, Relation.tuple list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, tuple) ->
      match Hashtbl.find_opt by_pred name with
      | Some l -> l := tuple :: !l
      | None ->
          Hashtbl.add by_pred name (ref [ tuple ]);
          order := name :: !order)
    facts;
  List.fold_left
    (fun db name ->
      let tuples = List.rev !(Hashtbl.find by_pred name) in
      let arity = match tuples with [] -> 0 | t :: _ -> List.length t in
      Names.Smap.add name (Relation.of_tuples arity tuples) db)
    empty (List.rev !order)
let find name db = Names.Smap.find_opt name db

let find_exn name db =
  match find name db with
  | Some r -> r
  | None -> invalid_arg ("Database.find_exn: no relation " ^ name)

let mem name db = Names.Smap.mem name db
let predicates db = List.map fst (Names.Smap.bindings db)
let total_size db = Names.Smap.fold (fun _ r acc -> acc + Relation.cardinality r) db 0

let facts db =
  Names.Smap.fold
    (fun name r acc ->
      Relation.fold
        (fun tuple acc -> Atom.make name (List.map (fun c -> Term.Cst c) tuple) :: acc)
        r acc)
    db []

let equal db1 db2 = Names.Smap.equal Relation.equal db1 db2

let pp ppf db =
  Names.Smap.iter
    (fun name r -> Format.fprintf ppf "%s%a@." name Relation.pp r)
    db

let pp_facts ppf db =
  Names.Smap.iter
    (fun name r ->
      Relation.iter
        (fun tuple ->
          Format.fprintf ppf "%s(%a).@." name
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               Term.pp_const)
            tuple)
        r)
    db
