open Vplan_cq

type tuple = Term.const list

module Tuple_set = Set.Make (struct
  type t = tuple

  let compare = List.compare Term.compare_const
end)

type t = {
  arity : int;
  tuples : Tuple_set.t;
}

let empty arity = { arity; tuples = Tuple_set.empty }
let arity r = r.arity
let cardinality r = Tuple_set.cardinal r.tuples

let add tuple r =
  if List.length tuple <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: tuple of arity %d into relation of arity %d"
         (List.length tuple) r.arity)
  else { r with tuples = Tuple_set.add tuple r.tuples }

(* Bulk load: one [of_list] (sort + dedup) pass instead of n balanced
   insertions.  Arity is still validated per tuple so the error matches
   the incremental path. *)
let of_tuples arity tuples =
  List.iter
    (fun t ->
      if List.length t <> arity then
        invalid_arg
          (Printf.sprintf
             "Relation.add: tuple of arity %d into relation of arity %d"
             (List.length t) arity))
    tuples;
  { arity; tuples = Tuple_set.of_list tuples }
let tuples r = Tuple_set.elements r.tuples
let tuple_set r = r.tuples
let mem tuple r = Tuple_set.mem tuple r.tuples
let fold f r acc = Tuple_set.fold f r.tuples acc
let iter f r = Tuple_set.iter f r.tuples
let equal r1 r2 = r1.arity = r2.arity && Tuple_set.equal r1.tuples r2.tuples
let subset r1 r2 = Tuple_set.subset r1.tuples r2.tuples

let union r1 r2 =
  if r1.arity <> r2.arity then invalid_arg "Relation.union: arity mismatch"
  else { r1 with tuples = Tuple_set.union r1.tuples r2.tuples }

let pp ppf r =
  let pp_tuple ppf t =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp_const)
      t
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_tuple)
    (tuples r)
