(** Workload generation for the Section 7 experiments.

    The paper's query generator is parameterized by: number of base
    relations, number of attributes per relation, number of views, number
    of subgoals per view, number of subgoals per query, and the shape of
    queries and views (star, chain, or random).  Queries and views share
    parameters except subgoal counts; queries without rewritings are
    discarded and regenerated.

    Shapes:

    - {e star}: binary subgoals [r_i(C, X_i)] sharing a center variable;
      views join 1–3 randomly chosen query relations through the center.
    - {e chain}: binary subgoals [r_1(X_0,X_1), ..., r_k(X_{k-1},X_k)];
      views are contiguous segments of length 1–3 at random offsets.
    - {e cycle}: a chain whose last subgoal closes back on [X_0]; views
      are contiguous arcs (with wrap-around).
    - {e clique}: binary subgoals over node variables, one per edge of a
      clique in lexicographic edge order; views take 1–3 random edges.
    - {e path}: a chain whose query head exposes only the two endpoint
      variables, with views that are contiguous subpaths also exposing
      only their endpoints (Romero et al., "Query Rewriting On Path
      Views Without Integrity Constraints").  Query and views are all
      acyclic and projection-heavy — the fast-path workload.  The
      first views partition the query path into consecutive segments,
      so a rewriting (the chain of those views) exists by construction
      whenever [num_views] covers the partition.
    - {e random}: subgoals pick random relations with variables drawn from
      a shared pool; views do the same over the query's relations.

    Cycle and clique are the remaining query classes of the join-ordering
    literature the paper draws its shapes from (Steinbrunn–Moerkotte–
    Kemper); the paper itself reports star, chain and random.

    The distinguished-variable policy mirrors the experiments: either all
    view variables are distinguished, or a given number are made
    existential per view (single-subgoal views always keep all variables
    distinguished, as in the chain experiments). *)

open Vplan_cq
open Vplan_views
open Vplan_relational

type shape =
  | Star
  | Chain
  | Cycle
  | Clique
  | Path
  | Random_shape

type config = {
  shape : shape;
  num_relations : int;  (** base relations to draw from *)
  arity : int;  (** relation arity (random shape; star/chain are binary) *)
  query_subgoals : int;
  num_views : int;
  view_subgoals_min : int;
  view_subgoals_max : int;
  nondistinguished_per_view : int;  (** head variables hidden per view *)
  chain_endpoints_only : bool;
      (** chain shape only: keep just the head and tail variables of each
          chain (query and views) distinguished.  The paper notes that
          under this policy "there are very few rewritings generated" —
          the [endpoints] bench reproduces the remark. *)
  seed : int;
}

(** Paper defaults: 8 query subgoals, views of 1–3 subgoals, everything
    distinguished. *)
val default : config

type instance = {
  query : Query.t;
  views : View.t list;
}

(** [generate config] produces a query and view set.  The view set is
    drawn randomly; no rewriting-existence guarantee (use
    {!generate_with_rewriting}). *)
val generate : config -> instance

(** [generate_with_rewriting ?max_attempts config] regenerates (bumping
    the seed) until the query has an equivalent rewriting, as the paper
    does ("we ignored queries that did not have rewritings").  Raises
    [Failure] after [max_attempts] (default 50). *)
val generate_with_rewriting : ?max_attempts:int -> config -> instance

(** [base_database ~tuples ~domain instance] draws a random base instance
    over the query's relations, for cost-model experiments. *)
val base_database : tuples:int -> domain:int -> instance -> Database.t
