open Vplan_cq
open Vplan_views
open Vplan_relational

type shape =
  | Star
  | Chain
  | Cycle
  | Clique
  | Path
  | Random_shape

type config = {
  shape : shape;
  num_relations : int;
  arity : int;
  query_subgoals : int;
  num_views : int;
  view_subgoals_min : int;
  view_subgoals_max : int;
  nondistinguished_per_view : int;
  chain_endpoints_only : bool;
  seed : int;
}

let default =
  {
    shape = Star;
    num_relations = 8;
    arity = 2;
    query_subgoals = 8;
    num_views = 100;
    view_subgoals_min = 1;
    view_subgoals_max = 3;
    nondistinguished_per_view = 0;
    chain_endpoints_only = false;
    seed = 42;
  }

type instance = {
  query : Query.t;
  views : View.t list;
}

let relation_name i = "r" ^ string_of_int i
let var name i = Term.Var (name ^ string_of_int i)

(* Hide [n] random head variables of a view; single-subgoal views keep
   everything distinguished (as in the paper's chain experiments), and at
   least one variable always remains in the head. *)
let hide_vars rng ~n (head_args : Term.t list) body =
  if n = 0 || List.length body <= 1 then head_args
  else
    let vars = List.filter_map Term.var_name head_args in
    let to_hide =
      Prng.shuffle rng vars |> List.filteri (fun i _ -> i < min n (List.length vars - 1))
    in
    List.filter
      (function Term.Var x -> not (List.mem x to_hide) | Term.Cst _ -> true)
      head_args

let make_view rng ~config ~index head_args body =
  let head_args = hide_vars rng ~n:config.nondistinguished_per_view head_args body in
  Query.make_exn (Atom.make ("v" ^ string_of_int index) head_args) body

(* Star: subgoals r_i(C, X_i) share the center variable C. *)
let star_query config =
  let k = config.query_subgoals in
  let center = Term.Var "C" in
  let body =
    List.init k (fun i -> Atom.make (relation_name (i mod config.num_relations)) [ center; var "X" (i + 1) ])
  in
  let head_vars =
    center :: (List.concat_map Atom.vars body
               |> List.sort_uniq String.compare
               |> List.filter (fun x -> x <> "C")
               |> List.map (fun x -> Term.Var x))
  in
  Query.make_exn (Atom.make "q" head_vars) body

let star_view rng ~config ~index query_relations =
  let m = Prng.range rng config.view_subgoals_min config.view_subgoals_max in
  let m = min m (List.length query_relations) in
  let relations =
    Prng.shuffle rng query_relations |> List.filteri (fun i _ -> i < m)
  in
  let center = Term.Var "A" in
  let body = List.mapi (fun i r -> Atom.make r [ center; var "B" (i + 1) ]) relations in
  let head_args = center :: List.init (List.length body) (fun i -> var "B" (i + 1)) in
  make_view rng ~config ~index head_args body

(* Chain: subgoals r_1(X0,X1), ..., r_k(X_{k-1},X_k); views are contiguous
   segments. *)
let chain_query config =
  let k = config.query_subgoals in
  let body =
    List.init k (fun i ->
        Atom.make (relation_name (i mod config.num_relations)) [ var "X" i; var "X" (i + 1) ])
  in
  let head_vars =
    if config.chain_endpoints_only then [ var "X" 0; var "X" k ]
    else List.init (k + 1) (fun i -> var "X" i)
  in
  Query.make_exn (Atom.make "q" head_vars) body

let chain_view rng ~config ~index =
  let m = Prng.range rng config.view_subgoals_min config.view_subgoals_max in
  let m = min m config.query_subgoals in
  let start = Prng.int rng (config.query_subgoals - m + 1) in
  let body =
    List.init m (fun i ->
        Atom.make
          (relation_name ((start + i) mod config.num_relations))
          [ var "Y" i; var "Y" (i + 1) ])
  in
  let head_args =
    if config.chain_endpoints_only then [ var "Y" 0; var "Y" m ]
    else List.init (m + 1) (fun i -> var "Y" i)
  in
  if config.chain_endpoints_only then
    Query.make_exn (Atom.make ("v" ^ string_of_int index) head_args) body
  else make_view rng ~config ~index head_args body

(* Path (Romero et al., "Query Rewriting On Path Views Without
   Integrity Constraints"): the query is a k-step path exposing only
   its endpoints, and every view is a contiguous subpath likewise
   exposing only its endpoints — middles are existential, so both
   query and views are acyclic and projection-heavy.  The first views
   partition the query's path into consecutive segments: their
   composition is a rewriting, so one always exists when [num_views]
   covers the partition.  The remaining views are random subpaths
   (chains of views over the same relations). *)
let path_query config =
  let k = config.query_subgoals in
  let body =
    List.init k (fun i ->
        Atom.make (relation_name (i mod config.num_relations))
          [ var "X" i; var "X" (i + 1) ])
  in
  Query.make_exn (Atom.make "q" [ var "X" 0; var "X" k ]) body

let path_segment ~config ~index start m =
  let body =
    List.init m (fun i ->
        Atom.make
          (relation_name ((start + i) mod config.num_relations))
          [ var "Y" i; var "Y" (i + 1) ])
  in
  Query.make_exn (Atom.make ("v" ^ string_of_int index) [ var "Y" 0; var "Y" m ]) body

let path_view rng ~config ~index =
  let m =
    min (Prng.range rng config.view_subgoals_min config.view_subgoals_max)
      config.query_subgoals
  in
  let start = Prng.int rng (config.query_subgoals - m + 1) in
  path_segment ~config ~index start m

let path_partition rng config =
  let k = config.query_subgoals in
  let rec cut start acc =
    if start >= k then List.rev acc
    else
      let m =
        min (k - start)
          (max 1 (Prng.range rng config.view_subgoals_min config.view_subgoals_max))
      in
      cut (start + m) ((start, m) :: acc)
  in
  cut 0 []

(* Cycle: a chain whose last subgoal closes back on the first variable.
   Views are contiguous arcs with wrap-around; a full-circle view would
   be the query itself, so arcs are capped at k-1 subgoals. *)
let cycle_query config =
  let k = config.query_subgoals in
  let node i = var "X" (i mod k) in
  let body =
    List.init k (fun i ->
        Atom.make (relation_name (i mod config.num_relations)) [ node i; node (i + 1) ])
  in
  let head_vars = List.init k (fun i -> var "X" i) in
  Query.make_exn (Atom.make "q" head_vars) body

let cycle_view rng ~config ~index =
  let k = config.query_subgoals in
  let m = min (Prng.range rng config.view_subgoals_min config.view_subgoals_max) (k - 1) in
  let start = Prng.int rng k in
  let body =
    List.init m (fun i ->
        Atom.make
          (relation_name ((start + i) mod config.num_relations))
          [ var "Y" i; var "Y" (i + 1) ])
  in
  let head_args = List.init (m + 1) (fun i -> var "Y" i) in
  make_view rng ~config ~index head_args body

(* Clique: node variables N0..N_{m-1}; one binary subgoal per edge in
   lexicographic order, until the requested subgoal count is reached.
   Views take 1-3 random edges of the same clique, over fresh node
   variables. *)
let clique_nodes config =
  (* smallest m with m(m-1)/2 >= query_subgoals *)
  let rec grow m = if m * (m - 1) / 2 >= config.query_subgoals then m else grow (m + 1) in
  grow 2

let clique_edges config =
  let nodes = clique_nodes config in
  let edges = ref [] in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      edges := (i, j) :: !edges
    done
  done;
  List.rev !edges |> List.filteri (fun e _ -> e < config.query_subgoals)

let clique_query config =
  let edges = clique_edges config in
  let body =
    List.mapi
      (fun e (i, j) ->
        Atom.make (relation_name (e mod config.num_relations)) [ var "X" i; var "X" j ])
      edges
  in
  let head_vars =
    List.concat_map Atom.vars body |> List.sort_uniq String.compare
    |> List.map (fun x -> Term.Var x)
  in
  Query.make_exn (Atom.make "q" head_vars) body

let clique_view rng ~config ~index =
  let edges = clique_edges config in
  let m = min (Prng.range rng config.view_subgoals_min config.view_subgoals_max)
            (List.length edges) in
  let chosen =
    Prng.shuffle rng (List.mapi (fun e ij -> (e, ij)) edges)
    |> List.filteri (fun i _ -> i < m)
  in
  let body =
    List.map
      (fun (e, (i, j)) ->
        Atom.make (relation_name (e mod config.num_relations)) [ var "Y" i; var "Y" j ])
      chosen
  in
  let head_args =
    List.concat_map Atom.vars body |> List.sort_uniq String.compare
    |> List.map (fun x -> Term.Var x)
  in
  make_view rng ~config ~index head_args body

(* Random: arbitrary relations and variable sharing from a pool. *)
let random_body rng ~config ~relations ~subgoals ~var_prefix =
  let pool_size = max 2 (subgoals + config.arity) in
  List.init subgoals (fun _ ->
      let r = Prng.pick rng relations in
      let args = List.init config.arity (fun _ -> var var_prefix (Prng.int rng pool_size)) in
      Atom.make r args)

let random_query rng config =
  let relations = List.init config.num_relations relation_name in
  let body =
    random_body rng ~config ~relations ~subgoals:config.query_subgoals ~var_prefix:"X"
  in
  let head_vars =
    List.concat_map Atom.vars body |> List.sort_uniq String.compare
    |> List.map (fun x -> Term.Var x)
  in
  Query.make_exn (Atom.make "q" head_vars) body

let random_view rng ~config ~index query_relations =
  let m = Prng.range rng config.view_subgoals_min config.view_subgoals_max in
  let body = random_body rng ~config ~relations:query_relations ~subgoals:m ~var_prefix:"Y" in
  let head_args =
    List.concat_map Atom.vars body |> List.sort_uniq String.compare
    |> List.map (fun x -> Term.Var x)
  in
  make_view rng ~config ~index head_args body

let generate config =
  let rng = Prng.create config.seed in
  let query =
    match config.shape with
    | Star -> star_query config
    | Chain -> chain_query config
    | Cycle -> cycle_query config
    | Clique -> clique_query config
    | Path -> path_query config
    | Random_shape -> random_query rng config
  in
  let query_relations = Query.body_preds query in
  let path_parts =
    match config.shape with Path -> path_partition rng config | _ -> []
  in
  let views =
    List.init config.num_views (fun index ->
        match config.shape with
        | Star -> star_view rng ~config ~index query_relations
        | Chain -> chain_view rng ~config ~index
        | Cycle -> cycle_view rng ~config ~index
        | Clique -> clique_view rng ~config ~index
        | Path -> (
            match List.nth_opt path_parts index with
            | Some (start, m) -> path_segment ~config ~index start m
            | None -> path_view rng ~config ~index)
        | Random_shape -> random_view rng ~config ~index query_relations)
  in
  { query; views }

let generate_with_rewriting ?(max_attempts = 50) config =
  let rec loop attempt =
    if attempt >= max_attempts then
      failwith
        (Printf.sprintf "Generator: no rewriting after %d attempts (seed %d)" max_attempts
           config.seed)
    else
      let instance = generate { config with seed = config.seed + (1009 * attempt) } in
      if Vplan_rewrite.Corecover.has_rewriting ~query:instance.query ~views:instance.views
      then instance
      else loop (attempt + 1)
  in
  loop 0

let base_database ~tuples ~domain instance =
  let rng = Prng.create 7 in
  Datagen.for_query_nonempty rng ~tuples ~domain instance.query
