(** Query hypergraphs, GYO reduction and join trees.

    A conjunctive body induces a hypergraph with one hyperedge per atom
    (the atom's variable set).  The GYO (Graham / Yu–Özsoyoğlu)
    reduction repeatedly removes {e ears} — edges whose variables
    shared with any other live edge are covered by a single live
    {e witness} edge — and succeeds exactly on the α-acyclic bodies.
    The witness recorded for each removed ear is its parent in a join
    tree: for every variable, the tree nodes containing it form a
    connected subtree (the running-intersection property), which is
    what makes semi-join programs (Yannakakis) and dynamic programming
    over the tree complete.

    The reduction is deterministic — ears and witnesses are taken in
    body-position order — so classification and tree shape are stable
    across runs.  Cost is O(n² · v) per sweep on n atoms and v
    variables, negligible at the ≤ 20-subgoal bodies the cost layer
    accepts. *)

open Vplan_cq

type tree = {
  atoms : Atom.t array;  (** body atoms in original order *)
  parent : int array;  (** witness at removal time; [-1] at the root *)
  root : int;  (** last surviving edge; [-1] for an empty body *)
  removal : int list;  (** ear-removal order: children before parents *)
}

type classification = Acyclic of tree | Cyclic

(** [classify body] runs GYO reduction.  Empty bodies, single atoms,
    constant-only atoms and duplicate atoms are all acyclic. *)
val classify : Atom.t list -> classification

val is_acyclic : Atom.t list -> bool

(** [join_order t] lists node indices with every parent before its
    children (the root first).  Reversed, it is a valid bottom-up
    order. *)
val join_order : tree -> int list

(** [tree_order body] is the body reordered along [join_order], or
    [None] when the body is cyclic.  The result is a permutation of
    [body]. *)
val tree_order : Atom.t list -> Atom.t list option

(** [children t] is the child adjacency of the join tree, children in
    removal order. *)
val children : tree -> int list array

(** Multi-line rendering of the join tree, two-space indent per
    level — deterministic, for [explain] surfaces and cram tests. *)
val pp_tree : Format.formatter -> tree -> unit

val tree_to_string : tree -> string
