open Vplan_cq

(* The query hypergraph of a conjunctive body: one hyperedge per atom,
   vertices are the atom's variables.  GYO reduction decides
   α-acyclicity by repeatedly removing ears — edges whose variables
   shared with any other live edge all fit inside a single live witness
   edge — and the witness pointers recorded along the way form a join
   tree whenever the reduction succeeds.  Constant-only atoms have an
   empty edge and are trivially ears; duplicate and subsumed atoms are
   ears of the edge subsuming them. *)

type tree = {
  atoms : Atom.t array;  (* body atoms in original order *)
  parent : int array;  (* witness at removal time; -1 at the root *)
  root : int;  (* last surviving edge; -1 for an empty body *)
  removal : int list;  (* ear-removal order: children before parents *)
}

type classification = Acyclic of tree | Cyclic

let classify body =
  let atoms = Array.of_list body in
  let n = Array.length atoms in
  if n = 0 then Acyclic { atoms; parent = [||]; root = -1; removal = [] }
  else begin
    let vars = Array.map Atom.var_set atoms in
    let alive = Array.make n true in
    let alive_count = ref n in
    let parent = Array.make n (-1) in
    let removal = ref [] in
    let progress = ref true in
    while !alive_count > 1 && !progress do
      progress := false;
      for i = 0 to n - 1 do
        if alive.(i) && !alive_count > 1 then begin
          (* variables of [i] occurring in some other live edge *)
          let shared =
            Names.Sset.filter
              (fun x ->
                let occurs = ref false in
                for j = 0 to n - 1 do
                  if j <> i && alive.(j) && Names.Sset.mem x vars.(j) then
                    occurs := true
                done;
                !occurs)
              vars.(i)
          in
          let witness = ref (-1) in
          for j = 0 to n - 1 do
            if
              !witness < 0 && j <> i && alive.(j)
              && Names.Sset.subset shared vars.(j)
            then witness := j
          done;
          if !witness >= 0 then begin
            alive.(i) <- false;
            decr alive_count;
            parent.(i) <- !witness;
            removal := i :: !removal;
            progress := true
          end
        end
      done
    done;
    if !alive_count = 1 then begin
      let root = ref (-1) in
      for i = n - 1 downto 0 do
        if alive.(i) then root := i
      done;
      Acyclic { atoms; parent; root = !root; removal = List.rev !removal }
    end
    else Cyclic
  end

let is_acyclic body = match classify body with Acyclic _ -> true | Cyclic -> false

(* Parents-before-children order: the root first, then the ears most
   recently removed.  Every atom after the first shares its tree-edge
   variables with an earlier atom, so joining in this order never forms
   a cross product on a connected body. *)
let join_order t =
  if t.root < 0 then [] else t.root :: List.rev t.removal

let tree_order body =
  match classify body with
  | Cyclic -> None
  | Acyclic t -> Some (List.map (fun i -> t.atoms.(i)) (join_order t))

let children t =
  let kids = Array.make (Array.length t.atoms) [] in
  (* removal is children-before-parents; fold right so each child list
     comes out in removal order *)
  List.iter
    (fun i -> if t.parent.(i) >= 0 then kids.(t.parent.(i)) <- i :: kids.(t.parent.(i)))
    (List.rev t.removal);
  kids

let pp_tree ppf t =
  if t.root < 0 then Format.fprintf ppf "(empty)"
  else begin
    let kids = children t in
    let rec pp_node indent i =
      Format.fprintf ppf "%s%a" indent Atom.pp t.atoms.(i);
      List.iter
        (fun c ->
          Format.pp_print_newline ppf ();
          pp_node (indent ^ "  ") c)
        kids.(i)
    in
    pp_node "" t.root
  end

let tree_to_string t = Format.asprintf "%a" pp_tree t
