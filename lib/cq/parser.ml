module Vplan_error = Vplan_core.Vplan_error

type token =
  | Tident of string
  | Tvar of string
  | Tint of int
  | Tlparen
  | Trparen
  | Tcomma
  | Tturnstile
  | Tdot
  | Teof

(* 1-based source position of a token's first character *)
type pos = { line : int; col : int }

let fail_at p msg = Vplan_error.parse_at ~line:p.line ~col:p.col msg

let is_lower c = (c >= 'a' && c <= 'z')
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_lower c || is_upper c || (c >= '0' && c <= '9') || c = '\'' || c = '-'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let bol = ref 0 in
  (* tokens never span lines, so [line]/[bol] are valid for the whole token *)
  let pos_at idx = { line = !line; col = idx - !bol + 1 } in
  (* position just past the last emitted token: where Teof is reported,
     even when trailing whitespace or comments follow it *)
  let last_end = ref { line = 1; col = 1 } in
  let emit t start =
    tokens := (t, pos_at start) :: !tokens;
    last_end := pos_at !i
  in
  let fail msg = fail_at (pos_at !i) msg in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i; bol := !i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '(' then (let s = !i in incr i; emit Tlparen s)
    else if c = ')' then (let s = !i in incr i; emit Trparen s)
    else if c = ',' then (let s = !i in incr i; emit Tcomma s)
    else if c = '.' then (let s = !i in incr i; emit Tdot s)
    else if c = ':' then begin
      if !i + 1 < n && src.[!i + 1] = '-' then
        (let s = !i in i := !i + 2; emit Tturnstile s)
      else fail "expected ':-'"
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      incr i;
      while !i < n && is_digit src.[!i] do incr i done;
      emit (Tint (int_of_string (String.sub src start (!i - start)))) start
    end
    else if is_lower c || is_upper c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if is_upper c then emit (Tvar word) start else emit (Tident word) start
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  tokens := (Teof, !last_end) :: !tokens;
  List.rev !tokens

(* A tiny recursive-descent parser over the token list. *)
type state = { mutable toks : (token * pos) list }

let peek st = match st.toks with [] -> Teof | (t, _) :: _ -> t
let peek_pos st = match st.toks with [] -> { line = 1; col = 1 } | (_, p) :: _ -> p

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let describe = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tvar s -> Printf.sprintf "variable %S" s
  | Tint i -> Printf.sprintf "integer %d" i
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tcomma -> "','"
  | Tturnstile -> "':-'"
  | Tdot -> "'.'"
  | Teof -> "end of input"

let expect st tok what =
  if peek st = tok then advance st
  else
    fail_at (peek_pos st)
      (Printf.sprintf "expected %s, found %s" what (describe (peek st)))

let parse_term st =
  match peek st with
  | Tvar x -> advance st; Term.Var x
  | Tident s -> advance st; Term.Cst (Term.Str s)
  | Tint i -> advance st; Term.Cst (Term.Int i)
  | t -> fail_at (peek_pos st) ("expected a term, found " ^ describe t)

let parse_atom st =
  match peek st with
  | Tident pred ->
      advance st;
      expect st Tlparen "'('";
      let rec args acc =
        let t = parse_term st in
        match peek st with
        | Tcomma -> advance st; args (t :: acc)
        | Trparen -> advance st; List.rev (t :: acc)
        | tok -> fail_at (peek_pos st) ("expected ',' or ')', found " ^ describe tok)
      in
      let args = match peek st with
        | Trparen -> advance st; []
        | _ -> args []
      in
      Atom.make pred args
  | t -> fail_at (peek_pos st) ("expected a predicate name, found " ^ describe t)

let parse_rule_tokens st =
  (* semantic errors (e.g. an unsafe head) blame the start of the rule *)
  let rule_pos = peek_pos st in
  let head = parse_atom st in
  expect st Tturnstile "':-'";
  let rec body acc =
    let a = parse_atom st in
    match peek st with
    | Tcomma -> advance st; body (a :: acc)
    | Tdot -> advance st; List.rev (a :: acc)
    | tok -> fail_at (peek_pos st) ("expected ',' or '.', found " ^ describe tok)
  in
  let body = body [] in
  match Query.make head body with
  | Ok q -> q
  | Error msg -> fail_at rule_pos msg

let wrap f s =
  try Ok (f s) with Vplan_error.Error (Vplan_error.Parse e) -> Error e

let parse_rule =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let q = parse_rule_tokens st in
      expect st Teof "end of input";
      q)

let parse_rule_exn s =
  match parse_rule s with
  | Ok q -> q
  | Error e ->
      invalid_arg
        ("Parser.parse_rule_exn: " ^ Vplan_error.parse_to_string e ^ " in " ^ s)

let parse_program =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let rec loop acc =
        match peek st with
        | Teof -> List.rev acc
        | _ -> loop (parse_rule_tokens st :: acc)
      in
      loop [])

let parse_facts =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let rec loop acc =
        match peek st with
        | Teof -> List.rev acc
        | _ ->
            let atom_pos = peek_pos st in
            let a = parse_atom st in
            expect st Tdot "'.'";
            let consts =
              List.map
                (function
                  | Term.Cst c -> c
                  | Term.Var x -> fail_at atom_pos ("fact contains variable " ^ x))
                a.Atom.args
            in
            loop ((a.Atom.pred, consts) :: acc)
      in
      loop [])

let parse_atom =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let a = parse_atom st in
      expect st Teof "end of input";
      a)
