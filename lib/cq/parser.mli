(** A small Datalog-style concrete syntax for queries, views and facts.

    Rules are written as in the paper:
    {v
      q(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
      v1(M, D, C) :- car(M, D), loc(D, C).
    v}

    Identifiers beginning with an upper-case letter (or [_]) are variables;
    identifiers beginning with a lower-case letter are symbolic constants in
    argument position and predicate names in predicate position.  Integer
    literals are integer constants.  Comments run from [%] or [#] to the
    end of the line.  Every rule and fact ends with a dot.

    Errors carry the 1-based line and column of the offending token
    ({!Vplan_core.Vplan_error.parse_error}); render them with
    [Vplan_error.parse_to_string] and prefix a file name to obtain the
    conventional [file:line:col: msg] form. *)

(** [parse_rule s] parses a single rule [head :- body.]. *)
val parse_rule : string -> (Query.t, Vplan_core.Vplan_error.parse_error) result

(** [parse_rule_exn s] raises [Invalid_argument] on a parse error — use in
    tests and examples where the input is a literal. *)
val parse_rule_exn : string -> Query.t

(** [parse_program s] parses a sequence of rules. *)
val parse_program :
  string -> (Query.t list, Vplan_core.Vplan_error.parse_error) result

(** [parse_facts s] parses ground facts such as [car(honda, anderson).],
    yielding predicate names with constant tuples.  A non-ground fact is an
    error. *)
val parse_facts :
  string ->
  ((string * Term.const list) list, Vplan_core.Vplan_error.parse_error) result

(** [parse_atom s] parses a single atom such as [reach(sfo, X)] — used for
    command-line query arguments. *)
val parse_atom : string -> (Atom.t, Vplan_core.Vplan_error.parse_error) result
