(** Cost model M3 (Section 6): dropping nonrelevant attributes.

    A physical plan is an ordering of the rewriting's subgoals where each
    position is annotated with the variables dropped once that subgoal has
    been processed.  The generalized supplementary relation [GSR_i] is the
    intermediate relation projected onto the retained variables, and

    {v cost = Σ (size(g_i) + size(GSR_i)) v}

    As in {!M2}, [size(·)] counts cells (tuples × attributes), so dropping
    an attribute always shrinks the supplementary relation — this is what
    makes the reversed orderings of Example 6.1 comparable.

    Two annotation strategies are implemented:

    - {e supplementary} (Beeri–Ramakrishnan): drop a variable as soon as it
      appears neither in the head nor in any later subgoal;
    - {e renaming heuristic} (Section 6.2): additionally drop a variable
      [Y] that {e does} appear later whenever renaming [Y]'s occurrences in
      the processed prefix to a fresh variable leaves the rewriting
      equivalent to the query.  Dropping is cumulative: each test is
      performed against the prefix as already modified by earlier drops.

    Example 6.1 of the paper is the witness that the heuristic strictly
    improves on the supplementary approach. *)

open Vplan_cq
open Vplan_relational
open Vplan_views

type step = {
  subgoal : Atom.t;  (** original subgoal at this position *)
  evaluated : Atom.t;  (** subgoal with heuristic renamings applied *)
  dropped : string list;  (** original variable names dropped after it *)
  kept : Names.Sset.t;  (** variables of [GSR_i] *)
}

type plan = step list

val pp_plan : Format.formatter -> plan -> unit

(** [supplementary ~head order] annotates with the classical rule only. *)
val supplementary : head:Atom.t -> Atom.t list -> plan

(** [heuristic ~views ~query ~head order] annotates with the Section 6.2
    rule; equivalence tests expand the modified rewriting against
    [query]. *)
val heuristic : views:View.t list -> query:Query.t -> head:Atom.t -> Atom.t list -> plan

(** [cost_of_plan db plan] evaluates the plan against the (view)
    database. *)
val cost_of_plan : Database.t -> plan -> int

(** [gsr_sizes db plan] lists [size(GSR_1), ..., size(GSR_n)]. *)
val gsr_sizes : Database.t -> plan -> int list

(** [answers db ~head plan] executes the plan and returns the final answer
    relation — used to check that dropping never changes the result. *)
val answers : Database.t -> head:Atom.t -> plan -> Relation.t

(** [cost_of_plan_bounded db ?bound plan] — like {!cost_of_plan}, but
    returns [None] as soon as the running total reaches [bound] (every
    per-step term is nonnegative, so the final cost could only be
    larger).  [Some c] implies [c < bound]. *)
val cost_of_plan_bounded : Database.t -> ?bound:int -> plan -> int option

(** [optimal db ~annotate body] enumerates all orderings of [body],
    annotates each with [annotate] and returns a cheapest plan with its
    cost.  Raises [Vplan_error.Error (Width_limit _)] past
    {!Orderings.max_subgoals}. *)
val optimal : Database.t -> annotate:(Atom.t list -> plan) -> Atom.t list -> plan * int

(** [optimal_pruned ?bound db ~annotate body] — branch-and-bound variant
    of {!optimal}: [None] when no plan costs less than [bound], otherwise
    the same result as {!optimal}.  Each candidate ordering's evaluation
    is itself abandoned once it exceeds the best cost seen so far.
    [budget] is ticked once per permutation. *)
val optimal_pruned :
  ?budget:Vplan_core.Budget.t ->
  ?bound:int ->
  Database.t ->
  annotate:(Atom.t list -> plan) ->
  Atom.t list ->
  (plan * int) option

(** [estimated_cost_of_plan est plan] — the M3 cost measure driven by
    {!Estimate} join profiles: each step's GSR size is the join profile
    projected onto the kept variables, never touching the data. *)
val estimated_cost_of_plan : Estimate.t -> plan -> float

(** [optimal_estimated est ~annotate body] — cheapest estimated plan
    over all orderings (first strict minimum wins; deterministic).
    [budget] is ticked once per permutation. *)
val optimal_estimated :
  ?budget:Vplan_core.Budget.t ->
  Estimate.t ->
  annotate:(Atom.t list -> plan) ->
  Atom.t list ->
  plan * float
