(** The candidate-selection engine: branch-and-bound over CoreCover's
    rewritings with shared subplan memoization and optional parallel
    scoring.

    The naive consumer of CoreCover{^ *} costs every candidate in full
    and keeps the cheapest.  This engine prunes and shares instead:

    - candidates are {e ranked} by the statistics-only {!Estimate} cost
      of their bodies, so a likely-cheap plan is costed first and seeds
      a strong incumbent;
    - every subsequent candidate is scored against
      [bound = incumbent + 1]: its M2/M3 search returns [None] without
      materializing joins as soon as it provably cannot {e strictly
      beat} the incumbent — candidates {e tying} the global minimum are
      always evaluated in full, which is what makes the parallel result
      deterministic;
    - with [domains > 1] the scoring fans out over a {!Vplan_parallel}
      pool, the incumbent living in an [Atomic] that every worker
      CAS-mins after each accepted candidate;
    - a shared {!Subplan} memo deduplicates join evaluation across
      candidates (and across requests, when the memo is owned by a
      resident service catalog).

    Determinism contract: for any [domains], the returned choice is the
    minimum over candidates of (cost, original candidate position) —
    exactly the candidate the sequential unpruned fold would keep
    (earliest on cost ties), with the identical order/plan, because the
    DP's accepted results are independent of how tight the bound was.

    A [budget] cancels the whole fan-out; {!Vplan_core.Budget} errors
    propagate as usual. *)

open Vplan_cq
open Vplan_relational
open Vplan_views

type m2_choice = {
  m2_rewriting : Query.t;  (** chosen rewriting, filters appended if any *)
  m2_order : Atom.t list;  (** optimal join order *)
  m2_cost : int;
}

type m3_choice = {
  m3_rewriting : Query.t;
  m3_plan : M3.plan;
  m3_cost : int;
}

(** [best_m2 db candidates] — the M2-cheapest candidate, or [None] when
    [candidates] is empty.  With [filters] each candidate is improved by
    {!Filter.improve} (exact, memo-shared); candidates whose bare-body
    relation cells already reach the incumbent are skipped without
    evaluating any join — sound because filters only add relation
    cells.  Without filters the per-candidate search is
    {!M2.optimal_pruned} under the incumbent bound. *)
val best_m2 :
  ?memo:Subplan.t ->
  ?budget:Vplan_core.Budget.t ->
  ?domains:int ->
  ?filters:View_tuple.t list ->
  Database.t ->
  Query.t list ->
  m2_choice option

type m2_est_choice = {
  est_rewriting : Query.t;  (** chosen rewriting *)
  est_order : Atom.t list;  (** estimated-optimal join order *)
  est_cost : float;  (** estimated M2 cells *)
}

type m3_est_choice = {
  est3_rewriting : Query.t;
  est3_plan : M3.plan;
  est3_cost : float;
}

(** [best_m2_estimated est candidates] — the candidate with the cheapest
    {!M2.optimal_estimated} cost, computed from statistics alone (no
    view is ever materialized).  Deterministic: the first candidate
    achieving the minimum estimated cost wins.  [budget] is ticked per
    candidate and per DP state. *)
val best_m2_estimated :
  ?budget:Vplan_core.Budget.t ->
  Estimate.t ->
  Query.t list ->
  m2_est_choice option

(** [best_m3_estimated ~annotate est candidates] — estimated-mode M3
    selection over annotated plans. *)
val best_m3_estimated :
  ?budget:Vplan_core.Budget.t ->
  annotate:(Query.t -> Atom.t list -> M3.plan) ->
  Estimate.t ->
  Query.t list ->
  m3_est_choice option

(** [best_m3 ~annotate db candidates] — the M3-cheapest candidate under
    the per-candidate annotation function (supplementary or renaming
    heuristic), branch-and-bound over the permutation search of each. *)
val best_m3 :
  ?budget:Vplan_core.Budget.t ->
  ?domains:int ->
  annotate:(Query.t -> Atom.t list -> M3.plan) ->
  Database.t ->
  Query.t list ->
  m3_choice option
