(** Enumerating subgoal orderings for the plan optimizers. *)

(** Bodies longer than this are rejected: the permutation list itself
    would exhaust memory ([10! = 3.6M] lists). *)
val max_subgoals : int

(** [permutations l] — all permutations; factorial, intended for the small
    subgoal lists of rewritings.  Raises
    [Vplan_error.Error (Width_limit _)] when [l] has more than
    {!max_subgoals} elements. *)
val permutations : 'a list -> 'a list list
