open Vplan_relational
module Atom = Vplan_cq.Atom
module Term = Vplan_cq.Term
module Names = Vplan_cq.Names
module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error

let max_subgoals = 20

let width_limit n =
  raise (Vplan_error.Error (Vplan_error.Width_limit { subgoals = n; max_subgoals }))

let relation_cells db (a : Atom.t) =
  Eval.relation_size db a * max 1 (Atom.arity a)

let body_relation_cells db body =
  List.fold_left (fun acc a -> acc + relation_cells db a) 0 body

let intermediate_sizes db order =
  let _, rev_sizes =
    List.fold_left
      (fun (envs, sizes) atom ->
        let envs = Eval.extend db envs atom in
        (envs, List.length envs :: sizes))
      ([ Eval.empty_env ], [])
      order
  in
  List.rev rev_sizes

(* Variable sets as bitsets over a per-body variable index: emptiness-of-
   intersection (the connectivity test) becomes a word operation instead
   of a [Names.Sset] rebuild per DP state.  A body of up to 20 atoms
   rarely exceeds 63 distinct variables, but arities are unbounded, so
   masks are word arrays rather than a single int. *)
module Mask = struct
  let zero words = Array.make words 0

  let union a b = Array.init (Array.length a) (fun k -> a.(k) lor b.(k))

  let intersects a b =
    let n = Array.length a in
    let rec go k = k < n && (a.(k) land b.(k) <> 0 || go (k + 1)) in
    go 0
end

let lowest_index bit =
  let rec find k = if 1 lsl k = bit then k else find (k + 1) in
  find 0

(* compiled atom argument: a constant to check, or a variable code *)
type carg = Ccst of Term.const | Cvar of int

let lower_bound (slots : int array) v =
  let lo = ref 0 and hi = ref (Array.length slots) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if slots.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_sorted slots v =
  let k = lower_bound slots v in
  k < Array.length slots && slots.(k) = v

let merge_sorted (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out.(!k) <- x;
      incr i;
      incr j
    end
    else if x < y then begin
      out.(!k) <- x;
      incr i
    end
    else begin
      out.(!k) <- y;
      incr j
    end;
    incr k
  done;
  while !i < la do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < lb do
    out.(!k) <- b.(!j);
    incr j;
    incr k
  done;
  if !k = la + lb then out else Array.sub out 0 !k

(* -- hash-join primitives ------------------------------------------- *)
(* Shared by the DP's subplan joins and [cost_of_order]: instead of
   running every (environment, tuple) pair through compiled checks,
   tuples passing the env-independent checks (constants, repeated fresh
   variables) are filtered once, then grouped into a hash table keyed on
   the positions matching already-bound slots; each environment probes
   with its slot values.  An empty key degenerates to a cross product. *)

let filter_tuples const_checks dup_checks (tuples : Term.const array array) =
  let out = ref [] in
  for k = Array.length tuples - 1 downto 0 do
    let t = tuples.(k) in
    if
      List.for_all (fun (p, c) -> Term.equal_const c t.(p)) const_checks
      && List.for_all (fun (p, p0) -> Term.equal_const t.(p) t.(p0)) dup_checks
    then out := t :: !out
  done;
  !out

let row_key slot_checks (t : Term.const array) =
  List.map (fun (p, _) -> t.(p)) slot_checks

let env_key slot_checks (env : Term.const array) =
  List.map (fun (_, j) -> env.(j)) slot_checks

let group_by_key slot_checks filtered =
  let tbl = Hashtbl.create (max 16 (List.length filtered)) in
  List.iter
    (fun t ->
      let key = row_key slot_checks t in
      let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
      Hashtbl.replace tbl key (t :: prev))
    filtered;
  tbl

(* Compile an atom's argument positions against a slot array. *)
let compile_checks (cargs : carg array) (slots : int array) =
  let const_checks = ref [] and slot_checks = ref [] and dup_checks = ref [] in
  let first_pos = Hashtbl.create 8 in
  Array.iteri
    (fun p arg ->
      match arg with
      | Ccst c -> const_checks := (p, c) :: !const_checks
      | Cvar v ->
          if mem_sorted slots v then
            slot_checks := (p, lower_bound slots v) :: !slot_checks
          else (
            match Hashtbl.find_opt first_pos v with
            | Some p0 -> dup_checks := (p, p0) :: !dup_checks
            | None -> Hashtbl.add first_pos v p))
    cargs;
  (first_pos, !const_checks, !slot_checks, !dup_checks)

(* value source per new slot: an existing slot or a (first occurrence)
   tuple position *)
let sources_for prev_slots first_pos new_slots =
  Array.map
    (fun v ->
      if mem_sorted prev_slots v then -lower_bound prev_slots v - 1
      else Hashtbl.find first_pos v)
    new_slots

let build_env sources nlen (env : Term.const array) (tuple : Term.const array) =
  Array.init nlen (fun k ->
      let src = sources.(k) in
      if src >= 0 then tuple.(src) else env.(-src - 1))

let hash_join ~slots ~cargs ~avars ~tuples envs =
  let new_slots = merge_sorted slots avars in
  let nlen = Array.length new_slots in
  let first_pos, const_checks, slot_checks, dup_checks =
    compile_checks cargs slots
  in
  let filtered = filter_tuples const_checks dup_checks tuples in
  let sources = sources_for slots first_pos new_slots in
  let out =
    match slot_checks with
    | [] ->
        List.concat_map
          (fun env -> List.rev_map (fun t -> build_env sources nlen env t) filtered)
          envs
    | _ :: _ ->
        let tbl = group_by_key slot_checks filtered in
        List.concat_map
          (fun env ->
            match Hashtbl.find_opt tbl (env_key slot_checks env) with
            | None -> []
            | Some ts -> List.rev_map (fun t -> build_env sources nlen env t) ts)
          envs
  in
  (new_slots, out)

let carg_of code_of (a : Atom.t) =
  Array.of_list
    (List.map
       (function Term.Cst c -> Ccst c | Term.Var x -> Cvar (code_of x))
       a.Atom.args)

let local_coder () =
  let local = Hashtbl.create 16 and next = ref 0 in
  fun x ->
    match Hashtbl.find_opt local x with
    | Some c -> c
    | None ->
        let c = !next in
        Hashtbl.add local x c;
        incr next;
        c

let avars_of cargs =
  Array.to_list cargs
  |> List.filter_map (function Cvar v -> Some v | Ccst _ -> None)
  |> List.sort_uniq Int.compare
  |> Array.of_list

let tuples_of db (a : Atom.t) =
  match Database.find a.Atom.pred db with
  | None -> [||]
  | Some r -> Array.of_list (List.map Array.of_list (Relation.tuples r))

let cost_of_order db order =
  let relation_costs = body_relation_cells db order in
  let code_of = local_coder () in
  let _, _, ir_cells =
    List.fold_left
      (fun (slots, envs, acc) (a : Atom.t) ->
        let cargs = carg_of code_of a in
        let new_slots, envs =
          hash_join ~slots ~cargs ~avars:(avars_of cargs)
            ~tuples:(tuples_of db a) envs
        in
        (new_slots, envs, acc + (List.length envs * max 1 (Array.length new_slots))))
      ([||], [ [||] ], 0)
      order
  in
  relation_costs + ir_cells

(* DP over subsets.  With all attributes retained, both the tuple count
   and the width of IR depend only on the joined subgoal set, so
   f(S) = min over g in S of f(S \ {g}) + cells(IR(S)), and the total cost
   adds the (order-independent) relation sizes.  Environments are shared
   bottom-up: envs(S) is computed from envs(S minus one atom) once — or
   not at all when a [memo] already holds the atom set from an earlier
   candidate, or when branch-and-bound proves S cannot reach a plan
   cheaper than [bound].

   Environments are flat constant arrays over the subset's sorted
   variable codes ({!Subplan.entry}): extending one binds a handful of
   array cells instead of rebuilding a string-keyed map per atom, which
   is where the naive evaluator spends most of its time.  Starting from
   the single empty environment, the environments of a subset are
   distinct by construction (an environment plus a matched tuple
   determines the extension), so no deduplication is ever needed, and
   the set — though not the list order — is canonical per atom set.

   Pruning is sound because every cost term is nonnegative: a state S
   with (min over predecessors of best) + relation_costs >= bound cannot
   be a prefix of any ordering of total cost < bound, so its (expensive)
   environment set is never materialized; and when an entire popcount
   layer dies, no completion below [bound] exists at all.  Among states
   that can still reach a total < bound, [best] values are exact and
   independent of [bound], so the returned ordering of an accepted
   result never depends on how tight the bound was — the property the
   parallel candidate loop's determinism rests on. *)
let dp ~connected ?memo ?budget ?(bound = max_int) db body =
  let n = List.length body in
  if n = 0 then Some ([], 0)
  else if n > max_subgoals then width_limit n
  else begin
    let relation_costs = body_relation_cells db body in
    if relation_costs >= bound then None
    else begin
      (* canonical atom order: with atoms sorted by their rendering, a
         subset key read off in index order is order-insensitive, so
         candidates sharing an atom set share memo entries *)
      let atoms = Array.of_list body in
      let ids0 = Array.map Atom.to_string atoms in
      let perm = Array.init n Fun.id in
      Array.sort (fun i j -> String.compare ids0.(i) ids0.(j)) perm;
      let atoms = Array.map (fun i -> atoms.(i)) perm in
      let ids = Array.map (fun i -> ids0.(i)) perm in
      (* variable codes: drawn from the memo's intern table when present
         (shared across candidates, so entry slots are canonical), local
         otherwise.  The "$" prefix keeps variable names out of the atom
         renderings' namespace. *)
      let code_of =
        match memo with
        | Some m -> fun x -> Subplan.intern m ("$" ^ x)
        | None ->
            let local = Hashtbl.create 16 and next = ref 0 in
            fun x ->
              match Hashtbl.find_opt local x with
              | Some c -> c
              | None ->
                  let c = !next in
                  Hashtbl.add local x c;
                  incr next;
                  c
      in
      let cargs =
        Array.map
          (fun (a : Atom.t) ->
            Array.of_list
              (List.map
                 (function Term.Cst c -> Ccst c | Term.Var x -> Cvar (code_of x))
                 a.Atom.args))
          atoms
      in
      (* sorted distinct variable codes per atom *)
      let avars =
        Array.map
          (fun ca ->
            Array.to_list ca
            |> List.filter_map (function Cvar v -> Some v | Ccst _ -> None)
            |> List.sort_uniq Int.compare
            |> Array.of_list)
          cargs
      in
      let tuples =
        Array.map
          (fun (a : Atom.t) ->
            match Database.find a.Atom.pred db with
            | None -> [||]
            | Some r -> Array.of_list (List.map Array.of_list (Relation.tuples r)))
          atoms
      in
      (* per-atom variable masks over a dense local index, for the
         connected mode's shares-a-variable test *)
      let var_ids = Hashtbl.create 16 in
      let nvars = ref 0 in
      Array.iter
        (Array.iter (fun v ->
             if not (Hashtbl.mem var_ids v) then begin
               Hashtbl.add var_ids v !nvars;
               incr nvars
             end))
        avars;
      let words = max 1 ((!nvars + 62) / 63) in
      let amask =
        Array.map
          (fun vs ->
            let m = Mask.zero words in
            Array.iter
              (fun v ->
                let i = Hashtbl.find var_ids v in
                m.(i / 63) <- m.(i / 63) lor (1 lsl (i mod 63)))
              vs;
            m)
          avars
      in
      let full = (1 lsl n) - 1 in
      (* subset masks, built incrementally ([||] marks unset) *)
      let masks = Array.make (full + 1) [||] in
      masks.(0) <- Mask.zero words;
      let rec mask_of s =
        if Array.length masks.(s) > 0 || s = 0 then masks.(s)
        else begin
          let bit = s land -s in
          let m = Mask.union (mask_of (s lxor bit)) amask.(lowest_index bit) in
          masks.(s) <- m;
          m
        end
      in
      (* memo keys: each atom rendering is interned to a small code once
         per DP, and a subset key packs the codes of its set bits in
         index order — a few bytes per atom to hash instead of the full
         renderings *)
      let codes =
        match memo with
        | None -> [||]
        | Some m -> Array.map (fun id -> Subplan.intern m id) ids
      in
      let subset_key s =
        let b = Buffer.create (4 * n) in
        for i = 0 to n - 1 do
          if s land (1 lsl i) <> 0 then Buffer.add_int32_le b (Int32.of_int codes.(i))
        done;
        Buffer.contents b
      in
      (* Joining an entry with atom [i]: one hash build over the atom's
         filtered tuples, one probe per environment. *)
      let join i prev =
        let new_slots, envs =
          hash_join ~slots:prev.Subplan.slots ~cargs:cargs.(i) ~avars:avars.(i)
            ~tuples:tuples.(i) prev.Subplan.envs
        in
        {
          Subplan.slots = new_slots;
          envs;
          cells = List.length envs * max 1 (Array.length new_slots);
        }
      in
      let count_cells i prev =
        let prev_slots = prev.Subplan.slots in
        let new_slots = merge_sorted prev_slots avars.(i) in
        let _, const_checks, slot_checks, dup_checks =
          compile_checks cargs.(i) prev_slots
        in
        let filtered = filter_tuples const_checks dup_checks tuples.(i) in
        let count =
          match slot_checks with
          | [] -> List.length prev.Subplan.envs * List.length filtered
          | _ :: _ ->
              let counts = Hashtbl.create (max 16 (List.length filtered)) in
              List.iter
                (fun t ->
                  let key = row_key slot_checks t in
                  let c =
                    match Hashtbl.find_opt counts key with Some c -> c | None -> 0
                  in
                  Hashtbl.replace counts key (c + 1))
                filtered;
              List.fold_left
                (fun acc env ->
                  match Hashtbl.find_opt counts (env_key slot_checks env) with
                  | Some c -> acc + c
                  | None -> acc)
                0 prev.Subplan.envs
        in
        count * max 1 (Array.length new_slots)
      in
      (* environments + IR cells per subset, shared through the memo *)
      let entries : Subplan.entry option array = Array.make (full + 1) None in
      entries.(0) <- Some { Subplan.slots = [||]; envs = [ [||] ]; cells = 0 };
      let rec entry_of s =
        match entries.(s) with
        | Some e -> e
        | None ->
            let compute () =
              (* extend from any predecessor already at hand — live in
                 this DP, or cached by an earlier candidate — before
                 resorting to the recursive lowest-bit chain, which may
                 materialize states no ordering of this body needs *)
              let rec local i =
                if i >= n then None
                else if s land (1 lsl i) <> 0 then
                  match entries.(s lxor (1 lsl i)) with
                  | Some prev -> Some (i, prev)
                  | None -> local (i + 1)
                else local (i + 1)
              in
              let cached () =
                match memo with
                | None -> None
                | Some m ->
                    let rec go i =
                      if i >= n then None
                      else if s land (1 lsl i) <> 0 then begin
                        let p = s lxor (1 lsl i) in
                        match Subplan.find m (subset_key p) with
                        | Some prev ->
                            entries.(p) <- Some prev;
                            Some (i, prev)
                        | None -> go (i + 1)
                      end
                      else go (i + 1)
                    in
                    go 0
              in
              match local 0 with
              | Some (i, prev) -> join i prev
              | None -> (
                  match cached () with
                  | Some (i, prev) -> join i prev
                  | None ->
                      let bit = s land -s in
                      join (lowest_index bit) (entry_of (s lxor bit)))
            in
            let e =
              match memo with
              | None -> compute ()
              | Some m -> Subplan.find_or_add m (subset_key s) compute
            in
            entries.(s) <- Some e;
            e
      in
      let best = Array.make (full + 1) max_int in
      let choice = Array.make (full + 1) (-1) in
      best.(0) <- 0;
      (* total < bound iff best.(full) < headroom *)
      let headroom = bound - relation_costs in
      let exception Dead_layers in
      (try
         for k = 1 to n do
           let layer_live = ref false in
           (* enumerate the popcount-k subsets with Gosper's hack *)
           let s = ref ((1 lsl k) - 1) in
           let continue = ref true in
           while !continue do
             let sv = !s in
             Budget.tick budget;
             (* cheapest live predecessor; in connected mode the peeled
                atom must share a variable with the remaining prefix *)
             let best_prev = ref max_int and arg = ref (-1) in
             for i = 0 to n - 1 do
               if sv land (1 lsl i) <> 0 then begin
                 let p = sv lxor (1 lsl i) in
                 let bp = best.(p) in
                 if
                   bp < !best_prev
                   && ((not connected) || p = 0 || Mask.intersects amask.(i) (mask_of p))
                 then begin
                   best_prev := bp;
                   arg := i
                 end
               end
             done;
             if !best_prev < max_int && !best_prev < headroom then begin
               let cells =
                 if sv = full then begin
                   (* terminal state: its environment list is never a
                      predecessor of anything — within this DP it ends
                      every ordering, and across candidates no minimal
                      rewriting's body contains another's — so count the
                      final join instead of materializing and caching
                      it.  (The predecessor chosen by [arg] is already
                      materialized: its [best] was computed above.) *)
                   let p = full lxor (1 lsl !arg) in
                   let prev =
                     match entries.(p) with Some e -> e | None -> entry_of p
                   in
                   count_cells !arg prev
                 end
                 else (entry_of sv).Subplan.cells
               in
               let c = !best_prev + cells in
               if c < headroom then begin
                 best.(sv) <- c;
                 choice.(sv) <- !arg;
                 layer_live := true
               end
             end;
             if sv = full then continue := false
             else begin
               let c = sv land -sv in
               let r = sv + c in
               let nxt = ((r lxor sv) lsr 2) / c lor r in
               if nxt > full then continue := false else s := nxt
             end
           done;
           (* every state of this layer is dead: no completion can beat
              the incumbent, abandon the whole DP *)
           if not !layer_live then raise Dead_layers
         done
       with Dead_layers -> ());
      if best.(full) = max_int then None
      else begin
        let rec rebuild s acc =
          if s = 0 then acc
          else
            let i = choice.(s) in
            rebuild (s lxor (1 lsl i)) (atoms.(i) :: acc)
        in
        Some (rebuild full [], best.(full) + relation_costs)
      end
    end
  end

let optimal_pruned ?memo ?budget ?bound db body =
  dp ~connected:false ?memo ?budget ?bound db body

let optimal ?memo ?budget db body =
  match dp ~connected:false ?memo ?budget db body with
  | Some r -> r
  | None -> assert false (* without a bound the unrestricted DP always succeeds *)

let optimal_exhaustive db body =
  match Orderings.permutations body with
  | [] -> ([], 0)
  | perms ->
      List.fold_left
        (fun (best_order, best_cost) order ->
          let c = cost_of_order db order in
          if c < best_cost then (order, c) else (best_order, best_cost))
        ([], max_int) perms

let optimal_connected ?memo ?budget ?bound db body =
  dp ~connected:true ?memo ?budget ?bound db body

(* -- estimated-size mode -------------------------------------------- *)

(* The same subset DP driven by [Estimate] join profiles instead of
   materialized intermediate relations.  [Estimate.join_profiles] is
   commutative but not associative (distinct counts are capped by the
   running cardinality), so a subset's profile is made well-defined by
   fixing a canonical atom indexing (sorted by rendering, ties by
   position) and folding every subset along its lowest-bit chain; both
   the DP and [estimated_cost_of_order] account against these canonical
   profiles, so the cost of the returned order re-evaluates to the
   returned cost. *)
let est_setup est body =
  let n = List.length body in
  let atoms = Array.of_list body in
  let ids0 = Array.map Atom.to_string atoms in
  let perm = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match String.compare ids0.(i) ids0.(j) with
      | 0 -> Int.compare i j
      | c -> c)
    perm;
  let atoms = Array.map (fun i -> atoms.(i)) perm in
  let aprof = Array.map (Estimate.atom_profile est) atoms in
  let full = (1 lsl n) - 1 in
  let profiles = Array.make (full + 1) None in
  let rec profile_of s =
    if s = 0 then Estimate.unit_profile
    else
      match profiles.(s) with
      | Some p -> p
      | None ->
          let bit = s land -s in
          let p =
            Estimate.join_profiles
              (profile_of (s lxor bit))
              aprof.(lowest_index bit)
          in
          profiles.(s) <- Some p;
          p
  in
  let cells s =
    let p = profile_of s in
    Estimate.profile_card p *. float_of_int (Estimate.profile_width p)
  in
  (atoms, cells)

let estimated_cost_of_order est order =
  let n = List.length order in
  if n = 0 then 0.
  else if n > max_subgoals then width_limit n
  else begin
    let atoms, cells = est_setup est order in
    (* map each atom of the order to an unused canonical index (bodies
       may contain duplicate atoms) *)
    let used = Array.make n false in
    let index_of a =
      let id = Atom.to_string a in
      let rec go i =
        if i >= n then invalid_arg "M2.estimated_cost_of_order: atom not in body"
        else if (not used.(i)) && Atom.to_string atoms.(i) = id then begin
          used.(i) <- true;
          i
        end
        else go (i + 1)
      in
      go 0
    in
    let _, ir =
      List.fold_left
        (fun (s, acc) a ->
          let s = s lor (1 lsl index_of a) in
          (s, acc +. cells s))
        (0, 0.) order
    in
    Estimate.body_relation_cells_est est order +. ir
  end

(* Every ordering's cost includes the relation cells and the full-set
   intermediate result (its last prefix), and every prefix term is
   nonnegative — so this is a valid lower bound on
   [estimated_cost_of_order] over all orders, computable without any
   DP.  An order achieving it is provably optimal. *)
let estimated_lower_bound est body =
  let n = List.length body in
  if n = 0 then 0.
  else if n > max_subgoals then width_limit n
  else begin
    let _, cells = est_setup est body in
    Estimate.body_relation_cells_est est body +. cells ((1 lsl n) - 1)
  end

let optimal_estimated ?budget est body =
  let n = List.length body in
  if n = 0 then ([], 0.)
  else if n > max_subgoals then width_limit n
  else begin
    let atoms, cells = est_setup est body in
    let full = (1 lsl n) - 1 in
    let best = Array.make (full + 1) Float.infinity in
    let choice = Array.make (full + 1) (-1) in
    best.(0) <- 0.;
    for s = 1 to full do
      Budget.tick budget;
      let best_prev = ref Float.infinity and arg = ref (-1) in
      for i = 0 to n - 1 do
        if s land (1 lsl i) <> 0 then begin
          let bp = best.(s lxor (1 lsl i)) in
          if bp < !best_prev then begin
            best_prev := bp;
            arg := i
          end
        end
      done;
      best.(s) <- !best_prev +. cells s;
      choice.(s) <- !arg
    done;
    let rec rebuild s acc =
      if s = 0 then acc
      else
        let i = choice.(s) in
        rebuild (s lxor (1 lsl i)) (atoms.(i) :: acc)
    in
    (rebuild full [], best.(full) +. Estimate.body_relation_cells_est est body)
  end
