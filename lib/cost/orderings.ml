module Vplan_error = Vplan_core.Vplan_error

let max_subgoals = 8

let rec enumerate = function
  | [] -> [ [] ]
  | l ->
      List.concat
        (List.mapi
           (fun i x ->
             let rest = List.filteri (fun j _ -> j <> i) l in
             List.map (fun p -> x :: p) (enumerate rest))
           l)

(* The factorial blow-up is memory, not just time: the full permutation
   list of 10 atoms is 3.6M lists.  Inputs past the cap get the typed
   width-limit error instead of an OOM. *)
let permutations l =
  let n = List.length l in
  if n > max_subgoals then
    raise (Vplan_error.Error (Vplan_error.Width_limit { subgoals = n; max_subgoals }));
  enumerate l
