(** End-to-end cost-based plan selection: the "two-step approach" of the
    paper, with CoreCover as the rewriting generator and this module as the
    optimizer consuming its logical plans.

    The optimizer works against the materialized view relations (the
    closed-world model): rewritings are costed by actually joining view
    relations, which is faithful to M2/M3's definitions on concrete
    instances.

    Candidate selection is delegated to the {!Select} engine: candidates
    are ranked by estimated cost, pruned by branch-and-bound against the
    incumbent, share a per-optimizer {!Subplan} memo, and can be scored
    in parallel — with results identical to the sequential unpruned fold
    for any domain count. *)

open Vplan_cq
open Vplan_relational
open Vplan_views

type t

(** [create ~query ~views ~base] materializes the views over [base] and
    runs CoreCover{^ *} once to obtain the candidate rewritings and filter
    tuples.  A fresh subplan memo is attached; it lives as long as [t]
    and is shared by every [best_m2] call. *)
val create : query:Query.t -> views:View.t list -> base:Database.t -> t

val view_database : t -> Database.t
val candidates : t -> Query.t list
val filters : t -> View_tuple.t list

(** The optimizer's own cross-candidate subplan memo (valid for
    {!view_database}). *)
val memo : t -> Subplan.t

type m2_choice = Select.m2_choice = {
  m2_rewriting : Query.t;  (** chosen rewriting, filters appended if any *)
  m2_order : Atom.t list;  (** optimal join order *)
  m2_cost : int;
}

type m3_choice = Select.m3_choice = {
  m3_rewriting : Query.t;
  m3_plan : M3.plan;
  m3_cost : int;
}

(** [best_m1 t] — a globally-minimal rewriting ([None] when the query has
    no rewriting). *)
val best_m1 : t -> Query.t option

(** [best_m2 ?with_filters t] — the M2-cheapest candidate; with
    [with_filters] (default [true]) empty-core view tuples may be appended
    as filtering subgoals.  [domains] scores candidates in parallel
    (identical result); [budget] bounds the whole selection. *)
val best_m2 :
  ?with_filters:bool ->
  ?budget:Vplan_core.Budget.t ->
  ?domains:int ->
  t ->
  m2_choice option

(** [best_m3 ~strategy t] — the M3-cheapest candidate under the given
    annotation strategy. *)
val best_m3 :
  strategy:[ `Supplementary | `Heuristic ] ->
  ?budget:Vplan_core.Budget.t ->
  ?domains:int ->
  t ->
  m3_choice option

(** [best_m2_estimated t] — what a statistics-only optimizer would pick:
    candidates are ordered and compared by the {!Estimate} catalog of the
    materialized views; the reported [m2_cost] is the {e realized} true
    cost of the chosen plan, so it can be compared directly against
    {!best_m2} (it is never lower). *)
val best_m2_estimated : t -> m2_choice option

(** [answer t] — the true answer of the query over the base database
    (ground truth for verifying plans). *)
val answer : t -> Relation.t
