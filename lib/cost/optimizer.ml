open Vplan_cq
open Vplan_relational
open Vplan_views
open Vplan_rewrite

type t = {
  query : Query.t;
  views : View.t list;
  base : Database.t;
  view_db : Database.t;
  corecover : Corecover.result;
  memo : Subplan.t;
}

let create ~query ~views ~base =
  let view_db = Materialize.views base views in
  let corecover = Corecover.all_minimal ~query ~views () in
  { query; views; base; view_db; corecover; memo = Subplan.create () }

let view_database t = t.view_db
let candidates t = t.corecover.Corecover.rewritings
let filters t = t.corecover.Corecover.filters
let memo t = t.memo

type m2_choice = Select.m2_choice = {
  m2_rewriting : Query.t;
  m2_order : Atom.t list;
  m2_cost : int;
}

type m3_choice = Select.m3_choice = {
  m3_rewriting : Query.t;
  m3_plan : M3.plan;
  m3_cost : int;
}

let best_m1 t =
  match M1.best (candidates t) with [] -> None | p :: _ -> Some p

let best_m2 ?(with_filters = true) ?budget ?domains t =
  let filters = if with_filters then filters t else [] in
  Select.best_m2 ~memo:t.memo ?budget ?domains ~filters t.view_db (candidates t)

let best_m2_estimated t =
  let catalog = Estimate.analyze t.view_db in
  let consider best (p : Query.t) =
    let order, est_cost = Estimate.optimal catalog p.body in
    match best with
    | Some (_, best_est) when best_est <= est_cost -> best
    | _ -> Some ((p, order), est_cost)
  in
  match List.fold_left consider None (candidates t) with
  | None -> None
  | Some ((p, order), _) ->
      Some
        {
          m2_rewriting = p;
          m2_order = order;
          m2_cost = M2.cost_of_order t.view_db order;
        }

let best_m3 ~strategy ?budget ?domains t =
  let annotate (p : Query.t) order =
    match strategy with
    | `Supplementary -> M3.supplementary ~head:p.head order
    | `Heuristic -> M3.heuristic ~views:t.views ~query:t.query ~head:p.head order
  in
  Select.best_m3 ?budget ?domains ~annotate t.view_db (candidates t)

let answer t = Eval.answers t.base t.query
