open Vplan_cq
open Vplan_relational
module Histogram = Vplan_stats.Histogram
module Stats = Vplan_stats.Stats

type relation_stats = {
  card : float;
  distinct : float array; (* per column *)
  hists : Histogram.t option array; (* per column; [||] when not collected *)
}

type t = relation_stats Names.Smap.t

let analyze db =
  List.fold_left
    (fun acc pred ->
      match Database.find pred db with
      | None -> acc
      | Some r ->
          let arity = Relation.arity r in
          let columns = Array.init arity (fun _ -> ref Term.Set.empty) in
          Relation.iter
            (fun tuple ->
              List.iteri
                (fun i c -> columns.(i) := Term.Set.add (Term.Cst c) !(columns.(i)))
                tuple)
            r;
          let stats =
            {
              card = float_of_int (Relation.cardinality r);
              distinct = Array.map (fun s -> float_of_int (max 1 (Term.Set.cardinal !s))) columns;
              hists = [||];
            }
          in
          Names.Smap.add pred stats acc)
    Names.Smap.empty (Database.predicates db)

(* The same catalog built from a persisted Stats.t instead of a database
   scan: cardinalities and distinct counts carry over directly, and the
   equi-width histograms refine constant selectivities. *)
let of_stats stats =
  List.fold_left
    (fun acc (pred, (tbl : Stats.table)) ->
      let rs =
        {
          card = float_of_int tbl.Stats.card;
          distinct =
            Array.map
              (fun (c : Stats.column) -> float_of_int (max 1 c.Stats.distinct))
              tbl.Stats.columns;
          hists = Array.map (fun (c : Stats.column) -> c.Stats.hist) tbl.Stats.columns;
        }
      in
      Names.Smap.add pred rs acc)
    Names.Smap.empty (Stats.bindings stats)

let missing_stats = { card = 0.; distinct = [||]; hists = [||] }

let stats_for t pred =
  match Names.Smap.find_opt pred t with Some s -> Some s | None -> Some missing_stats

(* A profile of an atom or of a join prefix: estimated cardinality plus a
   per-variable distinct-value estimate. *)
type profile = {
  p_card : float;
  p_dv : float Names.Smap.t;
}

let unit_profile = { p_card = 1.; p_dv = Names.Smap.empty }
let profile_card p = p.p_card
let profile_width p = max 1 (Names.Smap.cardinal p.p_dv)

let cap_dv card dv = Names.Smap.map (fun v -> Float.min v (Float.max card 1.)) dv

(* Selections local to one atom: constants and repeated variables.
   When the column carries a histogram, a constant's selectivity is read
   off its bucket instead of assuming a uniform 1/V(R,i). *)
let atom_profile t (a : Atom.t) =
  match stats_for t a.pred with
  | None | Some { card = 0.; _ } -> { p_card = 0.; p_dv = Names.Smap.empty }
  | Some stats ->
      let column_dv i =
        if i < Array.length stats.distinct then stats.distinct.(i) else 1.
      in
      let const_selectivity i c =
        let dv = column_dv i in
        let uniform = 1. /. dv in
        match c with
        | Term.Int n when i < Array.length stats.hists -> (
            match stats.hists.(i) with
            | Some h -> Histogram.eq_fraction ~distinct:(int_of_float dv) h n
            | None -> uniform)
        | Term.Int _ | Term.Str _ -> uniform
      in
      let card = ref stats.card in
      let dv = ref Names.Smap.empty in
      List.iteri
        (fun i term ->
          match term with
          | Term.Cst c -> card := !card *. const_selectivity i c
          | Term.Var x -> (
              match Names.Smap.find_opt x !dv with
              | None -> dv := Names.Smap.add x (column_dv i) !dv
              | Some existing ->
                  (* a repeated variable within the atom: equality between
                     two columns *)
                  card := !card /. Float.max existing (column_dv i);
                  dv := Names.Smap.add x (Float.min existing (column_dv i)) !dv))
        a.args;
      let card = Float.max !card 0. in
      { p_card = card; p_dv = cap_dv card !dv }

let atom_cardinality t a = (atom_profile t a).p_card

let join_profiles left right =
  let shared =
    Names.Smap.filter (fun x _ -> Names.Smap.mem x right.p_dv) left.p_dv
  in
  let selectivity =
    Names.Smap.fold
      (fun x vl acc ->
        let vr = Names.Smap.find x right.p_dv in
        acc /. Float.max vl vr)
      shared 1.
  in
  let card = left.p_card *. right.p_card *. selectivity in
  let dv =
    Names.Smap.union
      (fun _ vl vr -> Some (Float.min vl vr))
      left.p_dv right.p_dv
  in
  { p_card = Float.max card 0.; p_dv = cap_dv card dv }

(* Projection onto a kept-variable set (cost model M3): the tuple count
   cannot exceed the product of the kept columns' distinct counts. *)
let project_profile p kept =
  let dv = Names.Smap.filter (fun x _ -> Names.Sset.mem x kept) p.p_dv in
  let dv_product =
    Names.Smap.fold (fun _ v acc -> acc *. v) dv 1.
  in
  let card = Float.min p.p_card dv_product in
  { p_card = Float.max card 0.; p_dv = cap_dv card dv }

(* Estimated stats for view relations: a view's cardinality is the
   estimated size of its body join, and each head column's distinct
   count is the join profile's estimate for that variable (1 for a
   constant head argument).  The returned catalog extends [t], so
   rewriting bodies mixing views and base predicates still estimate. *)
let view_stats t views =
  List.fold_left
    (fun acc (v : Query.t) ->
      let profile =
        List.fold_left
          (fun p a -> join_profiles p (atom_profile t a))
          unit_profile v.Query.body
      in
      let card = profile.p_card in
      let distinct =
        Array.of_list
          (List.map
             (function
               | Term.Var x -> (
                   match Names.Smap.find_opt x profile.p_dv with
                   | Some dv -> Float.min dv (Float.max card 1.)
                   | None -> 1.)
               | Term.Cst _ -> 1.)
             v.Query.head.Atom.args)
      in
      Names.Smap.add v.Query.head.Atom.pred
        { card; distinct; hists = [||] }
        acc)
    t views

(* size(g) on estimated statistics: stored cardinality times arity —
   the estimated counterpart of [M2.relation_cells]. *)
let relation_cells_est t (a : Atom.t) =
  match stats_for t a.Atom.pred with
  | Some s -> s.card *. float_of_int (max 1 (Atom.arity a))
  | None -> 0.

let body_relation_cells_est t body =
  List.fold_left (fun acc a -> acc +. relation_cells_est t a) 0. body

let order_cost t order =
  let relation_cells = body_relation_cells_est t order in
  let _, ir_cells =
    List.fold_left
      (fun (profile, acc) a ->
        let profile = join_profiles profile (atom_profile t a) in
        let width = float_of_int (max 1 (Names.Smap.cardinal profile.p_dv)) in
        (profile, acc +. (profile.p_card *. width)))
      (unit_profile, 0.)
      order
  in
  relation_cells +. ir_cells

let optimal t body =
  match Orderings.permutations body with
  | [] -> ([], 0.)
  | perms ->
      List.fold_left
        (fun (best_order, best_cost) order ->
          let c = order_cost t order in
          if c < best_cost then (order, c) else (best_order, best_cost))
        ([], Float.infinity) perms
