(** Filtering subgoals (Section 5.1).

    A view tuple with an empty tuple-core covers no query subgoal, yet
    appending it to a rewriting can lower the M2 cost by shrinking
    intermediate relations (rewriting [P3] vs [P2] in the car-loc-part
    example).  Appending a view tuple of the query always preserves
    equivalence — its expansion is implied by the rest of the rewriting. *)

open Vplan_cq
open Vplan_relational
open Vplan_views

(** [improve db ~filters body] greedily appends filter atoms while the
    optimal M2 cost decreases.  Returns the chosen body (original subgoals
    first, chosen filters appended), the optimal ordering and its cost.
    A [memo] pays off doubly here: the trial bodies [body @ [f]] share
    all of [body]'s subsets, so each greedy round re-evaluates only the
    subsets containing the new filter atom. *)
val improve :
  ?memo:Subplan.t ->
  ?budget:Vplan_core.Budget.t ->
  Database.t ->
  filters:View_tuple.t list ->
  Atom.t list ->
  Atom.t list * Atom.t list * int

(** [cost_with_and_without db ~filters body] returns the optimal M2 cost
    without filters and with the greedy filter choice — handy for tests
    and the ablation bench. *)
val cost_with_and_without :
  ?memo:Subplan.t ->
  ?budget:Vplan_core.Budget.t ->
  Database.t ->
  filters:View_tuple.t list ->
  Atom.t list ->
  int * int
