open Vplan_cq
open Vplan_views

let improve ?memo ?budget db ~filters body =
  let filter_atoms = List.map (fun tv -> tv.View_tuple.atom) filters in
  let rec loop body remaining best_order best_cost =
    let try_one (best : (Atom.t * Atom.t list * int) option) f =
      let order, cost = M2.optimal ?memo ?budget db (body @ [ f ]) in
      match best with
      | Some (_, _, c) when c <= cost -> best
      | _ when cost < best_cost -> Some (f, order, cost)
      | _ -> best
    in
    match List.fold_left try_one None remaining with
    | None -> (body, best_order, best_cost)
    | Some (f, order, cost) ->
        loop (body @ [ f ]) (List.filter (fun g -> not (Atom.equal g f)) remaining) order cost
  in
  let order0, cost0 = M2.optimal ?memo ?budget db body in
  loop body filter_atoms order0 cost0

let cost_with_and_without ?memo ?budget db ~filters body =
  let _, without = M2.optimal ?memo ?budget db body in
  let _, _, with_filters = improve ?memo ?budget db ~filters body in
  (without, with_filters)
