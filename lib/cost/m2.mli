(** Cost model M2 (Section 5): sizes of view relations and intermediate
    relations.

    A physical plan is an ordering [g1, ..., gn] of the rewriting's
    subgoals; joining the first [i] subgoals with {e all attributes
    retained} yields the intermediate relation [IR_i], and

    {v cost = Σ (size(g_i) + size(IR_i)) v}

    [size(·)] counts {e cells} — tuples × attributes — the natural proxy
    for the disk-I/O volume the paper's cost model is motivated by.  (A
    pure tuple count cannot see that dropping attributes shrinks a
    relation, which Section 6's comparisons rely on.)

    Because attributes are never dropped, [size(IR_i)] depends only on the
    {e set} of joined subgoals, so the optimal ordering is found by dynamic
    programming over subsets.  The DP supports three accelerations used by
    the candidate-selection engine ({!Select}):

    - a cross-candidate {!Subplan} memo shares environment sets between
      candidates whose subgoal subsets coincide;
    - an optional [bound] turns the DP into branch-and-bound: states that
      provably cannot complete below the bound never materialize their
      environments, and the whole DP aborts once a popcount layer dies;
    - variable sets are bitsets over a per-body index, so connectivity
      tests and widths are word operations.

    An exhaustive permutation search is provided as a cross-check. *)

open Vplan_cq
open Vplan_relational
module Budget = Vplan_core.Budget

(** Bodies longer than this are rejected with
    [Vplan_error.Error (Width_limit _)]: the subset DP allocates
    [2^n] states. *)
val max_subgoals : int

(** [cost_of_order db order] evaluates a specific ordering against the
    database (normally the materialized-view database). *)
val cost_of_order : Database.t -> Atom.t list -> int

(** [optimal db body] returns a cost-optimal ordering of [body] and its
    cost, by DP over subsets.  [memo] shares subplan evaluations across
    calls against the same [db]; [budget] is ticked once per DP state.
    Raises [Vplan_error.Error (Width_limit _)] past {!max_subgoals}. *)
val optimal :
  ?memo:Subplan.t ->
  ?budget:Budget.t ->
  Database.t ->
  Atom.t list ->
  Atom.t list * int

(** [optimal_pruned ?bound db body] — branch-and-bound variant.
    Returns [None] when no ordering has total cost [< bound] (in
    particular, immediately when the relation cells alone reach the
    bound); otherwise [Some (order, cost)] with [cost < bound], and the
    result is identical to {!optimal}'s.  [bound] defaults to unbounded,
    where the result is always [Some]. *)
val optimal_pruned :
  ?memo:Subplan.t ->
  ?budget:Budget.t ->
  ?bound:int ->
  Database.t ->
  Atom.t list ->
  (Atom.t list * int) option

(** [optimal_exhaustive db body] — same result via all permutations
    (testing only; factorial, capped by {!Orderings.max_subgoals}). *)
val optimal_exhaustive : Database.t -> Atom.t list -> Atom.t list * int

(** [optimal_connected db body] — DP restricted to {e connected} prefixes
    (every joined subgoal shares a variable with an earlier one), the
    standard cross-product-avoiding heuristic of production optimizers.
    [None] when [body]'s join graph is disconnected (no such ordering
    exists) — or, with [bound], when no connected ordering beats it.
    The result can be costlier than {!optimal} — a cross product is
    occasionally the cheapest plan — but the search space is much
    smaller; the [joinorder] bench quantifies both effects.  Connectivity
    is tested on bitset variable masks rather than by rescanning variable
    sets per state. *)
val optimal_connected :
  ?memo:Subplan.t ->
  ?budget:Budget.t ->
  ?bound:int ->
  Database.t ->
  Atom.t list ->
  (Atom.t list * int) option

(** {2 Estimated-size mode}

    The same cost measure driven by {!Estimate} join profiles instead
    of materialized intermediate relations: plans are costed from
    statistics alone, never touching the data.  Because
    [Estimate.join_profiles] is not associative, subset profiles are
    pinned to a canonical fold order, which makes the two functions
    consistent: {!estimated_cost_of_order} of the order returned by
    {!optimal_estimated} equals the returned cost. *)

(** [estimated_cost_of_order est order] — estimated M2 cells of the
    ordering, relation cells included. *)
val estimated_cost_of_order : Estimate.t -> Atom.t list -> float

(** [optimal_estimated est body] — the ordering minimizing the estimated
    M2 cost, by DP over subsets (ties resolved deterministically).
    [budget] is ticked once per DP state.  Raises
    [Vplan_error.Error (Width_limit _)] past {!max_subgoals}. *)
val optimal_estimated :
  ?budget:Budget.t -> Estimate.t -> Atom.t list -> Atom.t list * float

(** [estimated_lower_bound est body] — relation cells plus the full-set
    intermediate-result cells: a lower bound on
    {!estimated_cost_of_order} over {e every} ordering of [body] (the
    full set is each order's last prefix and all terms are
    nonnegative).  An order whose estimated cost reaches it is provably
    optimal; a candidate whose bound reaches the incumbent can be
    skipped without running the DP. *)
val estimated_lower_bound : Estimate.t -> Atom.t list -> float

(** [intermediate_sizes db order] lists the {e tuple counts} of
    [IR_1, ..., IR_n] (widths are implied by the variables joined). *)
val intermediate_sizes : Database.t -> Atom.t list -> int list

(** [relation_cells db atom] — [size(g)] of a stored relation: cardinality
    times arity (at least 1). *)
val relation_cells : Database.t -> Atom.t -> int

(** [body_relation_cells db body] — Σ {!relation_cells} over [body]: the
    order-independent part of the M2 cost, and hence a cheap lower bound
    on any plan for [body]. *)
val body_relation_cells : Database.t -> Atom.t list -> int
