(** Cross-candidate subplan memoization for the M2 join-order DP.

    Candidate rewritings produced by CoreCover{^ *} are drawn from the
    same pool of view tuples, so the subgoal {e subsets} their DPs
    explore overlap heavily: two candidates sharing three view atoms
    share all 2{^ 3} joint states.  A [Subplan.t] keys each DP state by a
    canonical (order-insensitive) rendering of its atom set and stores
    the state's satisfying environments together with its
    intermediate-relation cells, so the join is evaluated once per
    distinct atom set — across the candidate loop, and across requests
    when the store is owned by a resident service.

    The cached values are canonical {e as sets}: an entry's
    environments are the distinct satisfying environments of its atom
    set, which depend only on the atom set and the database, never on
    the join order that produced them — though the {e list} order may
    reflect that join order.  Every consumer (cell counts, further
    extensions, match counting) is insensitive to list order.  A store
    is valid for exactly one database; callers must {!clear} (or drop)
    it when the underlying relations change.

    The store is domain-safe: lookups and inserts are guarded by a
    mutex, while the join evaluation itself runs outside the lock.  Two
    domains racing on the same key may both compute it — the values are
    equal as sets, so either insert is correct. *)

type t

type entry = {
  slots : int array;
      (** the subset's variables as sorted interned codes; an
          environment binds [slots.(k)] at position [k] *)
  envs : Vplan_cq.Term.const array list;
      (** the distinct satisfying environments of the subset's join,
          each a constant per slot (list order unspecified) *)
  cells : int;  (** [size(IR)] = tuples × width, the DP's cost term *)
}

(** [create ?capacity ()] — an empty store.  When the entry count would
    exceed [capacity] (default [1 lsl 18]) the store is reset wholesale:
    a crude bound, but entries are pure caches so correctness is
    unaffected. *)
val create : ?capacity:int -> unit -> t

(** Drop every entry (the counters survive). *)
val clear : t -> unit

(** [intern t id] maps an atom's canonical rendering to a small integer
    code, stable for the store's lifetime (codes survive {!clear} and
    capacity resets).  The DP packs these codes — instead of the long
    renderings themselves — into its subset keys, so keys stay a few
    bytes per atom however verbose the atoms print. *)
val intern : t -> string -> int

(** [find t key] probes the store without computing on a miss (a hit
    bumps the hit counter; a bare probe miss counts nothing).  Used to
    steal a predecessor cached by another candidate before falling back
    to a recursive join chain. *)
val find : t -> string -> entry option

(** [find_or_add t key compute] returns the cached entry for [key], or
    runs [compute] (outside the lock) and caches its result. *)
val find_or_add : t -> string -> (unit -> entry) -> entry

type counters = {
  size : int;  (** entries currently cached *)
  hits : int;
  misses : int;
  resets : int;  (** capacity-triggered wholesale clears *)
}

val counters : t -> counters
