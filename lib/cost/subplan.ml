type entry = {
  slots : int array;
  envs : Vplan_cq.Term.const array list;
  cells : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  interns : (string, int) Hashtbl.t;
  capacity : int;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable resets : int;
}

let create ?(capacity = 1 lsl 18) () =
  {
    table = Hashtbl.create 1024;
    interns = Hashtbl.create 256;
    capacity = max 1 capacity;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    resets = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Interned codes survive [clear] and capacity resets: they name atoms,
   not cached values, and stay valid for the store's whole lifetime. *)
let intern t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.interns id with
      | Some code -> code
      | None ->
          let code = Hashtbl.length t.interns in
          Hashtbl.add t.interns id code;
          code)

let clear t = locked t (fun () -> Hashtbl.reset t.table)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.hits <- t.hits + 1;
          Some e
      | None -> None)

(* The join evaluation in [compute] runs outside the lock: it can be far
   more expensive than the table operations, and it only reads the (immutable)
   database.  Two domains racing on one key both compute the same canonical
   value, so last-insert-wins is correct. *)
let find_or_add t key compute =
  match
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
            t.hits <- t.hits + 1;
            Some e
        | None ->
            t.misses <- t.misses + 1;
            None)
  with
  | Some e -> e
  | None ->
      let e = compute () in
      locked t (fun () ->
          if Hashtbl.length t.table >= t.capacity then begin
            Hashtbl.reset t.table;
            t.resets <- t.resets + 1
          end;
          Hashtbl.replace t.table key e);
      e

type counters = {
  size : int;
  hits : int;
  misses : int;
  resets : int;
}

let counters t =
  locked t (fun () ->
      { size = Hashtbl.length t.table; hits = t.hits; misses = t.misses; resets = t.resets })
