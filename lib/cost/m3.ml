open Vplan_cq
open Vplan_relational
open Vplan_views

type step = {
  subgoal : Atom.t;
  evaluated : Atom.t;
  dropped : string list;
  kept : Names.Sset.t;
}

type plan = step list

let pp_plan ppf plan =
  let pp_step ppf s =
    Format.fprintf ppf "%a{%s}" Atom.pp s.subgoal (String.concat "," s.dropped)
  in
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_step ppf plan

let vars_of_atoms atoms =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty atoms

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

(* Assemble the plan from the final (possibly renamed) atom list.  The
   kept set at position i is: variables bound so far that still occur in
   the head or in a later atom.  [renamed_back] maps fresh variables
   introduced by the heuristic to the original names they replaced, so
   that the reported drop annotations use the rewriting's own variables. *)
let assemble ~head ~original ~modified ~renamed_back =
  let n = List.length modified in
  let head_vars = Atom.var_set head in
  let rec kept_sets i acc =
    if i > n then List.rev acc
    else
      let bound = vars_of_atoms (take i modified) in
      let later = vars_of_atoms (drop i modified) in
      let keep = Names.Sset.inter bound (Names.Sset.union head_vars later) in
      kept_sets (i + 1) (keep :: acc)
  in
  let keeps = Array.of_list (kept_sets 1 []) in
  List.mapi
    (fun i (orig, modif) ->
      let prev_kept = if i = 0 then Names.Sset.empty else keeps.(i - 1) in
      let bound = Names.Sset.union prev_kept (Atom.var_set modif) in
      let dropped_here = Names.Sset.elements (Names.Sset.diff bound keeps.(i)) in
      let original_name x =
        match Names.Smap.find_opt x renamed_back with Some y -> y | None -> x
      in
      {
        subgoal = orig;
        evaluated = modif;
        dropped = List.sort_uniq String.compare (List.map original_name dropped_here);
        kept = keeps.(i);
      })
    (List.combine original modified)

let supplementary ~head order =
  assemble ~head ~original:order ~modified:order ~renamed_back:Names.Smap.empty

let heuristic ~views ~query ~head order =
  let n = List.length order in
  let modified = ref order in
  let renamed_back = ref Names.Smap.empty in
  let used = ref (Names.Sset.union (Atom.var_set head) (vars_of_atoms order)) in
  for i = 1 to n - 1 do
    (* Variables bound by the processed prefix that still occur in a later
       subgoal are candidates for the renaming test. *)
    let prefix = take i !modified and suffix = drop i !modified in
    let suffix_vars = vars_of_atoms suffix in
    let candidates =
      Names.Sset.elements (Names.Sset.inter (vars_of_atoms prefix) suffix_vars)
    in
    List.iter
      (fun y ->
        let fresh = Names.fresh ~used:!used (y ^ "_dropped") in
        let rename = Subst.singleton y (Term.Var fresh) in
        let prefix' = List.map (Atom.apply rename) (take i !modified) in
        let candidate_body = prefix' @ drop i !modified in
        match Query.make head candidate_body with
        | Error _ -> () (* head variable would lose its binding *)
        | Ok p' ->
            if Expansion.is_equivalent_rewriting ~views ~query p' then begin
              modified := candidate_body;
              used := Names.Sset.add fresh !used;
              let original = match Names.Smap.find_opt y !renamed_back with
                | Some orig -> orig
                | None -> y
              in
              renamed_back := Names.Smap.add fresh original !renamed_back
            end)
      candidates
  done;
  assemble ~head ~original:order ~modified:!modified ~renamed_back:!renamed_back

let gsr_sizes db plan =
  let _, rev_sizes =
    List.fold_left
      (fun (envs, sizes) step ->
        let envs = Eval.extend db envs step.evaluated in
        let envs = Eval.project ~onto:step.kept envs in
        (envs, List.length envs :: sizes))
      ([ Eval.empty_env ], [])
      plan
  in
  List.rev rev_sizes

(* size(·) counts cells (tuples x attributes), consistently with M2; this
   is what makes dropping an attribute visible to the cost measure even
   when it does not reduce the tuple count (the reversed orderings of
   Example 6.1). *)
let cost_of_plan db plan =
  let relation_costs =
    List.fold_left (fun acc step -> acc + M2.relation_cells db step.subgoal) 0 plan
  in
  let widths = List.map (fun step -> max 1 (Names.Sset.cardinal step.kept)) plan in
  let gsr_cells =
    List.fold_left2 (fun acc size w -> acc + (size * w)) 0 (gsr_sizes db plan) widths
  in
  relation_costs + gsr_cells

let answers db ~head plan =
  let envs =
    List.fold_left
      (fun envs step ->
        Eval.project ~onto:step.kept (Eval.extend db envs step.evaluated))
      [ Eval.empty_env ] plan
  in
  let tuples = List.map (fun env -> Eval.tuple_of_env env head.Atom.args) envs in
  Relation.of_tuples (Atom.arity head) tuples

(* Like [cost_of_plan] but abandons the evaluation as soon as the partial
   sum reaches [bound]: the per-step terms are nonnegative, so no
   completion can come back under it. *)
let cost_of_plan_bounded db ?(bound = max_int) plan =
  let relation_costs =
    List.fold_left (fun acc step -> acc + M2.relation_cells db step.subgoal) 0 plan
  in
  if relation_costs >= bound then None
  else begin
    let exception Over in
    try
      let _, total =
        List.fold_left
          (fun (envs, acc) step ->
            let envs = Eval.extend db envs step.evaluated in
            let envs = Eval.project ~onto:step.kept envs in
            let w = max 1 (Names.Sset.cardinal step.kept) in
            let acc = acc + (List.length envs * w) in
            if relation_costs + acc >= bound then raise Over;
            (envs, acc))
          ([ Eval.empty_env ], 0)
          plan
      in
      Some (relation_costs + total)
    with Over -> None
  end

let optimal_pruned ?budget ?(bound = max_int) db ~annotate body =
  (* [Orderings.permutations] raises the typed width-limit error past its
     cap, which also bounds this fold. *)
  match Orderings.permutations body with
  | [] -> if 0 < bound then Some ([], 0) else None
  | perms ->
      let best =
        List.fold_left
          (fun best order ->
            Vplan_core.Budget.tick budget;
            let plan = annotate order in
            let current = match best with Some (_, c) -> c | None -> bound in
            match cost_of_plan_bounded db ~bound:current plan with
            | Some c -> Some (plan, c)
            | None -> best)
          None perms
      in
      best

let optimal db ~annotate body =
  match optimal_pruned db ~annotate body with
  | Some r -> r
  | None -> assert false (* unbounded search over a non-empty permutation list *)

(* -- estimated-size mode -------------------------------------------- *)

(* GSR sizes from join profiles: each step joins its subgoal's profile
   and projects onto the kept variables, capping the tuple count by the
   product of the kept distinct counts. *)
let estimated_cost_of_plan est plan =
  let relation_costs =
    List.fold_left
      (fun acc step -> acc +. Estimate.relation_cells_est est step.subgoal)
      0. plan
  in
  let _, gsr_cells =
    List.fold_left
      (fun (profile, acc) step ->
        let profile =
          Estimate.join_profiles profile (Estimate.atom_profile est step.evaluated)
        in
        let profile = Estimate.project_profile profile step.kept in
        let w = float_of_int (max 1 (Names.Sset.cardinal step.kept)) in
        (profile, acc +. (Estimate.profile_card profile *. w)))
      (Estimate.unit_profile, 0.)
      plan
  in
  relation_costs +. gsr_cells

let optimal_estimated ?budget est ~annotate body =
  match Orderings.permutations body with
  | [] -> ([], 0.)
  | perms ->
      List.fold_left
        (fun (best_plan, best_cost) order ->
          Vplan_core.Budget.tick budget;
          let plan = annotate order in
          let c = estimated_cost_of_plan est plan in
          if c < best_cost then (plan, c) else (best_plan, best_cost))
        ([], Float.infinity) perms
