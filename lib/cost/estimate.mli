(** System-R-style cardinality estimation for the M2 cost model.

    The paper's optimizer costs plans against true intermediate sizes; a
    production optimizer only has statistics.  This module implements the
    classical catalog (per-relation cardinality, per-column distinct
    counts, optional equi-width histograms) and the textbook estimation
    rules:

    - a constant in column [i] selects [1 / V(R,i)] of the relation —
      or its histogram bucket's fraction when a histogram is present;
    - a repeated variable within an atom keeps [1 / max(V, V')];
    - an equi-join on a shared variable keeps [1 / max(V(L,x), V(R,x))]
      of the cross product, with distinct-value counts propagated as the
      minimum across joined columns.

    A catalog is built either by scanning a database ({!analyze}) or
    from a persisted {!Vplan_stats.Stats.t} ({!of_stats}); {!view_stats}
    extends it with estimated statistics for view relations so the
    estimated cost mode never materializes a view.  The ablation bench
    [estimate] measures how much plan quality is lost by optimizing
    against estimates instead of true sizes. *)

open Vplan_cq
open Vplan_relational

type t

(** [analyze db] scans every relation once and builds the catalog
    (no histograms). *)
val analyze : Database.t -> t

(** [of_stats stats] builds the catalog from collected statistics,
    including per-column histograms. *)
val of_stats : Vplan_stats.Stats.t -> t

(** [view_stats t views] extends [t] with estimated statistics for each
    view relation: cardinality = estimated body join size, head-column
    distinct counts read off the join profile.  Views are given as their
    definitions; the head predicate names the view relation. *)
val view_stats : t -> Query.t list -> t

(** [atom_cardinality t atom] — estimated matching tuples after applying
    the atom's constant and repeated-variable selections. *)
val atom_cardinality : t -> Atom.t -> float

(** {2 Join profiles}

    A profile carries the estimated cardinality and per-variable
    distinct counts of an atom or join prefix; M2's and M3's estimated
    modes fold these instead of materializing intermediate relations. *)

type profile

(** The profile of the empty join prefix (one empty tuple). *)
val unit_profile : profile

(** [atom_profile t atom] — the atom after its local selections. *)
val atom_profile : t -> Atom.t -> profile

(** [join_profiles l r] — equi-join on the shared variables.
    Commutative; not associative (distinct counts are capped by the
    cardinality as they propagate), so fold in a canonical order when a
    subset's profile must be well-defined. *)
val join_profiles : profile -> profile -> profile

(** [project_profile p kept] — projection onto the kept variables: the
    tuple count is capped by the product of the kept distinct counts
    (cost model M3's attribute dropping). *)
val project_profile : profile -> Names.Sset.t -> profile

val profile_card : profile -> float

(** Number of variables in the profile (at least 1), the M2 width. *)
val profile_width : profile -> int

(** [relation_cells_est t atom] — estimated [size(g)]: stored
    cardinality times arity. *)
val relation_cells_est : t -> Atom.t -> float

val body_relation_cells_est : t -> Atom.t list -> float

(** [order_cost t order] — estimated M2 cost (cells) of joining the atoms
    in the given order. *)
val order_cost : t -> Atom.t list -> float

(** [optimal t body] — the ordering minimizing the {e estimated} M2 cost
    (exhaustive over orderings; intended for rewriting-sized bodies). *)
val optimal : t -> Atom.t list -> Atom.t list * float
