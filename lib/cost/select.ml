open Vplan_cq
module Parallel = Vplan_parallel.Parallel
module Obs = Vplan_obs.Obs
module Trace = Vplan_obs.Trace
module Metrics = Vplan_obs.Metrics
module Hypergraph = Vplan_hypergraph.Hypergraph

let candidates_total = Metrics.counter "vplan_select_candidates_total"
let pruned_total = Metrics.counter "vplan_select_pruned_total"

(* Acyclic bodies come with a Yannakakis-consistent join order for free
   (the join tree's parents-before-children order); costing that single
   order seeds the branch-and-bound search with a bound at most one
   above it.  Accepted DP results are bound-independent and the
   permutation folds return the first order attaining the minimum
   either way, so seeding changes which states get pruned — never which
   plan is returned. *)
let tree_seed body =
  match Hypergraph.tree_order body with
  | Some (_ :: _ :: _ as order) -> Some order
  | Some _ | None -> None

type m2_choice = {
  m2_rewriting : Query.t;
  m2_order : Atom.t list;
  m2_cost : int;
}

type m3_choice = {
  m3_rewriting : Query.t;
  m3_plan : M3.plan;
  m3_cost : int;
}

(* Rank candidates cheapest-estimated-first so the incumbent starts
   strong; keep the original position for the deterministic tie-break.
   A single candidate needs no catalog scan at all. *)
let rank db (candidates : Query.t list) =
  let indexed = List.mapi (fun i p -> (i, p)) candidates in
  match indexed with
  | [] | [ _ ] -> indexed
  | _ ->
      let est = Estimate.analyze db in
      let keyed =
        List.map (fun (i, p) -> (Estimate.order_cost est p.Query.body, i, p)) indexed
      in
      let keyed =
        List.stable_sort
          (fun (a, i, _) (b, j, _) ->
            match Float.compare a b with 0 -> Int.compare i j | c -> c)
          keyed
      in
      List.map (fun (_, i, p) -> (i, p)) keyed

let rec note incumbent c =
  let cur = Atomic.get incumbent in
  if c < cur && not (Atomic.compare_and_set incumbent cur c) then note incumbent c

(* Score the ranked candidates under a shared incumbent.  Each worker
   reads [bound = incumbent + 1], so a candidate can only be pruned when
   it provably costs MORE than the incumbent — ties are always evaluated
   in full, making the final min-by-(cost, position) independent of
   domain count and of scheduling. *)
let run ?budget ?(domains = 1) ~score ranked =
  match ranked with
  | [] -> None
  | first :: rest ->
      let incumbent = Atomic.make max_int in
      let pruned = Atomic.make 0 in
      let eval (idx, cand) =
        let b = Atomic.get incumbent in
        let bound = if b = max_int then max_int else b + 1 in
        match score ~bound cand with
        | Some (r, cost) ->
            note incumbent cost;
            Some (idx, r, cost)
        | None ->
            Atomic.incr pruned;
            None
      in
      let seeded = eval first in
      let rest_results = Parallel.map ?budget ~domains eval rest in
      Metrics.add candidates_total (List.length ranked);
      Metrics.add pruned_total (Atomic.get pruned);
      Trace.annotate "candidates" (float_of_int (List.length ranked));
      Trace.annotate "pruned" (float_of_int (Atomic.get pruned));
      List.fold_left
        (fun best r ->
          match (best, r) with
          | None, r -> r
          | best, None -> best
          | Some (bi, _, bc), Some (i, _, c) ->
              if c < bc || (c = bc && i < bi) then r else best)
        seeded rest_results

let best_m2 ?memo ?budget ?(domains = 1) ?(filters = []) db candidates =
  Obs.phase "plan_select" @@ fun () ->
  let memo_before =
    if Trace.enabled () then Option.map Subplan.counters memo else None
  in
  let score ~bound (p : Query.t) =
    match filters with
    | [] -> (
        (* the quick reject the DP would apply anyway, hoisted so the
           tree order is never materialized for a hopeless candidate *)
        if M2.body_relation_cells db p.Query.body >= bound then None
        else
          let bound, seeded =
            match tree_seed p.Query.body with
            | None -> (bound, None)
            | Some order ->
                let c = M2.cost_of_order db order in
                if c + 1 < bound then (c + 1, Some (order, c)) else (bound, None)
          in
          match M2.optimal_pruned ?memo ?budget ~bound db p.Query.body with
          | Some (order, cost) -> Some ((p.Query.body, order), cost)
          | None ->
              (* unreachable when seeded (the tree order itself costs
                 under the bound); kept as the sound completion *)
              Option.map
                (fun (order, c) -> ((p.Query.body, order), c))
                seeded)
    | _ :: _ ->
        (* Filter atoms only ever ADD relation cells, so the bare body's
           relation cells lower-bound any filtered plan; past the bound,
           skip without joining anything.  The improvement itself stays
           exact (greedy comparisons need true costs). *)
        if M2.body_relation_cells db p.Query.body >= bound then None
        else
          let body, order, cost =
            Filter.improve ?memo ?budget db ~filters p.Query.body
          in
          if cost < bound then Some ((body, order), cost) else None
  in
  let result =
    match run ?budget ~domains ~score (rank db candidates) with
    | None -> None
    | Some (idx, (body, order), cost) ->
        let p = List.nth candidates idx in
        Some
          {
            m2_rewriting = Query.make_exn p.Query.head body;
            m2_order = order;
            m2_cost = cost;
          }
  in
  (match (memo, memo_before) with
  | Some m, Some before ->
      let after = Subplan.counters m in
      Trace.annotate "memo_hits" (float_of_int (after.hits - before.hits));
      Trace.annotate "memo_misses" (float_of_int (after.misses - before.misses))
  | _ -> ());
  result

type m2_est_choice = {
  est_rewriting : Query.t;
  est_order : Atom.t list;
  est_cost : float;
}

type m3_est_choice = {
  est3_rewriting : Query.t;
  est3_plan : M3.plan;
  est3_cost : float;
}

(* Estimated-mode selection never materializes a join: a sequential
   fold over the candidates is both the simplest and a deterministic
   choice (first strict minimum wins).  Two acyclicity-aware cuts keep
   the subset DP out of the common cases without changing the choice:
   a candidate whose estimated lower bound (relation cells + full-set
   IR) reaches the incumbent can never win the strict comparison, and
   when the join-tree order's estimated cost equals the lower bound it
   is provably optimal, so the DP's answer is foregone. *)
let best_m2_estimated ?budget est candidates =
  Obs.phase "plan_select" @@ fun () ->
  Metrics.add candidates_total (List.length candidates);
  let pruned = ref 0 in
  let _, best =
    List.fold_left
      (fun (idx, best) (p : Query.t) ->
        Vplan_core.Budget.tick budget;
        let lb = M2.estimated_lower_bound est p.Query.body in
        let hopeless =
          match best with None -> false | Some (_, bc) -> lb >= bc
        in
        if hopeless then begin
          incr pruned;
          (idx + 1, best)
        end
        else begin
          let order, cost =
            match tree_seed p.Query.body with
            | Some order when M2.estimated_cost_of_order est order <= lb ->
                (order, lb)
            | Some _ | None -> M2.optimal_estimated ?budget est p.Query.body
          in
          let better =
            match best with None -> true | Some (_, bc) -> cost < bc
          in
          ( idx + 1,
            if better then
              Some
                ({ est_rewriting = p; est_order = order; est_cost = cost }, cost)
            else best )
        end)
      (0, None) candidates
  in
  Metrics.add pruned_total !pruned;
  Option.map fst best

let best_m3_estimated ?budget ~annotate est candidates =
  Obs.phase "plan_select" @@ fun () ->
  Metrics.add candidates_total (List.length candidates);
  let _, best =
    List.fold_left
      (fun (idx, best) (p : Query.t) ->
        Vplan_core.Budget.tick budget;
        let plan, cost =
          M3.optimal_estimated ?budget est ~annotate:(annotate p) p.Query.body
        in
        let better = match best with None -> true | Some (_, bc) -> cost < bc in
        ( idx + 1,
          if better then
            Some
              ({ est3_rewriting = p; est3_plan = plan; est3_cost = cost }, cost)
          else best ))
      (0, None) candidates
  in
  Option.map fst best

let best_m3 ?budget ?(domains = 1) ~annotate db candidates =
  Obs.phase "plan_select" @@ fun () ->
  let score ~bound (p : Query.t) =
    let annotate = annotate p in
    let bound =
      match tree_seed p.Query.body with
      | None -> bound
      | Some order -> (
          match M3.cost_of_plan_bounded db ~bound (annotate order) with
          | Some c when c + 1 < bound -> c + 1
          | Some _ | None -> bound)
    in
    M3.optimal_pruned ?budget ~bound db ~annotate p.Query.body
  in
  match run ?budget ~domains ~score (rank db candidates) with
  | None -> None
  | Some (idx, plan, cost) ->
      let p = List.nth candidates idx in
      Some { m3_rewriting = p; m3_plan = plan; m3_cost = cost }
