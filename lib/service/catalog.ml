open Vplan_views

type t = {
  generation : int;
  views : View.t list;
  keyed : (string * View.t list) list;
      (* signature-tagged equivalence classes, the persistent form of
         [Equiv_class.group_views_keyed] *)
}

let create ?budget views =
  match View.validate_set views with
  | Error e -> Error e
  | Ok () ->
      Ok { generation = 1; views; keyed = Equiv_class.group_views_keyed ?budget views }

let create_exn ?budget views =
  match create ?budget views with
  | Ok t -> t
  | Error e -> invalid_arg ("Catalog.create: " ^ e)

let add_views ?budget t vs =
  match View.validate_set (t.views @ vs) with
  | Error e -> Error e
  | Ok () ->
      Ok
        {
          generation = t.generation + 1;
          views = t.views @ vs;
          keyed = Equiv_class.add_to_keyed ?budget t.keyed vs;
        }

let remove_views t names =
  let missing =
    List.find_opt (fun n -> not (List.exists (fun v -> View.name v = n) t.views)) names
  in
  match missing with
  | Some n -> Error ("no such view: " ^ n)
  | None ->
      let keep v = not (List.mem (View.name v) names) in
      Ok
        {
          generation = t.generation + 1;
          views = List.filter keep t.views;
          keyed =
            List.filter_map
              (fun (s, members) ->
                match List.filter keep members with
                | [] -> None
                | members -> Some (s, members))
              t.keyed;
        }

(* Restoring from a snapshot trusts the stored partition instead of
   regrouping — that skip is the entire point of a warm restart.  The
   checks here are the cheap structural ones: a valid view set, and a
   partition that covers exactly the member list. *)
let restore ~generation ~views ~keyed =
  if generation < 1 then Error "restore: generation must be >= 1"
  else
    match View.validate_set views with
    | Error e -> Error e
    | Ok () ->
        let member_names =
          List.concat_map (fun (_, members) -> List.map View.name members) keyed
          |> List.sort String.compare
        in
        let view_names = List.map View.name views |> List.sort String.compare in
        if member_names <> view_names then
          Error "restore: class partition does not cover the view set"
        else if List.exists (fun (_, members) -> members = []) keyed then
          Error "restore: empty equivalence class"
        else Ok { generation; views; keyed }

let generation t = t.generation
let views t = t.views
let keyed t = t.keyed
let view_classes t = List.map snd t.keyed
let num_views t = List.length t.views
let num_classes t = List.length t.keyed
let find t name = View.find t.views name
