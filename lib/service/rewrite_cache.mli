(** A bounded LRU cache with hit/miss/eviction counters.

    String-keyed (the keys are canonical query renderings,
    {!Vplan_rewrite.Normalize.cache_key}) and generic in the stored
    value.  Recency is updated on {!find}; {!add} evicts the least
    recently used entry once the capacity is exceeded.  All operations
    are O(1).

    The cache is {e not} synchronized: callers sharing one cache across
    domains must hold their own lock around every operation
    ({!Vplan_service.Service} does). *)

type 'a t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

(** [create ~capacity] — [capacity] must be positive. *)
val create : capacity:int -> 'a t

(** [find t key] returns the cached value and marks it most recently
    used; counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** [add t key v] inserts (or replaces, without an eviction count) the
    binding and marks it most recently used, evicting the least recently
    used entry when the capacity is exceeded. *)
val add : 'a t -> string -> 'a -> unit

(** Drop every entry.  Counters other than [size] are preserved: they
    describe the cache's lifetime, not its current contents. *)
val clear : 'a t -> unit

val counters : 'a t -> counters
