module Bounded_queue = Vplan_parallel.Bounded_queue
module Pool = Vplan_parallel.Pool
module Metrics = Vplan_obs.Metrics

type response = { body : string; close : bool }

(* -- metrics ------------------------------------------------------- *)

let connections_active = Metrics.gauge "vplan_connections_active"
let connections_total = Metrics.counter "vplan_connections_total"
let connection_errors_total = Metrics.counter "vplan_connection_errors_total"
let requests_shed_total = Metrics.counter "vplan_requests_shed_total"
let queue_depth = Metrics.gauge "vplan_queue_depth"
let net_requests_total = Metrics.counter "vplan_net_requests_total"
let net_request_ms = Metrics.histogram "vplan_net_request_ms"

(* -- connection state (owned by the poller; [busy]/[close_after] are
   handed to exactly one worker at a time and handed back through the
   completion list, so they never race) ----------------------------- *)

type conn = {
  id : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* bytes of a partial line *)
  pending : string Queue.t;  (* complete lines not yet dispatched *)
  chandle : string list -> response;
  mutable busy : bool;  (* a worker owns a request of this conn *)
  mutable eof : bool;
  mutable dead : bool;  (* fd closed (or about to be) *)
  mutable close_after : bool;  (* close once the current response is out *)
  mutable served : int;  (* requests accepted (not shed) *)
}

type job = { jc : conn; jlines : string list; jstart : float }

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  workers : int;
  queue : job Bounded_queue.t;
  max_requests : int option;
  extra_lines : string -> int;
  handler : unit -> string list -> response;
  conns : (int, conn) Hashtbl.t;
  by_fd : (Unix.file_descr, conn) Hashtbl.t;  (* live fds only *)
  stopping : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  completed : conn list ref;
  cmutex : Mutex.t;
  mutable next_id : int;
}

(* Never grow a request line without bound: a client that streams
   gigabytes with no newline is shed by disconnect. *)
let max_line_bytes = 1 lsl 20

let now_ms () = Unix.gettimeofday () *. 1000.

let create ?(host = "127.0.0.1") ?(port = 0) ?(workers = 2)
    ?(queue_capacity = 128) ?max_requests ?(extra_lines = fun _ -> 0) ~handler
    () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen_fd 256;
     Unix.set_nonblock listen_fd
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    listen_fd;
    bound_port;
    workers = max 1 workers;
    queue = Bounded_queue.create ~capacity:(max 1 queue_capacity);
    max_requests;
    extra_lines;
    handler;
    conns = Hashtbl.create 64;
    by_fd = Hashtbl.create 64;
    stopping = Atomic.make false;
    wake_r;
    wake_w;
    completed = ref [];
    cmutex = Mutex.create ();
    next_id = 0;
  }

let port t = t.bound_port

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

let stop t =
  Atomic.set t.stopping true;
  wake t

(* -- writing ------------------------------------------------------- *)

let frame body =
  let n = String.length body in
  if n = 0 || body.[n - 1] = '\n' then body ^ ".\n" else body ^ "\n.\n"

exception Write_failed

(* Blocking-with-patience write on a nonblocking fd, used by workers:
   a stalled client blocks only its own worker, and only up to the
   patience cap — then it is treated as a connection error. *)
let write_all fd data =
  let b = Bytes.of_string data in
  let len = Bytes.length b in
  let rounds = ref 0 in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          incr rounds;
          if !rounds > 30 then raise Write_failed;
          ignore (Unix.select [] [ fd ] [] 1.0);
          go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> raise Write_failed
  in
  go 0

(* Poller-side write (shed / budget errors): one nonblocking burst.  A
   client that cannot absorb a few bytes while flooding us is dropped —
   the poller must never block on one connection. *)
let direct_send t conn data =
  let b = Bytes.of_string data in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write conn.fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (_, _, _) ->
          Metrics.incr connection_errors_total;
          conn.close_after <- true
  in
  ignore t;
  go 0

(* -- poller: connection lifecycle ---------------------------------- *)

let set_active_gauge t = Metrics.set connections_active (Hashtbl.length t.conns)

let close_conn t conn =
  if Hashtbl.mem t.conns conn.id then
    if conn.busy then begin
      (* a worker still owns the fd; close on completion *)
      conn.dead <- true;
      conn.close_after <- true
    end
    else begin
      conn.dead <- true;
      (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
      Hashtbl.remove t.conns conn.id;
      Hashtbl.remove t.by_fd conn.fd;
      set_active_gauge t
    end

let accept_all t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error (_, _, _) -> ());
        t.next_id <- t.next_id + 1;
        let conn =
          {
            id = t.next_id;
            fd;
            inbuf = Buffer.create 256;
            pending = Queue.create ();
            chandle = t.handler ();
            busy = false;
            eof = false;
            dead = false;
            close_after = false;
            served = 0;
          }
        in
        Hashtbl.add t.conns conn.id conn;
        Hashtbl.replace t.by_fd fd conn;
        Metrics.incr connections_total;
        set_active_gauge t;
        loop ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> Metrics.incr connection_errors_total
  in
  loop ()

let split_lines conn =
  let s = Buffer.contents conn.inbuf in
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       let stop = if i > !start && s.[i - 1] = '\r' then i - 1 else i in
       let line = String.sub s !start (stop - !start) in
       if String.trim line <> "" then Queue.push line conn.pending;
       start := i + 1
     done
   with Not_found -> ());
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf s !start (n - !start);
  if Buffer.length conn.inbuf > max_line_bytes then begin
    Metrics.incr connection_errors_total;
    conn.eof <- true;
    Buffer.clear conn.inbuf
  end

let on_readable ~chunk conn =
  let rec loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> conn.eof <- true
    | n ->
        Buffer.add_subbytes conn.inbuf chunk 0 n;
        if n = Bytes.length chunk then loop ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) ->
        (* reset mid-stream: contain to this connection *)
        Metrics.incr connection_errors_total;
        conn.eof <- true
  in
  if not conn.dead then begin
    loop ();
    split_lines conn
  end

(* The next complete request buffered on [conn], if any: the first
   line plus however many extra lines the protocol says it needs.  At
   EOF a truncated multi-line request is handed over short — the
   handler answers the same "end of input" error the stdio loop
   would. *)
let next_request t conn =
  if Queue.is_empty conn.pending then None
  else
    let first = Queue.peek conn.pending in
    let need = 1 + max 0 (t.extra_lines first) in
    let have = Queue.length conn.pending in
    if have >= need || conn.eof then begin
      let take = min need have in
      Some (List.init take (fun _ -> Queue.pop conn.pending))
    end
    else None

let rec try_dispatch t conn =
  if (not conn.busy) && (not conn.dead) && not (Atomic.get t.stopping) then
    match next_request t conn with
    | None -> ()
    | Some lines ->
        let over_budget =
          match t.max_requests with
          | Some m -> conn.served >= m
          | None -> false
        in
        if over_budget then begin
          direct_send t conn (frame "err request budget exhausted");
          close_conn t conn
        end
        else
          let job = { jc = conn; jlines = lines; jstart = now_ms () } in
          if Bounded_queue.try_push t.queue job then begin
            conn.served <- conn.served + 1;
            conn.busy <- true;
            Metrics.set queue_depth (Bounded_queue.length t.queue)
          end
          else begin
            (* full queue: shed with a fast error instead of queueing
               unbounded latency *)
            Metrics.incr requests_shed_total;
            Vplan_obs.Recorder.append ~kind:"shed" ~truncated:"busy" ();
            direct_send t conn (frame "err busy");
            if not conn.close_after then try_dispatch t conn
            else close_conn t conn
          end

let maybe_close_idle t conn =
  if
    (not conn.busy) && (not conn.dead) && conn.eof
    && Queue.is_empty conn.pending
  then close_conn t conn

let drain_wake t =
  let chunk = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r chunk 0 (Bytes.length chunk) with
    | n when n > 0 -> loop ()
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  loop ()

let process_completions t =
  let finished =
    Mutex.protect t.cmutex (fun () ->
        let l = !(t.completed) in
        t.completed := [];
        l)
  in
  List.iter
    (fun conn ->
      conn.busy <- false;
      if conn.close_after || conn.dead then close_conn t conn
      else begin
        try_dispatch t conn;
        maybe_close_idle t conn
      end)
    finished

(* -- workers ------------------------------------------------------- *)

let worker_loop t =
  let rec loop () =
    match Bounded_queue.pop t.queue with
    | None -> ()
    | Some job ->
        Metrics.set queue_depth (Bounded_queue.length t.queue);
        let resp =
          try job.jc.chandle job.jlines
          with e ->
            (* the protocol layer contains its own failures; this
               catches handler bugs so the serving tier survives them *)
            { body = "err internal: " ^ Printexc.to_string e; close = false }
        in
        (match write_all job.jc.fd (frame resp.body) with
        | () -> if resp.close then job.jc.close_after <- true
        | exception Write_failed ->
            (* client went away mid-response: contain to this conn *)
            Metrics.incr connection_errors_total;
            job.jc.close_after <- true);
        Metrics.incr net_requests_total;
        Metrics.observe net_request_ms (now_ms () -. job.jstart);
        (* coalesced wake: only the transition empty -> nonempty needs a
           pipe byte — the poller drains the whole list per wake, so
           later completions ride along without a syscall each *)
        let was_empty =
          Mutex.protect t.cmutex (fun () ->
              let e = !(t.completed) = [] in
              t.completed := job.jc :: !(t.completed);
              e)
        in
        if was_empty then wake t;
        loop ()
  in
  loop ()

(* -- the poller ---------------------------------------------------- *)

let any_busy t = Hashtbl.fold (fun _ c acc -> acc || c.busy) t.conns false

let run t =
  (* a dying client must never kill the server with SIGPIPE; write
     errors surface as EPIPE and are contained per connection *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let pool = Pool.spawn ~workers:t.workers (fun _ -> worker_loop t) in
  let listening = ref true in
  let chunk = Bytes.create 8192 in
  let select fds timeout =
    match Unix.select fds [] [] timeout with
    | readable, _, _ -> readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  let rec loop () =
    if Atomic.get t.stopping then begin
      if !listening then begin
        Unix.close t.listen_fd;
        listening := false
      end;
      (* drain: queued and in-flight requests finish; buffered lines
         not yet accepted are dropped with the connection *)
      if any_busy t || Bounded_queue.length t.queue > 0 then begin
        let readable = select [ t.wake_r ] 0.2 in
        if readable <> [] then drain_wake t;
        process_completions t;
        loop ()
      end
    end
    else begin
      let conn_fds =
        Hashtbl.fold (fun _ c acc -> if c.dead then acc else c.fd :: acc) t.conns []
      in
      let fds =
        t.wake_r :: (if !listening then [ t.listen_fd ] else []) @ conn_fds
      in
      let readable = select fds 1.0 in
      (* one pass over the (usually short) ready list, constant-time
         fd lookup — never a conns × ready product *)
      let touched =
        List.fold_left
          (fun acc fd ->
            if fd == t.wake_r then begin
              drain_wake t;
              acc
            end
            else if !listening && fd == t.listen_fd then begin
              accept_all t;
              acc
            end
            else
              match Hashtbl.find_opt t.by_fd fd with
              | Some c when not c.dead -> c :: acc
              | Some _ | None -> acc)
          [] readable
      in
      List.iter (on_readable ~chunk) touched;
      process_completions t;
      List.iter
        (fun c ->
          if not c.dead then begin
            try_dispatch t c;
            maybe_close_idle t c
          end)
        touched;
      loop ()
    end
  in
  loop ();
  (* shutdown: workers finish the queue's tail, then sockets close *)
  Bounded_queue.close t.queue;
  Pool.join pool;
  process_completions t;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter
    (fun c ->
      c.busy <- false;
      close_conn t c)
    remaining;
  (try Unix.close t.wake_r with Unix.Unix_error (_, _, _) -> ());
  (try Unix.close t.wake_w with Unix.Unix_error (_, _, _) -> ());
  if !listening then (
    try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
  Metrics.set connections_active 0;
  Metrics.set queue_depth 0
