(** The resident rewriting service: a shared {!Catalog} plus a
    canonical-query rewrite cache and request statistics.

    Requests are keyed by the order-insensitive canonical form of the
    query ({!Vplan_rewrite.Normalize.canonicalize}): every request is
    renamed into canonical variables, CoreCover runs on the canonical
    query (reusing the catalog's precomputed view classes), and the
    result is renamed back into the caller's variables.  Because the
    canonical form is complete for isomorphism, two requests share a
    cache entry iff they are the same query up to variable renaming and
    subgoal reordering — and because {e every} request goes through the
    canonical query, a cache hit is observationally identical to a fresh
    run: same rewritings, same completeness, same statistics, in the
    caller's own variables.

    Only [Complete] results are cached.  A [Truncated] result reflects
    the requester's budget, not the query, so it bypasses the cache
    entirely: it is neither stored nor ever served to a later request.
    Conversely a cached [Complete] result is valid for any budget — the
    search it summarizes finished, so a larger budget could not change
    it.

    A service value may be shared across domains: the cache and the
    statistics are guarded by a mutex, and CoreCover itself runs outside
    the lock.  {!rewrite_batch} fans independent requests out over a
    domain pool ({!Vplan_parallel.Parallel.map}); answers are
    deterministic and order-preserving regardless of the worker count —
    only the hit/miss attribution of concurrent duplicates can vary. *)

open Vplan_cq
module Corecover := Vplan_rewrite.Corecover

type t

(** How a request was satisfied: from the cache, by a fresh CoreCover
    run (now cached if [Complete]), or by a fresh run that bypassed the
    cache ([Truncated] result, or a query whose canonicalization blew
    its search cap and is treated as uncacheable). *)
type source = Hit | Miss | Bypass

type outcome = {
  rewritings : Query.t list;  (** in the caller's variables *)
  minimized_query : Query.t;  (** in the caller's variables *)
  completeness : Corecover.completeness;
  corecover_stats : Corecover.stats;
  source : source;
  ms : float;  (** wall-clock latency of this request *)
}

type latency = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

(** Running estimate accuracy for one relation, from the selection
    operators of {!analyze} runs: how many q-error samples, their
    geometric mean, and the worst. *)
type rel_accuracy = {
  acc_samples : int;
  acc_mean_q : float;
  acc_max_q : float;
}

type stats = {
  generation : int;
  num_views : int;
  num_view_classes : int;
  requests : int;  (** [requests = hits + misses + bypasses] *)
  hits : int;
  misses : int;  (** cache probes that missed, truncated runs included *)
  bypasses : int;  (** requests that never probed (uncacheable queries) *)
  evictions : int;
  cache_size : int;
  cache_capacity : int;
  truncated : int;  (** requests that returned a [Truncated] result *)
  plan_requests : int;  (** end-to-end {!plan} requests served *)
  analyze_requests : int;  (** {!analyze} requests served *)
  generation_resets : int;
      (** catalog swaps ({!set_catalog}) over the service's lifetime.  A
          swapped-in catalog restarts its generation sequence, so
          [generation] alone cannot show that a reload happened; the
          other counters deliberately survive the swap. *)
  data_relations : int;  (** base relations, from load-time statistics *)
  data_rows : int;  (** base tuples, from load-time statistics *)
  latency : latency;  (** over the most recent requests (bounded window) *)
  estimate_accuracy : (string * rel_accuracy) list;
      (** per-relation accuracy accumulated by {!analyze}, sorted by
          relation name; empty until the first analyze *)
}

(** How {!plan} costs candidate rewritings: [Exact] materializes the
    view relations and measures true intermediate sizes (the paper's
    cost model); [Estimated] derives join selectivities from the base
    statistics collected at load time and never materializes a view. *)
type cost_mode = Exact | Estimated

type plan_cost =
  | Cells of int  (** true M2 cells against the materialized views *)
  | Cells_est of float  (** estimated M2 cells from statistics *)

(** Result of an end-to-end {!plan} request. *)
type plan_outcome = {
  plan_rewriting : Query.t;  (** chosen rewriting, filters appended if any *)
  plan_order : Atom.t list;  (** M2-optimal join order of its body *)
  plan_cost : plan_cost;
  plan_candidates : int;  (** candidate rewritings considered *)
  plan_ms : float;  (** wall-clock latency of this request *)
}

(** [create catalog] — [cache_capacity] (default [512]) bounds the
    number of cached rewrite results. *)
val create : ?cache_capacity:int -> Catalog.t -> t

val catalog : t -> Catalog.t

(** [set_catalog t c] swaps the catalog in and {e clears the cache}:
    cached rewritings are only valid against the view set they were
    computed with.  Counters survive (they describe the service's
    lifetime). *)
val set_catalog : t -> Catalog.t -> unit

(** The loaded base database, if any. *)
val base : t -> Vplan_relational.Database.t option

(** [set_base t db] loads the base database {!plan} costs candidates
    against, collecting per-relation statistics (cardinalities, distinct
    counts, histograms) unless [stats] supplies previously collected
    ones — the warm-restart path, where the snapshot carries them.
    Invalidates the service's plan contexts (materialized view
    relations, the cross-request subplan memo, and the estimation
    catalog); the rewrite cache is untouched — rewritings are
    database-independent. *)
val set_base : ?stats:Vplan_stats.Stats.t -> t -> Vplan_relational.Database.t -> unit

(** Statistics for the loaded base database, if any. *)
val base_stats : t -> Vplan_stats.Stats.t option

(** [rewrite t query] serves one request.  [budget]/[max_covers] bound
    the CoreCover run on a miss exactly as in {!Corecover.gmrs} — a
    fresh budget per request keeps one adversarial query from stalling
    the service.  [domains] fans the per-view work of a miss out.  A
    [Width_limit] input error raises as usual. *)
val rewrite :
  ?budget:Vplan_core.Budget.t ->
  ?max_covers:int ->
  ?domains:int ->
  t ->
  Query.t ->
  outcome

(** [rewrite_batch t queries] serves independent requests over a domain
    pool, returning outcomes in request order.  [domains] is the pool
    width (each request runs CoreCover sequentially); [make_budget] is
    called once per request {e in the worker}, so deadlines start when
    the request is picked up, not when the batch was submitted. *)
val rewrite_batch :
  ?make_budget:(unit -> Vplan_core.Budget.t option) ->
  ?max_covers:int ->
  ?domains:int ->
  t ->
  Query.t list ->
  outcome list

(** [plan t query] serves an end-to-end request: CoreCover{^ *}
    candidates (all minimal rewritings, reusing the catalog's view
    classes; [max_covers] caps the enumeration), then the {!Select}
    branch-and-bound engine over them with the service's cross-request
    subplan memo.  The memo persists between requests and is dropped
    whenever the catalog or the base database changes, so repeated plans
    over a stable catalog share join evaluations.  [None] when the query
    has no rewriting.

    [cost_mode] (default [Exact]) selects how candidates are costed;
    [Estimated] plans from the load-time statistics alone, reusing a
    cached estimation catalog the same way exact mode reuses its
    materialized views.

    @raise Failure when no base database has been loaded
    ({!set_base}). *)
val plan :
  ?budget:Vplan_core.Budget.t ->
  ?max_covers:int ->
  ?domains:int ->
  ?cost_mode:cost_mode ->
  t ->
  Query.t ->
  plan_outcome option

(** Result of an {!analyze} request: the chosen plan, executed. *)
type analyze_outcome = {
  an_rewriting : Query.t;  (** chosen rewriting, as in {!plan_outcome} *)
  an_order : Atom.t list;  (** join order the engine was given *)
  an_cost : plan_cost;  (** the optimizer's predicted cost *)
  an_candidates : int;
  an_answers : int;  (** distinct answer tuples actually produced *)
  an_classification : string;  (** GYO class of the executed body *)
  an_qerror : float;
      (** per-query q-error: the worst estimated-vs-actual row ratio
          over the operator tree; [nan] when no operator had an
          estimate *)
  an_profile : Vplan_obs.Profile.node;  (** the operator tree *)
  an_ms : float;
}

(** [analyze t query] — {!plan}, then {e execute} the chosen plan
    against the materialized views with an operator profile attached
    and per-operator cardinality estimates from the load-time
    statistics: the [explain analyze] backend.  The per-query q-error
    feeds the [vplan_estimate_qerror] histogram and each selection's
    q-error feeds the per-relation accuracy in {!stats} — the feedback
    loop that shows when statistics have drifted.  [None] when the
    query has no rewriting.
    @raise Failure when no base database has been loaded. *)
val analyze :
  ?budget:Vplan_core.Budget.t ->
  ?max_covers:int ->
  ?domains:int ->
  ?cost_mode:cost_mode ->
  t ->
  Query.t ->
  analyze_outcome option

val stats : t -> stats

(** Counters of the cross-request subplan memo, when a plan context is
    live (at least one {!plan} since the last catalog/base change).
    Surfaced as gauges by the server's [metrics] command. *)
val subplan_counters : t -> Vplan_cost.Subplan.counters option
