type result = {
  clients : int;
  sent : int;
  completed : int;
  ok : int;
  hits : int;
  shed : int;
  retried : int;
  errors : int;
  closed_early : int;
  elapsed_ms : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* Exponential backoff with full jitter: attempt [k] (0-based) waits
   uniformly in [0, backoff_ms * 2^k].  Jitter decorrelates the fleet —
   without it every shed client would retry into the same queue-full
   instant that shed it. *)
let backoff_delay_s ~backoff_ms attempt =
  let cap = backoff_ms *. (2.0 ** float_of_int attempt) in
  Random.float (Float.max 1e-6 cap) /. 1000.0

(* One driven connection.  [outbox] is bytes not yet written (requests
   are tiny, so string concatenation on the rare short write is fine);
   [starts] holds (send time, request line, attempt) for every
   in-flight request, FIFO, which is sound because the server answers
   each connection in request order.  Only the first line of a response
   matters for classification, so the rest are discarded as they
   arrive.  [retry_at] is an [err busy] response waiting out its
   backoff before being resent on this connection. *)
type conn = {
  id : int;
  fd : Unix.file_descr;
  mutable outbox : string;
  inbuf : Buffer.t;
  starts : (float * string * int) Queue.t;
  mutable retry_at : (float * string * int) option;
  mutable first_line : string option;
  mutable in_response : bool;
  mutable seq : int;
  mutable closed : bool;
}

let connect_conn ~host ~port id =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  {
    id;
    fd;
    outbox = "";
    inbuf = Buffer.create 256;
    starts = Queue.create ();
    retry_at = None;
    first_line = None;
    in_response = false;
    seq = 0;
    closed = false;
  }

let close_conn c =
  if not c.closed then (
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float rank in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let run ?(host = "127.0.0.1") ~port ~clients ?rate ?max_per_client
    ?(grace_ms = 2000.0) ?(retries = 0) ?(backoff_ms = 5.0) ~duration_ms
    ~request () =
  if clients < 1 then invalid_arg "Loadgen.run: clients must be >= 1";
  if retries < 0 then invalid_arg "Loadgen.run: retries must be >= 0";
  let conns = Array.init clients (connect_conn ~host ~port) in
  let sent = ref 0 in
  let completed = ref 0 in
  let ok = ref 0 in
  let hits = ref 0 in
  let shed = ref 0 in
  let retried = ref 0 in
  let errors = ref 0 in
  let latencies = ref [] in
  let nlat = ref 0 in
  let start = Unix.gettimeofday () in
  let deadline = start +. (duration_ms /. 1000.0) in
  let hard_stop = deadline +. (grace_ms /. 1000.0) in
  let rr = ref 0 in
  let exhausted c =
    match max_per_client with Some m -> c.seq >= m | None -> false
  in
  let post now c line attempt =
    c.outbox <- c.outbox ^ line ^ "\n";
    Queue.push (now, line, attempt) c.starts;
    (* optimistic immediate write: the socket buffer is almost always
       empty in closed loop, and skipping the select round halves the
       syscalls per request *)
    match Unix.write_substring c.fd c.outbox 0 (String.length c.outbox) with
    | n -> c.outbox <- String.sub c.outbox n (String.length c.outbox - n)
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
        ()
    | exception Unix.Unix_error (_, _, _) -> close_conn c
  in
  let enqueue now c =
    let line = request ~client:c.id ~seq:c.seq in
    c.seq <- c.seq + 1;
    incr sent;
    post now c line 0
  in
  (* Open loop sends on the clock; closed loop sends on completion.
     Either way, a due retry goes out first — and past the deadline
     pending retries are abandoned (counted shed) so the run can end. *)
  let schedule now =
    Array.iter
      (fun c ->
        match c.retry_at with
        | Some (due, line, attempt) when not c.closed ->
            if now >= deadline then begin
              c.retry_at <- None;
              incr shed
            end
            else if now >= due then begin
              c.retry_at <- None;
              incr retried;
              post now c line attempt
            end
        | Some _ ->
            c.retry_at <- None;
            incr shed
        | None -> ())
      conns;
    if now < deadline then
      match rate with
      | None ->
          Array.iter
            (fun c ->
              if
                (not c.closed)
                && Queue.is_empty c.starts
                && c.retry_at = None
                && (not (exhausted c))
                && c.outbox = ""
              then enqueue now c)
            conns
      | Some r ->
          let due = int_of_float (r *. (now -. start)) - !sent in
          for _ = 1 to due do
            (* Round-robin over live, non-exhausted connections; give up
               after one full lap so a dead fleet can't spin. *)
            let placed = ref false in
            let tries = ref 0 in
            while (not !placed) && !tries < clients do
              let c = conns.(!rr mod clients) in
              incr rr;
              incr tries;
              if (not c.closed) && not (exhausted c) then (
                enqueue now c;
                placed := true)
            done
          done
  in
  let on_line c line =
    if c.in_response then (
      if line = "." then (
        c.in_response <- false;
        incr completed;
        let now = Unix.gettimeofday () in
        let t0, req_line, attempt = Queue.pop c.starts in
        let ms = (now -. t0) *. 1000.0 in
        (match c.first_line with
        | Some l when String.length l >= 2 && String.sub l 0 2 = "ok" ->
            incr ok;
            latencies := ms :: !latencies;
            incr nlat;
            let hit =
              (* first line of a rewrite reply: "ok N hit trace=T" *)
              match String.split_on_char ' ' l with
              | _ :: _ :: "hit" :: _ -> true
              | _ -> false
            in
            if hit then incr hits
        | Some "err busy" ->
            (* one retry slot per connection is enough: closed loop has
               one request in flight, and in open loop a second busy
               just counts as shed rather than stacking a backlog *)
            if attempt < retries && c.retry_at = None then
              c.retry_at <-
                Some (now +. backoff_delay_s ~backoff_ms attempt, req_line, attempt + 1)
            else incr shed
        | Some _ | None -> incr errors);
        c.first_line <- None))
    else (
      c.in_response <- true;
      if line = "." then (
        (* a response that is only the terminator: empty reply *)
        c.in_response <- false;
        incr completed;
        ignore (Queue.pop c.starts);
        incr errors)
      else c.first_line <- Some line)
  in
  let feed c data len =
    Buffer.add_subbytes c.inbuf data 0 len;
    let s = Buffer.contents c.inbuf in
    Buffer.clear c.inbuf;
    let n = String.length s in
    let pos = ref 0 in
    (try
       while !pos < n do
         match String.index_from s !pos '\n' with
         | exception Not_found ->
             Buffer.add_substring c.inbuf s !pos (n - !pos);
             pos := n
         | nl ->
             let line = String.sub s !pos (nl - !pos) in
             let line =
               let ll = String.length line in
               if ll > 0 && line.[ll - 1] = '\r' then String.sub line 0 (ll - 1)
               else line
             in
             pos := nl + 1;
             on_line c line
       done
     with Queue.Empty ->
       (* response without a matching request: protocol desync; drop
          the connection rather than corrupt the tallies *)
       close_conn c)
  in
  let buf = Bytes.create 65536 in
  let by_fd = Hashtbl.create (2 * clients) in
  Array.iter (fun c -> Hashtbl.replace by_fd c.fd c) conns;
  let finished () =
    let now = Unix.gettimeofday () in
    (now >= deadline
    && Array.for_all
         (fun c -> c.closed || (Queue.is_empty c.starts && c.outbox = ""))
         conns)
    || now >= hard_stop
    || Array.for_all (fun c -> c.closed) conns
    || (max_per_client <> None
       && Array.for_all
            (fun c ->
              c.closed
              || (exhausted c && Queue.is_empty c.starts && c.outbox = ""
                 && c.retry_at = None))
            conns)
  in
  while not (finished ()) do
    let now = Unix.gettimeofday () in
    schedule now;
    let rds =
      Array.to_list conns
      |> List.filter_map (fun c -> if c.closed then None else Some c.fd)
    in
    let wrs =
      Array.to_list conns
      |> List.filter_map (fun c ->
             if (not c.closed) && c.outbox <> "" then Some c.fd else None)
    in
    if rds = [] && wrs = [] then ()
    else
      let timeout =
        match rate with
        | None -> 0.05
        | Some r -> Float.max 0.001 (Float.min 0.05 (1.0 /. r))
      in
      let rd, wr, _ =
        try Unix.select rds wrs [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt by_fd fd with
          | None -> ()
          | Some c when c.closed -> ()
          | Some c -> (
              try
                let n =
                  Unix.write_substring c.fd c.outbox 0 (String.length c.outbox)
                in
                c.outbox <- String.sub c.outbox n (String.length c.outbox - n)
              with
              | Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              ->
                ()
              | Unix.Unix_error (_, _, _) -> close_conn c))
        wr;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt by_fd fd with
          | None -> ()
          | Some c when c.closed -> ()
          | Some c -> (
              match Unix.read c.fd buf 0 (Bytes.length buf) with
              | 0 -> close_conn c
              | n -> feed c buf n
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              ->
                ()
              | exception Unix.Unix_error (_, _, _) -> close_conn c))
        rd
  done;
  (* a retry still waiting out its backoff when the run ends was never
     resent: it is a shed request, not a completed one *)
  Array.iter
    (fun c ->
      match c.retry_at with
      | Some _ ->
          c.retry_at <- None;
          incr shed
      | None -> ())
    conns;
  let elapsed_ms = (Unix.gettimeofday () -. start) *. 1000.0 in
  let closed_early = Array.fold_left (fun a c -> if c.closed then a + 1 else a) 0 conns in
  Array.iter close_conn conns;
  let lat = Array.make !nlat 0.0 in
  List.iteri (fun i v -> lat.(i) <- v) !latencies;
  Array.sort compare lat;
  {
    clients;
    sent = !sent;
    completed = !completed;
    ok = !ok;
    hits = !hits;
    shed = !shed;
    retried = !retried;
    errors = !errors;
    closed_early;
    elapsed_ms;
    qps = (if elapsed_ms > 0.0 then float_of_int !ok /. (elapsed_ms /. 1000.0) else 0.0);
    p50_ms = percentile lat 0.50;
    p99_ms = percentile lat 0.99;
    max_ms = (if !nlat = 0 then 0.0 else lat.(!nlat - 1));
  }

module Client = struct
  type t = { fd : Unix.file_descr; inbuf : Buffer.t; mutable eof : bool }

  let connect ?(host = "127.0.0.1") ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       Unix.setsockopt fd Unix.TCP_NODELAY true
     with e ->
       (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
       raise e);
    { fd; inbuf = Buffer.create 1024; eof = false }

  let send t line =
    let data = line ^ "\n" in
    let n = String.length data in
    let off = ref 0 in
    while !off < n do
      match Unix.write_substring t.fd data !off (n - !off) with
      | w -> off := !off + w
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done

  (* Pop one complete line out of [inbuf], if present. *)
  let take_line t =
    let s = Buffer.contents t.inbuf in
    match String.index_opt s '\n' with
    | None -> None
    | Some nl ->
        Buffer.clear t.inbuf;
        Buffer.add_substring t.inbuf s (nl + 1) (String.length s - nl - 1);
        let line = String.sub s 0 nl in
        let ll = String.length line in
        Some
          (if ll > 0 && line.[ll - 1] = '\r' then String.sub line 0 (ll - 1)
           else line)

  let read_line t ~deadline =
    let buf = Bytes.create 8192 in
    let rec go () =
      match take_line t with
      | Some l -> l
      | None ->
          if t.eof then failwith "Loadgen.Client: connection closed by server";
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then
            failwith "Loadgen.Client: timed out waiting for response";
          (match Unix.select [ t.fd ] [] [] remaining with
          | [], _, _ -> ()
          | _ -> (
              match Unix.read t.fd buf 0 (Bytes.length buf) with
              | 0 -> t.eof <- true
              | n -> Buffer.add_subbytes t.inbuf buf 0 n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go ()
    in
    go ()

  let read_response t =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go acc =
      let line = read_line t ~deadline in
      if line = "." then List.rev acc else go (line :: acc)
    in
    go []

  let request ?(retries = 0) ?(backoff_ms = 5.0) t line =
    let rec go attempt =
      send t line;
      match read_response t with
      | [ "err busy" ] when attempt < retries ->
          Unix.sleepf (backoff_delay_s ~backoff_ms attempt);
          go (attempt + 1)
      | resp -> resp
    in
    go 0

  let drain t n = List.init n (fun _ -> read_response t)

  let close t =
    if not t.eof then t.eof <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
end
