open Vplan_cq
module Corecover = Vplan_rewrite.Corecover
module Normalize = Vplan_rewrite.Normalize
module Parallel = Vplan_parallel.Parallel
module Budget = Vplan_core.Budget
module Database = Vplan_relational.Database
module Materialize = Vplan_views.Materialize
module Subplan = Vplan_cost.Subplan
module Select = Vplan_cost.Select
module Estimate = Vplan_cost.Estimate
module Stats = Vplan_stats.Stats
module Qerror = Vplan_stats.Qerror
module Metrics = Vplan_obs.Metrics
module Obs = Vplan_obs.Obs
module Profile = Vplan_obs.Profile
module Exec = Vplan_exec.Exec
module Interned = Vplan_exec.Interned
module Hypergraph = Vplan_hypergraph.Hypergraph

let requests_total = Metrics.counter "vplan_rewrite_requests_total"
let bypasses_total = Metrics.counter "vplan_rewrite_bypasses_total"
let truncated_total = Metrics.counter "vplan_rewrite_truncated_total"
let plan_requests_total = Metrics.counter "vplan_plan_requests_total"
let analyze_requests_total = Metrics.counter "vplan_analyze_requests_total"
let generation_resets_total = Metrics.counter "vplan_generation_resets_total"
let request_ms = Metrics.histogram "vplan_request_ms"

let estimate_qerror_h =
  Metrics.histogram
    ~help:"per-query q-error of analyze requests (max est/actual row ratio \
           over the operator tree, dimensionless)"
    "vplan_estimate_qerror"

type source = Hit | Miss | Bypass

type outcome = {
  rewritings : Query.t list;
  minimized_query : Query.t;
  completeness : Corecover.completeness;
  corecover_stats : Corecover.stats;
  source : source;
  ms : float;
}

type latency = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

type rel_accuracy = {
  acc_samples : int;
  acc_mean_q : float;
  acc_max_q : float;
}

type stats = {
  generation : int;
  num_views : int;
  num_view_classes : int;
  requests : int;
  hits : int;
  misses : int;
  bypasses : int;
  evictions : int;
  cache_size : int;
  cache_capacity : int;
  truncated : int;
  plan_requests : int;
  analyze_requests : int;
  generation_resets : int;
  data_relations : int;
  data_rows : int;
  latency : latency;
  estimate_accuracy : (string * rel_accuracy) list;
}

type cost_mode = Exact | Estimated

type plan_cost = Cells of int | Cells_est of float

type plan_outcome = {
  plan_rewriting : Query.t;
  plan_order : Atom.t list;
  plan_cost : plan_cost;
  plan_candidates : int;
  plan_ms : float;
}

(* Cached entries keep the canonical query alongside the result: on a
   hit the requested canonical form is compared against it, so even a
   (never observed) canonical-form collision could only cause a recompute,
   never a wrong answer. *)
type entry = { canon : Query.t; result : Corecover.result }

(* Plan-selection state, valid for exactly one (catalog, base database)
   pair: the materialized view relations and the subplan memo keyed over
   them.  Compared by physical identity — any catalog swap or base load
   produces fresh values. *)
type plan_ctx = {
  p_cat : Catalog.t;
  p_base : Database.t;
  p_view_db : Database.t;
  p_memo : Subplan.t;
}

(* Estimated-mode planning state, valid for exactly one
   (catalog, statistics) pair: the estimation catalog extended with
   per-view statistics.  Never touches the data. *)
type est_ctx = {
  e_cat : Catalog.t;
  e_stats : Stats.t;
  e_est : Estimate.t;
}

(* percentile window: the most recent [lat_window] request latencies *)
let lat_window = 1024

type t = {
  mutable cat : Catalog.t;
  cache : entry Rewrite_cache.t;
  lock : Mutex.t;
  mutable requests : int;
  mutable bypasses : int;
  mutable truncated : int;
  mutable base : Database.t option;
  mutable bstats : Stats.t option;
  mutable pctx : plan_ctx option;
  mutable ectx : est_ctx option;
  mutable plan_requests : int;
  mutable analyze_requests : int;
  mutable generation_resets : int;
  qerrors : Qerror.by_rel; (* per-relation estimate accuracy, under [lock] *)
  lat_ring : float array;
  mutable lat_next : int;  (* total latencies ever recorded *)
  mutable lat_sum : float;
  mutable lat_max : float;
}

let create ?(cache_capacity = 512) cat =
  {
    cat;
    cache = Rewrite_cache.create ~capacity:cache_capacity;
    lock = Mutex.create ();
    requests = 0;
    bypasses = 0;
    truncated = 0;
    base = None;
    bstats = None;
    pctx = None;
    ectx = None;
    plan_requests = 0;
    analyze_requests = 0;
    generation_resets = 0;
    qerrors = Qerror.create_registry ();
    lat_ring = Array.make lat_window 0.;
    lat_next = 0;
    lat_sum = 0.;
    lat_max = 0.;
  }

let catalog t = t.cat

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_catalog t cat =
  locked t (fun () ->
      t.cat <- cat;
      Rewrite_cache.clear t.cache;
      t.pctx <- None;
      t.ectx <- None;
      (* the new catalog restarts its generation sequence; counting
         swaps here lets lifetime counters survive a [catalog load] *)
      t.generation_resets <- t.generation_resets + 1;
      Metrics.incr generation_resets_total)

let base t = locked t (fun () -> t.base)
let base_stats t = locked t (fun () -> t.bstats)

let set_base ?stats t db =
  (* statistics are collected (one scan per relation) outside the lock;
     a recovered snapshot passes its persisted stats and skips the
     scan *)
  let stats =
    match stats with
    | Some s -> s
    | None -> Obs.phase "stats_collect" (fun () -> Stats.collect db)
  in
  locked t (fun () ->
      t.base <- Some db;
      t.bstats <- Some stats;
      t.pctx <- None;
      t.ectx <- None)

(* [sigma] maps caller variables to canonical ones, bijectively and only
   var-to-var; its inverse renames canonical-variable results back. *)
let invert sigma =
  Subst.of_list
    (List.map
       (fun (x, term) ->
         match term with
         | Term.Var y -> (y, Term.Var x)
         | Term.Cst _ -> assert false)
       (Subst.bindings sigma))

let rename_result inv (r : Corecover.result) =
  ( List.map (fun p -> Query.apply inv p) r.Corecover.rewritings,
    Query.apply inv r.Corecover.minimized_query )

let record t ~probed ~completeness ~ms =
  Metrics.incr requests_total;
  Metrics.observe request_ms ms;
  if not probed then Metrics.incr bypasses_total;
  (match completeness with
  | Corecover.Truncated _ -> Metrics.incr truncated_total
  | Corecover.Complete -> ());
  locked t (fun () ->
      t.requests <- t.requests + 1;
      (* [bypasses] counts requests that never probed the cache
         (uncacheable canonicalization); a truncated request probed and
         missed, so it is already in the cache's miss counter *)
      if not probed then t.bypasses <- t.bypasses + 1;
      (match completeness with
      | Corecover.Truncated _ -> t.truncated <- t.truncated + 1
      | Corecover.Complete -> ());
      t.lat_ring.(t.lat_next mod lat_window) <- ms;
      t.lat_next <- t.lat_next + 1;
      t.lat_sum <- t.lat_sum +. ms;
      if ms > t.lat_max then t.lat_max <- ms)

let outcome_of ~source ~ms rewritings minimized_query (r : Corecover.result) =
  {
    rewritings;
    minimized_query;
    completeness = r.Corecover.completeness;
    corecover_stats = r.Corecover.stats;
    source;
    ms;
  }

let rewrite ?budget ?max_covers ?(domains = 1) t query =
  let clock = Budget.create () in
  let finish ~probed ~source (rewritings, minimized_query) r =
    let ms = Budget.elapsed_ms clock in
    record t ~probed ~completeness:r.Corecover.completeness ~ms;
    outcome_of ~source ~ms rewritings minimized_query r
  in
  (* snapshot the catalog: a concurrent [set_catalog] must not mix
     generations within one request *)
  let cat = locked t (fun () -> t.cat) in
  let run q =
    Corecover.gmrs ?budget ?max_covers
      ~view_classes:(Catalog.view_classes cat)
      ~domains ~query:q ~views:(Catalog.views cat) ()
  in
  match Normalize.canonicalize query with
  | None ->
      (* canonical-labeling search blew its cap: uncacheable, run as-is *)
      let r = run query in
      finish ~probed:false ~source:Bypass
        (r.Corecover.rewritings, r.Corecover.minimized_query)
        r
  | Some (canon, sigma) -> (
      let key = Query.to_string canon in
      let inv = invert sigma in
      let cached =
        locked t (fun () ->
            if t.cat != cat then None
            else
              match Rewrite_cache.find t.cache key with
              | Some e when Query.equal e.canon canon -> Some e.result
              | Some _ | None -> None)
      in
      match cached with
      | Some r -> finish ~probed:true ~source:Hit (rename_result inv r) r
      | None ->
          let r = run canon in
          let source =
            match r.Corecover.completeness with
            | Corecover.Complete ->
                locked t (fun () ->
                    (* only publish results computed against the live
                       catalog generation *)
                    if t.cat == cat then Rewrite_cache.add t.cache key { canon; result = r });
                Miss
            | Corecover.Truncated _ -> Bypass
          in
          finish ~probed:true ~source (rename_result inv r) r)

let rewrite_batch ?(make_budget = fun () -> None) ?max_covers ?(domains = 1) t
    queries =
  Parallel.map ~domains
    (fun query -> rewrite ?budget:(make_budget ()) ?max_covers t query)
    queries

(* Reuse the cached plan context when both the catalog and the base are
   the ones it was built for; otherwise materialize the views (outside
   the lock — it joins every view body) and publish, preferring a
   concurrently-published equal context so the memo stays shared. *)
let plan_ctx t cat db =
  let live ctx = ctx.p_cat == cat && ctx.p_base == db in
  match locked t (fun () -> t.pctx) with
  | Some ctx when live ctx -> ctx
  | _ ->
      let fresh =
        {
          p_cat = cat;
          p_base = db;
          p_view_db =
            (* traced: on the first plan after a catalog/base change this
               dominates the request, and explain should show it *)
            Vplan_obs.Obs.phase "materialize" (fun () ->
                Materialize.views db (Catalog.views cat));
          p_memo = Subplan.create ();
        }
      in
      locked t (fun () ->
          match t.pctx with
          | Some ctx when live ctx -> ctx
          | _ ->
              t.pctx <- Some fresh;
              fresh)

(* Same publish discipline for the estimation catalog; building it folds
   a join profile per view body — cheap, but traced so explain shows
   where estimated-mode time goes on the first request. *)
let est_ctx t cat stats =
  let live ctx = ctx.e_cat == cat && ctx.e_stats == stats in
  match locked t (fun () -> t.ectx) with
  | Some ctx when live ctx -> ctx.e_est
  | _ ->
      let est =
        Obs.phase "estimate" (fun () ->
            Estimate.view_stats (Estimate.of_stats stats) (Catalog.views cat))
      in
      let fresh = { e_cat = cat; e_stats = stats; e_est = est } in
      locked t (fun () ->
          match t.ectx with
          | Some ctx when live ctx -> ctx.e_est
          | _ ->
              t.ectx <- Some fresh;
              est)

(* Candidate enumeration and cost-based choice, shared by [plan] and
   [analyze].  Returns the CoreCover result alongside the chosen
   (rewriting, join order, cost), if any rewriting exists. *)
let plan_choice ?budget ?max_covers ~domains ~cost_mode t cat db stats query =
  let r =
    Corecover.all_minimal ?budget ?max_results:max_covers
      ~view_classes:(Catalog.view_classes cat)
      ~domains ~query ~views:(Catalog.views cat) ()
  in
  let choice =
    match cost_mode with
    | Exact ->
        let ctx = plan_ctx t cat db in
        Option.map
          (fun (c : Select.m2_choice) ->
            (c.Select.m2_rewriting, c.Select.m2_order, Cells c.Select.m2_cost))
          (Select.best_m2 ~memo:ctx.p_memo ?budget ~domains
             ~filters:r.Corecover.filters ctx.p_view_db
             r.Corecover.rewritings)
    | Estimated ->
        (* statistics always exist once a base is loaded ([set_base]
           collects them when the caller has none) *)
        let stats =
          match stats with
          | Some s -> s
          | None -> assert false
        in
        let est = est_ctx t cat stats in
        Option.map
          (fun (c : Select.m2_est_choice) ->
            ( c.Select.est_rewriting,
              c.Select.est_order,
              Cells_est c.Select.est_cost ))
          (Select.best_m2_estimated ?budget est r.Corecover.rewritings)
  in
  (r, choice)

let plan ?budget ?max_covers ?(domains = 1) ?(cost_mode = Exact) t query =
  let clock = Budget.create () in
  let cat, db, stats = locked t (fun () -> (t.cat, t.base, t.bstats)) in
  match db with
  | None -> failwith "no base database loaded (use: data load FILE)"
  | Some db ->
      let r, choice =
        plan_choice ?budget ?max_covers ~domains ~cost_mode t cat db stats query
      in
      let ms = Budget.elapsed_ms clock in
      Metrics.incr plan_requests_total;
      Metrics.observe request_ms ms;
      locked t (fun () -> t.plan_requests <- t.plan_requests + 1);
      Option.map
        (fun (plan_rewriting, plan_order, plan_cost) ->
          {
            plan_rewriting;
            plan_order;
            plan_cost;
            plan_candidates = List.length r.Corecover.rewritings;
            plan_ms = ms;
          })
        choice

type analyze_outcome = {
  an_rewriting : Query.t;
  an_order : Atom.t list;
  an_cost : plan_cost;
  an_candidates : int;
  an_answers : int;
  an_classification : string;
  an_qerror : float;
  an_profile : Profile.node;
  an_ms : float;
}

let analyze ?budget ?max_covers ?(domains = 1) ?(cost_mode = Exact) t query =
  let clock = Budget.create () in
  let cat, db, stats = locked t (fun () -> (t.cat, t.base, t.bstats)) in
  match db with
  | None -> failwith "no base database loaded (use: data load FILE)"
  | Some db -> (
      let r, choice =
        plan_choice ?budget ?max_covers ~domains ~cost_mode t cat db stats query
      in
      match choice with
      | None -> None
      | Some (rw, order, cost) ->
          let ctx = plan_ctx t cat db in
          let stats = match stats with Some s -> s | None -> assert false in
          let est = est_ctx t cat stats in
          (* the estimate callback the engine consults per operator:
             single atoms estimate their selection, longer prefixes fold
             join profiles in executed order (the fold is not
             associative, so the order matters and the engine supplies
             the one it actually ran) *)
          let estimate atoms =
            match atoms with
            | [] -> Float.nan
            | [ a ] -> Estimate.atom_cardinality est a
            | a :: rest ->
                Estimate.profile_card
                  (List.fold_left
                     (fun p b -> Estimate.join_profiles p (Estimate.atom_profile est b))
                     (Estimate.atom_profile est a)
                     rest)
          in
          (* interned per request rather than cached on the plan context:
             analyze is a diagnosis surface, and forcing a shared lazy
             cell from concurrent worker domains is exactly the kind of
             subtlety it exists to debug, not to have *)
          let interned =
            Obs.phase "intern" (fun () -> Interned.of_database ctx.p_view_db)
          in
          let ordered = Query.make_exn rw.Query.head order in
          let profile = Profile.create ~name:(Query.to_string rw) () in
          let answers =
            Obs.phase "analyze_exec" (fun () ->
                Exec.answers ?budget ~profile ~estimate interned ordered)
          in
          let root = Profile.finish profile in
          let qerror = Profile.max_qerror root in
          let classification =
            match Hypergraph.classify ordered.Query.body with
            | Hypergraph.Acyclic _ -> "acyclic"
            | Hypergraph.Cyclic -> "cyclic"
          in
          if not (Float.is_nan qerror) then
            Metrics.observe estimate_qerror_h qerror;
          let ms = Budget.elapsed_ms clock in
          Metrics.incr analyze_requests_total;
          Metrics.observe request_ms ms;
          locked t (fun () ->
              t.analyze_requests <- t.analyze_requests + 1;
              (* per-relation accuracy: selection estimates attribute
                 directly to the scanned relation *)
              List.iter
                (fun (n : Profile.node) ->
                  if n.Profile.op = "select" && n.Profile.rows_out >= 0 then
                    let q =
                      Profile.qerror ~est:n.Profile.est_rows
                        ~actual:n.Profile.rows_out
                    in
                    if not (Float.is_nan q) then
                      Qerror.observe_rel t.qerrors n.Profile.name q)
                (Profile.preorder root));
          Some
            {
              an_rewriting = rw;
              an_order = order;
              an_cost = cost;
              an_candidates = List.length r.Corecover.rewritings;
              an_answers = Vplan_relational.Relation.cardinality answers;
              an_classification = classification;
              an_qerror = qerror;
              an_profile = root;
              an_ms = ms;
            })

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let stats t =
  locked t (fun () ->
      let c = Rewrite_cache.counters t.cache in
      let n = min t.lat_next lat_window in
      let window = Array.sub t.lat_ring 0 n in
      Array.sort compare window;
      let latency =
        {
          count = t.lat_next;
          mean_ms = (if t.lat_next = 0 then 0. else t.lat_sum /. float_of_int t.lat_next);
          p50_ms = percentile window 0.50;
          p95_ms = percentile window 0.95;
          max_ms = t.lat_max;
        }
      in
      {
        generation = Catalog.generation t.cat;
        num_views = Catalog.num_views t.cat;
        num_view_classes = Catalog.num_classes t.cat;
        requests = t.requests;
        hits = c.Rewrite_cache.hits;
        misses = c.Rewrite_cache.misses;
        bypasses = t.bypasses;
        evictions = c.Rewrite_cache.evictions;
        cache_size = c.Rewrite_cache.size;
        cache_capacity = c.Rewrite_cache.capacity;
        truncated = t.truncated;
        plan_requests = t.plan_requests;
        analyze_requests = t.analyze_requests;
        generation_resets = t.generation_resets;
        data_relations =
          (match t.bstats with None -> 0 | Some s -> Stats.num_relations s);
        data_rows =
          (match t.bstats with None -> 0 | Some s -> Stats.total_rows s);
        latency;
        estimate_accuracy =
          List.map
            (fun (name, a) ->
              ( name,
                {
                  acc_samples = Qerror.count a;
                  acc_mean_q = Qerror.mean_q a;
                  acc_max_q = Qerror.max_q a;
                } ))
            (Qerror.bindings t.qerrors);
      })

let subplan_counters t =
  locked t (fun () -> Option.map (fun ctx -> Subplan.counters ctx.p_memo) t.pctx)
