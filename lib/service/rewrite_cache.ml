(* Hash table + intrusive doubly-linked recency list: O(1) find/add/evict. *)

module Metrics = Vplan_obs.Metrics

(* Global, not per-instance: the registry aggregates over every cache in
   the process, matching the service-lifetime semantics of the mutable
   per-instance counters below. *)
let hits_total = Metrics.counter "vplan_cache_hits_total"
let misses_total = Metrics.counter "vplan_cache_misses_total"
let evictions_total = Metrics.counter "vplan_cache_evictions_total"

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (* toward most recent *)
  mutable next : 'a node option;  (* toward least recent *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Rewrite_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 1024);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      Metrics.incr hits_total;
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr misses_total;
      None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      (* replacement, not an eviction: the key stays resident *)
      unlink t old;
      Hashtbl.remove t.table key
  | None -> ());
  let node = { key; value; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node;
  if Hashtbl.length t.table > t.capacity then
    match t.lru with
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key;
        t.evictions <- t.evictions + 1;
        Metrics.incr evictions_total
    | None -> assert false

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let counters (t : 'a t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
    capacity = t.capacity;
  }
