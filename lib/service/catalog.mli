(** Resident view catalogs.

    The paper's experiments (Section 7) fix a view set and run hundreds
    of queries against it; the per-query cost of CoreCover is dominated
    by view-side work — parsing, minimization, equivalence-class
    grouping — that does not depend on the query at all.  A [Catalog.t]
    runs that preprocessing {e once}: it validates the view set, groups
    the views into equivalence classes (with their canonical signatures,
    {!Vplan_views.Equiv_class.signature}) and keeps the result as an
    immutable value that any number of requests — on any number of
    domains — can share without synchronization.

    Catalogs evolve by {e generations}: {!add_views} and {!remove_views}
    return a new catalog with the generation counter bumped, reusing the
    existing class structure instead of regrouping from scratch (adding
    a view costs one signature plus the within-bucket equivalence
    checks; removal is a filter).  The partition always equals what
    {!Vplan_views.Equiv_class.group_views} would compute on the current
    member list. *)

open Vplan_views

type t

(** [create views] validates the set (distinct names, consistent
    arities) and runs the view-side preprocessing.  The result is
    generation 1.  A [?budget] bounds the grouping's minimization and
    equivalence searches. *)
val create : ?budget:Vplan_core.Budget.t -> View.t list -> (t, string) result

(** [create_exn views] is {!create}, raising [Invalid_argument] on an
    invalid set. *)
val create_exn : ?budget:Vplan_core.Budget.t -> View.t list -> t

(** [add_views t views] is a new generation with [views] appended,
    grouped incrementally against the existing classes.  Fails like
    {!create} when a name collides or an arity is inconsistent. *)
val add_views :
  ?budget:Vplan_core.Budget.t -> t -> View.t list -> (t, string) result

(** [remove_views t names] is a new generation without the named views.
    Fails when a name is not a member. *)
val remove_views : t -> string list -> (t, string) result

(** [restore ~generation ~views ~keyed] rebuilds a catalog from
    persisted parts {e without} regrouping — the preprocessing skip that
    makes a warm restart fast.  Validates the view set and that [keyed]
    partitions exactly [views]; it trusts the class structure itself,
    which the snapshot codec protects with a checksum. *)
val restore :
  generation:int ->
  views:View.t list ->
  keyed:(string * View.t list) list ->
  (t, string) result

(** Monotone generation counter, starting at 1.  Two catalogs with the
    same generation that came from the same lineage have the same
    members — the rewrite cache keys its validity on this. *)
val generation : t -> int

(** Current members, in insertion order. *)
val views : t -> View.t list

(** The equivalence-class partition, ready to pass to
    [Corecover.gmrs ~view_classes]. *)
val view_classes : t -> View.t list list

(** The signature-tagged partition — the persistent form a snapshot
    stores and {!restore} consumes. *)
val keyed : t -> (string * View.t list) list

val num_views : t -> int
val num_classes : t -> int

(** [find t name] looks a member up by view name. *)
val find : t -> string -> View.t option
