(** The server's line protocol, factored out of the binary so every
    front end — the stdio loop, the TCP server, the load generator's
    in-process fixture, and the tests — speaks exactly the same
    commands with exactly the same responses.

    A {!shared} value is the process-wide serving state: the resident
    {!Service} (catalog + rewrite cache + counters), the domain-pool
    width, and the trace-id counter.  It may be used from many domains
    at once; catalog and base-database mutations are serialized
    internally, and {!Service} itself is domain-safe.

    A {!session} is one client's view: its budget settings ([set
    timeout] and friends apply only to the connection that issued
    them) and its slow-query threshold.  The stdio loop has a single
    session; the TCP server creates one per connection.

    Commands (one request per line; [batch N] consumes N further
    lines):

    {v
    catalog load FILE | catalog add <rule>. | catalog remove NAME
    rewrite <rule>. | batch N | data load FILE | plan <rule>.
    explain <rule>. | stats [--json] | metrics
    set timeout MS | set max-steps N | set max-covers N
    set slow-ms MS | set off
    help | quit
    v} *)

type shared
type session

(** One response: the full text (newline-terminated lines) and whether
    the connection should close after it is delivered. *)
type reply = { text : string; close : bool }

(** [create_shared ()] — [domains] is the width of the per-request
    domain pool handed to {!Service.rewrite}/[batch]/[plan];
    [cache_capacity] bounds the rewrite cache; the remaining options
    seed every new session's budget defaults. *)
val create_shared :
  ?cache_capacity:int ->
  ?domains:int ->
  ?timeout_ms:float ->
  ?max_steps:int ->
  ?max_covers:int ->
  ?slow_ms:float ->
  unit ->
  shared

val new_session : shared -> session

(** The live service, once a catalog has been loaded. *)
val service : shared -> Service.t option

(** Install a catalog programmatically (equivalent to a successful
    [catalog load], without the file). *)
val install_catalog : shared -> Catalog.t -> unit

(** [extra_lines line] — how many further request lines [line]
    consumes beyond itself ([batch N] consumes [N]; everything else
    [0]).  This is what lets a network front end frame a complete
    request before dispatching it to a worker. *)
val extra_lines : string -> int

(** [handle shared session ~read_line line] serves one request.
    [read_line] supplies the extra lines of a multi-line request
    ([None] at end of input).  Never raises: failures become a single
    ["err ..."] line. *)
val handle :
  shared -> session -> read_line:(unit -> string option) -> string -> reply

(** [handle_lines shared session lines] is {!handle} on the first line
    with the rest fed through [read_line] — the shape a framed network
    request arrives in.  The empty list yields an empty reply. *)
val handle_lines : shared -> session -> string list -> reply
