(** The server's line protocol, factored out of the binary so every
    front end — the stdio loop, the TCP server, the load generator's
    in-process fixture, and the tests — speaks exactly the same
    commands with exactly the same responses.

    A {!shared} value is the process-wide serving state: the resident
    {!Service} (catalog + rewrite cache + counters), the domain-pool
    width, and the trace-id counter.  It may be used from many domains
    at once; catalog and base-database mutations are serialized
    internally, and {!Service} itself is domain-safe.

    A {!session} is one client's view: its budget settings ([set
    timeout] and friends apply only to the connection that issued
    them) and its slow-query threshold.  The stdio loop has a single
    session; the TCP server creates one per connection.

    Commands (one request per line; [batch N] consumes N further
    lines):

    {v
    catalog load FILE | catalog add <rule>. | catalog remove NAME
    rewrite <rule>. | batch N | data load FILE | plan <rule>.
    explain <rule>. | stats [--json] | metrics
    save | health
    set timeout MS | set max-steps N | set max-covers N
    set slow-ms MS | set cost-mode exact|estimated | set off
    help | quit
    v}

    When a {!Vplan_store.Store.t} is attached, every mutation ([catalog
    add]/[catalog remove]/[data load]) is journaled — fsync included —
    {e before} it becomes visible or acked; [catalog load] and [save]
    compact into a fresh snapshot.  A store in readonly (degraded) mode
    makes mutations answer [err readonly: ...] while reads keep
    serving from memory. *)

type shared
type session

(** One response: the full text (newline-terminated lines) and whether
    the connection should close after it is delivered. *)
type reply = { text : string; close : bool }

(** [create_shared ()] — [domains] is the width of the per-request
    domain pool handed to {!Service.rewrite}/[batch]/[plan];
    [cache_capacity] bounds the rewrite cache; the budget options seed
    every new session's defaults.  [cost_mode] (default [Exact]) seeds
    every session's plan-costing mode; [set cost-mode] changes it per
    connection.  [store] attaches a durability layer (mutations journal
    before ack); [boot_replayed]/[boot_truncated] are the recovery
    facts reported by [health]. *)
val create_shared :
  ?cache_capacity:int ->
  ?domains:int ->
  ?timeout_ms:float ->
  ?max_steps:int ->
  ?max_covers:int ->
  ?slow_ms:float ->
  ?cost_mode:Service.cost_mode ->
  ?store:Vplan_store.Store.t ->
  ?boot_replayed:int ->
  ?boot_truncated:int ->
  unit ->
  shared

val new_session : shared -> session

(** The live service, once a catalog has been loaded. *)
val service : shared -> Service.t option

(** The attached store, if the server was started with a data dir. *)
val store : shared -> Vplan_store.Store.t option

(** Install a catalog programmatically (equivalent to a successful
    [catalog load], without the file). *)
val install_catalog : shared -> Catalog.t -> unit

(** [extra_lines line] — how many further request lines [line]
    consumes beyond itself ([batch N] consumes [N]; everything else
    [0]).  This is what lets a network front end frame a complete
    request before dispatching it to a worker. *)
val extra_lines : string -> int

(** [handle shared session ~read_line line] serves one request.
    [read_line] supplies the extra lines of a multi-line request
    ([None] at end of input).  Never raises: failures become a single
    ["err ..."] line. *)
val handle :
  shared -> session -> read_line:(unit -> string option) -> string -> reply

(** [handle_lines shared session lines] is {!handle} on the first line
    with the rest fed through [read_line] — the shape a framed network
    request arrives in.  The empty list yields an empty reply. *)
val handle_lines : shared -> session -> string list -> reply
