(** Load generation for the TCP serving tier.

    {!run} drives N concurrent client connections from a single domain
    with a [select] event loop, so hundreds of clients cost hundreds of
    sockets, not hundreds of domains.  Closed-loop mode (the default)
    keeps exactly one request in flight per connection — the classic
    fixed-concurrency benchmark, where measured throughput is
    [clients / latency].  Open-loop mode ([rate]) sends at a fixed
    aggregate arrival rate whatever the completions do, which is what
    exposes shedding behaviour under overload.

    Responses are framed by the server's lone-["."] terminator line and
    classified by their first line: [ok ...] (a cache-hit attribution
    [" hit "] is counted separately), [err busy] (shed by admission
    control), or any other [err ...].  Latency percentiles are computed
    over successful ([ok]) responses only — shed responses are
    deliberately fast and would flatter the tail. *)

type result = {
  clients : int;
  sent : int;  (** distinct requests written (resends not included) *)
  completed : int;  (** responses fully received *)
  ok : int;
  hits : int;  (** [ok] responses attributed to the rewrite cache *)
  shed : int;
      (** requests given up as [err busy] — retries exhausted, retry
          window closed, or retrying disabled *)
  retried : int;  (** resends performed after an [err busy] *)
  errors : int;  (** other [err] responses *)
  closed_early : int;  (** connections that died before the run ended *)
  elapsed_ms : float;
  qps : float;  (** [ok] responses per second of elapsed wall time *)
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

(** [run ~port ~clients ~duration_ms ~request ()] — [request ~client
    ~seq] renders the request line for connection [client]'s [seq]-th
    send (without the newline; it must be a single-line command).

    [rate], when given, switches to open loop: requests are sent at
    [rate] per second aggregate, round-robin over the connections,
    regardless of outstanding responses.  [max_per_client] stops a
    connection after that many sends (the run ends early when every
    connection is done).  After [duration_ms] no new requests are sent;
    up to [grace_ms] (default 2000) is then allowed for stragglers.

    [retries] (default 0: off) resends a request shed with [err busy]
    up to that many times, after an exponential backoff with full
    jitter (attempt [k] waits uniformly in [0, backoff_ms * 2^k];
    [backoff_ms] defaults to 5).  Resends are counted in [retried], not
    [sent]; only a request whose retries are exhausted — or abandoned
    at the deadline — counts as [shed], so shed rates stay honest. *)
val run :
  ?host:string ->
  port:int ->
  clients:int ->
  ?rate:float ->
  ?max_per_client:int ->
  ?grace_ms:float ->
  ?retries:int ->
  ?backoff_ms:float ->
  duration_ms:float ->
  request:(client:int -> seq:int -> string) ->
  unit ->
  result

(** A plain blocking client for scripting one connection: control
    requests during a bench, assertions in tests. *)
module Client : sig
  type t

  val connect : ?host:string -> port:int -> unit -> t

  (** [request t line] sends [line] (or several lines, for [batch])
      and returns the response lines, terminator excluded.  [retries]
      (default 0) resends after an [err busy] reply, waiting out an
      exponential backoff with full jitter between attempts; the
      returned response is the last attempt's.
      @raise Failure on timeout (10s), closed connection, or if the
      connection already saw EOF. *)
  val request : ?retries:int -> ?backoff_ms:float -> t -> string -> string list

  (** [send t line] writes without awaiting a response (for pipelining
      experiments); pair with {!drain}. *)
  val send : t -> string -> unit

  (** [drain t n] reads [n] responses, returning each one's lines. *)
  val drain : t -> int -> string list list

  val close : t -> unit
end
