open Vplan_cq
open Vplan_views
module Database = Vplan_relational.Database
module Snapshot = Vplan_store.Snapshot
module Record = Vplan_store.Record
module Vplan_error = Vplan_core.Vplan_error

let ( let* ) = Result.bind

(* Query.pp prints a rule without its trailing dot; the parser wants
   the dot.  Rule texts in snapshots and journal records are exactly
   what [catalog load] would accept. *)
let render_view v = Query.to_string v ^ "."

let view_of_text text =
  match Parser.parse_rule text with
  | Ok q -> Ok (View.of_query q)
  | Error e -> Error (Vplan_error.parse_to_string e)

let facts_of_db db =
  List.map
    (fun (a : Atom.t) ->
      ( a.Atom.pred,
        List.map
          (function
            | Term.Cst c -> c
            | Term.Var _ -> invalid_arg "Persist: non-ground fact in database")
          a.Atom.args ))
    (Database.facts db)

let snapshot_of ?base ?stats cat =
  let views = Catalog.views cat in
  let index_of =
    let tbl = Hashtbl.create (List.length views) in
    List.iteri (fun i v -> Hashtbl.replace tbl (View.name v) i) views;
    fun v -> Hashtbl.find tbl (View.name v)
  in
  {
    Snapshot.seq = 0;
    generation = Catalog.generation cat;
    views = List.map render_view views;
    classes =
      List.map
        (fun (signature, members) -> (signature, List.map index_of members))
        (Catalog.keyed cat);
    base = Option.map facts_of_db base;
    stats = Option.map Vplan_stats.Stats.bindings stats;
  }

let state_of_snapshot (s : Snapshot.t) =
  let* views =
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* v = view_of_text text in
        Ok (v :: acc))
      (Ok []) s.Snapshot.views
  in
  let views = Array.of_list (List.rev views) in
  let* keyed =
    List.fold_left
      (fun acc (signature, members) ->
        let* acc = acc in
        Ok ((signature, List.map (fun i -> views.(i)) members) :: acc))
      (Ok []) s.Snapshot.classes
  in
  let* cat =
    Catalog.restore ~generation:s.Snapshot.generation
      ~views:(Array.to_list views) ~keyed:(List.rev keyed)
  in
  Ok
    ( cat,
      Option.map Database.of_facts s.Snapshot.base,
      Option.map Vplan_stats.Stats.of_bindings s.Snapshot.stats )

let add_views_batch cat vs =
  match cat with
  | Some cat ->
      let* cat = Catalog.add_views cat vs in
      Ok (Some cat)
  | None -> (
      match Catalog.create vs with
      | Ok cat -> Ok (Some cat)
      | Error e -> Error e)

let apply_op (cat, base) = function
  | Record.Add_view text ->
      let* v = view_of_text text in
      let* cat = add_views_batch cat [ v ] in
      Ok (cat, base)
  | Record.Remove_view name -> (
      match cat with
      | None -> Error ("replay: remove " ^ name ^ " with no catalog")
      | Some c ->
          let* c = Catalog.remove_views c [ name ] in
          Ok (Some c, base))
  | Record.Load_data facts -> Ok (cat, Some (Database.of_facts facts))

(* Consecutive adds are grouped into one [add_views] call: replaying a
   thousand-view journal costs one incremental grouping pass, not a
   thousand.  Generations advance once per batch, so a recovered
   generation may be below the pre-crash one; it is still monotone
   within the process, which is all the caches key on. *)
let replay state ops =
  let flush (cat, base) pending =
    match List.rev pending with
    | [] -> Ok (cat, base)
    | vs ->
        let* cat = add_views_batch cat vs in
        Ok (cat, base)
  in
  let* state, pending, n =
    List.fold_left
      (fun acc (_, op) ->
        let* state, pending, n = acc in
        match op with
        | Record.Add_view text ->
            let* v = view_of_text text in
            Ok (state, v :: pending, n + 1)
        | op ->
            let* state = flush state pending in
            let* state = apply_op state op in
            Ok (state, [], n + 1))
      (Ok (state, [], 0))
      ops
  in
  let* cat, base = flush state pending in
  Ok (cat, base, n)
