(** Glue between the durability layer ({!Vplan_store}) and the service
    semantics: a {!Vplan_store.Snapshot.t} is syntax (rule texts, fact
    tuples, class index lists), a {!Catalog.t} is preprocessed meaning.

    The conversions here define the recovery invariant end to end:
    [state_of_snapshot (snapshot_of cat)] reproduces the catalog —
    same views, same generation, same equivalence-class partition —
    without re-running the grouping, and {!apply_op} replays a journal
    record exactly as the live mutation ran. *)

open Vplan_views
module Database = Vplan_relational.Database
module Snapshot = Vplan_store.Snapshot
module Record = Vplan_store.Record

(** [snapshot_of ?base ?stats cat] renders the catalog (and base
    database and its load-time statistics, when loaded) into snapshot
    parts.  The [seq] field is 0; {!Vplan_store.Store.save} overrides
    it. *)
val snapshot_of :
  ?base:Database.t -> ?stats:Vplan_stats.Stats.t -> Catalog.t -> Snapshot.t

(** [state_of_snapshot s] parses the rule texts back and {!Catalog.restore}s
    the stored partition.  Statistics ride along verbatim — they are
    only meaningful for the snapshot's own base database, so a caller
    that replays a later [Load_data] must discard them. *)
val state_of_snapshot :
  Snapshot.t ->
  ( Catalog.t * Database.t option * Vplan_stats.Stats.t option,
    string )
  result

(** [view_of_text text] parses one journaled rule text. *)
val view_of_text : string -> (View.t, string) result

(** [render_view v] is the parseable rule text journaled for [v]. *)
val render_view : View.t -> string

(** [apply_op (cat, base) op] replays one journal record.  [Add_view]
    onto an absent catalog bootstraps a fresh one — the same behaviour
    the live [catalog add] path has. *)
val apply_op :
  Catalog.t option * Database.t option ->
  Record.op ->
  (Catalog.t option * Database.t option, string) result

(** [replay state ops] folds {!apply_op} over a recovered journal,
    batching consecutive [Add_view] records into one incremental
    grouping pass (generations advance once per batch).  Returns the
    final state and the number of records applied. *)
val replay :
  Catalog.t option * Database.t option ->
  (int * Record.op) list ->
  (Catalog.t option * Database.t option * int, string) result
