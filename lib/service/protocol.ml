(* The line protocol, shared by every front end.  Handlers render into
   a buffer-backed formatter so one request produces one [reply]; the
   stdio loop prints it, the TCP server frames it onto the socket. *)

open Vplan_cq
module Budget = Vplan_core.Budget
module Vplan_error = Vplan_core.Vplan_error
module Database = Vplan_relational.Database
module Subplan = Vplan_cost.Subplan
module Metrics = Vplan_obs.Metrics
module Trace = Vplan_obs.Trace
module Profile = Vplan_obs.Profile
module Recorder = Vplan_obs.Recorder
module Hypergraph = Vplan_hypergraph.Hypergraph
module Store = Vplan_store.Store
module Record = Vplan_store.Record

type shared = {
  mutable service : Service.t option;
  (* serializes catalog/base read-modify-write cycles (add/remove build
     on the current catalog); Service itself is domain-safe *)
  slock : Mutex.t;
  store : Store.t option;
  (* recovery facts frozen at boot, reported by [health] *)
  boot_replayed : int;
  boot_truncated : int;
  domains : int;
  cache_capacity : int;
  d_timeout_ms : float option;
  d_max_steps : int option;
  d_max_covers : int option;
  d_slow_ms : float option;
  d_cost_mode : Service.cost_mode;
  next_trace : int Atomic.t;
}

type session = {
  shared : shared;
  mutable timeout_ms : float option;
  mutable max_steps : int option;
  mutable max_covers : int option;
  mutable slow_ms : float option;
  mutable cost_mode : Service.cost_mode;
}

type reply = { text : string; close : bool }

let create_shared ?(cache_capacity = 512) ?(domains = 1) ?timeout_ms ?max_steps
    ?max_covers ?slow_ms ?(cost_mode = Service.Exact) ?store
    ?(boot_replayed = 0) ?(boot_truncated = 0) () =
  {
    service = None;
    slock = Mutex.create ();
    store;
    boot_replayed;
    boot_truncated;
    domains;
    cache_capacity;
    d_timeout_ms = timeout_ms;
    d_max_steps = max_steps;
    d_max_covers = max_covers;
    d_slow_ms = slow_ms;
    d_cost_mode = cost_mode;
    next_trace = Atomic.make 0;
  }

let new_session shared =
  {
    shared;
    timeout_ms = shared.d_timeout_ms;
    max_steps = shared.d_max_steps;
    max_covers = shared.d_max_covers;
    slow_ms = shared.d_slow_ms;
    cost_mode = shared.d_cost_mode;
  }

let service shared = shared.service
let store shared = shared.store

(* journal-before-ack: every mutation is appended (and fsynced) before
   it becomes visible; [Ok ()] with no store means ephemeral mode *)
let persist shared op =
  match shared.store with None -> Ok () | Some st -> Store.append st op

let mutating shared f =
  Mutex.lock shared.slock;
  Fun.protect ~finally:(fun () -> Mutex.unlock shared.slock) f

let install_catalog shared cat =
  mutating shared (fun () ->
      match shared.service with
      | None ->
          shared.service <-
            Some (Service.create ~cache_capacity:shared.cache_capacity cat)
      | Some s -> Service.set_catalog s cat)

let next_trace_id shared = Atomic.fetch_and_add shared.next_trace 1 + 1

let is_slow (sess : session) ~ms =
  match sess.slow_ms with Some threshold -> ms >= threshold | None -> false

(* One whole line through the shared sink: per-domain [Format.eprintf]
   tears mid-line when worker domains log concurrently. *)
let slow_log (sess : session) ~trace ~ms detail =
  if is_slow sess ~ms then
    Recorder.log_line (Printf.sprintf "slow trace=%d ms=%.3f %s" trace ms detail)

(* Requests are traced per worker domain ([Trace.run_scoped]) only while
   a slow-query threshold is armed: a request that crosses it retains
   its whole span tree in the flight recorder instead of one log
   line. *)
let traced_if_armed (sess : session) f =
  if sess.slow_ms <> None then Trace.run_scoped f else (f (), [])

let classification_of (query : Query.t) =
  match Hypergraph.classify query.Query.body with
  | Hypergraph.Acyclic _ -> "acyclic"
  | Hypergraph.Cyclic -> "cyclic"

let mode_string = function
  | Service.Exact -> "exact"
  | Service.Estimated -> "estimated"

let err ppf fmt =
  Format.kasprintf (fun s -> Format.fprintf ppf "err %s@." s) fmt

let help ppf =
  Format.fprintf ppf
    "commands: catalog load FILE | catalog add <rule>. | catalog remove NAME\n\
    \          rewrite <rule>. | batch N | data load FILE | plan <rule>.\n\
    \          explain [analyze] <rule>. | stats [--json] | metrics\n\
    \          recorder dump [--json] | recorder grep SUBSTRING\n\
    \          trace dump ID | save | health\n\
    \          set timeout MS | set max-steps N | set max-covers N\n\
    \          set slow-ms MS | set cost-mode exact|estimated | set off\n\
    \          help | quit@."

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A fresh budget per request: one adversarial query cannot stall a
   worker forever, and deadlines start when the request is picked up. *)
let fresh_budget (sess : session) =
  if sess.timeout_ms = None && sess.max_steps = None then None
  else
    Some
      (Budget.create ?deadline_ms:sess.timeout_ms ?max_steps:sess.max_steps ())

let with_service shared ppf f =
  match shared.service with
  | None -> err ppf "no catalog loaded (use: catalog load FILE)"
  | Some s -> f s

let pp_catalog_line ppf cat =
  Format.fprintf ppf "ok catalog generation=%d views=%d classes=%d@."
    (Catalog.generation cat) (Catalog.num_views cat) (Catalog.num_classes cat)

let set_or_create_service shared cat =
  match shared.service with
  | Some s -> Service.set_catalog s cat
  | None ->
      shared.service <-
        Some (Service.create ~cache_capacity:shared.cache_capacity cat)

(* Replacing the whole catalog is compaction, not a journal record: the
   new state does not build on the old one, so it goes straight into a
   snapshot (which also truncates the journal). *)
let snapshot_now shared =
  match (shared.store, shared.service) with
  | None, _ | _, None -> Ok ()
  | Some st, Some s ->
      Store.save st
        (Persist.snapshot_of ?base:(Service.base s)
           ?stats:(Service.base_stats s) (Service.catalog s))

let cmd_catalog_load shared ppf path =
  match Parser.parse_program (read_file path) with
  | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
  | exception Sys_error e -> err ppf "%s" e
  | Ok views -> (
      match Catalog.create views with
      | Error e -> err ppf "%s" e
      | Ok cat -> (
          let outcome =
            mutating shared (fun () ->
                set_or_create_service shared cat;
                snapshot_now shared)
          in
          match outcome with
          | Error e -> err ppf "readonly: %s" e
          | Ok () -> pp_catalog_line ppf cat))

let cmd_catalog_add shared ppf rest =
  match Parser.parse_rule rest with
  | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
  | Ok v -> (
      (* the read-modify-write is serialized so concurrent adds both
         land, whichever order they arrive in; an add on an empty
         server bootstraps a one-view catalog (replay does the same) *)
      let outcome =
        mutating shared (fun () ->
            let next =
              match shared.service with
              | Some s -> Catalog.add_views (Service.catalog s) [ v ]
              | None -> Catalog.create [ v ]
            in
            match next with
            | Error e -> Error (`Invalid e)
            | Ok cat -> (
                match
                  persist shared (Record.Add_view (Persist.render_view v))
                with
                | Error e -> Error (`Readonly e)
                | Ok () ->
                    set_or_create_service shared cat;
                    Ok cat))
      in
      match outcome with
      | Error (`Invalid e) -> err ppf "%s" e
      | Error (`Readonly e) -> err ppf "readonly: %s" e
      | Ok cat -> pp_catalog_line ppf cat)

let cmd_catalog_remove shared ppf name =
  with_service shared ppf (fun s ->
      let outcome =
        mutating shared (fun () ->
            match Catalog.remove_views (Service.catalog s) [ name ] with
            | Error e -> Error (`Invalid e)
            | Ok cat -> (
                match persist shared (Record.Remove_view name) with
                | Error e -> Error (`Readonly e)
                | Ok () ->
                    Service.set_catalog s cat;
                    Ok cat))
      in
      match outcome with
      | Error (`Invalid e) -> err ppf "%s" e
      | Error (`Readonly e) -> err ppf "readonly: %s" e
      | Ok cat -> pp_catalog_line ppf cat)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let cmd_catalog shared ppf rest =
  let sub, arg = split_command rest in
  match sub with
  | "load" when arg <> "" -> cmd_catalog_load shared ppf arg
  | "add" when arg <> "" -> cmd_catalog_add shared ppf arg
  | "remove" when arg <> "" -> cmd_catalog_remove shared ppf arg
  | _ ->
      err ppf "usage: catalog load FILE | catalog add <rule>. | catalog remove NAME"

let print_outcome ?(spans = []) (sess : session) ppf query
    (o : Service.outcome) =
  let source =
    match o.Service.source with
    | Service.Hit -> "hit"
    | Service.Miss -> "miss"
    | Service.Bypass -> "bypass"
  in
  let trace = next_trace_id sess.shared in
  Format.fprintf ppf "ok %d %s trace=%d@."
    (List.length o.Service.rewritings)
    source trace;
  slow_log sess ~trace ~ms:o.Service.ms (Printf.sprintf "source=%s" source);
  let slow = is_slow sess ~ms:o.Service.ms in
  let truncated =
    match o.Service.completeness with
    | Vplan_rewrite.Corecover.Complete -> ""
    | Vplan_rewrite.Corecover.Truncated reason -> Vplan_error.to_string reason
  in
  Recorder.append ~kind:"rewrite" ~trace ~latency_ms:o.Service.ms ~source
    ~mode:(mode_string sess.cost_mode)
    ~classification:(classification_of query)
    ~answers:(List.length o.Service.rewritings)
    ~truncated ~slow
    ~detail:(Atom.to_string query.Query.head)
    ~spans:(if slow then spans else [])
    ();
  List.iter (fun p -> Format.fprintf ppf "%a@." Query.pp p) o.Service.rewritings;
  match o.Service.completeness with
  | Vplan_rewrite.Corecover.Complete -> ()
  | Vplan_rewrite.Corecover.Truncated reason ->
      Format.fprintf ppf "truncated: %s@." (Vplan_error.to_string reason)

let cmd_rewrite (sess : session) ppf rest =
  let shared = sess.shared in
  with_service shared ppf (fun s ->
      match Parser.parse_rule rest with
      | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
      | Ok query ->
          let outcome, spans =
            traced_if_armed sess (fun () ->
                Service.rewrite ?budget:(fresh_budget sess)
                  ?max_covers:sess.max_covers ~domains:shared.domains s query)
          in
          print_outcome ~spans sess ppf query outcome)

let cmd_batch (sess : session) ppf ~read_line rest =
  let shared = sess.shared in
  match int_of_string_opt rest with
  | None | Some 0 -> err ppf "usage: batch N (then N rewrite-request lines)"
  | Some n when n < 0 -> err ppf "usage: batch N (then N rewrite-request lines)"
  | Some n ->
      with_service shared ppf (fun s ->
          let lines = List.init n (fun _ -> read_line ()) in
          let parsed =
            List.filter_map
              (fun line ->
                Option.map (fun l -> Parser.parse_rule (String.trim l)) line)
              lines
          in
          let queries =
            List.filter_map (function Ok q -> Some q | Error _ -> None) parsed
          in
          if List.length parsed < n then err ppf "batch: end of input"
          else if List.length queries < List.length parsed then
            err ppf "batch: every line must be a rule"
          else
            (* the whole batch fans out over the domain pool; answers
               come back in request order *)
            List.iter2
              (print_outcome sess ppf)
              queries
              (Service.rewrite_batch
                 ~make_budget:(fun () -> fresh_budget sess)
                 ?max_covers:sess.max_covers ~domains:shared.domains s queries))

let cmd_data (sess : session) ppf rest =
  let shared = sess.shared in
  let sub, arg = split_command rest in
  match sub with
  | "load" when arg <> "" ->
      with_service shared ppf (fun s ->
          match Parser.parse_facts (read_file arg) with
          | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
          | exception Sys_error e -> err ppf "%s" e
          | Ok facts -> (
              let outcome =
                mutating shared (fun () ->
                    match persist shared (Record.Load_data facts) with
                    | Error e -> Error e
                    | Ok () ->
                        Service.set_base s (Database.of_facts facts);
                        Ok ())
              in
              match outcome with
              | Error e -> err ppf "readonly: %s" e
              | Ok () ->
                  let relations, rows =
                    match Service.base_stats s with
                    | None -> (0, 0)
                    | Some st ->
                        (Vplan_stats.Stats.num_relations st,
                         Vplan_stats.Stats.total_rows st)
                  in
                  Format.fprintf ppf "ok data facts=%d relations=%d rows=%d@."
                    (List.length facts) relations rows))
  | _ -> err ppf "usage: data load FILE"

let cmd_plan (sess : session) ppf rest =
  let shared = sess.shared in
  with_service shared ppf (fun s ->
      match Parser.parse_rule rest with
      | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
      | Ok query -> (
          let outcome, spans =
            traced_if_armed sess (fun () ->
                Service.plan ?budget:(fresh_budget sess)
                  ?max_covers:sess.max_covers ~domains:shared.domains
                  ~cost_mode:sess.cost_mode s query)
          in
          match outcome with
          | None -> Format.fprintf ppf "ok plan none trace=%d@." (next_trace_id shared)
          | Some o ->
              let trace = next_trace_id shared in
              (match o.Service.plan_cost with
              | Service.Cells c ->
                  Format.fprintf ppf "ok plan cost=%d candidates=%d trace=%d@."
                    c o.Service.plan_candidates trace
              | Service.Cells_est c ->
                  Format.fprintf ppf
                    "ok plan mode=estimated cost_est=%.1f candidates=%d trace=%d@."
                    c o.Service.plan_candidates trace);
              slow_log sess ~trace ~ms:o.Service.plan_ms "source=plan";
              let slow = is_slow sess ~ms:o.Service.plan_ms in
              Recorder.append ~kind:"plan" ~trace ~latency_ms:o.Service.plan_ms
                ~mode:(mode_string sess.cost_mode)
                ~classification:(classification_of query)
                ~slow
                ~detail:(Atom.to_string query.Query.head)
                ~spans:(if slow then spans else [])
                ();
              Format.fprintf ppf "%a@." Query.pp o.Service.plan_rewriting;
              Format.fprintf ppf "order: %a@."
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                   Atom.pp)
                o.Service.plan_order))

let accuracy_json accs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (name, (a : Service.rel_accuracy)) ->
           Printf.sprintf "\"%s\":{\"n\":%d,\"mean_q\":%.2f,\"max_q\":%.2f}"
             (Trace.json_escape name) a.Service.acc_samples a.Service.acc_mean_q
             a.Service.acc_max_q)
         accs)
  ^ "}"

let cmd_stats shared ppf rest =
  with_service shared ppf (fun s ->
      let st = Service.stats s in
      let l = st.Service.latency in
      match rest with
      | "--json" ->
          (* one line, so a scraper reads exactly one response line *)
          Format.fprintf ppf
            "{\"generation\":%d,\"views\":%d,\"classes\":%d,\"requests\":%d,\
             \"hits\":%d,\"misses\":%d,\"bypasses\":%d,\"evictions\":%d,\
             \"cache_size\":%d,\"cache_capacity\":%d,\"truncated\":%d,\
             \"plan_requests\":%d,\"analyze_requests\":%d,\
             \"generation_resets\":%d,\
             \"data_relations\":%d,\"data_rows\":%d,\
             \"acyclic_queries\":%d,\"containment_fastpath\":%d,\
             \"containment_fallback\":%d,\
             \"estimate_accuracy\":%s,\
             \"latency\":{\"count\":%d,\"mean_ms\":%.3f,\"p50_ms\":%.3f,\
             \"p95_ms\":%.3f,\"max_ms\":%.3f}}@."
            st.Service.generation st.Service.num_views st.Service.num_view_classes
            st.Service.requests st.Service.hits st.Service.misses
            st.Service.bypasses st.Service.evictions st.Service.cache_size
            st.Service.cache_capacity st.Service.truncated
            st.Service.plan_requests st.Service.analyze_requests
            st.Service.generation_resets
            st.Service.data_relations st.Service.data_rows
            (Metrics.value (Metrics.counter "vplan_acyclic_queries_total"))
            (Metrics.value (Metrics.counter "vplan_containment_fastpath_total"))
            (Metrics.value (Metrics.counter "vplan_containment_fallback_total"))
            (accuracy_json st.Service.estimate_accuracy)
            l.Service.count l.Service.mean_ms l.Service.p50_ms l.Service.p95_ms
            l.Service.max_ms
      | "" ->
          Format.fprintf ppf "generation=%d views=%d classes=%d@."
            st.Service.generation st.Service.num_views st.Service.num_view_classes;
          Format.fprintf ppf "requests=%d hits=%d misses=%d bypasses=%d@."
            st.Service.requests st.Service.hits st.Service.misses
            st.Service.bypasses;
          Format.fprintf ppf "cache size=%d capacity=%d evictions=%d@."
            st.Service.cache_size st.Service.cache_capacity st.Service.evictions;
          Format.fprintf ppf
            "truncated=%d plan-requests=%d analyze-requests=%d \
             generation-resets=%d@."
            st.Service.truncated st.Service.plan_requests
            st.Service.analyze_requests st.Service.generation_resets;
          if Service.base s <> None then
            Format.fprintf ppf "data relations=%d rows=%d@."
              st.Service.data_relations st.Service.data_rows;
          Format.fprintf ppf
            "acyclic queries=%d containment-fastpath=%d \
             containment-fallback=%d@."
            (Metrics.value (Metrics.counter "vplan_acyclic_queries_total"))
            (Metrics.value (Metrics.counter "vplan_containment_fastpath_total"))
            (Metrics.value (Metrics.counter "vplan_containment_fallback_total"));
          List.iter
            (fun (name, (a : Service.rel_accuracy)) ->
              Format.fprintf ppf "estimates %s n=%d mean_q=%.2f max_q=%.2f@."
                name a.Service.acc_samples a.Service.acc_mean_q
                a.Service.acc_max_q)
            st.Service.estimate_accuracy;
          Format.fprintf ppf
            "latency count=%d mean=%.3fms p50=%.3fms p95=%.3fms max=%.3fms@."
            l.Service.count l.Service.mean_ms l.Service.p50_ms l.Service.p95_ms
            l.Service.max_ms
      | _ -> err ppf "usage: stats [--json]")

let cmd_metrics shared ppf =
  with_service shared ppf (fun s ->
      let st = Service.stats s in
      (* gauges reflect current state; set them at scrape time *)
      Metrics.set (Metrics.gauge "vplan_cache_size") st.Service.cache_size;
      Metrics.set (Metrics.gauge "vplan_catalog_generation") st.Service.generation;
      Metrics.set (Metrics.gauge "vplan_catalog_views") st.Service.num_views;
      (match Service.subplan_counters s with
      | None -> ()
      | Some c ->
          Metrics.set (Metrics.gauge "vplan_subplan_memo_size") c.Subplan.size;
          Metrics.set (Metrics.gauge "vplan_subplan_memo_hits") c.Subplan.hits;
          Metrics.set (Metrics.gauge "vplan_subplan_memo_misses") c.Subplan.misses;
          Metrics.set (Metrics.gauge "vplan_subplan_memo_resets") c.Subplan.resets);
      Metrics.dump ppf;
      Format.pp_print_flush ppf ())

(* `explain analyze`: plan, then execute the chosen plan with the
   operator profile attached.  The profile is retained in the flight
   recorder whether or not the request was slow — analyze is explicitly
   diagnostic, so `trace dump <id>` always has something to show. *)
let cmd_analyze (sess : session) ppf rest =
  let shared = sess.shared in
  with_service shared ppf (fun s ->
      match Parser.parse_rule rest with
      | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
      | Ok query -> (
          let outcome, spans =
            traced_if_armed sess (fun () ->
                Service.analyze ?budget:(fresh_budget sess)
                  ?max_covers:sess.max_covers ~domains:shared.domains
                  ~cost_mode:sess.cost_mode s query)
          in
          match outcome with
          | None ->
              Format.fprintf ppf "ok analyze none trace=%d@."
                (next_trace_id shared)
          | Some o ->
              let trace = next_trace_id shared in
              let q =
                if Float.is_nan o.Service.an_qerror then "-"
                else Printf.sprintf "%.2f" o.Service.an_qerror
              in
              (match o.Service.an_cost with
              | Service.Cells c ->
                  Format.fprintf ppf
                    "ok analyze cost=%d candidates=%d answers=%d qerror=%s \
                     class=%s trace=%d@."
                    c o.Service.an_candidates o.Service.an_answers q
                    o.Service.an_classification trace
              | Service.Cells_est c ->
                  Format.fprintf ppf
                    "ok analyze mode=estimated cost_est=%.1f candidates=%d \
                     answers=%d qerror=%s class=%s trace=%d@."
                    c o.Service.an_candidates o.Service.an_answers q
                    o.Service.an_classification trace);
              slow_log sess ~trace ~ms:o.Service.an_ms "source=analyze";
              let slow = is_slow sess ~ms:o.Service.an_ms in
              Recorder.append ~kind:"analyze" ~trace
                ~latency_ms:o.Service.an_ms
                ~mode:(mode_string sess.cost_mode)
                ~classification:o.Service.an_classification
                ~qerror:o.Service.an_qerror ~answers:o.Service.an_answers ~slow
                ~detail:(Atom.to_string query.Query.head)
                ~spans:(if slow then spans else [])
                ~profile:o.Service.an_profile ();
              Format.fprintf ppf "%a@." Query.pp o.Service.an_rewriting;
              Format.fprintf ppf "order: %a@."
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                   Atom.pp)
                o.Service.an_order;
              Format.fprintf ppf "profile:@.%a" Profile.pp_tree
                o.Service.an_profile))

let cmd_explain (sess : session) ppf rest =
  let shared = sess.shared in
  with_service shared ppf (fun s ->
      match Parser.parse_rule rest with
      | Error e -> err ppf "%s" (Vplan_error.parse_to_string e)
      | Ok query ->
          let clock = Budget.create () in
          (* plan exercises the full pipeline (all CoreCover phases plus
             plan selection); without a base database, trace the rewrite
             path instead *)
          let label, spans =
            match Service.base s with
            | Some _ ->
                let outcome, spans =
                  Trace.run (fun () ->
                      Service.plan ?budget:(fresh_budget sess)
                        ?max_covers:sess.max_covers ~domains:shared.domains
                        ~cost_mode:sess.cost_mode s query)
                in
                ((match outcome with Some _ -> "plan" | None -> "plan none"), spans)
            | None ->
                let outcome, spans =
                  Trace.run (fun () ->
                      Service.rewrite ?budget:(fresh_budget sess)
                        ?max_covers:sess.max_covers ~domains:shared.domains s
                        query)
                in
                ( Printf.sprintf "rewrite %d"
                    (List.length outcome.Service.rewritings),
                  spans )
          in
          let ms = Budget.elapsed_ms clock in
          Format.fprintf ppf "ok explain %s request=%.3fms traced=%.3fms spans=%d@."
            label ms
            (Trace.top_level_total spans)
            (List.length spans);
          (match Hypergraph.classify query.Query.body with
          | Hypergraph.Cyclic -> Format.fprintf ppf "classification: cyclic@."
          | Hypergraph.Acyclic t ->
              Format.fprintf ppf "classification: acyclic@.";
              if t.Hypergraph.root >= 0 then
                Format.fprintf ppf "join tree:@.%a@." Hypergraph.pp_tree t);
          Format.fprintf ppf "%a" Trace.pp_tree spans)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + m <= n do
      if String.sub s !i m = sub then found := true else incr i
    done;
    !found
  end

(* the recorder is process-global, so these answer even before a
   catalog loads — a recorder dump must work on a wedged server *)
let cmd_recorder ppf rest =
  let sub, arg = split_command rest in
  match (sub, arg) with
  | "dump", "" ->
      let records = Recorder.dump () in
      Format.fprintf ppf "ok recorder records=%d capacity=%d@."
        (List.length records) Recorder.capacity;
      List.iter (fun r -> Format.fprintf ppf "%s@." (Recorder.render r)) records
  | "dump", "--json" ->
      let records = Recorder.dump () in
      Format.fprintf ppf "[%s]@."
        (String.concat "," (List.map Recorder.to_json records))
  | "grep", needle when needle <> "" ->
      let hits =
        List.filter
          (fun r -> contains_sub (Recorder.render r) needle)
          (Recorder.dump ())
      in
      Format.fprintf ppf "ok recorder matched=%d@." (List.length hits);
      List.iter (fun r -> Format.fprintf ppf "%s@." (Recorder.render r)) hits
  | _ -> err ppf "usage: recorder dump [--json] | recorder grep SUBSTRING"

let cmd_trace ppf rest =
  let sub, arg = split_command rest in
  match (sub, int_of_string_opt arg) with
  | "dump", Some id -> (
      match Recorder.find_trace id with
      | None -> err ppf "no recorded request with trace=%d" id
      | Some r ->
          let extra =
            match r.Recorder.profile with
            | None -> []
            | Some p -> Profile.chrome_events p
          in
          if r.Recorder.spans = [] && extra = [] then
            err ppf
              "trace %d retained no spans or profile (spans are kept for \
               slow requests — set slow-ms — and profiles for explain \
               analyze)"
              id
          else
            Format.fprintf ppf "%s@." (Trace.chrome_json ~extra r.Recorder.spans))
  | _ -> err ppf "usage: trace dump ID"

let cmd_save shared ppf =
  match shared.store with
  | None -> err ppf "no data dir (start the server with --data-dir DIR)"
  | Some st ->
      with_service shared ppf (fun _ ->
          match mutating shared (fun () -> snapshot_now shared) with
          | Error e -> err ppf "readonly: %s" e
          | Ok () ->
              Format.fprintf ppf "ok saved seq=%d journal_records=%d@."
                (Store.last_seq st) (Store.journal_records st))

(* One line, always answerable — even with no catalog and no store —
   so probes can watch a server come up and degrade. *)
let cmd_health shared ppf =
  let generation, views =
    match shared.service with
    | None -> (0, 0)
    | Some s ->
        let cat = Service.catalog s in
        (Catalog.generation cat, Catalog.num_views cat)
  in
  (* data columns appear only once a base database is resident, so the
     line stays byte-stable for servers that never load data *)
  let data =
    match shared.service with
    | Some s when Service.base s <> None ->
        let st = Service.stats s in
        Printf.sprintf " data_relations=%d data_rows=%d"
          st.Service.data_relations st.Service.data_rows
    | _ -> ""
  in
  match shared.store with
  | None ->
      Format.fprintf ppf "ok health generation=%d views=%d store=ephemeral%s@."
        generation views data
  | Some st ->
      let mode =
        match Store.mode st with
        | Store.Durable -> "durable"
        | Store.Readonly -> "readonly"
      in
      let age =
        match Store.snapshot_age_s st with
        | None -> "none"
        | Some a -> Printf.sprintf "%.0fs" a
      in
      Format.fprintf ppf
        "ok health generation=%d views=%d store=%s snapshot_age=%s \
         replayed=%d truncated_bytes=%d journal_records=%d journal_bytes=%d%s@."
        generation views mode age shared.boot_replayed shared.boot_truncated
        (Store.journal_records st) (Store.journal_bytes st) data

let cmd_set (sess : session) ppf rest =
  match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
  | [ "off" ] ->
      sess.timeout_ms <- None;
      sess.max_steps <- None;
      sess.max_covers <- None;
      sess.slow_ms <- None;
      Format.fprintf ppf "ok budget off@."
  | [ "slow-ms"; ms ] -> (
      match float_of_string_opt ms with
      | Some v when v >= 0. ->
          sess.slow_ms <- Some v;
          Format.fprintf ppf "ok slow-ms=%gms@." v
      | _ -> err ppf "usage: set slow-ms MS")
  | [ "timeout"; ms ] -> (
      match float_of_string_opt ms with
      | Some v when v > 0. ->
          sess.timeout_ms <- Some v;
          Format.fprintf ppf "ok timeout=%gms@." v
      | _ -> err ppf "usage: set timeout MS")
  | [ "max-steps"; n ] -> (
      match int_of_string_opt n with
      | Some v when v > 0 ->
          sess.max_steps <- Some v;
          Format.fprintf ppf "ok max-steps=%d@." v
      | _ -> err ppf "usage: set max-steps N")
  | [ "max-covers"; n ] -> (
      match int_of_string_opt n with
      | Some v when v > 0 ->
          sess.max_covers <- Some v;
          Format.fprintf ppf "ok max-covers=%d@." v
      | _ -> err ppf "usage: set max-covers N")
  | [ "cost-mode"; m ] -> (
      match m with
      | "exact" ->
          sess.cost_mode <- Service.Exact;
          Format.fprintf ppf "ok cost-mode=exact@."
      | "estimated" ->
          sess.cost_mode <- Service.Estimated;
          Format.fprintf ppf "ok cost-mode=estimated@."
      | _ -> err ppf "usage: set cost-mode exact|estimated")
  | _ ->
      err ppf
        "usage: set timeout MS | set max-steps N | set max-covers N | set \
         slow-ms MS | set cost-mode exact|estimated | set off"

let extra_lines line =
  let cmd, rest = split_command (String.trim line) in
  if cmd <> "batch" then 0
  else match int_of_string_opt rest with Some n when n > 0 -> n | _ -> 0

(* [true] = keep the connection; [false] = close after this reply. *)
let dispatch (sess : session) ppf ~read_line line =
  let shared = sess.shared in
  let line = String.trim line in
  if line = "" then true
  else
    let cmd, rest = split_command line in
    match cmd with
    | "quit" | "exit" -> false
    | "help" -> help ppf; true
    | "catalog" -> cmd_catalog shared ppf rest; true
    | "rewrite" -> cmd_rewrite sess ppf rest; true
    | "batch" -> cmd_batch sess ppf ~read_line rest; true
    | "data" -> cmd_data sess ppf rest; true
    | "plan" -> cmd_plan sess ppf rest; true
    | "explain" ->
        let sub, arg = split_command rest in
        if sub = "analyze" && arg <> "" then cmd_analyze sess ppf arg
        else cmd_explain sess ppf rest;
        true
    | "recorder" -> cmd_recorder ppf rest; true
    | "trace" -> cmd_trace ppf rest; true
    | "stats" -> cmd_stats shared ppf rest; true
    | "metrics" -> cmd_metrics shared ppf; true
    | "save" -> cmd_save shared ppf; true
    | "health" -> cmd_health shared ppf; true
    | "set" -> cmd_set sess ppf rest; true
    | other -> err ppf "unknown command %S (try: help)" other; true

let handle shared sess ~read_line line =
  assert (sess.shared == shared);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (* fault containment: a request that raises yields one "err" line and
     the connection (and every other connection) lives on *)
  let keep =
    try dispatch sess ppf ~read_line line with
    | Vplan_error.Error e ->
        err ppf "%s" (Vplan_error.to_string e);
        true
    | Invalid_argument msg | Failure msg | Sys_error msg ->
        err ppf "%s" msg;
        true
  in
  Format.pp_print_flush ppf ();
  { text = Buffer.contents buf; close = not keep }

let handle_lines shared sess lines =
  match lines with
  | [] -> { text = ""; close = false }
  | first :: rest ->
      let remaining = ref rest in
      let read_line () =
        match !remaining with
        | [] -> None
        | l :: tl ->
            remaining := tl;
            Some l
      in
      handle shared sess ~read_line first
