(** A concurrent TCP serving tier for the line protocol.

    One poller domain owns every socket: it accepts connections, reads
    and frames request lines, and applies admission control.  A fixed
    pool of worker domains ({!Vplan_parallel.Pool}) takes framed
    requests off a bounded MPMC queue
    ({!Vplan_parallel.Bounded_queue}), runs the handler, and writes the
    response back — connections are multiplexed onto the pool, never
    one domain per socket, so ten thousand idle clients cost ten
    thousand file descriptors and nothing else.

    {b Ordering.}  At most one request per connection is in flight at a
    time: pipelined lines wait in the connection's buffer until the
    previous response is written, so responses always come back in
    request order and per-session state needs no further locking.

    {b Admission control.}  When the request queue is full, the poller
    answers ["err busy"] immediately instead of queueing — a shed
    request costs microseconds, an unbounded queue costs every later
    client its latency.  Sheds are counted in
    [vplan_requests_shed_total].

    {b Fault containment.}  [SIGPIPE] is ignored; a client that
    disconnects mid-response kills its own connection only
    ([vplan_connection_errors_total]), and a handler exception becomes
    an ["err internal"] response.

    {b Framing.}  Responses on the wire are the handler's text
    terminated by a line containing a single ["."] — the line protocol
    has variable-length multi-line responses, and the terminator is
    what lets a client know one has ended without parsing every
    command.  Empty request lines are ignored.

    {b Drain.}  {!stop} (async-signal-safe; wire it to [SIGTERM])
    closes the listener, lets queued and in-flight requests finish,
    then closes every connection and returns from {!run}. *)

type t

(** One response: body text (the terminator line is appended by the
    server) and whether to close the connection after writing it. *)
type response = { body : string; close : bool }

(** [create ~handler ()] builds a server; no domain is spawned until
    {!run}.

    [handler] is called once per accepted connection and returns that
    connection's request function — the closure is where per-session
    state lives.  The request function receives a complete framed
    request (first line plus any extra lines) and must return its
    response; it runs on a worker domain, so anything it shares must
    be domain-safe.

    [extra_lines line] tells the poller how many lines beyond the
    first the request starting with [line] occupies (0 for every
    single-line command).

    [port] defaults to 0 (ephemeral — read the bound port back with
    {!port}).  [workers] is the pool width (default 2).
    [queue_capacity] bounds the request queue and is the shedding
    threshold (default 128).  [max_requests], when given, is the
    per-connection request budget: a connection that has had that many
    requests {e accepted} gets ["err request budget exhausted"] and is
    closed.

    @raise Unix.Unix_error when the listen socket cannot be bound. *)
val create :
  ?host:string ->
  ?port:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?max_requests:int ->
  ?extra_lines:(string -> int) ->
  handler:(unit -> string list -> response) ->
  unit ->
  t

(** The port actually bound (useful with [~port:0]). *)
val port : t -> int

(** Serve until {!stop}.  Blocks the calling domain (which becomes the
    poller); call from a dedicated domain to run in the background.
    Must be called at most once per {!t}. *)
val run : t -> unit

(** Begin graceful drain: stop accepting, finish queued and in-flight
    requests, close every connection, return from {!run}.  Safe to
    call from any domain and from a signal handler.  Idempotent. *)
val stop : t -> unit
