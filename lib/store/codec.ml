let ( let* ) = Result.bind

(* -- encoding ------------------------------------------------------- *)

let put_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.put_u8";
  Buffer.add_char b (Char.chr v)

let put_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.put_u32";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let put_u63 b v =
  if v < 0 then invalid_arg "Codec.put_u63";
  for shift = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (shift * 8)) land 0xFF))
  done

let put_i63 b v =
  for shift = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v asr (shift * 8)) land 0xFF))
  done

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list put b xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

(* -- decoding ------------------------------------------------------- *)

type reader = { src : string; mutable rpos : int }

let reader ?(pos = 0) src = { src; rpos = pos }
let pos r = r.rpos

let need r n =
  if r.rpos + n > String.length r.src then
    Error
      (Printf.sprintf "short read: need %d bytes at offset %d, have %d" n
         r.rpos (String.length r.src - r.rpos))
  else Ok ()

let get_u8 r =
  let* () = need r 1 in
  let v = Char.code r.src.[r.rpos] in
  r.rpos <- r.rpos + 1;
  Ok v

let get_u32 r =
  let* () = need r 4 in
  let b i = Char.code r.src.[r.rpos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.rpos <- r.rpos + 4;
  Ok v

let get_u63 r =
  let* () = need r 8 in
  let v = ref 0 in
  (* the top bit must be clear: the value was a non-negative OCaml int *)
  if Char.code r.src.[r.rpos] land 0x80 <> 0 then
    Error (Printf.sprintf "u63 out of range at offset %d" r.rpos)
  else begin
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code r.src.[r.rpos + i]
    done;
    r.rpos <- r.rpos + 8;
    Ok !v
  end

let get_i63 r =
  let* () = need r 8 in
  (* 64 written bits collapse into the 63-bit int by natural wrapping;
     the top byte duplicates the sign, so negatives come back exact *)
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code r.src.[r.rpos + i]
  done;
  r.rpos <- r.rpos + 8;
  Ok !v

let get_string r =
  let* n = get_u32 r in
  let* () = need r n in
  let s = String.sub r.src r.rpos n in
  r.rpos <- r.rpos + n;
  Ok s

let get_list get r =
  let* n = get_u32 r in
  let rec go acc k =
    if k = 0 then Ok (List.rev acc)
    else
      let* x = get r in
      go (x :: acc) (k - 1)
  in
  go [] n

let expect_end r =
  if r.rpos = String.length r.src then Ok ()
  else
    Error
      (Printf.sprintf "trailing garbage: %d bytes past end of value"
         (String.length r.src - r.rpos))
