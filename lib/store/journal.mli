(** The write-ahead journal: CRC-framed, fsync-before-ack, torn-tail
    tolerant.

    On disk the journal is a flat sequence of records, each framed as

    {v
      u32 payload length | u32 CRC-32(payload) | payload
      payload = u63 sequence number | op (Record.put_op)
    v}

    {!append} writes the whole frame with one [write] and calls [fsync]
    before returning: when the caller acks its client, the record is on
    stable storage.  {!replay} scans from the start and stops at the
    first frame that is short, fails its CRC, or does not decode — a
    torn tail from a crash mid-write — reporting the byte offset of the
    last good record so the caller can {!truncate_to} it before
    appending again.

    Failpoint sites, armed by the crash-matrix tests
    ({!Vplan_core.Failpoint}):
    - [store.journal.append] — entry; [Io_error] models ENOSPC,
      [Crash] dies before any byte is written
    - [store.journal.append.write] — [Torn n] writes only the first [n]
      bytes of the frame, then dies
    - [store.journal.append.before_fsync] — dies after the full write,
      before [fsync]
    - [store.journal.append.after_fsync] — dies with the record durable
      but the caller's ack unsent *)

type t

(** [open_append path] opens (creating if absent) for appending. *)
val open_append : string -> (t, string) result

(** [append t ~seq op] frames, writes and fsyncs one record.
    [Error _] means the record must be considered {e not} written (the
    file may hold a torn prefix of it; recovery truncates it). *)
val append : t -> seq:int -> Record.op -> (unit, string) result

(** Current size in bytes of the journal file. *)
val bytes : t -> int

val close : t -> unit

type replayed = {
  records : (int * Record.op) list;  (** (seq, op), in file order *)
  valid_bytes : int;  (** offset just past the last good record *)
  total_bytes : int;  (** file size; [> valid_bytes] iff the tail is torn *)
}

(** [replay path] scans the journal; a missing file is an empty journal.
    Never fails on torn or corrupt data — that is truncated tail, not an
    error. *)
val replay : string -> (replayed, string) result

(** [truncate_to path n] cuts the file to [n] bytes (dropping a torn
    tail found by {!replay}). *)
val truncate_to : string -> int -> (unit, string) result
