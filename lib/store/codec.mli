(** Binary encoding primitives shared by the snapshot and the journal.

    Fixed-width big-endian integers and length-prefixed strings — no
    varints, no compression: the formats stay trivially seekable and a
    decoder can always tell "short" from "corrupt".  Decoding never
    raises on malformed input; every reader returns a [result] so torn
    tails and flipped bits surface as values the recovery path can act
    on. *)

(** {1 Encoding} *)

val put_u8 : Buffer.t -> int -> unit

(** 32-bit big-endian; values outside [0, 2^32) are rejected. *)
val put_u32 : Buffer.t -> int -> unit

(** 63-bit non-negative integer in 8 big-endian bytes. *)
val put_u63 : Buffer.t -> int -> unit

(** Signed OCaml int in 8 big-endian two's-complement bytes — the full
    [min_int, max_int] range, unlike {!put_u63}. *)
val put_i63 : Buffer.t -> int -> unit

(** Length-prefixed ([put_u32]) bytes. *)
val put_string : Buffer.t -> string -> unit

(** [put_list put b xs] writes a [put_u32] count then each element. *)
val put_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

(** {1 Decoding} *)

type reader

val reader : ?pos:int -> string -> reader

(** Bytes consumed so far (absolute offset into the source string). *)
val pos : reader -> int

val get_u8 : reader -> (int, string) result
val get_u32 : reader -> (int, string) result
val get_u63 : reader -> (int, string) result
val get_i63 : reader -> (int, string) result
val get_string : reader -> (string, string) result
val get_list : (reader -> ('a, string) result) -> reader -> ('a list, string) result

(** [expect_end r] fails when trailing bytes remain — a decoded value
    must account for its whole payload. *)
val expect_end : reader -> (unit, string) result

(** {1 Combinators} *)

(** Monadic bind on decode results, for chaining readers. *)
val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
