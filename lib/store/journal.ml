module Failpoint = Vplan_core.Failpoint

let ( let* ) = Result.bind

type t = { fd : Unix.file_descr; mutable size : int }

let io_error ctx e =
  Error (Printf.sprintf "journal %s: %s" ctx (Unix.error_message e))

let open_append path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 with
  | fd ->
      let size = (Unix.fstat fd).Unix.st_size in
      Ok { fd; size }
  | exception Unix.Unix_error (e, _, _) -> io_error "open" e

let bytes t = t.size

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let encode_frame ~seq op =
  let payload = Buffer.create 64 in
  Codec.put_u63 payload seq;
  Record.put_op payload op;
  let payload = Buffer.contents payload in
  let frame = Buffer.create (String.length payload + 8) in
  Codec.put_u32 frame (String.length payload);
  Codec.put_u32 frame (Crc32.digest payload);
  Buffer.add_string frame payload;
  Buffer.contents frame

let write_fully fd data =
  let b = Bytes.of_string data in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let append t ~seq op =
  match Failpoint.hit "store.journal.append" with
  | Some (Failpoint.Io_error msg) -> Error ("journal append: " ^ msg)
  | Some (Failpoint.Torn _) | Some Failpoint.Crash | None -> (
      let frame = encode_frame ~seq op in
      (match Failpoint.hit "store.journal.append.write" with
      | Some (Failpoint.Torn n) ->
          (* a write the kernel accepted but the process never finished:
             leave exactly [n] bytes of the frame behind, then die *)
          write_fully t.fd
            (String.sub frame 0 (min n (String.length frame)));
          Failpoint.crash ()
      | Some (Failpoint.Io_error msg) -> failwith ("journal write: " ^ msg)
      | Some Failpoint.Crash | None -> ());
      match write_fully t.fd frame with
      | () -> (
          ignore (Failpoint.hit "store.journal.append.before_fsync");
          match Unix.fsync t.fd with
          | () ->
              t.size <- t.size + String.length frame;
              ignore (Failpoint.hit "store.journal.append.after_fsync");
              Ok ()
          | exception Unix.Unix_error (e, _, _) -> io_error "fsync" e)
      | exception Unix.Unix_error (e, _, _) -> io_error "write" e
      | exception Failure msg -> Error msg)

type replayed = {
  records : (int * Record.op) list;
  valid_bytes : int;
  total_bytes : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay path =
  match read_file path with
  | exception Sys_error _ ->
      if Sys.file_exists path then Error ("journal: cannot read " ^ path)
      else Ok { records = []; valid_bytes = 0; total_bytes = 0 }
  | data ->
      let total = String.length data in
      let rec scan acc pos =
        if pos + 8 > total then (List.rev acc, pos)
        else
          let r = Codec.reader ~pos data in
          match
            let* len = Codec.get_u32 r in
            let* crc = Codec.get_u32 r in
            if pos + 8 + len > total then Error "short payload"
            else if Crc32.digest_sub data ~pos:(pos + 8) ~len <> crc then
              Error "crc mismatch"
            else
              let pr = Codec.reader ~pos:(pos + 8) data in
              let* seq = Codec.get_u63 pr in
              let* op = Record.get_op pr in
              if Codec.pos pr <> pos + 8 + len then Error "payload length mismatch"
              else Ok (seq, op, pos + 8 + len)
          with
          | Ok (seq, op, next) -> scan ((seq, op) :: acc) next
          | Error _ ->
              (* torn or corrupt tail: everything from here on is dropped *)
              (List.rev acc, pos)
      in
      let records, valid_bytes = scan [] 0 in
      Ok { records; valid_bytes; total_bytes = total }

let truncate_to path n =
  match Unix.truncate path n with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "journal truncate: %s" (Unix.error_message e))
