open Vplan_cq
open Codec

type fact = string * Term.const list

type op =
  | Add_view of string
  | Remove_view of string
  | Load_data of fact list

let put_const b = function
  | Term.Int n ->
      put_u8 b 0;
      put_i63 b n
  | Term.Str s ->
      put_u8 b 1;
      put_string b s

let get_const r =
  let* tag = get_u8 r in
  match tag with
  | 0 ->
      let* n = get_i63 r in
      Ok (Term.Int n)
  | 1 ->
      let* s = get_string r in
      Ok (Term.Str s)
  | t -> Error (Printf.sprintf "unknown constant tag %d" t)

let put_fact b (pred, consts) =
  put_string b pred;
  put_list put_const b consts

let get_fact r =
  let* pred = get_string r in
  let* consts = get_list get_const r in
  Ok (pred, consts)

let put_op b = function
  | Add_view text ->
      put_u8 b 0;
      put_string b text
  | Remove_view name ->
      put_u8 b 1;
      put_string b name
  | Load_data facts ->
      put_u8 b 2;
      put_list put_fact b facts

let get_op r =
  let* tag = get_u8 r in
  match tag with
  | 0 ->
      let* text = get_string r in
      Ok (Add_view text)
  | 1 ->
      let* name = get_string r in
      Ok (Remove_view name)
  | 2 ->
      let* facts = get_list get_fact r in
      Ok (Load_data facts)
  | t -> Error (Printf.sprintf "unknown op tag %d" t)

let pp_op ppf = function
  | Add_view text -> Format.fprintf ppf "add %s" text
  | Remove_view name -> Format.fprintf ppf "remove %s" name
  | Load_data facts -> Format.fprintf ppf "data (%d facts)" (List.length facts)
