module Metrics = Vplan_obs.Metrics

let degraded_gauge = Metrics.gauge "vplan_store_degraded"
let appends_total = Metrics.counter "vplan_store_journal_appends_total"
let append_errors_total = Metrics.counter "vplan_store_append_errors_total"
let snapshots_total = Metrics.counter "vplan_store_snapshots_total"

let snapshot_file = "snapshot.vps"
let journal_file = "journal.vpj"

type mode = Durable | Readonly

type recovery = {
  r_snapshot : Snapshot.t option;
  r_replayed : (int * Record.op) list;
  r_journal_records : int;
  r_truncated_bytes : int;
  r_snapshot_age_s : float;
}

type t = {
  sdir : string;
  lock : Mutex.t;  (* serializes append/save/mode flips *)
  mutable journal : Journal.t option;  (* None once closed *)
  mutable smode : mode;
  mutable reason : string option;
  mutable seq : int;  (* last seq written or recovered *)
  mutable records : int;  (* journal records since the snapshot *)
}

let dir t = t.sdir
let mode t = t.smode
let last_seq t = t.seq
let journal_records t = t.records

let journal_bytes t =
  match t.journal with Some j -> Journal.bytes j | None -> 0

let degraded_reason t = t.reason

let snapshot_age_s t =
  match Unix.stat (Filename.concat t.sdir snapshot_file) with
  | st -> Some (Float.max 0. (Unix.gettimeofday () -. st.Unix.st_mtime))
  | exception Unix.Unix_error (_, _, _) -> None

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let degrade_unlocked t ~reason =
  if t.smode = Durable then begin
    t.smode <- Readonly;
    t.reason <- Some reason;
    Metrics.set degraded_gauge 1
  end

let degrade t ~reason = locked t (fun () -> degrade_unlocked t ~reason)

let ( let* ) = Result.bind

let open_dir sdir =
  let* () =
    match Sys.is_directory sdir with
    | true -> Ok ()
    | false -> Error (sdir ^ " exists and is not a directory")
    | exception Sys_error _ -> (
        match Unix.mkdir sdir 0o755 with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot create %s: %s" sdir (Unix.error_message e)))
  in
  let spath = Filename.concat sdir snapshot_file in
  let jpath = Filename.concat sdir journal_file in
  (* a temp file left by a crash mid-snapshot is garbage by design *)
  (try Sys.remove (spath ^ ".tmp") with Sys_error _ -> ());
  let* snapshot = Snapshot.read spath in
  let* replayed = Journal.replay jpath in
  let* () =
    if replayed.Journal.valid_bytes < replayed.Journal.total_bytes then
      Journal.truncate_to jpath replayed.Journal.valid_bytes
    else Ok ()
  in
  let* journal = Journal.open_append jpath in
  let snap_seq = match snapshot with Some s -> s.Snapshot.seq | None -> 0 in
  (* records at or below the snapshot's seq were compacted into it; a
     crash between snapshot rename and journal truncation leaves them
     behind, and this filter is what makes that window harmless *)
  let to_apply =
    List.filter (fun (seq, _) -> seq > snap_seq) replayed.Journal.records
  in
  let last_seq =
    List.fold_left (fun acc (seq, _) -> max acc seq) snap_seq
      replayed.Journal.records
  in
  let age =
    match snapshot with
    | None -> 0.
    | Some _ -> (
        match Unix.stat spath with
        | st -> Float.max 0. (Unix.gettimeofday () -. st.Unix.st_mtime)
        | exception Unix.Unix_error (_, _, _) -> 0.)
  in
  Metrics.set degraded_gauge 0;
  Ok
    ( {
        sdir;
        lock = Mutex.create ();
        journal = Some journal;
        smode = Durable;
        reason = None;
        seq = last_seq;
        records = List.length to_apply;
      },
      {
        r_snapshot = snapshot;
        r_replayed = to_apply;
        r_journal_records = List.length replayed.Journal.records;
        r_truncated_bytes =
          replayed.Journal.total_bytes - replayed.Journal.valid_bytes;
        r_snapshot_age_s = age;
      } )

let append t op =
  locked t (fun () ->
      match (t.smode, t.journal) with
      | Readonly, _ ->
          Error
            ("store is readonly: "
            ^ Option.value ~default:"degraded" t.reason)
      | Durable, None -> Error "store is closed"
      | Durable, Some j -> (
          let seq = t.seq + 1 in
          match Journal.append j ~seq op with
          | Ok () ->
              t.seq <- seq;
              t.records <- t.records + 1;
              Metrics.incr appends_total;
              Ok ()
          | Error msg ->
              Metrics.incr append_errors_total;
              degrade_unlocked t ~reason:msg;
              Error msg))

let save t snapshot =
  locked t (fun () ->
      match t.smode with
      | Readonly ->
          Error
            ("store is readonly: "
            ^ Option.value ~default:"degraded" t.reason)
      | Durable -> (
          let snapshot = { snapshot with Snapshot.seq = t.seq } in
          match Snapshot.write ~dir:t.sdir ~file:snapshot_file snapshot with
          | Error msg ->
              degrade_unlocked t ~reason:msg;
              Error msg
          | Ok () -> (
              Metrics.incr snapshots_total;
              (* from here the snapshot is the truth; the journal's
                 records are duplicates replay will skip by seq *)
              (match t.journal with
              | Some j -> Journal.close j
              | None -> ());
              let jpath = Filename.concat t.sdir journal_file in
              let* () = Journal.truncate_to jpath 0 in
              ignore (Vplan_core.Failpoint.hit "store.compact.after_truncate");
              match Journal.open_append jpath with
              | Ok j ->
                  t.journal <- Some j;
                  t.records <- 0;
                  Ok ()
              | Error msg ->
                  t.journal <- None;
                  degrade_unlocked t ~reason:msg;
                  Error msg)))

let close t =
  locked t (fun () ->
      match t.journal with
      | Some j ->
          Journal.close j;
          t.journal <- None
      | None -> ())
