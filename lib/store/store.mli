(** The durability layer: one directory holding a snapshot and a
    write-ahead journal, with an explicit degraded mode.

    Layout of a data directory:
    - [snapshot.vps] — the last-good snapshot ({!Snapshot}), replaced
      atomically by {!save}
    - [journal.vpj] — mutations since that snapshot ({!Journal}),
      fsynced by {!append} before the server acks, truncated by
      {!save}

    The correctness claim, exercised by the crash-matrix tests: kill
    the process at {e any} instruction, reopen the directory, and the
    recovered state is the last snapshot plus a prefix of the journal
    that contains every acked mutation — nothing acked is lost, and
    nothing torn is replayed.

    Write failures at runtime (ENOSPC, I/O errors, armed failpoints) do
    not kill the process: the store flips to {!Readonly}, the
    [vplan_store_degraded] gauge goes to 1, subsequent {!append}/{!save}
    calls return [Error _] (the protocol layer answers [err readonly]),
    and reads keep serving from memory. *)

type mode =
  | Durable  (** journal writable; mutations are persisted before ack *)
  | Readonly
      (** a write failed; mutations are refused, reads keep serving *)

type recovery = {
  r_snapshot : Snapshot.t option;
  r_replayed : (int * Record.op) list;
      (** journal records past the snapshot's sequence number, in order *)
  r_journal_records : int;  (** valid records found in the journal file *)
  r_truncated_bytes : int;  (** torn tail bytes dropped from the journal *)
  r_snapshot_age_s : float;  (** seconds since the snapshot was written; 0 if none *)
}

type t

(** [open_dir dir] creates [dir] if needed, loads the last-good
    snapshot, scans the journal (truncating a torn tail in place), and
    opens the journal for appending.  The caller applies
    [recovery.r_replayed] to the snapshot state. *)
val open_dir : string -> (t * recovery, string) result

val dir : t -> string
val mode : t -> mode

(** Sequence number of the last record written (or recovered); the next
    {!append} uses this plus one. *)
val last_seq : t -> int

(** Journal size in bytes and records appended since the snapshot. *)
val journal_bytes : t -> int

val journal_records : t -> int

(** Seconds since the snapshot file was last written, from a fresh
    [stat]; [None] when no snapshot exists yet. *)
val snapshot_age_s : t -> float option

(** [append t op] journals one mutation, fsync included.  [Ok ()] means
    the op is durable and may be acked.  [Error _] means it is not (and
    the store is now {!Readonly} if the failure was an I/O error). *)
val append : t -> Record.op -> (unit, string) result

(** [save t snapshot] writes the snapshot atomically (its [seq] is
    overridden with {!last_seq}) and then truncates the journal.  A
    crash between the two is safe: replay skips records the snapshot
    already includes. *)
val save : t -> Snapshot.t -> (unit, string) result

(** Force degraded mode (used on recovery-adjacent failures the caller
    detects, and by tests). *)
val degrade : t -> reason:string -> unit

(** The reason the store went readonly, when it did. *)
val degraded_reason : t -> string option

(** Flush and close the journal fd.  Further appends fail. *)
val close : t -> unit
