(** The checksummed, versioned binary snapshot of everything the server
    holds: the preprocessed view catalog (rule texts, the
    signature-keyed equivalence-class partition, the generation
    counter), the base database, and the journal sequence number the
    snapshot includes — replay skips records at or below it, which is
    what makes a crash between snapshot rename and journal truncation
    harmless.

    On disk: an 8-byte magic+version ["VPSNAP02"], a [u32] payload
    length, a [u32] CRC-32 of the payload, then the payload.  {!write}
    goes through a temp file in the same directory, [fsync]s it, renames
    it over the target and [fsync]s the directory — a reader never
    observes anything but the old or the new complete snapshot.

    Failpoint sites: [store.snapshot.write] ([Torn]/[Io_error] on the
    temp-file write), [store.snapshot.before_rename],
    [store.snapshot.after_rename]. *)

type t = {
  seq : int;  (** last journal sequence number included *)
  generation : int;  (** catalog generation at save time *)
  views : string list;  (** parseable rule texts, catalog insertion order *)
  classes : (string * int list) list;
      (** signature-keyed equivalence classes; members are indices into
          [views] — the preprocessing a warm restart skips *)
  base : Record.fact list option;  (** base database, when loaded *)
  stats : (string * Vplan_stats.Stats.table) list option;
      (** per-relation statistics collected at load time; persisted so a
          warm restart can serve estimated-mode planning without
          rescanning the base facts *)
}

val encode : t -> string
val decode : string -> (t, string) result

(** [write ~dir ~file t] atomically replaces [dir/file]. *)
val write : dir:string -> file:string -> t -> (unit, string) result

(** [read path] is [Ok None] when no snapshot exists, [Error _] when one
    exists but is unreadable or corrupt — after an atomic [write] that
    means real damage, which must be loud, not silently empty. *)
val read : string -> (t option, string) result
