(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).

    Every persistent byte the store writes travels under one of these
    checksums: the snapshot payload and each journal record.  On read, a
    mismatch means a torn or corrupted write — the snapshot is rejected,
    the journal is truncated at the first bad record. *)

(** [digest s] is the CRC-32 of the whole string, as a non-negative
    [int] (fits in 32 bits). *)
val digest : string -> int

(** [digest_sub s ~pos ~len] checksums a slice without copying it. *)
val digest_sub : string -> pos:int -> len:int -> int
