module Failpoint = Vplan_core.Failpoint
open Codec

module Stats = Vplan_stats.Stats
module Histogram = Vplan_stats.Histogram

type t = {
  seq : int;
  generation : int;
  views : string list;
  classes : (string * int list) list;
  base : Record.fact list option;
  stats : (string * Stats.table) list option;
}

let magic = "VPSNAP02"

let put_histogram b (h : Histogram.t) =
  put_i63 b h.Histogram.lo;
  put_u63 b h.Histogram.width;
  put_list put_u63 b (Array.to_list h.Histogram.counts);
  put_u63 b h.Histogram.total

let get_histogram r =
  let* lo = get_i63 r in
  let* width = get_u63 r in
  let* counts = get_list get_u63 r in
  let* total = get_u63 r in
  if width < 1 then Error "snapshot: histogram bucket width < 1"
  else if counts = [] then Error "snapshot: histogram with no buckets"
  else
    Ok { Histogram.lo; width; counts = Array.of_list counts; total }

let put_column b (c : Stats.column) =
  put_u63 b c.Stats.distinct;
  match c.Stats.hist with
  | None -> put_u8 b 0
  | Some h ->
      put_u8 b 1;
      put_histogram b h

let get_column r =
  let* distinct = get_u63 r in
  let* tag = get_u8 r in
  let* hist =
    match tag with
    | 0 -> Ok None
    | 1 ->
        let* h = get_histogram r in
        Ok (Some h)
    | t -> Error (Printf.sprintf "snapshot: unknown histogram tag %d" t)
  in
  Ok { Stats.distinct; hist }

let put_table b (name, (t : Stats.table)) =
  put_string b name;
  put_u63 b t.Stats.card;
  put_list put_column b (Array.to_list t.Stats.columns)

let get_table r =
  let* name = get_string r in
  let* card = get_u63 r in
  let* columns = get_list get_column r in
  Ok (name, { Stats.card; columns = Array.of_list columns })

let encode t =
  let b = Buffer.create 4096 in
  put_u63 b t.seq;
  put_u63 b t.generation;
  put_list put_string b t.views;
  put_list
    (fun b (signature, members) ->
      put_string b signature;
      put_list put_u32 b members)
    b t.classes;
  (match t.base with
  | None -> put_u8 b 0
  | Some facts ->
      put_u8 b 1;
      put_list Record.put_fact b facts);
  (match t.stats with
  | None -> put_u8 b 0
  | Some tables ->
      put_u8 b 1;
      put_list put_table b tables);
  let payload = Buffer.contents b in
  let out = Buffer.create (String.length payload + 16) in
  Buffer.add_string out magic;
  put_u32 out (String.length payload);
  put_u32 out (Crc32.digest payload);
  Buffer.add_string out payload;
  Buffer.contents out

let decode data =
  if String.length data < 16 then Error "snapshot: truncated header"
  else if String.sub data 0 8 <> magic then
    Error "snapshot: bad magic (not a vplan snapshot, or unknown version)"
  else begin
    let hdr = Codec.reader ~pos:8 data in
    let* len = get_u32 hdr in
    let* crc = get_u32 hdr in
    if 16 + len <> String.length data then
      Error
        (Printf.sprintf "snapshot: payload length %d does not match file size %d"
           len (String.length data))
    else if Crc32.digest_sub data ~pos:16 ~len <> crc then
      Error "snapshot: checksum mismatch (torn or corrupted write)"
    else
      let r = Codec.reader ~pos:16 data in
      let* seq = get_u63 r in
      let* generation = get_u63 r in
      let* views = get_list get_string r in
      let* classes =
        get_list
          (fun r ->
            let* signature = get_string r in
            let* members = get_list get_u32 r in
            Ok (signature, members))
          r
      in
      let* base_tag = get_u8 r in
      let* base =
        match base_tag with
        | 0 -> Ok None
        | 1 ->
            let* facts = get_list Record.get_fact r in
            Ok (Some facts)
        | t -> Error (Printf.sprintf "snapshot: unknown base tag %d" t)
      in
      let* stats_tag = get_u8 r in
      let* stats =
        match stats_tag with
        | 0 -> Ok None
        | 1 ->
            let* tables = get_list get_table r in
            Ok (Some tables)
        | t -> Error (Printf.sprintf "snapshot: unknown stats tag %d" t)
      in
      let* () = expect_end r in
      let n = List.length views in
      if
        List.exists (fun (_, members) -> List.exists (fun i -> i >= n) members)
          classes
      then Error "snapshot: class member index out of range"
      else Ok { seq; generation; views; classes; base; stats }
  end

(* -- atomic file replacement ---------------------------------------- *)

let write_fully fd data =
  let b = Bytes.of_string data in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

let write ~dir ~file t =
  let data = encode t in
  let target = Filename.concat dir file in
  let tmp = target ^ ".tmp" in
  match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "snapshot: open %s: %s" tmp (Unix.error_message e))
  | fd -> (
      let result =
        match Failpoint.hit "store.snapshot.write" with
        | Some (Failpoint.Torn n) ->
            (* a half-written temp file; the target is never touched *)
            write_fully fd (String.sub data 0 (min n (String.length data)));
            Failpoint.crash ()
        | Some (Failpoint.Io_error msg) -> Error ("snapshot write: " ^ msg)
        | Some Failpoint.Crash | None -> (
            match write_fully fd data with
            | () -> (
                match Unix.fsync fd with
                | () -> Ok ()
                | exception Unix.Unix_error (e, _, _) ->
                    Error
                      (Printf.sprintf "snapshot fsync: %s" (Unix.error_message e)))
            | exception Unix.Unix_error (e, _, _) ->
                Error (Printf.sprintf "snapshot write: %s" (Unix.error_message e)))
      in
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      match result with
      | Error _ as e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          e
      | Ok () -> (
          ignore (Failpoint.hit "store.snapshot.before_rename");
          match Unix.rename tmp target with
          | () ->
              fsync_dir dir;
              ignore (Failpoint.hit "store.snapshot.after_rename");
              Ok ()
          | exception Unix.Unix_error (e, _, _) ->
              (try Sys.remove tmp with Sys_error _ -> ());
              Error (Printf.sprintf "snapshot rename: %s" (Unix.error_message e))))

let read path =
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error ("snapshot: " ^ msg)
    | data -> (
        match decode data with
        | Ok t -> Ok (Some t)
        | Error e -> Error (e ^ " (" ^ path ^ ")"))
