(** Journal record payloads: the catalog mutations the server acks.

    An op is deliberately {e syntactic} — view definitions travel as
    their concrete rule text, facts as (predicate, constants) pairs — so
    the store never depends on the semantic layers above it.  Parsing
    and preprocessing happen on replay, in the service layer; a journal
    written by one build remains readable by the next. *)

open Vplan_cq

type fact = string * Term.const list

type op =
  | Add_view of string  (** parseable rule text, trailing dot included *)
  | Remove_view of string  (** view name *)
  | Load_data of fact list  (** replace the base database with these facts *)

val put_const : Buffer.t -> Term.const -> unit
val get_const : Codec.reader -> (Term.const, string) result
val put_fact : Buffer.t -> fact -> unit
val get_fact : Codec.reader -> (fact, string) result
val put_op : Buffer.t -> op -> unit
val get_op : Codec.reader -> (op, string) result

val pp_op : Format.formatter -> op -> unit
