open Vplan_cq
open Vplan_relational

(* Columnar image of a Database.t: constants are interned to dense int
   codes once per load, and each relation's tuples live in one flat
   row-major int array.  A tuple value is two adds and a load away, with
   no per-tuple boxing — the representation the hash-join inner loops
   iterate over. *)

type rel = {
  arity : int;
  rows : int;
  data : int array;  (* data.(row * arity + col) = interned constant *)
}

type t = {
  db : Database.t;
  const_ids : (Term.const, int) Hashtbl.t;
  consts : Term.const array;  (* code -> constant *)
  rels : (string, rel) Hashtbl.t;
}

let database t = t.db
let const_id t c = Hashtbl.find_opt t.const_ids c
let const t id = t.consts.(id)
let num_consts t = Array.length t.consts
let find t name = Hashtbl.find_opt t.rels name

let get r row col = r.data.((row * r.arity) + col)

let tuple_of_row t r row =
  List.init r.arity (fun col -> t.consts.(get r row col))

let of_database db =
  let const_ids = Hashtbl.create 256 in
  let rev_consts = ref [] in
  let n_consts = ref 0 in
  let intern c =
    match Hashtbl.find_opt const_ids c with
    | Some id -> id
    | None ->
        let id = !n_consts in
        Hashtbl.add const_ids c id;
        rev_consts := c :: !rev_consts;
        incr n_consts;
        id
  in
  let rels = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let r = Database.find_exn name db in
      let arity = Relation.arity r in
      let rows = Relation.cardinality r in
      let data = Array.make (max 1 (rows * arity)) 0 in
      let next = ref 0 in
      Relation.iter
        (fun tuple ->
          List.iter
            (fun c ->
              data.(!next) <- intern c;
              incr next)
            tuple)
        r;
      Hashtbl.add rels name { arity; rows; data })
    (Database.predicates db);
  { db; const_ids; consts = Array.of_list (List.rev !rev_consts); rels }
