(** Interned, columnar relation storage for the hash-join engine.

    Constants are interned to dense integer codes once per load; each
    relation's tuples are stored in a single flat row-major int array.
    The representation is immutable after {!of_database}. *)

open Vplan_cq
open Vplan_relational

type rel = {
  arity : int;
  rows : int;
  data : int array;  (** [data.(row * arity + col)] = interned constant *)
}

type t

val of_database : Database.t -> t

(** The database this image was built from. *)
val database : t -> Database.t

(** [const_id t c] — the dense code of [c], or [None] if [c] does not
    occur anywhere in the database (no tuple can match it). *)
val const_id : t -> Term.const -> int option

(** [const t id] — the constant behind a code. *)
val const : t -> int -> Term.const

val num_consts : t -> int

(** [find t pred] — the stored relation named [pred]. *)
val find : t -> string -> rel option

(** [get r row col] — per-column accessor into the flat array. *)
val get : rel -> int -> int -> int

(** [tuple_of_row t r row] decodes a stored row back to constants. *)
val tuple_of_row : t -> rel -> int -> Relation.tuple
