(** Hash-join evaluation of conjunctive queries over interned, columnar
    relations.

    Acyclic bodies (GYO classification, {!Vplan_hypergraph.Hypergraph})
    take the Yannakakis fast path: atoms are joined in join-tree order
    after a bottom-up then top-down semi-join program that leaves every
    selection globally dangling-free in 2(n-1) passes, so intermediate
    join results are bounded by input plus output size.  Cyclic bodies
    fall back to the general path with zero behavior change: the
    backtracking evaluator's static schedule
    ({!Vplan_relational.Eval.schedule}) and, when the head projects
    variables away, the O(n²) pairwise semi-join reduction.  Each step
    is a build/probe hash join keyed on the variables shared between
    the accumulated environments and the next atom; build sides larger
    than the radix threshold are grace-partitioned on the key hash.
    [answers] agrees with [Eval.answers] on every query and in every
    path configuration (the QCheck oracle properties in
    [test/test_exec.ml] and [test/test_hypergraph.ml]).

    Instrumentation: the whole evaluation runs under an [Obs] phase
    ["hash_join"] (the pairwise reduction under ["semijoin"], the
    Yannakakis program under ["yannakakis"]), and the counters
    [vplan_join_build_rows], [vplan_join_probe_rows],
    [vplan_join_partitions_total], [vplan_acyclic_queries_total] and
    [vplan_semijoin_rows_pruned_total] account rows entering builds,
    probes issued, radix partitions created, fast-path evaluations
    taken, and rows dropped by semi-join passes.  When a [Budget] is
    supplied, one step is charged per probe and per produced row, so a
    step limit truncates evaluation mid-probe with the usual
    [Vplan_error]. *)

open Vplan_cq
open Vplan_relational

(** Build sides above this row count are radix-partitioned (default
    65536). *)
val default_radix_threshold : int

(** Number of partitions per radix split. *)
val radix_partitions : int

(** [answers ?budget ?semijoin ?acyclic ?radix_threshold t q] — the
    answer relation of [q] (distinct head tuples), equal to
    [Eval.answers (Interned.database t) q].

    [acyclic] controls the Yannakakis fast path: [Some true] forces it
    whenever the body is acyclic with ≥ 2 atoms, [Some false] forces
    the general path (no classification is even attempted), and the
    default takes it exactly where the pairwise reduction would run —
    acyclic and projection-heavy.  [semijoin] forces the general
    path's pairwise reduction on or off; by default it runs iff the
    head has fewer distinct variables than the body.  The two paths
    compute the same relation in every combination.

    [profile] attaches an operator profile: every selection, semi-join
    program, and join step records rows in/out, build-side size, wall
    time and partition counts as a child of the profile's open node (an
    [exec] node wraps the whole evaluation).  [estimate], consulted
    only when profiling, maps the executed prefix of body atoms to an
    estimated join cardinality — recorded as [est_rows] on each select
    ([estimate [a]]) and join node, for estimated-vs-actual comparison
    ([explain analyze]).  Without [profile] (the default), the engine
    runs the exact uninstrumented code paths. *)
val answers :
  ?budget:Vplan_core.Budget.t ->
  ?semijoin:bool ->
  ?acyclic:bool ->
  ?radix_threshold:int ->
  ?profile:Vplan_obs.Profile.t ->
  ?estimate:(Atom.t list -> float) ->
  Interned.t ->
  Query.t ->
  Relation.t
