(** Hash-join evaluation of conjunctive queries over interned, columnar
    relations.

    The join order is the same static schedule the backtracking
    evaluator uses ({!Vplan_relational.Eval.schedule}); each step is a
    build/probe hash join keyed on the variables shared between the
    accumulated environments and the next atom.  Build sides larger
    than the radix threshold are grace-partitioned on the key hash; a
    pairwise semi-join reduction runs first when the head projects most
    body variables away.  [answers] agrees with [Eval.answers] on every
    query (the QCheck oracle property in [test/test_exec.ml]).

    Instrumentation: the whole evaluation runs under an [Obs] phase
    ["hash_join"] (the reduction under ["semijoin"]), and the counters
    [vplan_join_build_rows], [vplan_join_probe_rows] and
    [vplan_join_partitions_total] account rows entering builds, probes
    issued, and radix partitions created.  When a [Budget] is supplied,
    one step is charged per probe and per produced row, so a step limit
    truncates evaluation mid-probe with the usual [Vplan_error]. *)

open Vplan_cq
open Vplan_relational

(** Build sides above this row count are radix-partitioned (default
    65536). *)
val default_radix_threshold : int

(** Number of partitions per radix split. *)
val radix_partitions : int

(** [answers ?budget ?semijoin ?radix_threshold t q] — the answer
    relation of [q] (distinct head tuples), equal to [Eval.answers
    (Interned.database t) q].

    [semijoin] forces the semi-join reduction on or off; by default it
    runs iff the head has fewer distinct variables than the body
    (projection-heavy). *)
val answers :
  ?budget:Vplan_core.Budget.t ->
  ?semijoin:bool ->
  ?radix_threshold:int ->
  Interned.t ->
  Query.t ->
  Relation.t
