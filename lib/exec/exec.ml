open Vplan_cq
open Vplan_relational
module Budget = Vplan_core.Budget
module Obs = Vplan_obs.Obs
module Metrics = Vplan_obs.Metrics
module Profile = Vplan_obs.Profile
module Hypergraph = Vplan_hypergraph.Hypergraph

(* Hash-join evaluation of conjunctive queries over an Interned.t.

   Atoms are joined in the same static order as the backtracking
   evaluator ([Eval.schedule]); each step is a build/probe hash join
   keyed on the variables shared between the accumulated environments
   and the next atom.  Per-atom selections (constants, repeated
   variables) are applied in one pass before joining; oversized build
   sides are radix-partitioned; a pairwise semi-join reduction trims
   selections before any join when the head projects most variables
   away. *)

let build_rows_c = Metrics.counter "vplan_join_build_rows"
let probe_rows_c = Metrics.counter "vplan_join_probe_rows"
let partitions_c = Metrics.counter "vplan_join_partitions_total"
let acyclic_c = Metrics.counter "vplan_acyclic_queries_total"
let semijoin_pruned_c = Metrics.counter "vplan_semijoin_rows_pruned_total"

let default_radix_threshold = 65536

(* 2^4 partitions per oversized build: enough to cut a build side well
   below the threshold again without scattering tiny partitions. *)
let radix_partitions = 16

type carg =
  | Const of int  (* interned constant *)
  | Var of int  (* variable number *)
  | Unmatchable  (* constant absent from the database: no tuple matches *)

type catom = {
  rel : Interned.rel;
  const_checks : (int * int) array;  (* (pos, code) *)
  dup_checks : (int * int) array;  (* (pos, first pos of same var) *)
  key_pairs : (int * int) array;  (* (var, pos): vars bound by earlier atoms *)
  new_vars : (int * int) array;  (* (var, pos): vars first bound here *)
  var_pos : (int * int) array;  (* (var, first pos) for every distinct var *)
}

(* Compilation happens in scheduled order: [bound] accumulates the
   variables the already-compiled prefix binds, which is exactly what
   splits an atom's variables into probe keys and fresh bindings. *)
let compile t var_id bound (a : Atom.t) =
  match Interned.find t a.Atom.pred with
  | None -> None
  | Some rel when rel.Interned.arity <> Atom.arity a -> None
  | Some rel ->
      let args =
        Array.of_list
          (List.map
             (function
               | Term.Cst c -> (
                   match Interned.const_id t c with
                   | Some id -> Const id
                   | None -> Unmatchable)
               | Term.Var x -> Var (var_id x))
             a.Atom.args)
      in
      if
        Array.exists
          (function Unmatchable -> true | Const _ | Var _ -> false)
          args
      then None
      else begin
        let first = Hashtbl.create 8 in
        let const_checks = ref [] and dup_checks = ref [] in
        Array.iteri
          (fun pos arg ->
            match arg with
            | Const id -> const_checks := (pos, id) :: !const_checks
            | Var v -> (
                match Hashtbl.find_opt first v with
                | Some p0 -> dup_checks := (pos, p0) :: !dup_checks
                | None -> Hashtbl.add first v pos)
            | Unmatchable -> ())
          args;
        let key_pairs = ref [] and new_vars = ref [] in
        Array.iteri
          (fun pos arg ->
            match arg with
            | Var v when Hashtbl.find first v = pos ->
                if Hashtbl.mem bound v then key_pairs := (v, pos) :: !key_pairs
                else new_vars := (v, pos) :: !new_vars
            | Var _ | Const _ | Unmatchable -> ())
          args;
        List.iter (fun (v, _) -> Hashtbl.replace bound v ()) !new_vars;
        let key_pairs = Array.of_list (List.rev !key_pairs) in
        let new_vars = Array.of_list (List.rev !new_vars) in
        Some
          {
            rel;
            const_checks = Array.of_list (List.rev !const_checks);
            dup_checks = Array.of_list (List.rev !dup_checks);
            key_pairs;
            new_vars;
            var_pos = Array.append key_pairs new_vars;
          }
      end

(* One pass over the stored relation applying the env-independent checks
   (constants, repeated variables); the surviving row numbers feed every
   later build, probe and semi-join. *)
let select ca =
  let rel = ca.rel in
  let out = ref [] in
  for row = rel.Interned.rows - 1 downto 0 do
    if
      Array.for_all
        (fun (pos, code) -> Interned.get rel row pos = code)
        ca.const_checks
      && Array.for_all
           (fun (pos, p0) -> Interned.get rel row pos = Interned.get rel row p0)
           ca.dup_checks
    then out := row :: !out
  done;
  Array.of_list !out

let hash_key karr = Array.fold_left (fun h x -> (h * 31) + x + 1) 17 karr

let filter_rows f rows =
  let out = ref [] in
  Array.iter (fun r -> if f r then out := r :: !out) rows;
  Array.of_list (List.rev !out)

(* One semi-join pass: filter sels.(i) down to the rows whose
   shared-variable values appear in sels.(j).  The common single shared
   variable hashes raw int codes; only wider keys pay for boxed
   arrays.  Rows dropped are accounted in
   [vplan_semijoin_rows_pruned_total]. *)
let semijoin_pair budget catoms sels i j =
  let map_j = Hashtbl.create 8 in
  Array.iter (fun (v, p) -> Hashtbl.replace map_j v p) catoms.(j).var_pos;
  let shared =
    Array.to_list catoms.(i).var_pos
    |> List.filter_map (fun (v, pi) ->
           match Hashtbl.find_opt map_j v with
           | Some pj -> Some (pi, pj)
           | None -> None)
    |> Array.of_list
  in
  if Array.length shared > 0 then begin
    let before = Array.length sels.(i) in
    let reli = catoms.(i).rel and relj = catoms.(j).rel in
    if Array.length shared = 1 then begin
      let keys = Hashtbl.create (max 16 (Array.length sels.(j))) in
      let pi, pj = shared.(0) in
      Array.iter
        (fun row -> Hashtbl.replace keys (Interned.get relj row pj) ())
        sels.(j);
      sels.(i) <-
        filter_rows
          (fun row ->
            Budget.tick budget;
            Hashtbl.mem keys (Interned.get reli row pi))
          sels.(i)
    end
    else begin
      let keys = Hashtbl.create (max 16 (Array.length sels.(j))) in
      Array.iter
        (fun row ->
          let key = Array.map (fun (_, pj) -> Interned.get relj row pj) shared in
          Hashtbl.replace keys key ())
        sels.(j);
      sels.(i) <-
        filter_rows
          (fun row ->
            Budget.tick budget;
            Hashtbl.mem keys
              (Array.map (fun (pi, _) -> Interned.get reli row pi) shared))
          sels.(i)
    end;
    Metrics.add semijoin_pruned_c (before - Array.length sels.(i))
  end

(* Pairwise semi-join reduction: for every atom pair sharing variables,
   keep only the rows of one atom whose shared-variable values occur in
   the other.  A forward sweep first propagates the selective atoms —
   the schedule puts bound constants first — into the later, larger
   selections; a backward sweep then propagates the shrunken tails into
   the build sides of the first joins. *)
let semijoin_reduce budget catoms sels =
  Obs.phase "semijoin" (fun () ->
      let n = Array.length catoms in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          semijoin_pair budget catoms sels j i
        done
      done;
      for i = n - 2 downto 0 do
        for j = i + 1 to n - 1 do
          semijoin_pair budget catoms sels i j
        done
      done)

(* Full Yannakakis semi-join program over a join tree.  [parent] and
   [removal] index into the compiled-order arrays; [removal] lists
   non-root nodes children-before-parents.  The bottom-up sweep makes
   every parent selection consistent with its whole subtree, the
   top-down sweep then makes every node consistent with the rest of the
   tree: by the running-intersection property the selections are
   globally dangling-free after 2(n-1) passes, where the pairwise
   heuristic spends O(n²) passes without that guarantee. *)
let yannakakis_reduce budget catoms sels ~parent ~removal =
  Obs.phase "yannakakis" (fun () ->
      List.iter
        (fun c ->
          let p = parent.(c) in
          if p >= 0 then semijoin_pair budget catoms sels p c)
        removal;
      List.iter
        (fun c ->
          let p = parent.(c) in
          if p >= 0 then semijoin_pair budget catoms sels c p)
        (List.rev removal))

let extend ca env row =
  let e = Array.copy env in
  Array.iter (fun (v, p) -> e.(v) <- Interned.get ca.rel row p) ca.new_vars;
  e

(* Build a hash table over the selected rows keyed on the shared
   variables, then probe with every accumulated environment.  The
   single-variable key is the common case and probes an int-keyed
   table directly. *)
let build_probe budget ca rows envs out =
  Metrics.add build_rows_c (Array.length rows);
  Metrics.add probe_rows_c (List.length envs);
  let rel = ca.rel in
  let kp = ca.key_pairs in
  if Array.length kp = 1 then begin
    let v0, p0 = kp.(0) in
    let tbl = Hashtbl.create (max 16 (Array.length rows)) in
    Array.iter
      (fun row ->
        let key = Interned.get rel row p0 in
        let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
        Hashtbl.replace tbl key (row :: prev))
      rows;
    List.iter
      (fun env ->
        Budget.tick budget;
        match Hashtbl.find_opt tbl env.(v0) with
        | None -> ()
        | Some matches ->
            List.iter
              (fun row ->
                Budget.tick budget;
                out := extend ca env row :: !out)
              matches)
      envs
  end
  else begin
    let row_key row = Array.map (fun (_, p) -> Interned.get rel row p) kp in
    let env_key env = Array.map (fun (v, _) -> env.(v)) kp in
    let tbl = Hashtbl.create (max 16 (Array.length rows)) in
    Array.iter
      (fun row ->
        let key = row_key row in
        let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
        Hashtbl.replace tbl key (row :: prev))
      rows;
    List.iter
      (fun env ->
        Budget.tick budget;
        match Hashtbl.find_opt tbl (env_key env) with
        | None -> ()
        | Some matches ->
            List.iter
              (fun row ->
                Budget.tick budget;
                out := extend ca env row :: !out)
              matches)
      envs
  end

let step budget radix_threshold pnode ca sel state =
  match state with
  | [] -> []
  | _ ->
      let out = ref [] in
      if Array.length ca.key_pairs = 0 then begin
        (* no shared variable: selection-filtered cross product *)
        Metrics.add probe_rows_c (List.length state);
        List.iter
          (fun env ->
            Budget.tick budget;
            Array.iter
              (fun row ->
                Budget.tick budget;
                out := extend ca env row :: !out)
              sel)
          state
      end
      else if Array.length sel > radix_threshold then begin
        (* grace/radix partitioning: split both sides on the key hash so
           each build fits comfortably, then join partition by partition *)
        let nparts = radix_partitions in
        Metrics.add partitions_c nparts;
        Profile.set_partitions pnode nparts;
        let rel = ca.rel in
        let kp = ca.key_pairs in
        let row_parts = Array.make nparts [] in
        Array.iter
          (fun row ->
            let h =
              hash_key (Array.map (fun (_, p) -> Interned.get rel row p) kp)
              land (nparts - 1)
            in
            row_parts.(h) <- row :: row_parts.(h))
          sel;
        let env_parts = Array.make nparts [] in
        List.iter
          (fun env ->
            let h =
              hash_key (Array.map (fun (v, _) -> env.(v)) kp) land (nparts - 1)
            in
            env_parts.(h) <- env :: env_parts.(h))
          state;
        for p = 0 to nparts - 1 do
          match env_parts.(p) with
          | [] -> ()
          | envs ->
              build_probe budget ca
                (Array.of_list (List.rev row_parts.(p)))
                (List.rev envs) out
        done
      end
      else build_probe budget ca sel state out;
      List.rev !out

let head_var_count (head : Atom.t) =
  List.filter_map
    (function Term.Var x -> Some x | Term.Cst _ -> None)
    head.Atom.args
  |> Names.Sset.of_list |> Names.Sset.cardinal

let answers ?budget ?semijoin ?acyclic
    ?(radix_threshold = default_radix_threshold) ?profile ?estimate t
    (q : Query.t) =
  let head = q.Query.head in
  let head_arity = Atom.arity head in
  Obs.phase "hash_join" (fun () ->
  Profile.step profile ~op:"exec" ~name:head.Atom.pred (fun pnode ->
      (* The reduction policy must be settled before scheduling: the
         Yannakakis path joins in join-tree order, the general path in
         the evaluator's selectivity order.  The default mirrors the
         pairwise heuristic's trigger — reduce iff the head projects
         variables away — so acyclic bodies take the fast path exactly
         where the pairwise reduction used to run. *)
      let body_vars =
        List.fold_left
          (fun s a -> Names.Sset.union s (Atom.var_set a))
          Names.Sset.empty q.Query.body
      in
      let semijoin_on =
        match semijoin with
        | Some b -> b
        | None -> head_var_count head < Names.Sset.cardinal body_vars
      in
      let jt =
        match acyclic with
        | Some false -> None
        | Some true | None -> (
            match Hypergraph.classify q.Query.body with
            | Hypergraph.Acyclic tr when Array.length tr.Hypergraph.atoms > 1 ->
                Some tr
            | Hypergraph.Acyclic _ | Hypergraph.Cyclic -> None)
      in
      let yk_on =
        match jt with
        | None -> false
        | Some _ -> ( match acyclic with Some b -> b | None -> semijoin_on)
      in
      let ordered, tree_info =
        match jt with
        | Some tr when yk_on ->
            let order = Hypergraph.join_order tr in
            let pos_of = Array.make (Array.length tr.Hypergraph.atoms) (-1) in
            List.iteri (fun k i -> pos_of.(i) <- k) order;
            let parent = Array.make (List.length order) (-1) in
            List.iteri
              (fun k i ->
                let p = tr.Hypergraph.parent.(i) in
                if p >= 0 then parent.(k) <- pos_of.(p))
              order;
            let removal = List.map (fun i -> pos_of.(i)) tr.Hypergraph.removal in
            ( List.map (fun i -> tr.Hypergraph.atoms.(i)) order,
              Some (parent, removal) )
        | Some _ | None ->
            (Eval.schedule (Interned.database t) q.Query.body, None)
      in
      let var_ids = Hashtbl.create 16 in
      let n_vars = ref 0 in
      let var_id x =
        match Hashtbl.find_opt var_ids x with
        | Some v -> v
        | None ->
            let v = !n_vars in
            Hashtbl.add var_ids x v;
            incr n_vars;
            v
      in
      let bound = Hashtbl.create 16 in
      let compiled =
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> None
            | Some acc -> (
                match compile t var_id bound a with
                | Some ca -> Some (ca :: acc)
                | None -> None))
          (Some []) ordered
      in
      match compiled with
      | None ->
          (* a body atom names a missing relation: the answer is empty *)
          Profile.set_rows_in pnode 0;
          Profile.set_rows_out pnode 0;
          Relation.empty head_arity
      | Some rev_catoms ->
          let catoms = Array.of_list (List.rev rev_catoms) in
          (* Per-operator accounting (atom rendering, state counting,
             the estimate callback) only happens under [Some profile];
             the [None] path executes exactly the uninstrumented code. *)
          let atoms = Array.of_list ordered in
          let est_of prefix =
            match estimate with Some f -> f prefix | None -> Float.nan
          in
          let sum_sels sels =
            Array.fold_left (fun acc s -> acc + Array.length s) 0 sels
          in
          let sels =
            match profile with
            | None -> Array.map select catoms
            | Some _ ->
                Array.mapi
                  (fun i ca ->
                    let a = atoms.(i) in
                    Profile.step profile ~op:"select" ~name:a.Atom.pred
                      ~detail:(Atom.to_string a) (fun node ->
                        let sel = select ca in
                        Profile.set_rows_in node ca.rel.Interned.rows;
                        Profile.set_rows_out node (Array.length sel);
                        Profile.set_est_rows node (est_of [ a ]);
                        sel))
                  catoms
          in
          (match tree_info with
          | Some (parent, removal) ->
              Metrics.incr acyclic_c;
              Profile.step profile ~op:"yannakakis" (fun node ->
                  (match node with
                  | Some _ -> Profile.set_rows_in node (sum_sels sels)
                  | None -> ());
                  yannakakis_reduce budget catoms sels ~parent ~removal;
                  match node with
                  | Some _ -> Profile.set_rows_out node (sum_sels sels)
                  | None -> ())
          | None ->
              if semijoin_on && Array.length catoms > 1 then
                Profile.step profile ~op:"semijoin" (fun node ->
                    (match node with
                    | Some _ -> Profile.set_rows_in node (sum_sels sels)
                    | None -> ());
                    semijoin_reduce budget catoms sels;
                    match node with
                    | Some _ -> Profile.set_rows_out node (sum_sels sels)
                    | None -> ()));
          let state = ref [ Array.make (max 1 !n_vars) (-1) ] in
          (match profile with
          | None ->
              Array.iteri
                (fun i ca ->
                  state := step budget radix_threshold None ca sels.(i) !state)
                catoms
          | Some _ ->
              let executed = ref [] in
              Array.iteri
                (fun i ca ->
                  let a = atoms.(i) in
                  executed := a :: !executed;
                  let op =
                    if i = 0 then "scan"
                    else if Array.length ca.key_pairs = 0 then "cross"
                    else "join"
                  in
                  Profile.step profile ~op ~name:a.Atom.pred
                    ~detail:(Atom.to_string a) (fun node ->
                      Profile.set_rows_in node (List.length !state);
                      Profile.set_build_rows node (Array.length sels.(i));
                      state :=
                        step budget radix_threshold node ca sels.(i) !state;
                      Profile.set_rows_out node (List.length !state);
                      Profile.set_est_rows node (est_of (List.rev !executed))))
                catoms);
          let tuples =
            List.map
              (fun env ->
                List.map
                  (function
                    | Term.Cst c -> c
                    | Term.Var x -> (
                        match Hashtbl.find_opt var_ids x with
                        | Some v when env.(v) >= 0 -> Interned.const t env.(v)
                        | Some _ | None ->
                            invalid_arg
                              ("Exec.answers: unbound head variable " ^ x)))
                  head.Atom.args)
              !state
          in
          let result = Relation.of_tuples head_arity tuples in
          (match pnode with
          | Some _ ->
              Profile.set_rows_in pnode (List.length !state);
              Profile.set_rows_out pnode (Relation.cardinality result)
          | None -> ());
          result))
