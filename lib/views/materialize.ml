open Vplan_relational

let views base vs =
  (* one interned image of the base: every view evaluation shares the
     lazily built per-(predicate, bound positions) indexes *)
  let idb = Indexed_db.of_database base in
  List.fold_left
    (fun db view -> Database.add_relation (View.name view) (Indexed_db.answers idb view) db)
    Database.empty vs

let answers_via_rewriting view_db p = Eval.answers view_db p
