open Vplan_relational

let views ?profile ?estimate base vs =
  (* one interned columnar image of the base: every view evaluation
     shares the constant dictionary and runs through the hash-join
     engine (build/probe on the shared variables) *)
  let interned = Vplan_exec.Interned.of_database base in
  List.fold_left
    (fun db view ->
      Database.add_relation (View.name view)
        (Vplan_exec.Exec.answers ?profile ?estimate interned view)
        db)
    Database.empty vs

let answers_via_rewriting view_db p = Eval.answers view_db p
