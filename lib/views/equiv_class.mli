(** Equivalence-class grouping (Section 5.2).

    With many views, [T(Q,V)] can be large even though few of its members
    are genuinely different.  The paper groups (a) views that are
    equivalent as queries and (b) view tuples with identical tuple-cores,
    running CoreCover on one representative per class.  The number of
    representative view tuples is then bounded by the number of query
    subgoals, independent of the number of views — the key to the
    scalability results of Section 7 (Figures 7 and 9).

    Naively the view grouping performs a pairwise NP-hard equivalence
    check per (view, class) pair.  {!group_views} instead buckets views by
    a cheap canonical {!signature} that is invariant under variable
    renaming and {e necessary} for equivalence, so the homomorphism
    searches only run within a bucket — near-linear on the paper's
    star/chain workloads while producing exactly the same classes. *)

open Vplan_cq

(** [group ~eq xs] partitions [xs] into classes of the (assumed
    transitive) relation [eq], preserving first-occurrence order of class
    representatives.  Quadratic in the number of classes. *)
val group : eq:('a -> 'a -> bool) -> 'a list -> 'a list list

(** [group_by ~key xs] is [group ~eq:(fun a b -> key a = key b)] computed
    with one hash probe per element: same classes, same order.  Used to
    bucket view tuples by their tuple-core bitmask. *)
val group_by : key:('a -> int) -> 'a list -> 'a list list

(** [representatives groups] takes the first member of each class. *)
val representatives : 'a list list -> 'a list

(** [signature v] is a canonical fingerprint of the view: the sorted
    predicate/arity multiset, head-argument pattern and per-variable
    join-degree profile of the {e minimized} view body.  Equivalent views
    have isomorphic minimized queries (cores are unique up to renaming),
    and the fingerprint never mentions variable names, so equal signatures
    are necessary for equivalence — bucketing by signature is a sound
    partition refinement. *)
val signature : ?budget:Vplan_core.Budget.t -> Query.t -> string

(** [view_equivalent v1 v2] decides equivalence of two views as queries,
    ignoring their (necessarily distinct) head predicate names. *)
val view_equivalent : ?budget:Vplan_core.Budget.t -> Query.t -> Query.t -> bool

(** [group_views views] groups views equivalent as queries (ignoring their
    distinct head predicate names: [v1 ≡ v5] in the car-loc-part example).
    [buckets] (default [true]) enables signature bucketing; the resulting
    classes are identical either way.  A [?budget] bounds the underlying
    minimization/equivalence searches. *)
val group_views :
  ?budget:Vplan_core.Budget.t -> ?buckets:bool -> View.t list -> View.t list list

(** [group_views_keyed views] is {!group_views} with each class tagged by
    its representative's {!signature} — the persistent form a long-lived
    view catalog keeps so views can later be added without regrouping the
    whole set.  [group_views ~buckets:true views
    = List.map snd (group_views_keyed views)]. *)
val group_views_keyed :
  ?budget:Vplan_core.Budget.t -> View.t list -> (string * View.t list) list

(** [add_to_keyed classes views] extends a {!group_views_keyed} partition
    with new views incrementally: each view joins the first class whose
    signature matches and whose representative it is equivalent to, or
    opens a new class at the end.  The result is the same partition (same
    class order, same member order) as regrouping
    [List.concat_map snd classes @ views] from scratch.  Cost is one
    signature plus the within-bucket equivalence checks per added view —
    independent of the catalog size when signatures differ. *)
val add_to_keyed :
  ?budget:Vplan_core.Budget.t ->
  (string * View.t list) list ->
  View.t list ->
  (string * View.t list) list
