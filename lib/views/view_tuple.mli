(** View tuples [T(Q,V)] (Section 3.3).

    A view tuple is an atom over a view predicate whose arguments are
    variables and constants of the query, obtained by applying the view
    definitions to the canonical database of [Q] and thawing the result.
    Lemma 3.2: every rewriting can be transformed into one, at least as
    contained, that uses view tuples only — so view tuples are the
    building blocks of all the search spaces in the paper. *)

open Vplan_cq

type t = {
  atom : Atom.t;  (** the view tuple itself, e.g. [v1(M, a, C)] *)
  view : View.t;  (** the defining view *)
}

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [compute ~query views] computes [T(Q,V)].  The query should normally
    be minimized first (CoreCover step 1).

    [engine] selects the evaluation engine applied to the canonical
    database: [`Indexed] (default) interns it once and probes lazily built
    hash indexes ({!Vplan_relational.Indexed_db}); [`Nested_loop] is the
    plain backtracking join of {!Vplan_relational.Eval}.  Both produce the
    same tuples in the same order.

    [domains] (default 1) fans the per-view evaluation out across that
    many domains ({!Vplan_parallel.Parallel.map}); the result is
    independent of the worker count.

    A [?budget] is ticked once per view (in whichever domain evaluates
    it) and shared with the fan-out's exception barrier, so a deadline or
    cancellation stops all workers within one view evaluation. *)
val compute :
  ?budget:Vplan_core.Budget.t ->
  ?engine:[ `Indexed | `Nested_loop ] ->
  ?domains:int ->
  query:Query.t ->
  View.t list ->
  t list

(** [expansion ~avoid tv] is the expansion [t{_v}{^exp}] of the view tuple:
    the view's body with head variables bound to the tuple's arguments and
    existential variables renamed fresh (avoiding [avoid]).  Returns the
    atom list together with the set of those fresh existential variables. *)
val expansion : avoid:Names.Sset.t -> t -> Atom.t list * Names.Sset.t
