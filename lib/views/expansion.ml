open Vplan_cq

exception Unsatisfiable

(* Expand one view atom: rename the view apart from every name seen so
   far, unify its head arguments with the atom's arguments (two-sided —
   repeated head variables identify rewriting variables), and emit the
   renamed body.  The unifier accumulates across atoms and is applied to
   the whole query at the end. *)
let expand_atom ~views ~used ~subst (a : Atom.t) =
  match View.find views a.pred with
  | None -> (used, subst, [ a ])
  | Some v ->
      let v', _ = Query.rename_apart ~avoid:used v in
      let used = Names.Sset.union used (Query.var_set v') in
      let subst =
        match Unify.mgu_args subst v'.Query.head.Atom.args a.Atom.args with
        | Some s -> s
        | None -> raise Unsatisfiable
      in
      (used, subst, v'.Query.body)

let expand ~views (p : Query.t) =
  let used = Query.var_set p in
  match
    List.fold_left
      (fun (used, subst, acc) a ->
        let used, subst, atoms = expand_atom ~views ~used ~subst a in
        (used, subst, List.rev_append atoms acc))
      (used, Subst.empty, []) p.body
  with
  | _, subst, rev_atoms ->
      let subst = Unify.resolve_subst subst in
      let head = Atom.apply subst p.head in
      let body = List.rev_map (Atom.apply subst) rev_atoms in
      Ok (Query.make_exn head body)
  | exception Unsatisfiable -> Error `Unsatisfiable

let expand_exn ~views p =
  match expand ~views p with
  | Ok q -> q
  | Error `Unsatisfiable -> invalid_arg ("Expansion.expand_exn: unsatisfiable rewriting " ^ Query.to_string p)

let is_equivalent_rewriting ?budget ~views ~query p =
  View.uses_only_views views p
  &&
  match expand ~views p with
  | Error `Unsatisfiable -> false
  | Ok pexp -> Vplan_containment.Containment.equivalent ?budget pexp query

let expansion_contained_in_query ~views ~query p =
  View.uses_only_views views p
  &&
  match expand ~views p with
  | Error `Unsatisfiable -> true (* the empty query is contained in any query *)
  | Ok pexp -> Vplan_containment.Containment.is_contained pexp query

let expand_ucq ~views u =
  let expanded =
    List.filter_map
      (fun d -> match expand ~views d with Ok e -> Some e | Error `Unsatisfiable -> None)
      (Ucq.disjuncts u)
  in
  match Ucq.make expanded with Ok u -> Some u | Error _ -> None

let is_contained_ucq_rewriting ~views ~query u =
  List.for_all (expansion_contained_in_query ~views ~query) (Ucq.disjuncts u)

let is_equivalent_ucq_rewriting ~views ~query u =
  match expand_ucq ~views u with
  | None -> false
  | Some expansion ->
      Vplan_containment.Ucq_containment.equivalent expansion (Ucq.of_query query)
