(** Materializing views over a base database (the closed-world model).

    The resulting database is keyed by view names; rewritings are evaluated
    directly against it. *)

open Vplan_cq
open Vplan_relational

(** [views base vs] evaluates every view definition on [base].
    [profile]/[estimate] are forwarded to {!Vplan_exec.Exec.answers}:
    with a profile attached, each view's evaluation appears as its own
    [exec] subtree. *)
val views :
  ?profile:Vplan_obs.Profile.t ->
  ?estimate:(Atom.t list -> float) ->
  Database.t ->
  View.t list ->
  Database.t

(** [answers_via_rewriting view_db p] evaluates a rewriting [p] over the
    materialized view database. *)
val answers_via_rewriting : Database.t -> Query.t -> Relation.t
