open Vplan_cq
module Containment = Vplan_containment.Containment
module Minimize = Vplan_containment.Minimize
module Metrics = Vplan_obs.Metrics

(* How much work the signature bucketing does vs. saves: one signature
   per view, one pairwise equivalence check per (view, same-bucket class
   representative) probe.  The unbucketed path would pay a compare per
   (view, class) pair instead. *)
let signatures_total = Metrics.counter "vplan_equiv_signatures_total"
let compares_total = Metrics.counter "vplan_equiv_compares_total"

let group ~eq xs =
  (* Classes are kept in reverse insertion order internally; each class
     stores members reversed.  The relation is assumed transitive, so a
     single comparison against each class representative suffices. *)
  let classes =
    List.fold_left
      (fun classes x ->
        let rec insert = function
          | [] -> [ [ x ] ]
          | cls :: rest -> (
              match cls with
              | rep :: _ when eq rep x -> (x :: cls) :: rest
              | _ -> cls :: insert rest)
        in
        insert classes)
      [] xs
  in
  List.map List.rev classes

let group_by ~key xs =
  (* [group ~eq:(fun a b -> key a = key b)] in one hash probe per element:
     same classes, same first-occurrence class order, same member order. *)
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt table k with
      | Some members -> members := x :: !members
      | None ->
          let members = ref [ x ] in
          Hashtbl.add table k members;
          order := members :: !order)
    xs;
  List.rev_map (fun members -> List.rev !members) !order

let representatives groups = List.filter_map (function x :: _ -> Some x | [] -> None) groups

(* Views have distinct head predicates, so plain query equivalence would
   never hold; compare with the head predicate name erased. *)
let erase_head_pred (v : Query.t) =
  Query.make_exn (Atom.make "__view" v.head.Atom.args) v.body

(* ------------------------------------------------------------------ *)
(* Signature fingerprints                                              *)

(* A cheap canonical fingerprint, invariant under variable renaming, such
   that equal signatures are NECESSARY for view equivalence: equivalent
   queries have isomorphic minimized queries (cores are unique up to
   renaming), and the fingerprint is a function of the minimized query
   that no renaming can change.  Views are bucketed by signature and the
   expensive pairwise homomorphism checks run only within a bucket. *)
let signature ?budget (v : Query.t) =
  Metrics.incr signatures_total;
  let v = Minimize.minimize ?budget (erase_head_pred v) in
  let buf = Buffer.create 128 in
  (* head pattern: constants verbatim, variables by first occurrence *)
  let head_args = v.head.Atom.args in
  let first_occurrence x =
    let rec find i = function
      | [] -> assert false
      | Term.Var y :: _ when String.equal x y -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 head_args
  in
  Buffer.add_string buf "h:";
  List.iter
    (fun arg ->
      match arg with
      | Term.Cst c -> Buffer.add_string buf ("c" ^ Term.const_to_string c ^ ";")
      | Term.Var x -> Buffer.add_string buf ("v" ^ string_of_int (first_occurrence x) ^ ";"))
    head_args;
  (* body predicate/arity multiset *)
  let preds =
    List.map (fun (a : Atom.t) -> a.pred ^ "/" ^ string_of_int (Atom.arity a)) v.body
    |> List.sort String.compare
  in
  Buffer.add_string buf "|b:";
  List.iter (fun p -> Buffer.add_string buf (p ^ ";")) preds;
  (* per-variable join-degree profile: for each variable, its head
     positions and its (predicate, argument position) body occurrences
     with multiplicity; the multiset of profiles, sorted *)
  let occurrences = Hashtbl.create 16 in
  let record x entry =
    let existing = match Hashtbl.find_opt occurrences x with Some l -> l | None -> [] in
    Hashtbl.replace occurrences x (entry :: existing)
  in
  List.iteri
    (fun pos arg ->
      match arg with Term.Var x -> record x ("H" ^ string_of_int pos) | Term.Cst _ -> ())
    head_args;
  List.iter
    (fun (a : Atom.t) ->
      List.iteri
        (fun pos arg ->
          match arg with
          | Term.Var x -> record x (a.pred ^ "." ^ string_of_int pos)
          | Term.Cst _ -> ())
        a.args)
    v.body;
  let profiles =
    Hashtbl.fold
      (fun _ entries acc -> String.concat "," (List.sort String.compare entries) :: acc)
      occurrences []
    |> List.sort String.compare
  in
  Buffer.add_string buf "|v:";
  List.iter (fun p -> Buffer.add_string buf (p ^ ";")) profiles;
  Buffer.contents buf

let view_equivalent ?budget v1 v2 =
  Metrics.incr compares_total;
  Containment.equivalent ?budget (erase_head_pred v1) (erase_head_pred v2)

let group_views_keyed ?budget views =
  (* Bucket views by signature; compare only against representatives of
     classes in the same bucket.  Since equal signatures are necessary
     for equivalence, the skipped cross-bucket comparisons would all
     have failed: classes, class order and member order are identical to
     the unbucketed [group].  Each class carries its signature so that
     later views ({!add_to_keyed}) join the search where it left off. *)
  let table : (string, (Query.t * Query.t list ref) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun v ->
      let s = signature ?budget v in
      let bucket =
        match Hashtbl.find_opt table s with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.add table s b;
            b
      in
      let rec find = function
        | [] ->
            let cell = (v, ref [ v ]) in
            bucket := !bucket @ [ cell ];
            order := (s, cell) :: !order
        | (rep, members) :: rest ->
            if view_equivalent ?budget rep v then members := v :: !members else find rest
      in
      find !bucket)
    views;
  List.rev_map (fun (s, (_, members)) -> (s, List.rev !members)) !order

let add_to_keyed ?budget classes views =
  (* Same partition as regrouping [List.concat_map snd classes @ views]
     from scratch: a new view joins the first existing class whose
     signature matches and whose representative is equivalent, else opens
     a class at the end. *)
  List.fold_left
    (fun classes v ->
      let s = signature ?budget v in
      let rec insert = function
        | [] -> [ (s, [ v ]) ]
        | (s', (rep :: _ as members)) :: rest
          when String.equal s s' && view_equivalent ?budget rep v ->
            (s', members @ [ v ]) :: rest
        | cls :: rest -> cls :: insert rest
      in
      insert classes)
    classes views

let group_views ?budget ?(buckets = true) views =
  if not buckets then group ~eq:(view_equivalent ?budget) views
  else List.map snd (group_views_keyed ?budget views)
