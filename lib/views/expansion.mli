(** Expansion of rewritings: replacing view atoms by view bodies
    (Definition 2.2) and the equivalent-rewriting test (Definition 2.3).

    Expanding [P] substitutes each view atom by the view's body, renaming
    the view's existential variables to fresh ones per occurrence.  When a
    view head repeats a variable (e.g. [v(A,A)]) or carries a constant, the
    corresponding rewriting arguments are unified; a constant clash makes
    the rewriting unsatisfiable. *)

open Vplan_cq

(** [expand ~views p] computes [P{^exp}].  Atoms whose predicate is not a
    view name are treated as base atoms and kept unchanged.  Returns
    [Error `Unsatisfiable] when head unification clashes on constants (the
    rewriting returns no tuples on any instance). *)
val expand : views:View.t list -> Query.t -> (Query.t, [ `Unsatisfiable ]) result

(** [expand_exn ~views p] raises [Invalid_argument] on unsatisfiable
    rewritings. *)
val expand_exn : views:View.t list -> Query.t -> Query.t

(** [is_equivalent_rewriting ~views ~query p] decides whether [p] is an
    equivalent rewriting of [query] using [views]: [p] uses only view
    predicates and [P{^exp} ≡ query].  A [?budget] bounds the underlying
    containment searches. *)
val is_equivalent_rewriting :
  ?budget:Vplan_core.Budget.t -> views:View.t list -> query:Query.t -> Query.t -> bool

(** [expansion_contained_in_query ~views ~query p] decides [P{^exp} ⊑ Q] —
    the defining property of a {e contained} rewriting (what the bucket and
    MiniCon baselines produce). *)
val expansion_contained_in_query : views:View.t list -> query:Query.t -> Query.t -> bool

(** [expand_ucq ~views u] expands every disjunct, dropping unsatisfiable
    ones; [None] when no disjunct survives. *)
val expand_ucq : views:View.t list -> Ucq.t -> Ucq.t option

(** [is_equivalent_ucq_rewriting ~views ~query u] — the union's expansion
    is equivalent to [query] (each disjunct contained in the query, and
    jointly covering it). *)
val is_equivalent_ucq_rewriting : views:View.t list -> query:Query.t -> Ucq.t -> bool

(** [is_contained_ucq_rewriting ~views ~query u] — every disjunct's
    expansion is contained in [query]. *)
val is_contained_ucq_rewriting : views:View.t list -> query:Query.t -> Ucq.t -> bool
