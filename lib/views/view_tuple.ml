open Vplan_cq
open Vplan_relational

type t = {
  atom : Atom.t;
  view : View.t;
}

let equal t1 t2 = Atom.equal t1.atom t2.atom
let compare t1 t2 = Atom.compare t1.atom t2.atom
let pp ppf t = Atom.pp ppf t.atom

let compute ?budget ?(engine = `Indexed) ?(domains = 1) ~query views =
  let canonical, answers =
    Vplan_obs.Obs.phase "canonical_db" (fun () ->
        let canonical = Canonical.freeze query in
        let db = Canonical.database canonical in
        let answers =
          match engine with
          | `Nested_loop -> Eval.answers db
          | `Indexed ->
              (* one interned database for all views: each (predicate,
                 bound positions) index is built once; index construction
                 is mutex-guarded, so the parallel fan-out can share
                 it *)
              let idb = Indexed_db.of_database db in
              Indexed_db.answers idb
        in
        (canonical, answers))
  in
  let tuples_of_view view =
    (* one tick per view: cancellation reaches each worker between views *)
    Vplan_core.Budget.tick budget;
    let result = answers view in
    Relation.fold
      (fun tuple acc ->
        let args = Canonical.thaw_tuple canonical tuple in
        { atom = Atom.make (View.name view) args; view } :: acc)
      result []
    |> List.rev
  in
  Vplan_obs.Obs.phase "view_tuples" (fun () ->
      let tuples =
        List.concat (Vplan_parallel.Parallel.map ?budget ~domains tuples_of_view views)
      in
      Vplan_obs.Trace.annotate "views" (float_of_int (List.length views));
      Vplan_obs.Trace.annotate "tuples" (float_of_int (List.length tuples));
      tuples)

let expansion ~avoid tv =
  let avoid = Names.Sset.union avoid (Atom.var_set tv.atom) in
  let view', _ = Query.rename_apart ~avoid tv.view in
  (* Bind the renamed head variables to the tuple's arguments.  The tuple
     was produced by evaluating the view, so repeated head variables carry
     equal arguments and binding never conflicts. *)
  let theta =
    List.fold_left2
      (fun s head_arg tuple_arg ->
        match head_arg with
        | Term.Var x -> Subst.bind x tuple_arg s
        | Term.Cst _ -> s)
      Subst.empty view'.Query.head.Atom.args tv.atom.Atom.args
  in
  let body = List.map (Atom.apply theta) view'.Query.body in
  let existentials =
    List.fold_left
      (fun acc (a : Atom.t) ->
        Names.Sset.union acc
          (Names.Sset.filter (fun x -> not (Subst.mem x theta)) (Atom.var_set a)))
      Names.Sset.empty view'.Query.body
  in
  (body, existentials)
