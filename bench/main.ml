(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) plus the worked cost-model examples, and adds
   two ablations.

   Usage:
     dune exec bench/main.exe                 # everything, quick settings
     dune exec bench/main.exe -- all --full   # paper-scale settings
     dune exec bench/main.exe -- fig6a fig7   # selected experiments
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks

   Experiments (see DESIGN.md for the per-experiment index):
     table2    Table 2: tuple-cores of Example 4.1
     fig6a/b   star queries: time to generate all GMRs vs #views
     fig7      star queries: equivalence classes of views / view tuples
     fig8a/b   chain queries: time to generate all GMRs vs #views
     fig9      chain queries: equivalence classes
     example42 CoreCover vs MiniCon vs bucket on Example 4.2
     example61 cost model M3 on Example 6.1 / Figure 5
     ablation  equivalence-class grouping on/off
     joinorder M2 join-ordering: DP vs connected-DP vs exhaustive
     shapes    CoreCover across star/chain/cycle/clique workloads
     endpoints the paper's chain head-policy remark
     openworld certain answers: inverse rules vs MiniCon MCR
     estimate  statistics-based join ordering vs true sizes
     joins     hash-join engine vs backtracking evaluator at data scale
     acyclic   Yannakakis over the GYO join tree vs the general pipeline,
               and join-tree containment DP vs backtracking
     serve     resident service: cold vs warm-cache throughput
     loadgen   TCP serving tier: closed-loop load at 1/8/64/256 clients
     optimize  plan selection: branch-and-bound engine vs naive candidate loop
     observe   tracing overhead: CoreCover with the span tracer on vs off
     recovery  durable store: warm restart vs cold preprocessing, replay
     micro     bechamel micro-benchmarks of the core operations *)

open Vplan

let now_ms () = Unix.gettimeofday () *. 1000.

let time_ms f =
  let t0 = now_ms () in
  let r = f () in
  (r, now_ms () -. t0)

type settings = {
  view_counts : int list;
  queries_per_point : int;
}

let quick = { view_counts = [ 10; 50; 100; 200; 400; 600; 800; 1000 ]; queries_per_point = 3 }

let full =
  {
    view_counts = [ 10; 50; 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ];
    queries_per_point = 40;
  }

(* CoreCover performance knobs, settable from the command line; every
   combination produces the same rewritings. *)
let opt_domains = ref 1
let opt_indexed = ref true
let opt_buckets = ref true

(* resource-governance knobs: a fresh budget is created per timed query so
   limits apply to each run rather than the whole sweep *)
let opt_timeout = ref None
let opt_max_steps = ref None
let opt_max_covers = ref None
let any_truncated = ref false

let budget_of_opts () =
  if !opt_timeout = None && !opt_max_steps = None then None
  else Some (Budget.create ?deadline_ms:!opt_timeout ?max_steps:!opt_max_steps ())

let corecover_gmrs ~query ~views () =
  let r =
    Corecover.gmrs ?budget:(budget_of_opts ()) ?max_covers:!opt_max_covers
      ~indexed:!opt_indexed ~buckets:!opt_buckets ~domains:!opt_domains ~query
      ~views ()
  in
  (match r.completeness with
  | Corecover.Truncated _ -> any_truncated := true
  | Corecover.Complete -> ());
  r

(* Rows of the timing figures, collected for [--out FILE.json]. *)
type json_row = {
  experiment : string;
  row_views : int;
  row_queries : int;
  avg_ms : float;
  min_ms : float;
  max_ms : float;
  avg_gmrs : float;
  row_truncated : int;
}

let json_rows : json_row list ref = ref []

(* Metrics of the [serve] experiment, collected for [--out FILE.json]. *)
type service_metrics = {
  sm_views : int;
  sm_distinct : int;
  sm_repetitions : int;
  sm_cold_qps : float;
  sm_warm_qps : float;
  sm_speedup : float;
  sm_hit_rate : float;
  sm_p50_ms : float;
  sm_p95_ms : float;
  sm_truncated : int;
}

let service_metrics : service_metrics option ref = ref None

(* Rows of the [loadgen] experiment (the TCP serving tier under N
   concurrent client connections), collected for [--out FILE.json]. *)
type server_row = {
  sv_clients : int;
  sv_sent : int;
  sv_ok : int;
  sv_hits : int;
  sv_shed : int;
  sv_retried : int;
  sv_errors : int;
  sv_qps : float;
  sv_p50_ms : float;
  sv_p99_ms : float;
}

let server_rows : server_row list ref = ref []

(* Catalog swap under live traffic: generation resets observed, and
   whether any in-flight request was dropped or malformed. *)
type server_swap = {
  sw_clients : int;
  sw_resets : int;
  sw_ok : int;
  sw_errors : int;
  sw_closed_early : int;
}

let server_swap : server_swap option ref = ref None
let server_workers = ref 2
let server_queue = ref 128

(* Rows of the [optimize] experiment, collected for [--out FILE.json]. *)
type optimizer_row = {
  or_views : int;
  or_queries : int;
  or_candidates : float;  (* avg candidate rewritings per query *)
  or_baseline_ms : float;  (* naive per-candidate DP fold, total *)
  or_engine_ms : float;  (* ranked + memoized + branch-and-bound, total *)
  or_speedup : float;
  or_cost_equal : bool;  (* engine choice = unpruned fold on every query *)
}

let optimizer_rows : optimizer_row list ref = ref []

(* Rows of the [joins] experiment (hash-join engine at data scale),
   collected for [--out FILE.json]. *)
type joins_row = {
  jn_rows : int;  (* tuples drawn per base relation *)
  jn_answers : int;
  jn_intern_ms : float;  (* one-time columnar interning of the base *)
  jn_exec_ms : float;  (* hash-join engine, build + probe *)
  jn_eval_ms : float;  (* backtracking evaluator; 0 when skipped *)
  jn_speedup : float;  (* eval_ms / exec_ms; 0 when eval skipped *)
  jn_rows_per_sec : float;  (* base rows joined per second by the engine *)
  jn_oracle_equal : bool;  (* engine = Eval (when run) = Indexed_db *)
  jn_est_cost : float;  (* estimated M2 cells of the statistics-chosen order *)
  jn_exact_cost : int;  (* realized M2 cells of that same order *)
  jn_cost_equal : bool;  (* no order beats the statistics-chosen one *)
  jn_rows_pruned : int;  (* semi-join prunes during one engine run *)
  jn_partitions : int;  (* radix partitions during one engine run *)
}

let joins_rows : joins_row list ref = ref []

(* Rows of the [acyclic] experiment (Yannakakis fast path vs the
   general hash-join pipeline), collected for [--out FILE.json]. *)
type acyclic_row = {
  ac_shape : string;
  ac_rows : int;  (* tuples drawn per base relation *)
  ac_answers : int;
  ac_fast_ms : float;  (* full Yannakakis over the join tree *)
  ac_pairwise_ms : float;  (* pairwise semi-join heuristic (acyclic off) *)
  ac_general_ms : float;  (* plain hash join, no reduction at all *)
  ac_speedup : float;  (* general_ms / fast_ms *)
  ac_rows_per_sec : float;  (* base rows joined per second, fast path *)
  ac_answers_equal : bool;  (* fast = pairwise = general = oracles *)
  ac_cost_equal : bool;  (* tree-seeded planner = unseeded estimated DP *)
  ac_rows_pruned : int;  (* semi-join prunes during one fast run *)
  ac_partitions : int;  (* radix partitions during one fast run *)
  ac_fastpath : bool;  (* the acyclic classifier actually fired *)
}

let acyclic_rows : acyclic_row list ref = ref []

(* Containment half of the [acyclic] experiment: DP over the join tree
   vs backtracking, plus end-to-end rewrite latency with the fast path
   on and off. *)
type acyclic_containment = {
  cn_checks : int;
  cn_depth : int;  (* levels of the branching ladder target *)
  cn_fast_ms : float;
  cn_slow_ms : float;
  cn_speedup : float;
  cn_agree : bool;  (* DP verdict = backtracking verdict on every check *)
  cn_fastpath : bool;  (* the fastpath counter moved during the fast run *)
  cn_rewrite_views : int;
  cn_rewrite_fast_ms : float;
  cn_rewrite_general_ms : float;
}

let acyclic_containment : acyclic_containment option ref = ref None

(* Metrics of the [observe] experiment, collected for [--out FILE.json]. *)
type observe_metrics = {
  ob_views : int;
  ob_queries : int;
  ob_passes : int;
  ob_untraced_ms : float;
  ob_traced_ms : float;
  ob_overhead_pct : float;
  ob_spans : float;  (* average spans recorded per traced request *)
  ob_recorder_overhead_pct : float;  (* flight recorder on vs off *)
  ob_analyze_overhead_pct : float;  (* Exec.answers profiled vs plain *)
}

let observe_metrics : observe_metrics option ref = ref None

(* Metrics of the [recovery] experiment, collected for [--out FILE.json]. *)
type recovery_metrics = {
  rc_views : int;
  rc_cold_ms : float;  (* Catalog.create: full preprocessing *)
  rc_warm_ms : float;  (* Store.open_dir + snapshot restore *)
  rc_speedup : float;
  rc_replay_records : int;
  rc_replay_ms : float;  (* Store.open_dir + journal replay *)
  rc_journal_kb : float;
  rc_enospc_readonly : bool;  (* mutation refused after injected ENOSPC *)
  rc_reads_degraded : bool;  (* rewrite still answers while readonly *)
}

let recovery_metrics : recovery_metrics option ref = ref None

let write_json ~mode oc =
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"mode\": %S,\n" mode;
  Printf.fprintf oc "  \"domains\": %d,\n" !opt_domains;
  Printf.fprintf oc "  \"indexed\": %b,\n" !opt_indexed;
  Printf.fprintf oc "  \"buckets\": %b,\n" !opt_buckets;
  (match !service_metrics with
  | None -> ()
  | Some m ->
      Printf.fprintf oc
        "  \"service\": { \"views\": %d, \"distinct_queries\": %d, \"repetitions\": %d,"
        m.sm_views m.sm_distinct m.sm_repetitions;
      Printf.fprintf oc
        " \"cold_qps\": %.1f, \"warm_qps\": %.1f, \"speedup\": %.1f, \"hit_rate\": %.3f,"
        m.sm_cold_qps m.sm_warm_qps m.sm_speedup m.sm_hit_rate;
      Printf.fprintf oc " \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"truncated\": %d },\n"
        m.sm_p50_ms m.sm_p95_ms m.sm_truncated);
  (match !observe_metrics with
  | None -> ()
  | Some m ->
      Printf.fprintf oc
        "  \"observe\": { \"views\": %d, \"queries\": %d, \"passes\": %d,"
        m.ob_views m.ob_queries m.ob_passes;
      Printf.fprintf oc " \"untraced_ms\": %.3f, \"traced_ms\": %.3f,"
        m.ob_untraced_ms m.ob_traced_ms;
      Printf.fprintf oc " \"overhead_pct\": %.2f, \"spans_per_request\": %.1f,"
        m.ob_overhead_pct m.ob_spans;
      Printf.fprintf oc
        " \"recorder_overhead_pct\": %.2f, \"analyze_overhead_pct\": %.2f },\n"
        m.ob_recorder_overhead_pct m.ob_analyze_overhead_pct);
  (match !recovery_metrics with
  | None -> ()
  | Some m ->
      Printf.fprintf oc
        "  \"recovery\": { \"views\": %d, \"cold_ms\": %.3f, \"warm_ms\": %.3f, \"speedup\": %.1f,"
        m.rc_views m.rc_cold_ms m.rc_warm_ms m.rc_speedup;
      Printf.fprintf oc
        " \"replay_records\": %d, \"replay_ms\": %.3f, \"journal_kb\": %.1f,"
        m.rc_replay_records m.rc_replay_ms m.rc_journal_kb;
      Printf.fprintf oc " \"enospc_readonly\": %b, \"reads_degraded\": %b },\n"
        m.rc_enospc_readonly m.rc_reads_degraded);
  (match List.rev !server_rows with
  | [] -> ()
  | rows ->
      Printf.fprintf oc "  \"server\": {\n";
      Printf.fprintf oc "    \"workers\": %d, \"queue\": %d, \"cpu_cores\": %d,\n"
        !server_workers !server_queue
        (Domain.recommended_domain_count ());
      let qps_at n =
        List.find_map
          (fun r -> if r.sv_clients = n then Some r.sv_qps else None)
          rows
      in
      (match (qps_at 1, qps_at 64) with
      | Some one, Some sixty_four when one > 0. ->
          Printf.fprintf oc "    \"scaling_64_over_1\": %.2f,\n"
            (sixty_four /. one)
      | _ -> ());
      (match !server_swap with
      | None -> ()
      | Some s ->
          Printf.fprintf oc
            "    \"swap\": { \"clients\": %d, \"generation_resets\": %d, \
             \"ok\": %d, \"errors\": %d, \"closed_early\": %d },\n"
            s.sw_clients s.sw_resets s.sw_ok s.sw_errors s.sw_closed_early);
      Printf.fprintf oc "    \"rows\": [";
      List.iteri
        (fun i r ->
          Printf.fprintf oc "%s\n      { \"clients\": %d, \"sent\": %d,"
            (if i = 0 then "" else ",")
            r.sv_clients r.sv_sent;
          Printf.fprintf oc
            " \"ok\": %d, \"hits\": %d, \"shed\": %d, \"retried\": %d, \
             \"errors\": %d,"
            r.sv_ok r.sv_hits r.sv_shed r.sv_retried r.sv_errors;
          Printf.fprintf oc
            " \"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f }" r.sv_qps
            r.sv_p50_ms r.sv_p99_ms)
        rows;
      Printf.fprintf oc "\n    ]\n  },\n");
  (match List.rev !optimizer_rows with
  | [] -> ()
  | rows ->
      Printf.fprintf oc "  \"optimizer\": [";
      List.iteri
        (fun i r ->
          Printf.fprintf oc "%s\n    { \"views\": %d, \"queries\": %d,"
            (if i = 0 then "" else ",")
            r.or_views r.or_queries;
          Printf.fprintf oc
            " \"candidates\": %.1f, \"baseline_ms\": %.3f, \"engine_ms\": %.3f,"
            r.or_candidates r.or_baseline_ms r.or_engine_ms;
          Printf.fprintf oc " \"speedup\": %.2f, \"cost_equal\": %b }" r.or_speedup
            r.or_cost_equal)
        rows;
      Printf.fprintf oc "\n  ],\n");
  (match List.rev !joins_rows with
  | [] -> ()
  | rows ->
      Printf.fprintf oc "  \"joins\": [";
      List.iteri
        (fun i r ->
          Printf.fprintf oc "%s\n    { \"rows\": %d, \"answers\": %d,"
            (if i = 0 then "" else ",")
            r.jn_rows r.jn_answers;
          Printf.fprintf oc
            " \"intern_ms\": %.3f, \"exec_ms\": %.3f, \"eval_ms\": %.3f, \
             \"speedup\": %.1f,"
            r.jn_intern_ms r.jn_exec_ms r.jn_eval_ms r.jn_speedup;
          Printf.fprintf oc
            " \"rows_per_sec\": %.0f, \"oracle_equal\": %b, \"est_cost\": %.1f, \
             \"exact_cost\": %d, \"cost_equal\": %b,"
            r.jn_rows_per_sec r.jn_oracle_equal r.jn_est_cost r.jn_exact_cost
            r.jn_cost_equal;
          Printf.fprintf oc " \"rows_pruned\": %d, \"partitions\": %d }"
            r.jn_rows_pruned r.jn_partitions)
        rows;
      Printf.fprintf oc "\n  ],\n");
  (match (!acyclic_containment, List.rev !acyclic_rows) with
  | None, [] -> ()
  | cn, rows ->
      Printf.fprintf oc "  \"acyclic\": {\n";
      (match cn with
      | None -> ()
      | Some c ->
          Printf.fprintf oc
            "    \"containment\": { \"checks\": %d, \"ladder_depth\": %d, \
             \"fast_ms\": %.3f, \"slow_ms\": %.3f, \"speedup\": %.2f, \
             \"agree\": %b, \"fastpath_taken\": %b,"
            c.cn_checks c.cn_depth c.cn_fast_ms c.cn_slow_ms c.cn_speedup
            c.cn_agree c.cn_fastpath;
          Printf.fprintf oc
            " \"rewrite_views\": %d, \"rewrite_fast_ms\": %.3f, \
             \"rewrite_general_ms\": %.3f },\n"
            c.cn_rewrite_views c.cn_rewrite_fast_ms c.cn_rewrite_general_ms);
      Printf.fprintf oc "    \"rows\": [";
      List.iteri
        (fun i r ->
          Printf.fprintf oc "%s\n      { \"shape\": %S, \"rows\": %d, \"answers\": %d,"
            (if i = 0 then "" else ",")
            r.ac_shape r.ac_rows r.ac_answers;
          Printf.fprintf oc
            " \"fast_ms\": %.3f, \"pairwise_ms\": %.3f, \"general_ms\": %.3f, \
             \"speedup\": %.2f, \"rows_per_sec\": %.0f,"
            r.ac_fast_ms r.ac_pairwise_ms r.ac_general_ms r.ac_speedup
            r.ac_rows_per_sec;
          Printf.fprintf oc
            " \"answers_equal\": %b, \"cost_equal\": %b, \"rows_pruned\": %d, \
             \"partitions\": %d, \"fastpath_taken\": %b }"
            r.ac_answers_equal r.ac_cost_equal r.ac_rows_pruned r.ac_partitions
            r.ac_fastpath)
        rows;
      Printf.fprintf oc "\n    ]\n  },\n");
  Printf.fprintf oc "  \"rows\": [";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "%s\n    { \"experiment\": %S, \"views\": %d, \"queries\": %d,"
        (if i = 0 then "" else ",")
        r.experiment r.row_views r.row_queries;
      Printf.fprintf oc
        " \"avg_ms\": %.3f, \"min_ms\": %.3f, \"max_ms\": %.3f, \"gmrs\": %.1f, \"truncated\": %d }"
        r.avg_ms r.min_ms r.max_ms r.avg_gmrs r.row_truncated)
    (List.rev !json_rows);
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

let header title = Format.printf "@.== %s ==@." title

(* ------------------------------------------------------------------ *)
(* Figures 6 and 8: time for CoreCover to generate all GMRs.           *)

let time_figure ~name ~shape ~nondistinguished ~settings ~title =
  header title;
  Format.printf "%8s %12s %12s %12s %8s %10s@." "views" "avg-ms" "min-ms" "max-ms" "GMRs"
    "truncated";
  List.iter
    (fun num_views ->
      let times = ref [] and gmrs = ref 0 and skipped = ref 0 and truncated = ref 0 in
      for qi = 0 to settings.queries_per_point - 1 do
        let config =
          {
            Generator.default with
            shape;
            num_views;
            nondistinguished_per_view = nondistinguished;
            seed = 1000 + (qi * 7919) + num_views;
          }
        in
        (* as in the paper, workloads without a rewriting are discarded;
           with few views and hidden variables none may exist at all *)
        match Generator.generate_with_rewriting ~max_attempts:100 config with
        | exception Failure _ -> incr skipped
        | inst ->
            let result, ms =
              time_ms (fun () ->
                  corecover_gmrs ~query:inst.Generator.query ~views:inst.views ())
            in
            times := ms :: !times;
            gmrs := !gmrs + List.length result.rewritings;
            (match result.Corecover.completeness with
            | Corecover.Truncated _ -> incr truncated
            | Corecover.Complete -> ())
      done;
      match !times with
      | [] -> Format.printf "%8d %12s@." num_views "(no rewritable workload)"
      | times ->
          let n = List.length times in
          let avg = List.fold_left ( +. ) 0. times /. float_of_int n in
          let min_t = List.fold_left min infinity times in
          let max_t = List.fold_left max neg_infinity times in
          json_rows :=
            {
              experiment = name;
              row_views = num_views;
              row_queries = n;
              avg_ms = avg;
              min_ms = min_t;
              max_ms = max_t;
              avg_gmrs = float_of_int !gmrs /. float_of_int n;
              row_truncated = !truncated;
            }
            :: !json_rows;
          Format.printf "%8d %12.1f %12.1f %12.1f %8.1f %10d@." num_views avg min_t max_t
            (float_of_int !gmrs /. float_of_int n)
            !truncated)
    settings.view_counts

(* ------------------------------------------------------------------ *)
(* Figures 7 and 9: equivalence classes of views and view tuples.      *)

let classes_figure ~shape ~settings ~title =
  header title;
  Format.printf "%8s %8s %14s %12s %14s@." "views" "classes" "view-tuples" "rep-tuples"
    "tuples-all-views";
  List.iter
    (fun num_views ->
      let config =
        { Generator.default with shape; num_views; seed = 4242 + num_views }
      in
      let inst = Generator.generate_with_rewriting ~max_attempts:100 config in
      let r = Corecover.gmrs ~query:inst.Generator.query ~views:inst.views () in
      (* Figure 7(b) plots the number of view tuples over ALL views, next
         to the (nearly constant) representatives; [stats.num_view_tuples]
         counts tuples of the representative views only. *)
      let all_tuples =
        View_tuple.compute ~query:r.minimized_query inst.views
      in
      Format.printf "%8d %8d %14d %12d %14d@." num_views r.stats.num_view_classes
        r.stats.num_view_tuples r.stats.num_representative_tuples
        (List.length all_tuples))
    settings.view_counts

(* ------------------------------------------------------------------ *)
(* Table 2: tuple-cores of Example 4.1.                                *)

let table2 () =
  header "Table 2: tuple-cores of the view tuples in Example 4.1";
  let query = Parser.parse_rule_exn "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)." in
  let views =
    List.map Parser.parse_rule_exn
      [ "v1(A, B) :- a(A, B), a(B, B)."; "v2(C, D) :- a(C, E), b(C, D)." ]
  in
  let r = Corecover.gmrs ~query ~views () in
  Format.printf "%-14s %-30s@." "view tuple" "tuple-core C(tv)";
  List.iter
    (fun (tv, core) ->
      Format.printf "%-14s %-30s@."
        (Atom.to_string tv.View_tuple.atom)
        (String.concat ", " (List.map Atom.to_string core.Tuple_core.subgoals)))
    r.cores;
  Format.printf "GMR: %s@."
    (String.concat " | " (List.map Query.to_string r.rewritings))

(* ------------------------------------------------------------------ *)
(* Example 4.2: CoreCover vs MiniCon vs bucket.                        *)

let example42 () =
  header "Example 4.2: CoreCover vs MiniCon vs bucket (k = 2..6)";
  Format.printf "%4s %14s %14s %12s %14s %14s %14s@." "k" "corecover-ms" "minicon-ms"
    "bucket-ms" "cc-smallest" "mc-smallest" "mc-MCDs";
  List.iter
    (fun k ->
      let pair i = Printf.sprintf "a%d(X, Z%d), b%d(Z%d, Y)" i i i i in
      let body = String.concat ", " (List.init k (fun i -> pair (i + 1))) in
      let query = Parser.parse_rule_exn (Printf.sprintf "q(X, Y) :- %s." body) in
      let views =
        Parser.parse_rule_exn (Printf.sprintf "v(X, Y) :- %s." body)
        :: List.init (k - 1) (fun i ->
               Parser.parse_rule_exn
                 (Printf.sprintf "v%d(X, Y) :- %s." (i + 1) (pair (i + 1))))
      in
      let cc, cc_ms = time_ms (fun () -> Corecover.gmrs ~query ~views ()) in
      let mc, mc_ms = time_ms (fun () -> Minicon.run ~query ~views ()) in
      (* the bucket algorithm's cartesian product explodes around k = 4:
         report the blow-up instead of timing it *)
      let bucket_column =
        match time_ms (fun () -> Bucket.run ~mode:`Equivalent ~query ~views ()) with
        | _, bk_ms -> Printf.sprintf "%12.2f" bk_ms
        | exception Invalid_argument _ -> Printf.sprintf "%12s" "(>1e5 cands)"
      in
      let smallest = function
        | [] -> 0
        | l -> List.fold_left (fun acc (p : Query.t) -> min acc (List.length p.body)) max_int l
      in
      Format.printf "%4d %14.2f %14.2f %s %14d %14d %14d@." k cc_ms mc_ms bucket_column
        (smallest cc.rewritings) (smallest mc.rewritings) (List.length mc.mcds))
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Example 6.1: cost model M3 on the Figure 5 instance.                *)

let example61 () =
  header "Example 6.1 / Figure 5: M3 costs (cells)";
  let query = Parser.parse_rule_exn "q(A) :- r(A, A), t(A, B), s(B, B)." in
  let views =
    List.map Parser.parse_rule_exn
      [ "v1(A, B) :- r(A, A), s(B, B)."; "v2(A, B) :- t(A, B), s(B, B)." ]
  in
  let p1 = Parser.parse_rule_exn "q(A) :- v1(A, B), v2(A, C)." in
  let p2 = Parser.parse_rule_exn "q(A) :- v1(A, B), v2(A, B)." in
  let base =
    let pairs p l = List.map (fun (x, y) -> (p, [ Term.Int x; Term.Int y ])) l in
    Database.of_facts
      (pairs "r" [ (1, 1) ]
      @ pairs "s" [ (2, 2); (4, 4); (6, 6); (8, 8) ]
      @ pairs "t" [ (1, 2); (3, 4); (5, 6); (7, 8) ])
  in
  let view_db = Materialize.views base views in
  Format.printf "%-24s %-18s %8s@." "plan" "strategy" "cost";
  let report name (p : Query.t) strategy =
    let plan =
      match strategy with
      | `Supplementary -> M3.supplementary ~head:p.head p.body
      | `Heuristic -> M3.heuristic ~views ~query ~head:p.head p.body
    in
    Format.printf "%-24s %-18s %8d@." name
      (match strategy with `Supplementary -> "supplementary" | `Heuristic -> "heuristic")
      (M3.cost_of_plan view_db plan)
  in
  report "P1 = v1(A,B),v2(A,C)" p1 `Supplementary;
  report "P2 = v1(A,B),v2(A,B)" p2 `Supplementary;
  report "P2 = v1(A,B),v2(A,B)" p2 `Heuristic

(* ------------------------------------------------------------------ *)
(* Ablation: equivalence-class grouping on/off.                        *)

let ablation ~settings =
  header "Ablation: CoreCover with and without equivalence-class grouping";
  Format.printf "%8s %8s %16s %16s@." "shape" "views" "grouped-ms" "ungrouped-ms";
  List.iter
    (fun (shape, name) ->
      List.iter
        (fun num_views ->
          let config =
            { Generator.default with shape; num_views; seed = 31 + num_views }
          in
          let inst = Generator.generate_with_rewriting config in
          let query = inst.Generator.query and views = inst.views in
          let _, on_ms = time_ms (fun () -> Corecover.gmrs ~query ~views ()) in
          let _, off_ms =
            time_ms (fun () -> Corecover.gmrs ~group_views:false ~query ~views ())
          in
          Format.printf "%8s %8d %16.1f %16.1f@." name num_views on_ms off_ms)
        (List.filter (fun n -> n <= 400) settings.view_counts))
    [ (Generator.Star, "star"); (Generator.Chain, "chain") ]

(* ------------------------------------------------------------------ *)
(* Join-ordering ablation: DP over subsets vs exhaustive.              *)

let joinorder () =
  header "M2 join ordering: DP over subsets vs connected-DP vs exhaustive";
  Format.printf "%10s %12s %14s %16s %10s %12s@." "subgoals" "dp-ms" "connected-ms"
    "exhaustive-ms" "same-cost" "conn-loss";
  List.iter
    (fun n ->
      (* single-subgoal views force an n-subgoal rewriting; small
         relations keep the cross-product subsets affordable *)
      let config =
        { Generator.default with shape = Generator.Chain; query_subgoals = n;
          num_relations = n; view_subgoals_min = 1; view_subgoals_max = 1;
          num_views = 3 * n; seed = 77 + n }
      in
      let inst = Generator.generate_with_rewriting config in
      let query = inst.Generator.query and views = inst.views in
      let base = Generator.base_database ~tuples:12 ~domain:10 inst in
      let view_db = Materialize.views base views in
      let r = Corecover.gmrs ~query ~views () in
      match r.rewritings with
      | [] -> Format.printf "%10d (no rewriting)@." n
      | p :: _ ->
          let (_, dp_cost), dp_ms = time_ms (fun () -> M2.optimal view_db p.Query.body) in
          let connected, conn_ms =
            time_ms (fun () -> M2.optimal_connected view_db p.Query.body)
          in
          let conn_loss =
            match connected with
            | Some (_, c) -> Printf.sprintf "%10.2fx" (float_of_int c /. float_of_int dp_cost)
            | None -> Printf.sprintf "%10s" "n/a"
          in
          if n <= 6 then begin
            let (_, ex_cost), ex_ms =
              time_ms (fun () -> M2.optimal_exhaustive view_db p.Query.body)
            in
            Format.printf "%10d %12.2f %14.2f %16.2f %10b %s@."
              (List.length p.Query.body) dp_ms conn_ms ex_ms (dp_cost = ex_cost) conn_loss
          end
          else
            Format.printf "%10d %12.2f %14.2f %16s %10s %s@."
              (List.length p.Query.body) dp_ms conn_ms "(skipped)" "-" conn_loss)
    [ 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* Extension: all four query shapes side by side.                      *)

let shapes ~settings =
  header "Extension: CoreCover across query shapes (avg ms per query)";
  let shapes =
    [
      (Generator.Star, "star", 8);
      (Generator.Chain, "chain", 8);
      (Generator.Cycle, "cycle", 8);
      (Generator.Clique, "clique", 6);
    ]
  in
  Format.printf "%8s" "views";
  List.iter (fun (_, name, _) -> Format.printf " %10s" name) shapes;
  Format.printf "@.";
  List.iter
    (fun num_views ->
      Format.printf "%8d" num_views;
      List.iter
        (fun (shape, _, query_subgoals) ->
          let total = ref 0. in
          for qi = 0 to settings.queries_per_point - 1 do
            let config =
              { Generator.default with shape; query_subgoals; num_views;
                seed = 60 + (qi * 7919) + num_views }
            in
            match Generator.generate_with_rewriting ~max_attempts:100 config with
            | exception Failure _ -> ()
            | inst ->
                let _, ms =
                  time_ms (fun () ->
                      Corecover.gmrs ~query:inst.Generator.query ~views:inst.views ())
                in
                total := !total +. ms
          done;
          Format.printf " %10.1f" (!total /. float_of_int settings.queries_per_point))
        shapes;
      Format.printf "@.")
    (List.filter (fun n -> n <= 400) settings.view_counts)

(* ------------------------------------------------------------------ *)
(* The paper's chain-head-policy remark: "If we only kept the head and
   tail variables of the chain as the head arguments of the query and
   views, then there are very few rewritings generated."  With contiguous
   segment views the tuple-cores provably coincide under both policies
   (hidden interior variables are existential in the query too), so this
   reproduction finds identical counts; see EXPERIMENTS.md for the
   analysis of the deviation. *)

let endpoints () =
  header "Chain head policy: endpoints-only vs all variables distinguished";
  Format.printf "%8s %22s %22s@." "views" "all-dist (found/GMRs)" "endpoints (found/GMRs)";
  List.iter
    (fun num_views ->
      let attempt ~endpoints seed =
        let config =
          { Generator.default with shape = Generator.Chain; num_views;
            chain_endpoints_only = endpoints; seed }
        in
        let inst = Generator.generate config in
        if Corecover.has_rewriting ~query:inst.Generator.query ~views:inst.views then
          let r = Corecover.gmrs ~query:inst.Generator.query ~views:inst.views () in
          (1, List.length r.rewritings)
        else (0, 0)
      in
      let tally ~endpoints =
        List.fold_left
          (fun (found, gmrs) seed ->
            let f, g = attempt ~endpoints seed in
            (found + f, gmrs + g))
          (0, 0)
          (List.init 10 (fun i -> 300 + (i * 977) + num_views))
      in
      let fa, ga = tally ~endpoints:false in
      let fe, ge = tally ~endpoints:true in
      Format.printf "%8d %14d / %-7d %14d / %-7d@." num_views fa ga fe ge)
    [ 20; 50; 100; 200 ]

(* ------------------------------------------------------------------ *)
(* Extension: plan quality of statistics-based ordering vs true sizes. *)

let estimate () =
  header "Extension: join ordering from statistics vs true sizes (M2 cells)";
  Format.printf "%6s %12s %14s %16s %8s@." "run" "true-opt" "estimated-plan" "quality-loss"
    "subgoals";
  let ratios = ref [] in
  for run = 1 to 10 do
    let config =
      { Generator.default with shape = Generator.Chain; query_subgoals = 5;
        num_relations = 5; view_subgoals_min = 1; view_subgoals_max = 1;
        num_views = 15; seed = 500 + run }
    in
    match Generator.generate_with_rewriting ~max_attempts:100 config with
    | exception Failure _ -> ()
    | inst ->
        let query = inst.Generator.query and views = inst.views in
        (* skewed data: the uniform-assumption estimator actually errs *)
        let base =
          Datagen.for_query_skewed (Prng.create (900 + run)) ~tuples:25 ~domain:12 query
        in
        let view_db = Materialize.views base views in
        let r = Corecover.gmrs ~query ~views () in
        (match r.rewritings with
        | [] -> ()
        | p :: _ ->
            let catalog = Estimate.analyze view_db in
            let est_order, _ = Estimate.optimal catalog p.Query.body in
            let realized = M2.cost_of_order view_db est_order in
            let _, true_opt = M2.optimal view_db p.Query.body in
            let ratio = float_of_int realized /. float_of_int (max 1 true_opt) in
            ratios := ratio :: !ratios;
            Format.printf "%6d %12d %14d %15.2fx %8d@." run true_opt realized ratio
              (List.length p.Query.body))
  done;
  (match !ratios with
  | [] -> ()
  | rs ->
      let avg = List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs) in
      Format.printf "average quality loss: %.2fx over %d runs@." avg (List.length rs))

(* ------------------------------------------------------------------ *)
(* Data-scale execution: hash-join engine vs backtracking evaluator    *)
(* on a three-way chain join, with the plan-choice agreement between   *)
(* the statistics-only and the materialized cost modes.                *)

let joins ~settings () =
  header "Data-scale execution: hash-join engine vs backtracking evaluator";
  let query =
    Parser.parse_rule_exn "q(X1, X3) :- r0(0, X1), r1(X1, X2), r2(X2, X3)."
  in
  let sizes =
    if settings.queries_per_point > quick.queries_per_point then
      [ 10_000; 100_000; 1_000_000 ]
    else [ 10_000; 100_000 ]
  in
  Format.printf "%9s %9s %10s %10s %9s %12s %7s %6s@." "rows" "answers" "exec-ms"
    "eval-ms" "speedup" "rows/s" "oracle" "cost=";
  List.iter
    (fun n ->
      let domain = max 4 (n / 10) in
      let spec predicate = { Datagen.predicate; arity = 2; tuples = n; domain } in
      let db =
        (* the last column is Zipf-skewed: the engine and the estimator
           both have to cope with non-uniform data *)
        Datagen.random_dist (Prng.create (41 + n))
          [
            (spec "r0", []);
            (spec "r1", []);
            (spec "r2", [ Datagen.Uniform; Datagen.Zipf 0.9 ]);
          ]
      in
      let interned, intern_ms = time_ms (fun () -> Interned.of_database db) in
      (* warm-up run, metered for the reduction/partition counters *)
      let pruned0 = Metrics.value (Metrics.counter "vplan_semijoin_rows_pruned_total") in
      let parts0 = Metrics.value (Metrics.counter "vplan_join_partitions_total") in
      ignore (Exec.answers interned query);
      let rows_pruned =
        Metrics.value (Metrics.counter "vplan_semijoin_rows_pruned_total") - pruned0
      in
      let partitions =
        Metrics.value (Metrics.counter "vplan_join_partitions_total") - parts0
      in
      let best = ref infinity and ans = ref (Relation.empty 2) in
      for _ = 1 to 3 do
        let r, ms = time_ms (fun () -> Exec.answers interned query) in
        ans := r;
        if ms < !best then best := ms
      done;
      let exec_ms = !best in
      (* the backtracking evaluator rescans whole relations per binding,
         so it is only run up to 10^5 rows *)
      let run_eval = n <= 100_000 in
      let eval_ans, eval_ms =
        if run_eval then
          let r, ms = time_ms (fun () -> Eval.answers db query) in
          (Some r, ms)
        else (None, 0.)
      in
      let indexed = Indexed_db.answers (Indexed_db.of_database db) query in
      let oracle_equal =
        Relation.equal !ans indexed
        && match eval_ans with None -> true | Some r -> Relation.equal !ans r
      in
      (* plan-choice agreement: the order picked from statistics alone
         must not be beatable by any order under the materialized cost *)
      let est = Estimate.of_stats (Stats.collect db) in
      let est_order, est_cost = M2.optimal_estimated est query.Query.body in
      let exact_cost = M2.cost_of_order db est_order in
      let cost_equal =
        M2.optimal_pruned ~bound:exact_cost db query.Query.body = None
      in
      let speedup = if run_eval && exec_ms > 0. then eval_ms /. exec_ms else 0. in
      let rows_per_sec =
        if exec_ms > 0. then float_of_int (3 * n) /. (exec_ms /. 1000.) else 0.
      in
      joins_rows :=
        {
          jn_rows = n;
          jn_answers = Relation.cardinality !ans;
          jn_intern_ms = intern_ms;
          jn_exec_ms = exec_ms;
          jn_eval_ms = eval_ms;
          jn_speedup = speedup;
          jn_rows_per_sec = rows_per_sec;
          jn_oracle_equal = oracle_equal;
          jn_est_cost = est_cost;
          jn_exact_cost = exact_cost;
          jn_cost_equal = cost_equal;
          jn_rows_pruned = rows_pruned;
          jn_partitions = partitions;
        }
        :: !joins_rows;
      Format.printf "%9d %9d %10.2f %10s %9s %12.0f %7b %6b@." n
        (Relation.cardinality !ans) exec_ms
        (if run_eval then Printf.sprintf "%.2f" eval_ms else "-")
        (if run_eval then Printf.sprintf "%.1fx" speedup else "-")
        rows_per_sec oracle_equal cost_equal)
    sizes

(* ------------------------------------------------------------------ *)
(* X11: acyclic fast path — full Yannakakis over the GYO join tree vs  *)
(* the general hash-join pipeline, and join-tree containment DP vs     *)
(* backtracking.                                                       *)

(* Target for the containment A/B: a branching "ladder" of depth d over
   one relation — from the distinguished root every walk forks twice per
   level and dies at the leaves.  A chain probe of length d+1 has no
   homomorphic image, but backtracking discovers that only after
   exploring all ~2^d partial walks, while the join-tree DP answers in
   O(d · edges) hash work.  Probes of length ≤ d are satisfiable and
   both sides find those quickly, so the probe mix exercises both
   verdicts. *)
let ladder_query depth =
  let v p i = Term.Var (Printf.sprintf "%s%d" p i) in
  let body =
    List.concat
      (List.init depth (fun i ->
           [
             Atom.make "r" [ v "A" i; v "A" (i + 1) ];
             Atom.make "r" [ v "A" i; v "B" (i + 1) ];
             Atom.make "r" [ v "B" i; v "A" (i + 1) ];
             Atom.make "r" [ v "B" i; v "B" (i + 1) ];
           ]))
  in
  Query.make_exn (Atom.make "p" [ v "A" 0 ]) body

let chain_probe m =
  let v i = Term.Var (Printf.sprintf "Y%d" i) in
  Query.make_exn
    (Atom.make "p" [ v 0 ])
    (List.init m (fun i -> Atom.make "r" [ v i; v (i + 1) ]))

let acyclic_bench ~settings () =
  header "X11: acyclic fast path — Yannakakis execution and join-tree containment";
  let full = settings.queries_per_point > quick.queries_per_point in
  let m_pruned = Metrics.counter "vplan_semijoin_rows_pruned_total" in
  let m_parts = Metrics.counter "vplan_join_partitions_total" in
  let m_acyclic = Metrics.counter "vplan_acyclic_queries_total" in
  let m_fastpath = Metrics.counter "vplan_containment_fastpath_total" in
  (* -- containment: join-tree DP vs backtracking -------------------- *)
  let depth = if full then 12 else 10 in
  let checks = 1000 in
  let target = ladder_query depth in
  let probes =
    [| chain_probe (depth - 1); chain_probe depth; chain_probe (depth + 1) |]
  in
  let run_checks ~fastpath =
    let verdicts = Array.make checks false in
    let _, ms =
      time_ms (fun () ->
          for i = 0 to checks - 1 do
            verdicts.(i) <-
              Containment.is_contained ~fastpath target
                probes.(i mod Array.length probes)
          done)
    in
    (verdicts, ms)
  in
  let f0 = Metrics.value m_fastpath in
  let fast_verdicts, cfast_ms = run_checks ~fastpath:true in
  let cfastpath = Metrics.value m_fastpath > f0 in
  let slow_verdicts, cslow_ms = run_checks ~fastpath:false in
  let cagree = fast_verdicts = slow_verdicts in
  (* end-to-end rewrite latency on the path-view workload, fast path
     toggled process-wide so every internal containment check follows *)
  let rewrite_views = if full then 1000 else 200 in
  let inst =
    Generator.generate_with_rewriting ~max_attempts:100
      {
        Generator.default with
        shape = Generator.Path;
        query_subgoals = 12;
        num_relations = 2;
        num_views = rewrite_views;
        seed = 1100;
      }
  in
  let query = inst.Generator.query and views = inst.views in
  Homomorphism.set_fastpath false;
  let _, rw_general_ms = time_ms (fun () -> Corecover.gmrs ~query ~views ()) in
  Homomorphism.set_fastpath true;
  let _, rw_fast_ms = time_ms (fun () -> Corecover.gmrs ~query ~views ()) in
  Format.printf "%8s %8s %12s %13s %9s %7s %10s@." "checks" "depth" "tree-dp-ms"
    "backtrack-ms" "speedup" "agree" "fastpath";
  Format.printf "%8d %8d %12.1f %13.1f %8.1fx %7b %10b@." checks depth cfast_ms
    cslow_ms
    (cslow_ms /. Float.max 1e-9 cfast_ms)
    cagree cfastpath;
  Format.printf
    "rewrite latency (path workload, %d views): fastpath %.1f ms, \
     backtracking %.1f ms@."
    rewrite_views rw_fast_ms rw_general_ms;
  acyclic_containment :=
    Some
      {
        cn_checks = checks;
        cn_depth = depth;
        cn_fast_ms = cfast_ms;
        cn_slow_ms = cslow_ms;
        cn_speedup = cslow_ms /. Float.max 1e-9 cfast_ms;
        cn_agree = cagree;
        cn_fastpath = cfastpath;
        cn_rewrite_views = rewrite_views;
        cn_rewrite_fast_ms = rw_fast_ms;
        cn_rewrite_general_ms = rw_general_ms;
      };
  (* -- execution: Yannakakis vs pairwise vs plain hash join --------- *)
  let shapes =
    [
      ( "path",
        Parser.parse_rule_exn
          "q(X0, X6) :- r0(X0, X1), r1(X1, X2), r2(X2, X3), r3(X3, X4), \
           r4(X4, X5), r5(X5, X6).",
        6 );
      ( "star",
        Parser.parse_rule_exn
          "q(C) :- r0(C, X1), r1(C, X2), r2(C, X3), r3(C, X4).",
        4 );
      ( "chain",
        Parser.parse_rule_exn
          "q(X0, X3) :- r0(X0, X1), r1(X1, X2), r2(X2, X3).",
        3 );
    ]
  in
  let sizes =
    if full then [ 10_000; 100_000; 1_000_000 ] else [ 10_000; 100_000 ]
  in
  (* sparse data (domain = 4x rows, so most join keys miss) leaves many
     dangling tuples for the reduction to prune; the last relation's
     value column is Zipf-skewed *)
  let mk_db natoms n =
    Datagen.random_dist
      (Prng.create (53 + natoms + n))
      (List.init natoms (fun i ->
           ( {
               Datagen.predicate = "r" ^ string_of_int i;
               arity = 2;
               tuples = n;
               domain = 4 * n;
             },
             if i = natoms - 1 then [ Datagen.Uniform; Datagen.Zipf 0.9 ]
             else [] )))
  in
  Format.printf "%6s %9s %9s %10s %12s %11s %9s %6s %6s@." "shape" "rows"
    "answers" "yk-ms" "pairwise-ms" "general-ms" "speedup" "equal" "cost=";
  List.iter
    (fun (name, query, natoms) ->
      (* independent oracle on a small instance: the backtracking
         evaluator rescans relations per binding, so it only sees 2000
         rows — the engines must agree with it there *)
      let eval_ok =
        let db = mk_db natoms 2000 in
        let interned = Interned.of_database db in
        Relation.equal
          (Exec.answers ~acyclic:true interned query)
          (Eval.answers db query)
      in
      List.iter
        (fun n ->
          let db = mk_db natoms n in
          let interned = Interned.of_database db in
          let time_mode ~semijoin ~acyclic =
            let ans = ref (Exec.answers ~semijoin ~acyclic interned query) in
            let best = ref infinity in
            for _ = 1 to 3 do
              let r, ms =
                time_ms (fun () ->
                    Exec.answers ~semijoin ~acyclic interned query)
              in
              ans := r;
              if ms < !best then best := ms
            done;
            (!ans, !best)
          in
          (* counters around one metered fast run *)
          let p0 = Metrics.value m_pruned
          and t0 = Metrics.value m_parts
          and a0 = Metrics.value m_acyclic in
          ignore (Exec.answers ~acyclic:true interned query);
          let rows_pruned = Metrics.value m_pruned - p0 in
          let partitions = Metrics.value m_parts - t0 in
          let fastpath = Metrics.value m_acyclic > a0 in
          let fast, fast_ms = time_mode ~semijoin:true ~acyclic:true in
          let pairwise, pairwise_ms = time_mode ~semijoin:true ~acyclic:false in
          let general, general_ms = time_mode ~semijoin:false ~acyclic:false in
          let indexed = Indexed_db.answers (Indexed_db.of_database db) query in
          let answers_equal =
            eval_ok && Relation.equal fast pairwise
            && Relation.equal fast general
            && Relation.equal fast indexed
          in
          (* planner identity, statistics only: the unseeded estimated DP
             is never beaten by the tree order, and the tree shortcut in
             Select fires only when the tree order attains the lower
             bound — i.e. is provably optimal *)
          let est = Estimate.of_stats (Stats.collect db) in
          let _, dp_cost = M2.optimal_estimated est query.Query.body in
          let cost_equal =
            match Hypergraph.tree_order query.Query.body with
            | None -> false
            | Some order ->
                let tree_cost = M2.estimated_cost_of_order est order in
                let lb = M2.estimated_lower_bound est query.Query.body in
                dp_cost <= tree_cost +. 1e-6
                && (tree_cost > lb +. 1e-6 || tree_cost -. dp_cost <= 1e-6)
          in
          let speedup = general_ms /. Float.max 1e-9 fast_ms in
          let rows_per_sec =
            if fast_ms > 0. then
              float_of_int (natoms * n) /. (fast_ms /. 1000.)
            else 0.
          in
          acyclic_rows :=
            {
              ac_shape = name;
              ac_rows = n;
              ac_answers = Relation.cardinality fast;
              ac_fast_ms = fast_ms;
              ac_pairwise_ms = pairwise_ms;
              ac_general_ms = general_ms;
              ac_speedup = speedup;
              ac_rows_per_sec = rows_per_sec;
              ac_answers_equal = answers_equal;
              ac_cost_equal = cost_equal;
              ac_rows_pruned = rows_pruned;
              ac_partitions = partitions;
              ac_fastpath = fastpath;
            }
            :: !acyclic_rows;
          Format.printf "%6s %9d %9d %10.2f %12.2f %11.2f %8.1fx %6b %6b@." name
            n (Relation.cardinality fast) fast_ms pairwise_ms general_ms speedup
            answers_equal cost_equal)
        sizes)
    shapes

(* ------------------------------------------------------------------ *)
(* Extension: open-world certain answers, two algorithms.              *)

let openworld () =
  header "Extension: certain answers — inverse rules vs MiniCon MCR";
  Format.printf "%8s %8s %16s %14s %10s %8s@." "views" "tuples" "inverse-ms" "minicon-ms"
    "agree" "answers";
  List.iter
    (fun num_views ->
      (* short chain workload with one hidden variable per view:
         equivalent rewritings usually do not exist, so the open-world
         fallback is exercised for real; a dense little instance keeps
         certain answers nonempty *)
      let config =
        { Generator.default with shape = Generator.Chain; query_subgoals = 3;
          num_relations = 3; num_views; nondistinguished_per_view = 1;
          seed = 9000 + num_views }
      in
      let inst = Generator.generate config in
      let query = inst.Generator.query and views = inst.views in
      let base = Generator.base_database ~tuples:8 ~domain:8 inst in
      let view_db = Materialize.views base views in
      let certain_ir, ir_ms =
        time_ms (fun () -> Inverse_rules.certain_answers ~views ~query view_db)
      in
      let mcr, mc_ms = time_ms (fun () -> Minicon.maximally_contained ~query ~views ()) in
      let certain_mc =
        match mcr with
        | None -> Relation.empty (Relation.arity certain_ir)
        | Some u -> Eval.answers_ucq view_db u
      in
      Format.printf "%8d %8d %16.2f %14.2f %10b %8d@." num_views
        (Database.total_size view_db) ir_ms mc_ms
        (Relation.equal certain_ir certain_mc)
        (Relation.cardinality certain_ir))
    (* MiniCon's combination count — and the UCQ minimization after it —
       explodes combinatorially with the view count, while the
       inverse-rules algorithm stays polynomial in the view instance:
       exactly the trade-off the two papers describe. *)
    [ 5; 10; 20; 40 ]

(* ------------------------------------------------------------------ *)
(* Resident service: cold vs warm-cache throughput at fig6a scale.     *)

let serve ~settings =
  let num_views = List.fold_left max 0 settings.view_counts in
  header
    (Printf.sprintf "Resident service: cold vs warm throughput (star, %d views)"
       num_views);
  let config =
    { Generator.default with shape = Generator.Star; num_views; seed = 7100 + num_views }
  in
  let inst = Generator.generate_with_rewriting ~max_attempts:100 config in
  let q0 = inst.Generator.query and views = inst.views in
  (* distinct queries: rotations of the head argument list.  The head
     order is part of the query, so every rotation is a different
     canonical form (a cold miss), while its body — and hence its
     rewritability — is unchanged. *)
  let rotate k l =
    let n = List.length l in
    if n = 0 then l
    else List.init n (fun i -> List.nth l ((i + k) mod n))
  in
  let distinct =
    List.init
      (max 1 (List.length q0.Query.head.Atom.args))
      (fun k ->
        Query.make_exn
          (Atom.make q0.Query.head.Atom.pred (rotate k q0.Query.head.Atom.args))
          q0.Query.body)
  in
  (* warm rounds resubmit each distinct query as a fresh alpha-variant
     with the body reversed: isomorphic, so a cache hit, but never the
     stored rendering *)
  let variant round (q : Query.t) =
    let sigma =
      Subst.of_list
        (List.mapi
           (fun i x -> (x, Term.Var (Printf.sprintf "W%d_%d" round i)))
           (Query.vars q))
    in
    let r = Query.apply sigma q in
    Query.make_exn r.Query.head (List.rev r.Query.body)
  in
  let service =
    Service.create (Catalog.create_exn (List.map View.of_query views))
  in
  let run_phase queries =
    let _, ms =
      time_ms (fun () ->
          List.iter
            (fun q ->
              let o =
                Service.rewrite ?budget:(budget_of_opts ())
                  ?max_covers:!opt_max_covers ~domains:!opt_domains service q
              in
              match o.Service.completeness with
              | Corecover.Truncated _ -> any_truncated := true
              | Corecover.Complete -> ())
            queries)
    in
    (List.length queries, ms)
  in
  let repetitions = 20 in
  let cold_n, cold_ms = run_phase distinct in
  let warm_queries =
    List.concat (List.init repetitions (fun r -> List.map (variant r) distinct))
  in
  let warm_n, warm_ms = run_phase warm_queries in
  let qps n ms = float_of_int n /. (ms /. 1000.) in
  let cold_qps = qps cold_n cold_ms and warm_qps = qps warm_n warm_ms in
  let speedup = warm_qps /. cold_qps in
  let st = Service.stats service in
  let hit_rate =
    float_of_int st.Service.hits /. float_of_int (max 1 st.Service.requests)
  in
  Format.printf "%8s %10s %12s %12s %8s %8s@." "phase" "requests" "total-ms" "qps"
    "hits" "misses";
  Format.printf "%8s %10d %12.1f %12.1f %8d %8d@." "cold" cold_n cold_ms cold_qps 0
    cold_n;
  Format.printf "%8s %10d %12.1f %12.1f %8d %8d@." "warm" warm_n warm_ms warm_qps
    st.Service.hits (st.Service.misses - cold_n);
  Format.printf
    "speedup: %.1fx   hit-rate: %.3f   p50: %.3fms   p95: %.3fms   truncated: %d@."
    speedup hit_rate st.Service.latency.Service.p50_ms
    st.Service.latency.Service.p95_ms st.Service.truncated;
  service_metrics :=
    Some
      {
        sm_views = num_views;
        sm_distinct = List.length distinct;
        sm_repetitions = repetitions;
        sm_cold_qps = cold_qps;
        sm_warm_qps = warm_qps;
        sm_speedup = speedup;
        sm_hit_rate = hit_rate;
        sm_p50_ms = st.Service.latency.Service.p50_ms;
        sm_p95_ms = st.Service.latency.Service.p95_ms;
        sm_truncated = st.Service.truncated;
      }

(* ------------------------------------------------------------------ *)
(* Plan selection: the Select engine vs the naive candidate loop.      *)

(* The pre-engine candidate loop, frozen verbatim: the subset DP as it
   stood before the selection engine landed — [Names.Sset] unions per
   state, every subset's environments materialized eagerly, no sharing
   across candidates, no pruning — folded sequentially keeping the
   earliest minimum.  This replica is the reference both for timing and
   for the exactness check; keeping it in the bench makes the
   engine-vs-loop comparison reproducible as the library evolves. *)
module Legacy_m2 = struct
  let width vars = max 1 (Names.Sset.cardinal vars)

  let relation_cells db (a : Atom.t) =
    Eval.relation_size db a * max 1 (Atom.arity a)

  let optimal db body =
    let atoms = Array.of_list body in
    let n = Array.length atoms in
    if n = 0 then ([], 0)
    else if n > 20 then invalid_arg "Legacy_m2.optimal: too many subgoals"
    else begin
      let full = (1 lsl n) - 1 in
      let envs = Array.make (full + 1) None in
      envs.(0) <- Some [ Eval.empty_env ];
      let rec envs_of s =
        match envs.(s) with
        | Some e -> e
        | None ->
            let bit = s land -s in
            let i =
              let rec find k = if 1 lsl k = bit then k else find (k + 1) in
              find 0
            in
            let e = Eval.extend db (envs_of (s lxor bit)) atoms.(i) in
            envs.(s) <- Some e;
            e
      in
      let subset_width s =
        let vars = ref Names.Sset.empty in
        Array.iteri
          (fun i a ->
            if s land (1 lsl i) <> 0 then vars := Names.Sset.union !vars (Atom.var_set a))
          atoms;
        width !vars
      in
      let ir_cells = Array.make (full + 1) (-1) in
      let cells_of s =
        if ir_cells.(s) >= 0 then ir_cells.(s)
        else begin
          let v = List.length (envs_of s) * subset_width s in
          ir_cells.(s) <- v;
          v
        end
      in
      let best = Array.make (full + 1) max_int in
      let choice = Array.make (full + 1) (-1) in
      best.(0) <- 0;
      for s = 1 to full do
        let ir = cells_of s in
        for i = 0 to n - 1 do
          if s land (1 lsl i) <> 0 then begin
            let prev = best.(s lxor (1 lsl i)) in
            if prev < max_int && prev + ir < best.(s) then begin
              best.(s) <- prev + ir;
              choice.(s) <- i
            end
          end
        done
      done;
      let rec rebuild s acc =
        if s = 0 then acc
        else
          let i = choice.(s) in
          rebuild (s lxor (1 lsl i)) (atoms.(i) :: acc)
      in
      let order = rebuild full [] in
      let relation_costs =
        List.fold_left (fun acc a -> acc + relation_cells db a) 0 body
      in
      (order, best.(full) + relation_costs)
    end
end

let naive_best_m2 view_db candidates =
  List.fold_left
    (fun best (p : Query.t) ->
      let order, cost = Legacy_m2.optimal view_db p.Query.body in
      match best with
      | Some (_, _, c) when c <= cost -> best
      | _ -> Some (p, order, cost))
    None candidates

let optimize ~settings =
  header
    "Plan selection: ranked + memoized + branch-and-bound engine vs naive loop";
  Format.printf "%8s %8s %12s %14s %12s %10s %12s@." "views" "queries" "candidates"
    "baseline-ms" "engine-ms" "speedup" "cost-equal";
  List.iter
    (fun num_views ->
      let base_ms = ref 0. and eng_ms = ref 0. in
      let queries = ref 0 and cands = ref 0 in
      let equal = ref true in
      for qi = 0 to settings.queries_per_point - 1 do
        (* the fig6a star workload, same seeds, over a concrete instance *)
        let config =
          {
            Generator.default with
            shape = Generator.Star;
            num_views;
            seed = 1000 + (qi * 7919) + num_views;
          }
        in
        match Generator.generate_with_rewriting ~max_attempts:100 config with
        | exception Failure _ -> ()
        | inst -> (
            let query = inst.Generator.query and views = inst.views in
            let base = Generator.base_database ~tuples:12 ~domain:10 inst in
            let view_db = Materialize.views base views in
            let r = Corecover.all_minimal ~domains:!opt_domains ~query ~views () in
            match r.Corecover.rewritings with
            | [] -> ()
            | candidates ->
                incr queries;
                cands := !cands + List.length candidates;
                let naive, b_ms =
                  time_ms (fun () -> naive_best_m2 view_db candidates)
                in
                let memo = Subplan.create () in
                let engine, e_ms =
                  time_ms (fun () ->
                      Select.best_m2 ~memo ~domains:!opt_domains view_db candidates)
                in
                base_ms := !base_ms +. b_ms;
                eng_ms := !eng_ms +. e_ms;
                (* cost must match exactly; the chosen order may resolve
                   cost ties differently (the legacy DP scans atoms in
                   the candidate's own order, the engine canonicalizes),
                   so verify the engine's order against its own cost
                   model instead *)
                (match (naive, engine) with
                | Some (_, _, n_cost), Some c ->
                    if c.Select.m2_cost <> n_cost then equal := false;
                    if M2.cost_of_order view_db c.Select.m2_order <> c.Select.m2_cost
                    then equal := false
                | None, None -> ()
                | _ -> equal := false))
      done;
      if !queries > 0 then begin
        let speedup = !base_ms /. Float.max 1e-9 !eng_ms in
        let avg_cands = float_of_int !cands /. float_of_int !queries in
        optimizer_rows :=
          {
            or_views = num_views;
            or_queries = !queries;
            or_candidates = avg_cands;
            or_baseline_ms = !base_ms;
            or_engine_ms = !eng_ms;
            or_speedup = speedup;
            or_cost_equal = !equal;
          }
          :: !optimizer_rows;
        Format.printf "%8d %8d %12.1f %14.1f %12.1f %9.1fx %12b@." num_views !queries
          avg_cands !base_ms !eng_ms speedup !equal
      end
      else Format.printf "%8d %8s@." num_views "(no rewritable workload)")
    settings.view_counts

(* ------------------------------------------------------------------ *)
(* Observability: CoreCover with the span tracer on vs off.            *)

let observe ~settings =
  let num_views = List.fold_left max 0 settings.view_counts in
  header
    (Printf.sprintf "Observability overhead: span tracer on vs off (star, %d views)"
       num_views);
  (* the fig6a workload at the sweep's largest point, same seeds *)
  let insts =
    List.filter_map
      (fun qi ->
        let config =
          {
            Generator.default with
            shape = Generator.Star;
            num_views;
            seed = 1000 + (qi * 7919) + num_views;
          }
        in
        match Generator.generate_with_rewriting ~max_attempts:100 config with
        | exception Failure _ -> None
        | inst -> Some inst)
      (List.init settings.queries_per_point Fun.id)
  in
  let passes = 5 in
  let untraced = ref 0. and traced = ref 0. in
  let spans = ref 0 and requests = ref 0 in
  (* each pass runs every query once with the tracer off and once inside
     [Trace.run]; the order flips between passes so cache warmth and
     clock drift hit both sides equally *)
  for pass = 1 to passes do
    List.iter
      (fun (inst : Generator.instance) ->
        let query = inst.Generator.query and views = inst.views in
        let run_off () =
          let _, ms = time_ms (fun () -> corecover_gmrs ~query ~views ()) in
          untraced := !untraced +. ms
        in
        let run_on () =
          let (_, ss), ms =
            time_ms (fun () -> Trace.run (fun () -> corecover_gmrs ~query ~views ()))
          in
          traced := !traced +. ms;
          spans := !spans + List.length ss;
          incr requests
        in
        if pass mod 2 = 1 then (run_off (); run_on ())
        else (run_on (); run_off ()))
      insts
  done;
  let overhead = (!traced -. !untraced) /. Float.max 1e-9 !untraced *. 100. in
  let spans_per_request = float_of_int !spans /. float_of_int (max 1 !requests) in
  Format.printf "%8s %8s %14s %14s %12s %10s@." "queries" "passes" "untraced-ms"
    "traced-ms" "overhead" "spans/req";
  Format.printf "%8d %8d %14.1f %14.1f %11.2f%% %10.1f@." (List.length insts) passes
    !untraced !traced overhead spans_per_request;
  (* flight recorder: the same rewrite workload with one record appended
     per request, ring enabled vs disabled — the always-on cost *)
  let rec_on = ref 0. and rec_off = ref 0. in
  let one_request enabled (inst : Generator.instance) =
    Recorder.set_enabled enabled;
    let r = corecover_gmrs ~query:inst.Generator.query ~views:inst.views () in
    Recorder.append ~kind:"bench"
      ~answers:(List.length r.Corecover.rewritings)
      ~detail:(Atom.to_string inst.Generator.query.Query.head)
      ()
  in
  for pass = 1 to passes do
    List.iter
      (fun inst ->
        let run_off () =
          let (), ms = time_ms (fun () -> one_request false inst) in
          rec_off := !rec_off +. ms
        and run_on () =
          let (), ms = time_ms (fun () -> one_request true inst) in
          rec_on := !rec_on +. ms
        in
        if pass mod 2 = 1 then (run_off (); run_on ())
        else (run_on (); run_off ()))
      insts
  done;
  Recorder.reset ();
  let recorder_overhead =
    (!rec_on -. !rec_off) /. Float.max 1e-9 !rec_off *. 100.
  in
  (* operator profiles: the hash-join engine with a full profile tree
     and estimate callbacks attached vs a plain run, path query over
     skewed data — the [explain analyze] execution cost *)
  let aquery =
    Parser.parse_rule_exn "q(X1, X3) :- r0(0, X1), r1(X1, X2), r2(X2, X3)."
  in
  let n = 100_000 in
  let domain = max 4 (n / 10) in
  let spec predicate = { Datagen.predicate; arity = 2; tuples = n; domain } in
  let db =
    Datagen.random_dist (Prng.create (41 + n))
      [
        (spec "r0", []);
        (spec "r1", []);
        (spec "r2", [ Datagen.Uniform; Datagen.Zipf 0.9 ]);
      ]
  in
  let interned = Interned.of_database db in
  let est = Estimate.of_stats (Stats.collect db) in
  let estimate = function
    | [] -> Float.nan
    | [ a ] -> Estimate.atom_cardinality est a
    | a :: rest ->
        Estimate.profile_card
          (List.fold_left
             (fun p b -> Estimate.join_profiles p (Estimate.atom_profile est b))
             (Estimate.atom_profile est a)
             rest)
  in
  ignore (Exec.answers interned aquery) (* warm-up *);
  let plain = ref 0. and profiled = ref 0. in
  for pass = 1 to passes do
    let run_plain () =
      let _, ms = time_ms (fun () -> Exec.answers interned aquery) in
      plain := !plain +. ms
    and run_profiled () =
      let _, ms =
        time_ms (fun () ->
            let p = Profile.create ~name:"bench" () in
            let r = Exec.answers ~profile:p ~estimate interned aquery in
            ignore (Profile.finish p);
            r)
      in
      profiled := !profiled +. ms
    in
    if pass mod 2 = 1 then (run_plain (); run_profiled ())
    else (run_profiled (); run_plain ())
  done;
  let analyze_overhead =
    (!profiled -. !plain) /. Float.max 1e-9 !plain *. 100.
  in
  Format.printf "%14s %14s %12s %14s %14s %12s@." "recorder-off" "recorder-on"
    "overhead" "plain-exec" "profiled-exec" "overhead";
  Format.printf "%12.1fms %12.1fms %11.2f%% %12.1fms %12.1fms %11.2f%%@."
    !rec_off !rec_on recorder_overhead !plain !profiled analyze_overhead;
  observe_metrics :=
    Some
      {
        ob_views = num_views;
        ob_queries = List.length insts;
        ob_passes = passes;
        ob_untraced_ms = !untraced;
        ob_traced_ms = !traced;
        ob_overhead_pct = overhead;
        ob_spans = spans_per_request;
        ob_recorder_overhead_pct = recorder_overhead;
        ob_analyze_overhead_pct = analyze_overhead;
      }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

let micro () =
  header "bechamel micro-benchmarks (monotonic clock, ns/run)";
  let open Bechamel in
  let star =
    Generator.generate_with_rewriting
      { Generator.default with shape = Generator.Star; num_views = 100; seed = 5 }
  in
  let chain =
    Generator.generate_with_rewriting
      { Generator.default with shape = Generator.Chain; num_views = 100; seed = 5 }
  in
  let carloc_q =
    Parser.parse_rule_exn
      "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)."
  in
  let carloc_v =
    List.map Parser.parse_rule_exn
      [
        "v1(M, D, C) :- car(M, D), loc(D, C).";
        "v2(S, M, C) :- part(S, M, C).";
        "v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).";
        "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).";
        "v5(M, D, C) :- car(M, D), loc(D, C).";
      ]
  in
  let tests =
    Test.make_grouped ~name:"vplan"
      [
        Test.make ~name:"corecover-star-100views"
          (Staged.stage (fun () ->
               ignore
                 (Corecover.gmrs ~query:star.Generator.query ~views:star.views ())));
        Test.make ~name:"corecover-chain-100views"
          (Staged.stage (fun () ->
               ignore
                 (Corecover.gmrs ~query:chain.Generator.query ~views:chain.views ())));
        Test.make ~name:"corecover-carloc"
          (Staged.stage (fun () ->
               ignore (Corecover.gmrs ~query:carloc_q ~views:carloc_v ())));
        Test.make ~name:"containment-carloc"
          (Staged.stage (fun () ->
               ignore (Containment.equivalent carloc_q carloc_q)));
        Test.make ~name:"view-tuples-carloc"
          (Staged.stage (fun () ->
               ignore (View_tuple.compute ~query:carloc_q carloc_v)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:true () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.printf "%-36s %14.0f ns/run@." name est
      | Some _ | None -> Format.printf "%-36s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* The TCP serving tier under concurrent closed-loop load.             *)

let opt_port = ref None (* drive an external server instead of in-process *)
let opt_clients = ref None (* restrict to a single concurrency point *)
let opt_retries = ref 0 (* resend-on-busy budget per request (0 = off) *)
let opt_backoff_ms = ref 5.0 (* base of the exponential retry backoff *)

(* First integer value of ["key": N] in a flat JSON object. *)
let int_field json key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat in
  let n = String.length json in
  let rec find i =
    if i + plen > n then None
    else if String.sub json i plen = pat then begin
      let j = ref (i + plen) in
      let start = !j in
      while !j < n && json.[!j] >= '0' && json.[!j] <= '9' do
        incr j
      done;
      if !j > start then int_of_string_opt (String.sub json start (!j - start))
      else None
    end
    else find (i + 1)
  in
  find 0

let loadgen_bench ~settings =
  header "Network serving tier: closed-loop load, 1 to 256 clients";
  (* The workload is the paper's car-loc-part example: per-request work
     is a warm-cache rewrite of a 3-subgoal query, deliberately tiny so
     the measurement exercises the serving tier — sockets, framing,
     queueing, worker scheduling — rather than CoreCover itself. *)
  let views =
    List.map Parser.parse_rule_exn
      [
        "v1(M, D, C) :- car(M, D), loc(D, C).";
        "v2(S, M, C) :- part(S, M, C).";
        "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).";
      ]
  in
  let base_rewrite =
    "rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)."
  in
  (* pre-rendered isomorphic variants — alpha-renamed, body rotated: all
     cache hits after the first miss, never the stored rendering *)
  let variants =
    Array.init 64 (fun i ->
        Printf.sprintf
          "rewrite q1(S%d, C%d) :- loc(anderson, C%d), part(S%d, M%d, C%d), \
           car(M%d, anderson)."
          i i i i i i i)
  in
  let catalog_file =
    let f = Filename.temp_file "vplan_loadgen" ".dl" in
    let oc = open_out f in
    List.iter
      (fun v -> Printf.fprintf oc "%s.\n" (Format.asprintf "%a" Query.pp v))
      views;
    close_out oc;
    f
  in
  let local = !opt_port = None in
  let srv, srv_domain, port =
    if local then begin
      let shared = Protocol.create_shared ~domains:1 () in
      Protocol.install_catalog shared
        (Catalog.create_exn (List.map View.of_query views));
      let handler () =
        let sess = Protocol.new_session shared in
        fun lines ->
          let reply = Protocol.handle_lines shared sess lines in
          { Net_server.body = reply.Protocol.text; close = reply.Protocol.close }
      in
      let srv =
        Net_server.create ~workers:!server_workers
          ~queue_capacity:!server_queue ~extra_lines:Protocol.extra_lines
          ~handler ()
      in
      let d = Domain.spawn (fun () -> Net_server.run srv) in
      (Some srv, Some d, Net_server.port srv)
    end
    else (None, None, Option.get !opt_port)
  in
  Fun.protect
    ~finally:(fun () ->
      (match srv with Some s -> Net_server.stop s | None -> ());
      (match srv_domain with Some d -> Domain.join d | None -> ());
      Sys.remove catalog_file)
  @@ fun () ->
  (* an external server needs the catalog loaded over the wire *)
  if not local then begin
    let c = Loadgen.Client.connect ~port () in
    (match Loadgen.Client.request c ("catalog load " ^ catalog_file) with
    | l :: _ when String.length l >= 2 && String.sub l 0 2 = "ok" -> ()
    | other ->
        Printf.eprintf "loadgen: catalog load failed: %s\n"
          (String.concat " | " other);
        exit 1);
    Loadgen.Client.close c
  end;
  (* warm: the first miss caches the canonical form, after which every
     variant is a hit *)
  let warmc = Loadgen.Client.connect ~port () in
  ignore (Loadgen.Client.request warmc base_rewrite);
  ignore (Loadgen.Client.request warmc variants.(0));
  Loadgen.Client.close warmc;
  let duration_ms = if settings.queries_per_point > 10 then 3000.0 else 1200.0 in
  let request ~client ~seq =
    variants.(((client * 31) + seq) mod Array.length variants)
  in
  let points =
    match !opt_clients with None -> [ 1; 8; 64; 256 ] | Some n -> [ n ]
  in
  Format.printf "%8s %10s %10s %8s %8s %8s %8s %12s %10s %10s@." "clients"
    "sent" "ok" "hits" "shed" "retried" "errors" "qps" "p50-ms" "p99-ms";
  List.iter
    (fun clients ->
      let r =
        Loadgen.run ~port ~clients ~retries:!opt_retries
          ~backoff_ms:!opt_backoff_ms ~duration_ms ~request ()
      in
      Format.printf "%8d %10d %10d %8d %8d %8d %8d %12.1f %10.3f %10.3f@."
        clients r.Loadgen.sent r.Loadgen.ok r.Loadgen.hits r.Loadgen.shed
        r.Loadgen.retried r.Loadgen.errors r.Loadgen.qps r.Loadgen.p50_ms
        r.Loadgen.p99_ms;
      server_rows :=
        {
          sv_clients = clients;
          sv_sent = r.Loadgen.sent;
          sv_ok = r.Loadgen.ok;
          sv_hits = r.Loadgen.hits;
          sv_shed = r.Loadgen.shed;
          sv_retried = r.Loadgen.retried;
          sv_errors = r.Loadgen.errors;
          sv_qps = r.Loadgen.qps;
          sv_p50_ms = r.Loadgen.p50_ms;
          sv_p99_ms = r.Loadgen.p99_ms;
        }
        :: !server_rows)
    points;
  (match (!opt_clients, List.rev !server_rows) with
  | None, rows -> (
      let qps_at n =
        List.find_map
          (fun r -> if r.sv_clients = n then Some r.sv_qps else None)
          rows
      in
      match (qps_at 1, qps_at 64) with
      | Some one, Some sixty_four when one > 0. ->
          Format.printf "scaling: %.1fx qps at 64 clients vs 1@."
            (sixty_four /. one)
      | _ -> ())
  | Some _, _ -> ());
  (* catalog swap under live traffic: closed-loop clients keep hammering
     while a control connection reloads the catalog mid-run.  Every
     request must come back well-formed — the generation flips between
     two immutable catalogs, never through a torn state — and the
     generation-resets counter must move by exactly one. *)
  let resets_via () =
    let c = Loadgen.Client.connect ~port () in
    let lines = Loadgen.Client.request c "stats --json" in
    Loadgen.Client.close c;
    match lines with
    | [ json ] -> Option.value ~default:0 (int_field json "generation_resets")
    | _ -> 0
  in
  let resets0 = resets_via () in
  let swap_clients = match !opt_clients with Some n -> min n 64 | None -> 64 in
  let control =
    Domain.spawn (fun () ->
        Unix.sleepf (duration_ms /. 2000.0);
        let c = Loadgen.Client.connect ~port () in
        let r = Loadgen.Client.request c ("catalog load " ^ catalog_file) in
        Loadgen.Client.close c;
        match r with
        | l :: _ when String.length l >= 10 && String.sub l 0 10 = "ok catalog"
          ->
            true
        | _ -> false)
  in
  let r = Loadgen.run ~port ~clients:swap_clients ~duration_ms ~request () in
  let swap_ok = Domain.join control in
  let resets = resets_via () - resets0 in
  Format.printf
    "swap under %d clients: resets=%d ok=%d errors=%d closed-early=%d%s@."
    swap_clients resets r.Loadgen.ok r.Loadgen.errors r.Loadgen.closed_early
    (if swap_ok then "" else "  (swap request FAILED)");
  server_swap :=
    Some
      {
        sw_clients = swap_clients;
        sw_resets = resets;
        sw_ok = r.Loadgen.ok;
        sw_errors = r.Loadgen.errors;
        sw_closed_early = r.Loadgen.closed_early;
      }

(* ------------------------------------------------------------------ *)
(* X9: durable store — warm restart vs cold preprocessing, journal     *)
(* replay, and ENOSPC degradation.                                     *)

let bench_temp_dir () =
  let d = Filename.temp_file "vplan_bench_store" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let store_ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "recovery bench: %s: %s" what e)

let recovery () =
  header "X9: durable store — warm restart vs cold preprocessing";
  let n = 1000 in
  (* chain views over a small schema: the last three atoms are redundant
     (they fold into the first three), so cold preprocessing pays
     for real minimization; (a, b, c, d) ranges over 256 combinations,
     so classes hold ~4 equivalent views each and grouping pays for
     real within-bucket equivalence checks *)
  let texts =
    List.init n (fun i ->
        let a = i mod 4
        and b = i / 4 mod 4
        and c = i / 16 mod 4
        and d = i / 64 mod 4 in
        Printf.sprintf
          "w%d(X0, X4) :- e%d(X0, X1), e%d(X1, X2), e%d(X2, X3), e%d(X3, \
           X4), e%d(X0, Y), e%d(X1, W), e%d(X2, Z)."
          i a b c d a b c)
  in
  (* cold boot: parse the catalog file, minimize and canonicalize every
     view, group the equivalence classes *)
  let cat, cold_ms =
    time_ms (fun () ->
        let views =
          List.map (fun t -> store_ok "parse" (Persist.view_of_text t)) texts
        in
        Catalog.create_exn views)
  in
  (* warm boot: open the store and restore the snapshot — no
     recanonicalization, the classes come back keyed *)
  let dir = bench_temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st, _ = store_ok "open" (Store.open_dir dir) in
  store_ok "save" (Store.save st (Persist.snapshot_of cat));
  Store.close st;
  let warm_views, warm_ms =
    time_ms (fun () ->
        let st, r = store_ok "reopen" (Store.open_dir dir) in
        let snap = Option.get r.Store.r_snapshot in
        let cat, _, _ = store_ok "restore" (Persist.state_of_snapshot snap) in
        Store.close st;
        Catalog.num_views cat)
  in
  (* journal replay: the same 1000 views as individual acked mutations *)
  let dir2 = bench_temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir2) @@ fun () ->
  let st2, _ = store_ok "open journal" (Store.open_dir dir2) in
  List.iter
    (fun t -> store_ok "append" (Store.append st2 (Record.Add_view t)))
    texts;
  let journal_kb = float_of_int (Store.journal_bytes st2) /. 1024. in
  Store.close st2;
  let replay_records, replay_ms =
    time_ms (fun () ->
        let st, r = store_ok "reopen journal" (Store.open_dir dir2) in
        let _, _, applied =
          store_ok "replay" (Persist.replay (None, None) r.Store.r_replayed)
        in
        Store.close st;
        applied)
  in
  (* ENOSPC mid-serving: the mutation is refused, reads keep answering *)
  let dir3 = bench_temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir3) @@ fun () ->
  Failpoint.reset ();
  let st3, _ = store_ok "open degraded" (Store.open_dir dir3) in
  let shared = Protocol.create_shared ~domains:1 ~store:st3 () in
  let sess = Protocol.new_session shared in
  let ask line = (Protocol.handle_lines shared sess [ line ]).Protocol.text in
  ignore
    (ask "catalog add v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).");
  Failpoint.arm "store.journal.append" (Failpoint.Io_error "ENOSPC");
  let enospc_readonly =
    String.starts_with ~prefix:"err readonly"
      (ask "catalog add v5(X) :- loc(X, X).")
    && Store.mode st3 = Store.Readonly
  in
  let reads_degraded =
    String.starts_with ~prefix:"ok 1"
      (ask
         "rewrite q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, \
          C).")
  in
  Failpoint.reset ();
  Store.close st3;
  let speedup = if warm_ms > 0. then cold_ms /. warm_ms else infinity in
  Format.printf "%8s %12s %12s %10s %10s %12s %10s@." "views" "cold-ms"
    "warm-ms" "speedup" "replay" "replay-ms" "journal";
  Format.printf "%8d %12.1f %12.1f %9.1fx %10d %12.1f %8.0fkB@." warm_views
    cold_ms warm_ms speedup replay_records replay_ms journal_kb;
  Format.printf "enospc: mutation refused readonly=%b, reads still answer=%b@."
    enospc_readonly reads_degraded;
  recovery_metrics :=
    Some
      {
        rc_views = warm_views;
        rc_cold_ms = cold_ms;
        rc_warm_ms = warm_ms;
        rc_speedup = speedup;
        rc_replay_records = replay_records;
        rc_replay_ms = replay_ms;
        rc_journal_kb = journal_kb;
        rc_enospc_readonly = enospc_readonly;
        rc_reads_degraded = reads_degraded;
      }

let experiments settings =
  [
    ("table2", fun () -> table2 ());
    ( "fig6a",
      fun () ->
        time_figure ~name:"fig6a" ~shape:Generator.Star ~nondistinguished:0 ~settings
          ~title:"Figure 6(a): star queries, all variables distinguished" );
    ( "fig6b",
      fun () ->
        time_figure ~name:"fig6b" ~shape:Generator.Star ~nondistinguished:1 ~settings
          ~title:"Figure 6(b): star queries, 1 variable nondistinguished" );
    ( "fig7",
      fun () ->
        classes_figure ~shape:Generator.Star ~settings
          ~title:"Figure 7: equivalence classes, star queries" );
    ( "fig8a",
      fun () ->
        time_figure ~name:"fig8a" ~shape:Generator.Chain ~nondistinguished:0 ~settings
          ~title:"Figure 8(a): chain queries, all variables distinguished" );
    ( "fig8b",
      fun () ->
        time_figure ~name:"fig8b" ~shape:Generator.Chain ~nondistinguished:1 ~settings
          ~title:"Figure 8(b): chain queries, 1 variable nondistinguished" );
    ( "fig9",
      fun () ->
        classes_figure ~shape:Generator.Chain ~settings
          ~title:"Figure 9: equivalence classes, chain queries" );
    ("example42", fun () -> example42 ());
    ("example61", fun () -> example61 ());
    ("ablation", fun () -> ablation ~settings);
    ("joinorder", fun () -> joinorder ());
    ("shapes", fun () -> shapes ~settings);
    ("endpoints", fun () -> endpoints ());
    ("openworld", fun () -> openworld ());
    ("estimate", fun () -> estimate ());
    ("joins", fun () -> joins ~settings ());
    ("acyclic", fun () -> acyclic_bench ~settings ());
    ("serve", fun () -> serve ~settings);
    ("loadgen", fun () -> loadgen_bench ~settings);
    ("optimize", fun () -> optimize ~settings);
    ("observe", fun () -> observe ~settings);
    ("recovery", fun () -> recovery ());
    ("micro", fun () -> micro ());
  ]

let usage () =
  prerr_endline
    "usage: main.exe [EXPERIMENT...] [--full | --quick | --mode quick|full] [--views N]\n\
    \                [--domains N] [--no-index] [--no-buckets] [--out FILE.json]\n\
    \                [--timeout MS] [--max-steps N] [--max-covers N]\n\
    \                [--clients N] [--port P] [--retries N] [--backoff-ms MS]\n\
    \                                            (loadgen)";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let is_full = ref false in
  let max_views = ref None in
  let out_file = ref None in
  let rec parse wanted = function
    | [] -> List.rev wanted
    | "--full" :: rest ->
        is_full := true;
        parse wanted rest
    | "--quick" :: rest ->
        is_full := false;
        parse wanted rest
    | "--mode" :: m :: rest -> (
        match m with
        | "quick" ->
            is_full := false;
            parse wanted rest
        | "full" ->
            is_full := true;
            parse wanted rest
        | _ -> usage ())
    | "--no-index" :: rest ->
        opt_indexed := false;
        parse wanted rest
    | "--no-buckets" :: rest ->
        opt_buckets := false;
        parse wanted rest
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            opt_domains := d;
            parse wanted rest
        | _ -> usage ())
    | "--views" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            max_views := Some v;
            parse wanted rest
        | _ -> usage ())
    | "--timeout" :: ms :: rest -> (
        match float_of_string_opt ms with
        | Some v when v > 0. ->
            opt_timeout := Some v;
            parse wanted rest
        | _ -> usage ())
    | "--max-steps" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            opt_max_steps := Some v;
            parse wanted rest
        | _ -> usage ())
    | "--max-covers" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            opt_max_covers := Some v;
            parse wanted rest
        | _ -> usage ())
    | "--out" :: file :: rest ->
        out_file := Some file;
        parse wanted rest
    | "--clients" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            opt_clients := Some v;
            parse wanted rest
        | _ -> usage ())
    | "--port" :: p :: rest -> (
        match int_of_string_opt p with
        | Some v when v >= 1 && v < 65536 ->
            opt_port := Some v;
            parse wanted rest
        | _ -> usage ())
    | "--workers" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            server_workers := v;
            parse wanted rest
        | _ -> usage ())
    | "--queue" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            server_queue := v;
            parse wanted rest
        | _ -> usage ())
    | "--retries" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 0 ->
            opt_retries := v;
            parse wanted rest
        | _ -> usage ())
    | "--backoff-ms" :: ms :: rest -> (
        match float_of_string_opt ms with
        | Some v when v > 0.0 ->
            opt_backoff_ms := v;
            parse wanted rest
        | _ -> usage ())
    | a :: _ when String.length a >= 2 && String.sub a 0 2 = "--" -> usage ()
    | a :: rest -> parse (a :: wanted) rest
  in
  let wanted = parse [] args in
  let settings =
    let s = if !is_full then full else quick in
    match !max_views with
    | None -> s
    | Some cap -> { s with view_counts = List.filter (fun n -> n <= cap) s.view_counts }
  in
  let all = experiments settings in
  let to_run =
    match wanted with
    | [] | [ "all" ] -> List.map fst all
    | names -> names
  in
  let mode = if !is_full then "paper-scale" else "quick" in
  (* open the output file before the experiments run, so a bad path fails
     in seconds rather than after the full benchmark *)
  let out =
    match !out_file with
    | None -> None
    | Some path -> (
        match open_out path with
        | oc -> Some (path, oc)
        | exception Sys_error msg ->
            Printf.eprintf "cannot open --out file: %s\n" msg;
            exit 1)
  in
  Format.printf "vplan benchmark harness (%s settings)@." mode;
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some run -> run ()
      | None -> Format.printf "unknown experiment %S (known: %s)@." name
                  (String.concat ", " (List.map fst all)))
    to_run;
  (match out with
  | None -> ()
  | Some (path, oc) ->
      write_json ~mode oc;
      close_out oc;
      Format.printf "@.wrote %d timing rows to %s@." (List.length !json_rows) path);
  if !any_truncated then exit 3
