lib/workload/generator.ml: Atom Datagen List Printf Prng Query String Term View Vplan_cq Vplan_relational Vplan_rewrite Vplan_views
