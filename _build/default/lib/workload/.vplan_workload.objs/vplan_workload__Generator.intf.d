lib/workload/generator.mli: Database Query View Vplan_cq Vplan_relational Vplan_views
