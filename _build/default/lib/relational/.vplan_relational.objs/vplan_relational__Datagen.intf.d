lib/relational/datagen.mli: Database Prng Query Vplan_cq
