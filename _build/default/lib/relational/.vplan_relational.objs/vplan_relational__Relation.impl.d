lib/relational/relation.ml: Format List Printf Set Term Vplan_cq
