lib/relational/datagen.ml: Atom Database Fun List Names Prng Query Relation Subst Term Vplan_cq
