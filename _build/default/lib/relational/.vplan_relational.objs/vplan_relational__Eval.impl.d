lib/relational/eval.ml: Atom Database List Names Query Relation Set Term Ucq Vplan_cq
