lib/relational/prng.mli:
