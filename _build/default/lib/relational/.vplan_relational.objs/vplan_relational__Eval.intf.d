lib/relational/eval.mli: Atom Database Names Query Relation Term Ucq Vplan_cq
