lib/relational/database.ml: Atom Format List Names Relation Term Vplan_cq
