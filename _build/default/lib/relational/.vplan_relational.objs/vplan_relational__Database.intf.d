lib/relational/database.mli: Atom Format Relation Vplan_cq
