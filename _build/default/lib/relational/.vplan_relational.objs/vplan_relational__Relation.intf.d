lib/relational/relation.mli: Format Set Term Vplan_cq
