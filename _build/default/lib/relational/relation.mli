(** In-memory relations with set semantics.

    A relation is a set of tuples of constants, all of the same arity.
    This is the storage layer behind base databases and materialized view
    relations. *)

open Vplan_cq

type tuple = Term.const list

module Tuple_set : Set.S with type elt = tuple

type t

(** [empty arity] is the empty relation of the given arity. *)
val empty : int -> t

val arity : t -> int

(** Number of tuples: the paper's [size(·)] for cost models M2/M3. *)
val cardinality : t -> int

(** [add tuple r] inserts a tuple; raises [Invalid_argument] on an arity
    mismatch. *)
val add : tuple -> t -> t

val of_tuples : int -> tuple list -> t
val tuples : t -> tuple list
val tuple_set : t -> Tuple_set.t
val mem : tuple -> t -> bool
val fold : (tuple -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (tuple -> unit) -> t -> unit
val equal : t -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
