open Vplan_cq

type spec = {
  predicate : string;
  arity : int;
  tuples : int;
  domain : int;
}

let random_tuple rng ~arity ~domain = List.init arity (fun _ -> Term.Int (Prng.int rng domain))

let random rng specs =
  List.fold_left
    (fun db spec ->
      let r =
        List.init spec.tuples (fun _ -> random_tuple rng ~arity:spec.arity ~domain:spec.domain)
        |> Relation.of_tuples spec.arity
      in
      Database.add_relation spec.predicate r db)
    Database.empty specs

let arities_of_query (q : Query.t) =
  List.fold_left
    (fun m (a : Atom.t) ->
      match Names.Smap.find_opt a.pred m with
      | Some arity when arity = Atom.arity a -> m
      | Some _ -> invalid_arg ("Datagen: predicate " ^ a.pred ^ " used with two arities")
      | None -> Names.Smap.add a.pred (Atom.arity a) m)
    Names.Smap.empty q.body

let for_query rng ~tuples ~domain q =
  let specs =
    Names.Smap.bindings (arities_of_query q)
    |> List.map (fun (predicate, arity) -> { predicate; arity; tuples; domain })
  in
  random rng specs

let for_query_nonempty rng ~tuples ~domain q =
  let db = for_query rng ~tuples ~domain q in
  (* Instantiate the body with random constants and plant it as facts so
     that the query is satisfiable; witnesses use the same domain as the
     random tuples. *)
  let witnesses = max 1 (tuples / 10) in
  let plant db _ =
    let assignment =
      List.fold_left
        (fun s x -> Subst.bind x (Term.Cst (Term.Int (Prng.int rng domain))) s)
        Subst.empty (Query.vars q)
    in
    List.fold_left
      (fun db (a : Atom.t) ->
        let ground = Atom.apply assignment a in
        let tuple =
          List.map
            (function
              | Term.Cst c -> c
              | Term.Var x -> invalid_arg ("Datagen: unbound variable " ^ x))
            ground.Atom.args
        in
        Database.add_fact a.pred tuple db)
      db q.body
  in
  List.fold_left plant db (List.init witnesses Fun.id)

(* Nested sampling skews mass toward small values: value v is drawn
   uniformly from [0, u) where u is itself uniform. *)
let skewed_value rng ~domain =
  let upper = 1 + Prng.int rng domain in
  Term.Int (Prng.int rng upper)

let random_skewed rng specs =
  List.fold_left
    (fun db spec ->
      let r =
        List.init spec.tuples (fun _ ->
            List.init spec.arity (fun _ -> skewed_value rng ~domain:spec.domain))
        |> Relation.of_tuples spec.arity
      in
      Database.add_relation spec.predicate r db)
    Database.empty specs

let for_query_skewed rng ~tuples ~domain q =
  let specs =
    Names.Smap.bindings (arities_of_query q)
    |> List.map (fun (predicate, arity) -> { predicate; arity; tuples; domain })
  in
  random_skewed rng specs
