(** A database instance: a finite map from predicate names to relations. *)

open Vplan_cq

type t

val empty : t

(** [add_relation name r db] installs (or replaces) a relation. *)
val add_relation : string -> Relation.t -> t -> t

(** [add_fact name tuple db] inserts a tuple, creating the relation with
    the tuple's arity on first use.  Raises [Invalid_argument] on an arity
    conflict with an existing relation. *)
val add_fact : string -> Relation.tuple -> t -> t

val of_facts : (string * Relation.tuple) list -> t
val find : string -> t -> Relation.t option
val find_exn : string -> t -> Relation.t
val mem : string -> t -> bool
val predicates : t -> string list

(** Total number of tuples across all relations. *)
val total_size : t -> int

(** [facts db] lists every fact as a ground atom — the form consumed by
    homomorphism-based evaluation. *)
val facts : t -> Atom.t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [pp_facts ppf db] prints the database as parseable ground facts (one
    per line, {!Vplan_cq.Parser.parse_facts} syntax).  Symbolic constants
    are printed verbatim: reserved spellings (Skolem terms, frozen
    canonical constants) will not round-trip through the parser. *)
val pp_facts : Format.formatter -> t -> unit
