open Vplan_cq
open Vplan_relational

type relation_stats = {
  card : float;
  distinct : float array; (* per column *)
}

type t = relation_stats Names.Smap.t

let analyze db =
  List.fold_left
    (fun acc pred ->
      match Database.find pred db with
      | None -> acc
      | Some r ->
          let arity = Relation.arity r in
          let columns = Array.init arity (fun _ -> ref Term.Set.empty) in
          Relation.iter
            (fun tuple ->
              List.iteri
                (fun i c -> columns.(i) := Term.Set.add (Term.Cst c) !(columns.(i)))
                tuple)
            r;
          let stats =
            {
              card = float_of_int (Relation.cardinality r);
              distinct = Array.map (fun s -> float_of_int (max 1 (Term.Set.cardinal !s))) columns;
            }
          in
          Names.Smap.add pred stats acc)
    Names.Smap.empty (Database.predicates db)

let missing_stats = { card = 0.; distinct = [||] }

let stats_for t pred =
  match Names.Smap.find_opt pred t with Some s -> Some s | None -> Some missing_stats

(* A profile of an atom or of a join prefix: estimated cardinality plus a
   per-variable distinct-value estimate. *)
type profile = {
  p_card : float;
  p_dv : float Names.Smap.t;
}

let cap_dv card dv = Names.Smap.map (fun v -> Float.min v (Float.max card 1.)) dv

(* Selections local to one atom: constants and repeated variables. *)
let atom_profile t (a : Atom.t) =
  match stats_for t a.pred with
  | None | Some { card = 0.; _ } -> { p_card = 0.; p_dv = Names.Smap.empty }
  | Some stats ->
      let column_dv i =
        if i < Array.length stats.distinct then stats.distinct.(i) else 1.
      in
      let card = ref stats.card in
      let dv = ref Names.Smap.empty in
      List.iteri
        (fun i term ->
          match term with
          | Term.Cst _ -> card := !card /. column_dv i
          | Term.Var x -> (
              match Names.Smap.find_opt x !dv with
              | None -> dv := Names.Smap.add x (column_dv i) !dv
              | Some existing ->
                  (* a repeated variable within the atom: equality between
                     two columns *)
                  card := !card /. Float.max existing (column_dv i);
                  dv := Names.Smap.add x (Float.min existing (column_dv i)) !dv))
        a.args;
      let card = Float.max !card 0. in
      { p_card = card; p_dv = cap_dv card !dv }

let atom_cardinality t a = (atom_profile t a).p_card

let join_profiles left right =
  let shared =
    Names.Smap.filter (fun x _ -> Names.Smap.mem x right.p_dv) left.p_dv
  in
  let selectivity =
    Names.Smap.fold
      (fun x vl acc ->
        let vr = Names.Smap.find x right.p_dv in
        acc /. Float.max vl vr)
      shared 1.
  in
  let card = left.p_card *. right.p_card *. selectivity in
  let dv =
    Names.Smap.union
      (fun _ vl vr -> Some (Float.min vl vr))
      left.p_dv right.p_dv
  in
  { p_card = Float.max card 0.; p_dv = cap_dv card dv }

let order_cost t order =
  let relation_cells =
    List.fold_left
      (fun acc (a : Atom.t) ->
        match stats_for t a.Atom.pred with
        | Some s -> acc +. (s.card *. float_of_int (max 1 (Atom.arity a)))
        | None -> acc)
      0. order
  in
  let _, ir_cells =
    List.fold_left
      (fun (profile, acc) a ->
        let profile = join_profiles profile (atom_profile t a) in
        let width = float_of_int (max 1 (Names.Smap.cardinal profile.p_dv)) in
        (profile, acc +. (profile.p_card *. width)))
      ({ p_card = 1.; p_dv = Names.Smap.empty }, 0.)
      order
  in
  relation_cells +. ir_cells

let optimal t body =
  match Orderings.permutations body with
  | [] -> ([], 0.)
  | perms ->
      List.fold_left
        (fun (best_order, best_cost) order ->
          let c = order_cost t order in
          if c < best_cost then (order, c) else (best_order, best_cost))
        ([], Float.infinity) perms
