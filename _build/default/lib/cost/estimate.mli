(** System-R-style cardinality estimation for the M2 cost model.

    The paper's optimizer costs plans against true intermediate sizes; a
    production optimizer only has statistics.  This module implements the
    classical catalog (per-relation cardinality, per-column distinct
    counts) and the textbook estimation rules:

    - a constant in column [i] selects [1 / V(R,i)] of the relation;
    - a repeated variable within an atom keeps [1 / max(V, V')];
    - an equi-join on a shared variable keeps [1 / max(V(L,x), V(R,x))]
      of the cross product, with distinct-value counts propagated as the
      minimum across joined columns.

    The ablation bench [estimate] measures how much plan quality is lost
    by optimizing against estimates instead of true sizes. *)

open Vplan_cq
open Vplan_relational

type t

(** [analyze db] scans every relation once and builds the catalog. *)
val analyze : Database.t -> t

(** [atom_cardinality t atom] — estimated matching tuples after applying
    the atom's constant and repeated-variable selections. *)
val atom_cardinality : t -> Atom.t -> float

(** [order_cost t order] — estimated M2 cost (cells) of joining the atoms
    in the given order. *)
val order_cost : t -> Atom.t list -> float

(** [optimal t body] — the ordering minimizing the {e estimated} M2 cost
    (exhaustive over orderings; intended for rewriting-sized bodies). *)
val optimal : t -> Atom.t list -> Atom.t list * float
