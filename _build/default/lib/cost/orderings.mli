(** Enumerating subgoal orderings for the plan optimizers. *)

(** [permutations l] — all permutations; factorial, intended for the small
    subgoal lists of rewritings. *)
val permutations : 'a list -> 'a list list
