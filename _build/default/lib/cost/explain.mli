(** EXPLAIN-style rendering of physical plans.

    Prints a plan step by step against a concrete (view) database, with
    the relation sizes and intermediate/supplementary sizes actually
    incurred — the output an engineer would use to see {e why} one
    rewriting beats another. *)

open Vplan_cq
open Vplan_relational

(** [m2 ppf db order] — one line per join step with the running
    intermediate-relation size. *)
val m2 : Format.formatter -> Database.t -> Atom.t list -> unit

(** [m3 ppf db plan] — like {!m2}, also showing the attributes dropped at
    each step and the generalized supplementary relation sizes. *)
val m3 : Format.formatter -> Database.t -> M3.plan -> unit
