lib/cost/estimate.mli: Atom Database Vplan_cq Vplan_relational
