lib/cost/m3.mli: Atom Database Format Names Query Relation View Vplan_cq Vplan_relational Vplan_views
