lib/cost/m3.ml: Array Atom Eval Expansion Format List M2 Names Orderings Query Relation String Subst Term Vplan_cq Vplan_relational Vplan_views
