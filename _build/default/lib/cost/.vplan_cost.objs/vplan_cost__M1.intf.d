lib/cost/m1.mli: Query Vplan_cq
