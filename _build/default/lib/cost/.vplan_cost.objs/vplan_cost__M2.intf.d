lib/cost/m2.mli: Atom Database Vplan_cq Vplan_relational
