lib/cost/m2.ml: Array Eval List Orderings Vplan_cq Vplan_relational
