lib/cost/optimizer.mli: Atom Database M3 Query Relation View View_tuple Vplan_cq Vplan_relational Vplan_views
