lib/cost/orderings.ml: List
