lib/cost/filter.ml: Atom List M2 View_tuple Vplan_cq Vplan_views
