lib/cost/estimate.ml: Array Atom Database Float List Names Orderings Relation Term Vplan_cq Vplan_relational
