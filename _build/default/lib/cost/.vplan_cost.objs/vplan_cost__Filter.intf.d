lib/cost/filter.mli: Atom Database View_tuple Vplan_cq Vplan_relational Vplan_views
