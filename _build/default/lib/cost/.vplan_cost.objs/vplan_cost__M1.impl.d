lib/cost/m1.ml: List Query Vplan_cq
