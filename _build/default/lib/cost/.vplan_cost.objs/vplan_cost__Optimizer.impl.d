lib/cost/optimizer.ml: Atom Corecover Database Estimate Eval Filter List M1 M2 M3 Materialize Query View Vplan_cq Vplan_relational Vplan_rewrite Vplan_views
