lib/cost/explain.ml: Atom Eval Format List M2 M3 Names String Vplan_cq Vplan_relational
