lib/cost/orderings.mli:
