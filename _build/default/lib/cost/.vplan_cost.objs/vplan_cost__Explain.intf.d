lib/cost/explain.mli: Atom Database Format M3 Vplan_cq Vplan_relational
