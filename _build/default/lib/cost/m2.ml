open Vplan_relational
module Atom = Vplan_cq.Atom
module Names = Vplan_cq.Names

let width vars = max 1 (Names.Sset.cardinal vars)

let relation_cells db (a : Atom.t) =
  Eval.relation_size db a * max 1 (Atom.arity a)

let intermediate_sizes db order =
  let _, rev_sizes =
    List.fold_left
      (fun (envs, sizes) atom ->
        let envs = Eval.extend db envs atom in
        (envs, List.length envs :: sizes))
      ([ Eval.empty_env ], [])
      order
  in
  List.rev rev_sizes

let cost_of_order db order =
  let relation_costs = List.fold_left (fun acc a -> acc + relation_cells db a) 0 order in
  let _, _, ir_cells =
    List.fold_left
      (fun (envs, seen, acc) atom ->
        let envs = Eval.extend db envs atom in
        let seen = Names.Sset.union seen (Atom.var_set atom) in
        (envs, seen, acc + (List.length envs * width seen)))
      ([ Eval.empty_env ], Names.Sset.empty, 0)
      order
  in
  relation_costs + ir_cells

(* DP over subsets.  With all attributes retained, both the tuple count
   and the width of IR depend only on the joined subgoal set, so
   f(S) = min over g in S of f(S \ {g}) + cells(IR(S)), and the total cost
   adds the (order-independent) relation sizes.  Environments are shared
   bottom-up: envs(S) is computed from envs(S minus one atom) once. *)
let optimal db body =
  let atoms = Array.of_list body in
  let n = Array.length atoms in
  if n = 0 then ([], 0)
  else if n > 20 then invalid_arg "M2.optimal: too many subgoals"
  else begin
    let full = (1 lsl n) - 1 in
    let envs = Array.make (full + 1) None in
    envs.(0) <- Some [ Eval.empty_env ];
    let rec envs_of s =
      match envs.(s) with
      | Some e -> e
      | None ->
          (* peel the lowest atom of the subset *)
          let bit = s land -s in
          let i =
            let rec find k = if 1 lsl k = bit then k else find (k + 1) in
            find 0
          in
          let e = Eval.extend db (envs_of (s lxor bit)) atoms.(i) in
          envs.(s) <- Some e;
          e
    in
    let subset_width s =
      let vars = ref Names.Sset.empty in
      Array.iteri
        (fun i a -> if s land (1 lsl i) <> 0 then vars := Names.Sset.union !vars (Atom.var_set a))
        atoms;
      width !vars
    in
    let ir_cells = Array.make (full + 1) (-1) in
    let cells_of s =
      if ir_cells.(s) >= 0 then ir_cells.(s)
      else begin
        let v = List.length (envs_of s) * subset_width s in
        ir_cells.(s) <- v;
        v
      end
    in
    let best = Array.make (full + 1) max_int in
    let choice = Array.make (full + 1) (-1) in
    best.(0) <- 0;
    for s = 1 to full do
      let ir = cells_of s in
      for i = 0 to n - 1 do
        if s land (1 lsl i) <> 0 then begin
          let prev = best.(s lxor (1 lsl i)) in
          if prev < max_int && prev + ir < best.(s) then begin
            best.(s) <- prev + ir;
            choice.(s) <- i
          end
        end
      done
    done;
    let rec rebuild s acc =
      if s = 0 then acc
      else
        let i = choice.(s) in
        rebuild (s lxor (1 lsl i)) (atoms.(i) :: acc)
    in
    let order = rebuild full [] in
    let relation_costs = List.fold_left (fun acc a -> acc + relation_cells db a) 0 body in
    (order, best.(full) + relation_costs)
  end

let optimal_exhaustive db body =
  match Orderings.permutations body with
  | [] -> ([], 0)
  | perms ->
      List.fold_left
        (fun (best_order, best_cost) order ->
          let c = cost_of_order db order in
          if c < best_cost then (order, c) else (best_order, best_cost))
        ([], max_int) perms

(* Cross-product-free DP: identical recurrence, but a subset is only a
   valid DP state when its atoms form a connected join graph; atom [i]
   may extend state [S] only if it shares a variable with [S] (or S is
   empty). *)
let optimal_connected db body =
  let atoms = Array.of_list body in
  let n = Array.length atoms in
  if n = 0 then Some ([], 0)
  else if n > 20 then invalid_arg "M2.optimal_connected: too many subgoals"
  else begin
    let var_sets = Array.map Atom.var_set atoms in
    let shares i s_vars = not (Names.Sset.is_empty (Names.Sset.inter var_sets.(i) s_vars)) in
    let full = (1 lsl n) - 1 in
    let envs = Array.make (full + 1) None in
    envs.(0) <- Some [ Eval.empty_env ];
    let rec envs_of s =
      match envs.(s) with
      | Some e -> e
      | None ->
          let bit = s land -s in
          let i =
            let rec find k = if 1 lsl k = bit then k else find (k + 1) in
            find 0
          in
          let e = Eval.extend db (envs_of (s lxor bit)) atoms.(i) in
          envs.(s) <- Some e;
          e
    in
    let subset_vars s =
      let vars = ref Names.Sset.empty in
      Array.iteri (fun i vs -> if s land (1 lsl i) <> 0 then vars := Names.Sset.union !vars vs)
        var_sets;
      !vars
    in
    let best = Array.make (full + 1) max_int in
    let choice = Array.make (full + 1) (-1) in
    best.(0) <- 0;
    for s = 1 to full do
      (* try every last atom i such that the prefix s\{i} was reachable
         and i connects to it *)
      for i = 0 to n - 1 do
        if s land (1 lsl i) <> 0 then begin
          let prev_set = s lxor (1 lsl i) in
          let prev = best.(prev_set) in
          if prev < max_int && (prev_set = 0 || shares i (subset_vars prev_set)) then begin
            let ir = List.length (envs_of s) * width (subset_vars s) in
            if prev + ir < best.(s) then begin
              best.(s) <- prev + ir;
              choice.(s) <- i
            end
          end
        end
      done
    done;
    if best.(full) = max_int then None
    else begin
      let rec rebuild s acc =
        if s = 0 then acc
        else
          let i = choice.(s) in
          rebuild (s lxor (1 lsl i)) (atoms.(i) :: acc)
      in
      let order = rebuild full [] in
      let relation_costs = List.fold_left (fun acc a -> acc + relation_cells db a) 0 body in
      Some (order, best.(full) + relation_costs)
    end
  end
