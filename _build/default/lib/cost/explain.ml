open Vplan_cq
open Vplan_relational

let m2 ppf db order =
  let sizes = M2.intermediate_sizes db order in
  let n = List.length order in
  List.iteri
    (fun i (atom, ir) ->
      let action = if i = 0 then "scan" else "join" in
      Format.fprintf ppf "step %d/%d: %s %a  [relation %d tuples; after: %d tuples]@." (i + 1)
        n action Atom.pp atom (Eval.relation_size db atom) ir)
    (List.combine order sizes);
  Format.fprintf ppf "total cost: %d cells@." (M2.cost_of_order db order)

let m3 ppf db (plan : M3.plan) =
  let sizes = M3.gsr_sizes db plan in
  let n = List.length plan in
  List.iteri
    (fun i ((step : M3.step), gsr) ->
      let action = if i = 0 then "scan" else "join" in
      let dropped =
        match step.dropped with [] -> "" | ds -> "  drop {" ^ String.concat ", " ds ^ "}"
      in
      Format.fprintf ppf "step %d/%d: %s %a%s  [relation %d tuples; GSR: %d tuples x %d attrs]@."
        (i + 1) n action Atom.pp step.subgoal dropped
        (Eval.relation_size db step.subgoal)
        gsr
        (Names.Sset.cardinal step.kept))
    (List.combine plan sizes);
  Format.fprintf ppf "total cost: %d cells@." (M3.cost_of_plan db plan)
