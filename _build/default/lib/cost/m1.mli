(** Cost model M1 (Section 3): the number of view subgoals.

    A physical plan of a rewriting is just its set of subgoals; the cost is
    their count.  M1 abstracts "minimize the number of joins". *)

open Vplan_cq

val cost : Query.t -> int

(** [best rewritings] returns the rewritings of minimum subgoal count. *)
val best : Query.t list -> Query.t list
