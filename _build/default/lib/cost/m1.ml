open Vplan_cq

let cost (q : Query.t) = List.length q.body

let best rewritings =
  match rewritings with
  | [] -> []
  | _ ->
      let min_cost = List.fold_left (fun acc q -> min acc (cost q)) max_int rewritings in
      List.filter (fun q -> cost q = min_cost) rewritings
