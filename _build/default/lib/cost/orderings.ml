let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat
        (List.mapi
           (fun i x ->
             let rest = List.filteri (fun j _ -> j <> i) l in
             List.map (fun p -> x :: p) (permutations rest))
           l)
