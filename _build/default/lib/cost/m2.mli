(** Cost model M2 (Section 5): sizes of view relations and intermediate
    relations.

    A physical plan is an ordering [g1, ..., gn] of the rewriting's
    subgoals; joining the first [i] subgoals with {e all attributes
    retained} yields the intermediate relation [IR_i], and

    {v cost = Σ (size(g_i) + size(IR_i)) v}

    [size(·)] counts {e cells} — tuples × attributes — the natural proxy
    for the disk-I/O volume the paper's cost model is motivated by.  (A
    pure tuple count cannot see that dropping attributes shrinks a
    relation, which Section 6's comparisons rely on.)

    Because attributes are never dropped, [size(IR_i)] depends only on the
    {e set} of joined subgoals, so the optimal ordering is found by dynamic
    programming over subsets.  An exhaustive permutation search is provided
    as a cross-check. *)

open Vplan_cq
open Vplan_relational

(** [cost_of_order db order] evaluates a specific ordering against the
    database (normally the materialized-view database). *)
val cost_of_order : Database.t -> Atom.t list -> int

(** [optimal db body] returns a cost-optimal ordering of [body] and its
    cost, by DP over subsets.  [body] must have at most 20 atoms. *)
val optimal : Database.t -> Atom.t list -> Atom.t list * int

(** [optimal_exhaustive db body] — same result via all permutations
    (testing only; factorial). *)
val optimal_exhaustive : Database.t -> Atom.t list -> Atom.t list * int

(** [optimal_connected db body] — DP restricted to {e connected} prefixes
    (every joined subgoal shares a variable with an earlier one), the
    standard cross-product-avoiding heuristic of production optimizers.
    [None] when [body]'s join graph is disconnected (no such ordering
    exists).  The result can be costlier than {!optimal} — a cross
    product is occasionally the cheapest plan — but the search space is
    much smaller; the [joinorder] bench quantifies both effects. *)
val optimal_connected : Database.t -> Atom.t list -> (Atom.t list * int) option

(** [intermediate_sizes db order] lists the {e tuple counts} of
    [IR_1, ..., IR_n] (widths are implied by the variables joined). *)
val intermediate_sizes : Database.t -> Atom.t list -> int list

(** [relation_cells db atom] — [size(g)] of a stored relation: cardinality
    times arity (at least 1). *)
val relation_cells : Database.t -> Atom.t -> int
