open Vplan_cq
open Vplan_relational
open Vplan_views
open Vplan_rewrite

type t = {
  query : Query.t;
  views : View.t list;
  base : Database.t;
  view_db : Database.t;
  corecover : Corecover.result;
}

let create ~query ~views ~base =
  let view_db = Materialize.views base views in
  let corecover = Corecover.all_minimal ~query ~views () in
  { query; views; base; view_db; corecover }

let view_database t = t.view_db
let candidates t = t.corecover.Corecover.rewritings
let filters t = t.corecover.Corecover.filters

type m2_choice = {
  m2_rewriting : Query.t;
  m2_order : Atom.t list;
  m2_cost : int;
}

type m3_choice = {
  m3_rewriting : Query.t;
  m3_plan : M3.plan;
  m3_cost : int;
}

let best_m1 t =
  match M1.best (candidates t) with [] -> None | p :: _ -> Some p

let best_m2 ?(with_filters = true) t =
  let consider best (p : Query.t) =
    let body, order, cost =
      if with_filters then Filter.improve t.view_db ~filters:(filters t) p.body
      else
        let order, cost = M2.optimal t.view_db p.body in
        (p.body, order, cost)
    in
    match best with
    | Some b when b.m2_cost <= cost -> best
    | _ -> Some { m2_rewriting = Query.make_exn p.head body; m2_order = order; m2_cost = cost }
  in
  List.fold_left consider None (candidates t)

let best_m2_estimated t =
  let catalog = Estimate.analyze t.view_db in
  let consider best (p : Query.t) =
    let order, est_cost = Estimate.optimal catalog p.body in
    match best with
    | Some (_, best_est) when best_est <= est_cost -> best
    | _ -> Some ((p, order), est_cost)
  in
  match List.fold_left consider None (candidates t) with
  | None -> None
  | Some ((p, order), _) ->
      Some
        {
          m2_rewriting = p;
          m2_order = order;
          m2_cost = M2.cost_of_order t.view_db order;
        }

let best_m3 ~strategy t =
  let annotate (p : Query.t) order =
    match strategy with
    | `Supplementary -> M3.supplementary ~head:p.head order
    | `Heuristic -> M3.heuristic ~views:t.views ~query:t.query ~head:p.head order
  in
  let consider best (p : Query.t) =
    let plan, cost = M3.optimal t.view_db ~annotate:(annotate p) p.body in
    match best with
    | Some b when b.m3_cost <= cost -> best
    | _ -> Some { m3_rewriting = p; m3_plan = plan; m3_cost = cost }
  in
  List.fold_left consider None (candidates t)

let answer t = Eval.answers t.base t.query
