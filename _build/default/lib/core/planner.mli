(** High-level planning facade: parse → rewrite → optimize → execute.

    This is the "downstream user" entry point combining the rewriting
    generator (CoreCover), the cost-based optimizer and the relational
    engine, mirroring the paper's two-step architecture end to end. *)

open Vplan_cq
open Vplan_views
open Vplan_relational

type problem = {
  query : Query.t;
  views : View.t list;
}

(** [problem_of_program rules] takes the first rule as the query and the
    rest as views; validates view-name uniqueness. *)
val problem_of_program : Query.t list -> (problem, string) result

(** [parse_problem src] parses a Datalog program (see {!Parser}). *)
val parse_problem : string -> (problem, string) result

type analysis = {
  problem : problem;
  minimized_query : Query.t;
  gmrs : Query.t list;  (** optimal under M1 *)
  minimal_rewritings : Query.t list;  (** the M2 search space *)
  filters : View_tuple.t list;
  maximally_contained : Ucq.t option;
      (** open-world fallback when no equivalent rewriting exists *)
}

(** [analyze problem] runs CoreCover / CoreCover{^ *}; when no equivalent
    rewriting exists it falls back to MiniCon's maximally-contained union
    (the open-world answer). *)
val analyze : problem -> analysis

type plan =
  | Logical of Query.t  (** M1: no physical detail *)
  | Ordered of { rewriting : Query.t; order : Atom.t list; cost : int }  (** M2 *)
  | Annotated of { rewriting : Query.t; plan : Vplan_cost.M3.plan; cost : int }  (** M3 *)

type cost_model =
  [ `M1 | `M2 | `M3 of [ `Supplementary | `Heuristic ] ]

(** [plan ~cost_model problem ~base] picks the optimal rewriting + plan
    over the materialized views of [base]. *)
val plan : cost_model:cost_model -> problem -> base:Database.t -> plan option

(** [execute problem ~base p] runs a plan against the materialized views
    and returns the answer relation. *)
val execute : problem -> base:Database.t -> plan -> Relation.t

(** [answer_via_views ~cost_model problem ~base] — the full pipeline:
    plan, execute and sanity-check against the direct evaluation of the
    query ([`Fallback_certain] when only the open-world union is
    available).  This is the one-call API. *)
val answer_via_views :
  cost_model:cost_model ->
  problem ->
  base:Database.t ->
  [ `Equivalent of plan * Relation.t | `Fallback_certain of Relation.t | `No_rewriting ]
