lib/core/planner.mli: Atom Database Query Relation Ucq View View_tuple Vplan_cost Vplan_cq Vplan_relational Vplan_views
