lib/core/planner.ml: Atom Corecover Eval M1 M3 Materialize Minicon Optimizer Option Parser Query Ucq View View_tuple Vplan_baselines Vplan_cost Vplan_cq Vplan_relational Vplan_rewrite Vplan_views
