lib/cq/parser.mli: Atom Query Term
