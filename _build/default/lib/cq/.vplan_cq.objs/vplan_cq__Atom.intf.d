lib/cq/atom.mli: Format Names Set Subst Term
