lib/cq/ucq.mli: Format Query
