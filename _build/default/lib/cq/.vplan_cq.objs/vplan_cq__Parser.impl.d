lib/cq/parser.ml: Atom List Printf Query String Term
