lib/cq/names.mli: Map Set
