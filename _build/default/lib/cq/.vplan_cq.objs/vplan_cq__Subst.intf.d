lib/cq/subst.mli: Format Term
