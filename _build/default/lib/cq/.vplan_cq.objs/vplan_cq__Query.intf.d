lib/cq/query.mli: Atom Format Names Subst Term
