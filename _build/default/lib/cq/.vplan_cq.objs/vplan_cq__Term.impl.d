lib/cq/term.ml: Format Int Map Set String
