lib/cq/names.ml: List Map Set String
