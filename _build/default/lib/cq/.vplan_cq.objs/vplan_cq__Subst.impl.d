lib/cq/subst.ml: Format List Names String Term
