lib/cq/unify.ml: List String Subst Term
