lib/cq/query.ml: Atom Format List Names String Subst Term
