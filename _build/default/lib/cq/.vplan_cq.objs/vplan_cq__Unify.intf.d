lib/cq/unify.mli: Subst Term
