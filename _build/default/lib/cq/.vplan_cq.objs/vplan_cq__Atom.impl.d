lib/cq/atom.ml: Format List Names Set String Subst Term
