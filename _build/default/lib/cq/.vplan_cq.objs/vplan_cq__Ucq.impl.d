lib/cq/ucq.ml: Atom Format List Query String
