(** Variable-name utilities shared across the conjunctive-query kernel.

    Variables are identified by strings.  This module centralizes the
    string-keyed collections used everywhere and the generation of fresh
    names that avoid a given set of used names. *)

module Smap : Map.S with type key = string
module Sset : Set.S with type elt = string

val sset_of_list : string list -> Sset.t

(** [fresh ~used base] returns a name not in [used], equal to [base] when
    possible and otherwise of the form [base ^ "_" ^ k] for the smallest
    natural [k] that avoids the collision. *)
val fresh : used:Sset.t -> string -> string

(** [fresh_list ~used bases] threads [fresh] over [bases] left to right, so
    the returned names are also mutually distinct.  Returns the names and
    the enlarged used-set. *)
val fresh_list : used:Sset.t -> string list -> string list * Sset.t
