type t = {
  head : Atom.t;
  body : Atom.t list;
}

let body_var_set body =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body

let make head body =
  let bvars = body_var_set body in
  let missing = Names.Sset.diff (Atom.var_set head) bvars in
  if Names.Sset.is_empty missing then Ok { head; body }
  else
    Error
      (Format.asprintf "unsafe query: head variable(s) %s not in body"
         (String.concat ", " (Names.Sset.elements missing)))

let make_exn head body =
  match make head body with Ok q -> q | Error msg -> invalid_arg ("Query.make_exn: " ^ msg)

let with_body q body = make q.head body

let compare q1 q2 =
  match Atom.compare q1.head q2.head with
  | 0 -> List.compare Atom.compare q1.body q2.body
  | c -> c

let equal q1 q2 = compare q1 q2 = 0
let head_vars q = Atom.vars q.head

let vars q =
  let rec loop seen acc = function
    | [] -> List.rev acc
    | x :: rest ->
        if Names.Sset.mem x seen then loop seen acc rest
        else loop (Names.Sset.add x seen) (x :: acc) rest
  in
  loop Names.Sset.empty [] (List.concat_map Atom.vars (q.head :: q.body))

let var_set q = Names.sset_of_list (vars q)
let head_var_set q = Atom.var_set q.head

let existential_vars q =
  let hv = head_var_set q in
  List.filter (fun x -> not (Names.Sset.mem x hv)) (vars q)

let is_distinguished q x = Names.Sset.mem x (head_var_set q)

let constants q =
  List.concat_map Atom.constants (q.head :: q.body)
  |> List.sort_uniq Term.compare_const

let body_preds q =
  let rec loop seen acc = function
    | [] -> List.rev acc
    | (a : Atom.t) :: rest ->
        if Names.Sset.mem a.pred seen then loop seen acc rest
        else loop (Names.Sset.add a.pred seen) (a.pred :: acc) rest
  in
  loop Names.Sset.empty [] q.body

let apply s q = { head = Atom.apply s q.head; body = List.map (Atom.apply s) q.body }

let rename_apart ~avoid q =
  let names, _ = Names.fresh_list ~used:avoid (vars q) in
  let s = Subst.of_list (List.map2 (fun x n -> (x, Term.Var n)) (vars q) names) in
  (apply s q, s)

let dedup_body q =
  let rec loop seen acc = function
    | [] -> List.rev acc
    | a :: rest ->
        if Atom.Set.mem a seen then loop seen acc rest
        else loop (Atom.Set.add a seen) (a :: acc) rest
  in
  { q with body = loop Atom.Set.empty [] q.body }

let canonical q =
  let q = dedup_body q in
  let s =
    List.mapi (fun i x -> (x, Term.Var ("V" ^ string_of_int i))) (vars q) |> Subst.of_list
  in
  apply s q

let pp ppf q =
  Format.fprintf ppf "%a :- %a" Atom.pp q.head
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Atom.pp)
    q.body

let to_string q = Format.asprintf "%a" pp q
