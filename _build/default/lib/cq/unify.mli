(** Two-sided unification of terms.

    Unlike {!Subst.unify_term}, which matches a pattern against a fixed
    target, unification may bind variables on either side.  It is used by
    view expansion, where a view atom [v(X, Y)] in a rewriting must be
    reconciled with a view head such as [v(A, A)] — forcing [X] and [Y] to
    be identified in the expansion.

    Substitutions produced here are {e triangular}: a binding may map a
    variable to another variable that is itself bound.  Use {!resolve} or
    {!resolve_subst} to read through chains. *)

(** [resolve s t] follows variable bindings in [s] until reaching an
    unbound variable or a constant.  Binding chains produced by {!mgu_term}
    are acyclic. *)
val resolve : Subst.t -> Term.t -> Term.t

(** [resolve_subst s] closes [s] so that every binding maps directly to its
    resolved term; the result can be applied with {!Subst.apply_term} /
    {!Query.apply}. *)
val resolve_subst : Subst.t -> Subst.t

(** [mgu_term s t1 t2] extends [s] into a unifier of [t1] and [t2], or
    returns [None] on a constant clash. *)
val mgu_term : Subst.t -> Term.t -> Term.t -> Subst.t option

(** [mgu_args s args1 args2] unifies two argument lists pointwise; the
    lists must have equal length. *)
val mgu_args : Subst.t -> Term.t list -> Term.t list -> Subst.t option
