module Smap = Map.Make (String)
module Sset = Set.Make (String)

let sset_of_list l = Sset.of_list l

let fresh ~used base =
  if not (Sset.mem base used) then base
  else
    let rec loop k =
      let candidate = base ^ "_" ^ string_of_int k in
      if Sset.mem candidate used then loop (k + 1) else candidate
    in
    loop 1

let fresh_list ~used bases =
  let used, rev_names =
    List.fold_left
      (fun (used, acc) base ->
        let name = fresh ~used base in
        (Sset.add name used, name :: acc))
      (used, []) bases
  in
  (List.rev rev_names, used)
