(** Unions of conjunctive queries (UCQs).

    Section 8 of the paper points out that once built-in predicates or
    maximally-contained rewritings enter the picture, a rewriting is in
    general a {e union} of conjunctive queries, and asks how to compare
    the efficiency of two such unions.  This module provides the UCQ
    representation and the classical containment machinery
    (Sagiv–Yannakakis): a UCQ [U1] is contained in [U2] iff every
    disjunct of [U1] is contained in some disjunct of [U2].

    All disjuncts must share the same head predicate and arity. *)

type t = private {
  disjuncts : Query.t list;  (** at least one *)
}

(** [make disjuncts] validates head compatibility. *)
val make : Query.t list -> (t, string) result

val make_exn : Query.t list -> t

val disjuncts : t -> Query.t list
val head_arity : t -> int

(** [of_query q] is the singleton union. *)
val of_query : Query.t -> t

(** [union u1 u2] concatenates disjunct lists (heads must agree). *)
val union : t -> t -> (t, string) result

(** [size u] is the total number of body subgoals across disjuncts — the
    M1-style measure discussed in Section 8. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
