let rec resolve s t =
  match t with
  | Term.Cst _ -> t
  | Term.Var x -> (
      match Subst.find x s with
      | None -> t
      | Some t' -> if Term.equal t' t then t else resolve s t')

let mgu_term s t1 t2 =
  let t1 = resolve s t1 and t2 = resolve s t2 in
  match (t1, t2) with
  | Term.Cst c1, Term.Cst c2 -> if Term.equal_const c1 c2 then Some s else None
  | Term.Var x, Term.Var y when String.equal x y -> Some s
  | Term.Var x, t | t, Term.Var x -> Subst.extend x t s

let mgu_args s args1 args2 =
  if List.length args1 <> List.length args2 then None
  else
    List.fold_left2
      (fun acc t1 t2 -> match acc with None -> None | Some s -> mgu_term s t1 t2)
      (Some s) args1 args2

let resolve_subst s =
  Subst.of_list (List.map (fun (x, _) -> (x, resolve s (Term.Var x))) (Subst.bindings s))
