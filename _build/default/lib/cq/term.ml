type const =
  | Int of int
  | Str of string

type t =
  | Var of string
  | Cst of const

let compare_const c1 c2 =
  match (c1, c2) with
  | Int a, Int b -> Int.compare a b
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1
  | Str a, Str b -> String.compare a b

let equal_const c1 c2 = compare_const c1 c2 = 0

let compare t1 t2 =
  match (t1, t2) with
  | Var a, Var b -> String.compare a b
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1
  | Cst a, Cst b -> compare_const a b

let equal t1 t2 = compare t1 t2 = 0
let is_var = function Var _ -> true | Cst _ -> false
let is_const = function Cst _ -> true | Var _ -> false
let var_name = function Var x -> Some x | Cst _ -> None

let pp_const ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.pp_print_string ppf s

let pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst c -> pp_const ppf c

let to_string t = Format.asprintf "%a" pp t
let const_to_string c = Format.asprintf "%a" pp_const c

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
