type token =
  | Tident of string
  | Tvar of string
  | Tint of int
  | Tlparen
  | Trparen
  | Tcomma
  | Tturnstile
  | Tdot
  | Teof

exception Error of string

let is_lower c = (c >= 'a' && c <= 'z')
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_lower c || is_upper c || (c >= '0' && c <= '9') || c = '\'' || c = '-'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let line = ref 1 in
  let fail msg = raise (Error (Printf.sprintf "line %d: %s" !line msg)) in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '(' then (emit Tlparen; incr i)
    else if c = ')' then (emit Trparen; incr i)
    else if c = ',' then (emit Tcomma; incr i)
    else if c = '.' then (emit Tdot; incr i)
    else if c = ':' then begin
      if !i + 1 < n && src.[!i + 1] = '-' then (emit Tturnstile; i := !i + 2)
      else fail "expected ':-'"
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      incr i;
      while !i < n && is_digit src.[!i] do incr i done;
      emit (Tint (int_of_string (String.sub src start (!i - start))))
    end
    else if is_lower c || is_upper c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if is_upper c then emit (Tvar word) else emit (Tident word)
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit Teof;
  List.rev !tokens

(* A tiny recursive-descent parser over the token list. *)
type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let describe = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tvar s -> Printf.sprintf "variable %S" s
  | Tint i -> Printf.sprintf "integer %d" i
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tcomma -> "','"
  | Tturnstile -> "':-'"
  | Tdot -> "'.'"
  | Teof -> "end of input"

let expect st tok what =
  if peek st = tok then advance st
  else raise (Error (Printf.sprintf "expected %s, found %s" what (describe (peek st))))

let parse_term st =
  match peek st with
  | Tvar x -> advance st; Term.Var x
  | Tident s -> advance st; Term.Cst (Term.Str s)
  | Tint i -> advance st; Term.Cst (Term.Int i)
  | t -> raise (Error ("expected a term, found " ^ describe t))

let parse_atom st =
  match peek st with
  | Tident pred ->
      advance st;
      expect st Tlparen "'('";
      let rec args acc =
        let t = parse_term st in
        match peek st with
        | Tcomma -> advance st; args (t :: acc)
        | Trparen -> advance st; List.rev (t :: acc)
        | tok -> raise (Error ("expected ',' or ')', found " ^ describe tok))
      in
      let args = match peek st with
        | Trparen -> advance st; []
        | _ -> args []
      in
      Atom.make pred args
  | t -> raise (Error ("expected a predicate name, found " ^ describe t))

let parse_rule_tokens st =
  let head = parse_atom st in
  expect st Tturnstile "':-'";
  let rec body acc =
    let a = parse_atom st in
    match peek st with
    | Tcomma -> advance st; body (a :: acc)
    | Tdot -> advance st; List.rev (a :: acc)
    | tok -> raise (Error ("expected ',' or '.', found " ^ describe tok))
  in
  let body = body [] in
  match Query.make head body with
  | Ok q -> q
  | Error msg -> raise (Error msg)

let wrap f s = try Ok (f s) with Error msg -> Error msg

let parse_rule =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let q = parse_rule_tokens st in
      expect st Teof "end of input";
      q)

let parse_rule_exn s =
  match parse_rule s with
  | Ok q -> q
  | Error msg -> invalid_arg ("Parser.parse_rule_exn: " ^ msg ^ " in " ^ s)

let parse_program =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let rec loop acc =
        match peek st with
        | Teof -> List.rev acc
        | _ -> loop (parse_rule_tokens st :: acc)
      in
      loop [])

let parse_facts =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let rec loop acc =
        match peek st with
        | Teof -> List.rev acc
        | _ ->
            let a = parse_atom st in
            expect st Tdot "'.'";
            let consts =
              List.map
                (function
                  | Term.Cst c -> c
                  | Term.Var x -> raise (Error ("fact contains variable " ^ x)))
                a.Atom.args
            in
            loop ((a.Atom.pred, consts) :: acc)
      in
      loop [])

let parse_atom =
  wrap (fun s ->
      let st = { toks = tokenize s } in
      let a = parse_atom st in
      expect st Teof "end of input";
      a)
