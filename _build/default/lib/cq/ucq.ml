type t = { disjuncts : Query.t list }

let validate = function
  | [] -> Error "a union of conjunctive queries needs at least one disjunct"
  | (first : Query.t) :: rest ->
      let pred = first.head.Atom.pred and arity = Atom.arity first.head in
      if
        List.for_all
          (fun (q : Query.t) ->
            String.equal q.head.Atom.pred pred && Atom.arity q.head = arity)
          rest
      then Ok ()
      else Error "disjuncts must share the head predicate and arity"

let make disjuncts =
  match validate disjuncts with Ok () -> Ok { disjuncts } | Error e -> Error e

let make_exn disjuncts =
  match make disjuncts with Ok u -> u | Error e -> invalid_arg ("Ucq.make_exn: " ^ e)

let disjuncts u = u.disjuncts

let head_arity u =
  match u.disjuncts with q :: _ -> Atom.arity q.Query.head | [] -> assert false

let of_query q = { disjuncts = [ q ] }
let union u1 u2 = make (u1.disjuncts @ u2.disjuncts)
let size u = List.fold_left (fun acc (q : Query.t) -> acc + List.length q.body) 0 u.disjuncts

let pp ppf u =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@.")
    Query.pp ppf u.disjuncts

let to_string u = Format.asprintf "%a" pp u
