(** Atoms (subgoals): a predicate symbol applied to a list of terms. *)

type t = {
  pred : string;  (** predicate (relation or view) name *)
  args : Term.t list;
}

val make : string -> Term.t list -> t
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** [vars a] lists the variable names of [a] in order of first occurrence,
    without duplicates. *)
val vars : t -> string list

val var_set : t -> Names.Sset.t

(** [terms a] is the set of distinct argument terms of [a]. *)
val terms : t -> Term.Set.t

val constants : t -> Term.const list

(** [apply s a] applies substitution [s] to every argument. *)
val apply : Subst.t -> t -> t

(** [unify s pattern target] directionally matches [pattern] against
    [target] argument by argument (see {!Subst.unify_term}); fails when the
    predicates or arities differ. *)
val unify : Subst.t -> t -> t -> Subst.t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
