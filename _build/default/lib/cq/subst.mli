(** Substitutions: finite maps from variable names to terms.

    Substitutions are the workhorse of homomorphism search, view expansion
    and variable renaming.  Application is non-recursive: a substitution is
    applied simultaneously to all variables (there is no chasing of
    bindings), which is what containment mappings require. *)

type t

val empty : t
val is_empty : t -> bool

(** [singleton x t] binds variable [x] to term [t]. *)
val singleton : string -> Term.t -> t

val of_list : (string * Term.t) list -> t
val bindings : t -> (string * Term.t) list
val cardinal : t -> int

(** [find x s] is the binding of [x] in [s], if any. *)
val find : string -> t -> Term.t option

val mem : string -> t -> bool

(** [bind x t s] adds the binding [x -> t].  Raises [Invalid_argument] when
    [x] is already bound to a different term; rebinding to an equal term is
    a no-op. *)
val bind : string -> Term.t -> t -> t

(** [extend x t s] is [Some (bind x t s)] when consistent, [None] when [x]
    is already bound to a different term. *)
val extend : string -> Term.t -> t -> t option

(** [apply_term s t] replaces a variable by its binding; unbound variables
    and constants are returned unchanged. *)
val apply_term : t -> Term.t -> Term.t

(** [unify_term s pattern target] directionally matches [pattern] against
    [target] under [s]: a pattern variable must map to [target] (extending
    [s] if unbound) and a pattern constant must equal [target].  The target
    term is never instantiated. *)
val unify_term : t -> Term.t -> Term.t -> t option

(** [is_injective_on s vars] holds when the bindings of the variables in
    [vars] are pairwise distinct terms. *)
val is_injective_on : t -> string list -> bool

(** [range s] is the set of terms in the image of [s]. *)
val range : t -> Term.Set.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
