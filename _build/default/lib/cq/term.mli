(** Terms of conjunctive queries: variables and constants.

    Following the paper's conventions, names beginning with an upper-case
    letter denote variables and names beginning with a lower-case letter
    denote constants; the parser enforces this, but the abstract syntax
    here places no restriction on spelling. *)

(** A constant is either an integer or a symbolic constant.  The same type
    doubles as the value domain of the relational engine (a database stores
    tuples of constants). *)
type const =
  | Int of int
  | Str of string

type t =
  | Var of string  (** a variable, e.g. [X] *)
  | Cst of const  (** a constant, e.g. [anderson] or [42] *)

val compare_const : const -> const -> int
val equal_const : const -> const -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val is_var : t -> bool
val is_const : t -> bool

(** [var_name t] is [Some x] when [t] is [Var x]. *)
val var_name : t -> string option

val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val const_to_string : const -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
