(** Safe conjunctive queries: [h(X̄) :- g1(X̄1), ..., gk(X̄k)].

    A query is {e safe} when every head variable also occurs in the body.
    Variables occurring in the head are {e distinguished}; the remaining
    body variables are {e existential} (nondistinguished). *)

type t = private {
  head : Atom.t;
  body : Atom.t list;
}

(** [make head body] builds a query, validating safety.  The body order is
    preserved (it matters for physical plans). *)
val make : Atom.t -> Atom.t list -> (t, string) result

(** [make_exn head body] is [make], raising [Invalid_argument] on an unsafe
    query. *)
val make_exn : Atom.t -> Atom.t list -> t

(** [with_body q body] replaces the body, re-checking safety. *)
val with_body : t -> Atom.t list -> (t, string) result

val equal : t -> t -> bool
val compare : t -> t -> int

(** Distinguished variables, in head order without duplicates. *)
val head_vars : t -> string list

(** All variables, head first then body, in order of first occurrence. *)
val vars : t -> string list

val var_set : t -> Names.Sset.t
val existential_vars : t -> string list
val is_distinguished : t -> string -> bool

(** Constants appearing anywhere in the query. *)
val constants : t -> Term.const list

(** Predicates of the body, without duplicates, in order of occurrence. *)
val body_preds : t -> string list

(** [apply s q] applies a substitution to head and body.  The result is not
    re-checked for safety: a containment mapping applied to a safe query
    yields a safe query. *)
val apply : Subst.t -> t -> t

(** [rename_apart ~avoid q] renames every variable of [q] to a fresh name
    avoiding [avoid] (and the query's own names are reused when they do not
    collide).  Returns the renamed query and the substitution used. *)
val rename_apart : avoid:Names.Sset.t -> t -> t * Subst.t

(** [dedup_body q] removes duplicate body atoms, keeping first occurrences. *)
val dedup_body : t -> t

(** [canonical q] renames variables to ["V0"], ["V1"], ... in order of first
    occurrence (head first) and deduplicates the body.  Two queries that
    differ only by a variable renaming that preserves body order have equal
    canonical forms.  For order-insensitive comparison see
    {!Vplan_containment.Containment.isomorphic}. *)
val canonical : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
