type t = Term.t Names.Smap.t

let empty = Names.Smap.empty
let is_empty = Names.Smap.is_empty
let singleton x t = Names.Smap.singleton x t
let of_list l = List.fold_left (fun m (x, t) -> Names.Smap.add x t m) empty l
let bindings = Names.Smap.bindings
let cardinal = Names.Smap.cardinal
let find x s = Names.Smap.find_opt x s
let mem x s = Names.Smap.mem x s

let extend x t s =
  match Names.Smap.find_opt x s with
  | None -> Some (Names.Smap.add x t s)
  | Some existing -> if Term.equal existing t then Some s else None

let bind x t s =
  match extend x t s with
  | Some s -> s
  | None -> invalid_arg ("Subst.bind: conflicting binding for " ^ x)

let apply_term s = function
  | Term.Cst _ as c -> c
  | Term.Var x as v -> ( match find x s with Some t -> t | None -> v)

let unify_term s pattern target =
  match pattern with
  | Term.Cst c -> (
      match target with
      | Term.Cst c' when Term.equal_const c c' -> Some s
      | Term.Cst _ | Term.Var _ -> None)
  | Term.Var x -> extend x target s

let is_injective_on s vars =
  let rec loop seen = function
    | [] -> true
    | x :: rest -> (
        match find x s with
        | None -> loop seen rest
        | Some t -> (not (Term.Set.mem t seen)) && loop (Term.Set.add t seen) rest)
  in
  loop Term.Set.empty (List.sort_uniq String.compare vars)

let range s = Names.Smap.fold (fun _ t acc -> Term.Set.add t acc) s Term.Set.empty
let equal s1 s2 = Names.Smap.equal Term.equal s1 s2

let pp ppf s =
  let pp_binding ppf (x, t) = Format.fprintf ppf "%s -> %a" x Term.pp t in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_binding)
    (bindings s)
