type t = {
  pred : string;
  args : Term.t list;
}

let make pred args = { pred; args }
let arity a = List.length a.args

let compare a1 a2 =
  match String.compare a1.pred a2.pred with
  | 0 -> List.compare Term.compare a1.args a2.args
  | c -> c

let equal a1 a2 = compare a1 a2 = 0

let vars a =
  let rec loop seen acc = function
    | [] -> List.rev acc
    | Term.Cst _ :: rest -> loop seen acc rest
    | Term.Var x :: rest ->
        if Names.Sset.mem x seen then loop seen acc rest
        else loop (Names.Sset.add x seen) (x :: acc) rest
  in
  loop Names.Sset.empty [] a.args

let var_set a = Names.sset_of_list (vars a)
let terms a = Term.Set.of_list a.args

let constants a =
  List.filter_map (function Term.Cst c -> Some c | Term.Var _ -> None) a.args

let apply s a = { a with args = List.map (Subst.apply_term s) a.args }

let unify s pattern target =
  if String.equal pattern.pred target.pred && arity pattern = arity target then
    List.fold_left2
      (fun acc p t -> match acc with None -> None | Some s -> Subst.unify_term s p t)
      (Some s) pattern.args target.args
  else None

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Term.pp)
    a.args

let to_string a = Format.asprintf "%a" pp a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
