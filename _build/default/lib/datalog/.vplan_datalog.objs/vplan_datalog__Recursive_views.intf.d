lib/datalog/recursive_views.mli: Atom Database Program Relation View Vplan_cq Vplan_relational Vplan_views
