lib/datalog/recursive_views.ml: Atom Eval List Query Relation Seminaive Term Vplan_baselines Vplan_cq Vplan_relational
