lib/datalog/magic.ml: Atom Database Eval Hashtbl List Names Printf Program Query Relation Seminaive String Term Vplan_cq Vplan_relational
