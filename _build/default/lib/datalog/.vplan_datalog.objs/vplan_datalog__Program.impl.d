lib/datalog/program.ml: Atom Format List Names Parser Printf Query String Vplan_cq
