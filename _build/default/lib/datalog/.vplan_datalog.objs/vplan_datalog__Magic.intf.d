lib/datalog/magic.mli: Atom Database Program Relation Vplan_cq Vplan_relational
