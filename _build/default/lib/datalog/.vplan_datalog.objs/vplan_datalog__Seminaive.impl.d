lib/datalog/seminaive.ml: Atom Database Eval List Names Program Query Relation Vplan_cq Vplan_relational
