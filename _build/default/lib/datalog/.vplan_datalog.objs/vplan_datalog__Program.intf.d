lib/datalog/program.mli: Format Names Query Vplan_cq
