lib/datalog/seminaive.mli: Database Program Query Relation Vplan_cq Vplan_relational
