open Vplan_cq
open Vplan_relational

type transformed = {
  program : Program.t;
  seeds : Database.t;
  answer_atom : Atom.t;
}

let adornment_of_atom ~bound (a : Atom.t) =
  String.concat ""
    (List.map
       (function
         | Term.Cst _ -> "b"
         | Term.Var x -> if Names.Sset.mem x bound then "b" else "f")
       a.args)

let adorned_name pred adornment = pred ^ "#" ^ adornment
let magic_name pred adornment = "m#" ^ pred ^ "#" ^ adornment

let bound_args adornment (a : Atom.t) =
  List.filteri (fun i _ -> adornment.[i] = 'b') a.args

(* Transform one rule for one head adornment, collecting adorned +
   magic rules and the set of (pred, adornment) pairs still to process. *)
let transform_rule ~idb ~adornment (r : Query.t) =
  let head_bound =
    List.filteri (fun i _ -> adornment.[i] = 'b') r.head.Atom.args
    |> List.filter_map Term.var_name
    |> Names.sset_of_list
  in
  let magic_head_atom = Atom.make (magic_name r.head.Atom.pred adornment) (bound_args adornment r.head) in
  let rec walk bound prefix_adorned new_rules todo = function
    | [] -> (List.rev prefix_adorned, new_rules, todo)
    | (g : Atom.t) :: rest ->
        if Names.Sset.mem g.pred idb then begin
          let beta = adornment_of_atom ~bound g in
          let adorned_g = Atom.make (adorned_name g.pred beta) g.args in
          let magic_rule =
            (* safe by construction: a bound argument's variables occur in
               the head's magic atom or in the processed prefix *)
            match
              Query.make
                (Atom.make (magic_name g.pred beta) (bound_args beta g))
                (magic_head_atom :: List.rev prefix_adorned)
            with
            | Ok rule -> rule
            | Error e -> failwith ("Magic.transform: unsafe magic rule: " ^ e)
          in
          let new_rules = magic_rule :: new_rules in
          walk
            (Names.Sset.union bound (Atom.var_set g))
            (adorned_g :: prefix_adorned) new_rules
            ((g.pred, beta) :: todo)
            rest
        end
        else
          walk (Names.Sset.union bound (Atom.var_set g)) (g :: prefix_adorned) new_rules todo
            rest
  in
  let body_adorned, magic_rules, todo =
    walk head_bound [] [] [] r.body
  in
  let adorned_head = Atom.make (adorned_name r.head.Atom.pred adornment) r.head.Atom.args in
  let main_rule =
    match Query.make adorned_head (magic_head_atom :: body_adorned) with
    | Ok rule -> rule
    | Error e -> failwith ("Magic.transform: unsafe adorned rule: " ^ e)
  in
  (main_rule :: magic_rules, todo)

let transform program ~query:(q : Atom.t) =
  let idb = Program.idb_predicates program in
  if not (Names.Sset.mem q.pred idb) then
    Error (Printf.sprintf "query predicate %s is not defined by the program" q.pred)
  else begin
    let q_adornment = adornment_of_atom ~bound:Names.Sset.empty q in
    let processed = Hashtbl.create 16 in
    let out_rules = ref [] in
    let rec process = function
      | [] -> ()
      | (pred, adornment) :: rest ->
          if Hashtbl.mem processed (pred, adornment) then process rest
          else begin
            Hashtbl.add processed (pred, adornment) ();
            let todo =
              List.fold_left
                (fun acc (r : Query.t) ->
                  if String.equal r.head.Atom.pred pred then begin
                    let rules, todo = transform_rule ~idb ~adornment r in
                    out_rules := rules @ !out_rules;
                    todo @ acc
                  end
                  else acc)
                [] (Program.rules program)
            in
            process (todo @ rest)
          end
    in
    process [ (q.pred, q_adornment) ];
    let seed_tuple =
      List.filter_map (function Term.Cst c -> Some c | Term.Var _ -> None) q.args
    in
    let seeds =
      Database.add_fact (magic_name q.pred q_adornment) seed_tuple Database.empty
    in
    match Program.make (List.rev !out_rules) with
    | Error e -> Error e
    | Ok program ->
        Ok
          {
            program;
            seeds;
            answer_atom = Atom.make (adorned_name q.pred q_adornment) q.args;
          }
  end

let answers ?max_rounds program edb ~query =
  match transform program ~query with
  | Error e -> invalid_arg ("Magic.answers: " ^ e)
  | Ok { program; seeds; answer_atom } ->
      let edb_with_seeds =
        Database.facts seeds
        |> List.fold_left
             (fun db (a : Atom.t) ->
               let tuple =
                 List.map (function Term.Cst c -> c | Term.Var _ -> assert false) a.args
               in
               Database.add_fact a.pred tuple db)
             edb
      in
      let fixpoint = Seminaive.evaluate ?max_rounds program edb_with_seeds in
      let vars = Atom.vars answer_atom in
      let head = Atom.make "#answer" (List.map (fun x -> Term.Var x) vars) in
      let positions = Eval.answers fixpoint (Query.make_exn head [ answer_atom ]) in
      (* re-shape to the original query's argument list *)
      Relation.fold
        (fun tuple acc ->
          let env =
            Eval.env_of_bindings (List.combine vars tuple)
          in
          Relation.add (Eval.tuple_of_env env query.Atom.args) acc)
        positions
        (Relation.empty (Atom.arity query))
