(** Positive Datalog programs.

    A program is a set of safe rules; predicates defined by some rule
    head are {e intensional} (IDB), all others {e extensional} (EDB).
    Programs are the substrate for two threads the paper builds on:
    the supplementary-relation/magic-set evaluation of [4]
    (Beeri–Ramakrishnan) behind cost model M3, and answering recursive
    queries using views via inverse rules [9] (Duschka–Genesereth). *)

open Vplan_cq

type rule = Query.t
(** a rule is a safe "query": head atom + body atoms *)

type t

(** [make rules] validates safety (via {!Query.make}'s invariant carried
    by the type) and arity consistency across all uses of a predicate. *)
val make : rule list -> (t, string) result

val make_exn : rule list -> t

(** [parse src] reads a program in the Datalog syntax of {!Parser}. *)
val parse : string -> (t, string) result

val rules : t -> rule list

(** Predicates appearing in some head. *)
val idb_predicates : t -> Names.Sset.t

(** Predicates appearing only in bodies. *)
val edb_predicates : t -> Names.Sset.t

(** [is_recursive t] — some IDB predicate depends on itself (through the
    positive dependency graph). *)
val is_recursive : t -> bool

val pp : Format.formatter -> t -> unit
