(** Bottom-up evaluation of Datalog programs.

    {!naive} recomputes every rule against the full database each round;
    {!evaluate} is the standard semi-naive refinement that joins each
    rule once per IDB body position against only the {e delta} facts of
    the previous round.  Both compute the minimal model restricted to the
    given EDB. *)

open Vplan_cq
open Vplan_relational

(** [evaluate program edb] returns the fixpoint database (EDB facts plus
    all derived IDB facts).  [max_rounds] guards against runaway growth
    (default 10_000; raises [Failure] when exceeded). *)
val evaluate : ?max_rounds:int -> Program.t -> Database.t -> Database.t

(** [naive program edb] — reference implementation for testing. *)
val naive : ?max_rounds:int -> Program.t -> Database.t -> Database.t

(** [query program edb q] — evaluate the program and then the conjunctive
    query [q] over the fixpoint. *)
val query : ?max_rounds:int -> Program.t -> Database.t -> Query.t -> Relation.t
