open Vplan_cq
open Vplan_relational
module Inverse_rules = Vplan_baselines.Inverse_rules

let select_atom db (query : Atom.t) =
  let vars = Atom.vars query in
  let head = Atom.make "#answer" (List.map (fun x -> Term.Var x) vars) in
  let bindings = Eval.answers db (Query.make_exn head [ query ]) in
  Relation.fold
    (fun tuple acc ->
      let env = Eval.env_of_bindings (List.combine vars tuple) in
      Relation.add (Eval.tuple_of_env env query.args) acc)
    bindings
    (Relation.empty (Atom.arity query))

let answers_direct ?max_rounds ~program ~query base =
  select_atom (Seminaive.evaluate ?max_rounds program base) query

let certain_answers ?max_rounds ~views ~program ~query view_db =
  let recovered = Inverse_rules.recover_base ~views view_db in
  let fixpoint = Seminaive.evaluate ?max_rounds program recovered in
  let raw = select_atom fixpoint query in
  Relation.fold
    (fun tuple acc ->
      if List.exists Inverse_rules.is_skolem tuple then acc else Relation.add tuple acc)
    raw
    (Relation.empty (Relation.arity raw))
