(** The magic-sets transformation (Beeri–Ramakrishnan, "On the power of
    magic", PODS 1987 — the paper's citation [4], whose supplementary
    relations also motivate cost model M3).

    Given a program and a query atom with some arguments bound to
    constants, the transformation produces a program whose bottom-up
    evaluation only derives facts {e relevant} to the query, simulating
    top-down sideways information passing (left-to-right SIPs here).
    Adorned predicates are spelled [p#bf...], magic predicates
    [m#p#bf...] — spellings the parser cannot produce. *)

open Vplan_cq
open Vplan_relational

type transformed = {
  program : Program.t;  (** adorned rules + magic rules *)
  seeds : Database.t;  (** the magic seed fact(s) for the query *)
  answer_atom : Atom.t;  (** query atom renamed to its adorned predicate *)
}

(** [transform program ~query] adorns the program for the query's binding
    pattern (an argument is bound iff it is a constant).  [Error] when
    the query predicate is not defined by the program. *)
val transform : Program.t -> query:Atom.t -> (transformed, string) result

(** [answers program edb ~query] — end to end: transform, evaluate
    semi-naively (EDB + seeds), and read off the query's answers as the
    relation of matching adorned facts. *)
val answers : ?max_rounds:int -> Program.t -> Database.t -> query:Atom.t -> Relation.t
