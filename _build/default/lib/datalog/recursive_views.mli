(** Answering {e recursive} queries using views — the paper's citation
    [9] (Duschka–Genesereth, PODS 1997).

    For conjunctive queries the inverse-rules construction lives in
    {!Vplan_baselines.Inverse_rules}; combined with the Datalog engine it
    extends verbatim to recursive Datalog queries: recover a Skolemized
    base database from the view instance, run the (possibly recursive)
    program over it bottom-up, and keep the Skolem-free answers.  The
    result is the certain answer under the open-world assumption. *)

open Vplan_cq
open Vplan_views
open Vplan_relational

(** [certain_answers ~views ~program ~query view_db] — [query] is an atom
    over one of [program]'s predicates (constants select, as in
    {!Magic}). *)
val certain_answers :
  ?max_rounds:int ->
  views:View.t list ->
  program:Program.t ->
  query:Atom.t ->
  Database.t ->
  Relation.t

(** [answers_direct ~program ~query base] — ground truth: evaluate the
    program over the base database directly. *)
val answers_direct : ?max_rounds:int -> program:Program.t -> query:Atom.t -> Database.t -> Relation.t
