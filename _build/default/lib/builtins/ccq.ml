open Vplan_cq
open Vplan_relational

let comparison_preds = [ "le"; "lt"; "eq" ]
let is_comparison (a : Atom.t) = List.mem a.pred comparison_preds && Atom.arity a = 2

let constr_of_atom (a : Atom.t) =
  match (a.pred, a.args) with
  | "le", [ l; r ] -> Some { Order_constraint.rel = Le; left = l; right = r }
  | "lt", [ l; r ] -> Some { Order_constraint.rel = Lt; left = l; right = r }
  | "eq", [ l; r ] -> Some { Order_constraint.rel = Eq; left = l; right = r }
  | _ -> None

let split (q : Query.t) =
  let ordinary, comparisons = List.partition (fun a -> not (is_comparison a)) q.body in
  (ordinary, List.filter_map constr_of_atom comparisons)

let ordinary_vars ordinary =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty ordinary

let validate q =
  let ordinary, comparisons = split q in
  let bound = ordinary_vars ordinary in
  let unbound =
    List.concat_map
      (fun (c : Order_constraint.constr) ->
        List.filter_map Term.var_name [ c.left; c.right ])
      comparisons
    |> List.filter (fun x -> not (Names.Sset.mem x bound))
    |> List.sort_uniq String.compare
  in
  if unbound = [] then Ok ()
  else
    Error
      ("comparison variable(s) not bound by ordinary subgoals: "
      ^ String.concat ", " unbound)

let closure_of q =
  let _, comparisons = split q in
  Order_constraint.of_list comparisons

let is_satisfiable q = match closure_of q with Ok _ -> true | Error `Unsatisfiable -> false

let answers db (q : Query.t) =
  (match validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ccq.answers: " ^ msg));
  let ordinary, comparisons = split q in
  let envs = Eval.satisfying_envs db ordinary in
  let ground env term =
    match term with
    | Term.Cst c -> c
    | Term.Var x -> (
        match Eval.env_find env x with
        | Some c -> c
        | None -> invalid_arg "Ccq.answers: unbound comparison variable")
  in
  let keep env =
    List.for_all
      (fun (c : Order_constraint.constr) ->
        Order_constraint.satisfies_ground c.rel (ground env c.left) (ground env c.right))
      comparisons
  in
  let tuples =
    List.filter keep envs
    |> List.map (fun env -> Eval.tuple_of_env env q.head.Atom.args)
  in
  Relation.of_tuples (Atom.arity q.head) tuples

(* Sound containment: q1 ⊑ q2 when (a) q1's comparisons are
   unsatisfiable (q1 is the empty query), or (b) some head-compatible
   homomorphism from q2's ordinary subgoals into q1's ordinary subgoals
   maps q2's comparisons to constraints implied by q1's closure. *)
let is_contained q1 q2 =
  match closure_of q1 with
  | Error `Unsatisfiable -> true
  | Ok closure1 -> (
      let ordinary1, _ = split q1 in
      let ordinary2, comparisons2 = split q2 in
      let q1' = Query.make_exn q1.Query.head ordinary1 in
      let q2' =
        (* keep q2's head; its comparison variables are range-restricted,
           so they occur in ordinary2 whenever q2 is valid *)
        match Query.make q2.Query.head ordinary2 with
        | Ok q -> q
        | Error _ -> q2
      in
      match Vplan_containment.Containment.mappings ~from_q:q2' ~to_q:q1' with
      | [] -> false
      | mappings ->
          List.exists
            (fun phi ->
              let image (c : Order_constraint.constr) =
                {
                  c with
                  Order_constraint.left = Subst.apply_term phi c.left;
                  right = Subst.apply_term phi c.right;
                }
              in
              Order_constraint.implies_all closure1 (List.map image comparisons2))
            mappings)

let equivalent q1 q2 = is_contained q1 q2 && is_contained q2 q1

let is_equivalent_rewriting ~views ~query p =
  match Vplan_views.Expansion.expand ~views p with
  | Error `Unsatisfiable -> false
  | Ok pexp -> equivalent pexp query
