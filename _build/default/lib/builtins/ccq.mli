(** Conjunctive queries with built-in comparison predicates (Section 8).

    Comparisons are written as ordinary subgoals with the reserved
    predicates [le], [lt] and [eq] (arity 2), e.g.

    {v v1(A, B, C, D) :- p(A, B), r(C, D), le(C, D). v}

    The Datalog parser needs no changes, and {!Vplan_views.Expansion}
    already passes non-view predicates through, so views with comparisons
    expand correctly.  This module supplies what changes: safety
    (comparison variables must be range-restricted by ordinary subgoals),
    evaluation (comparisons filter), satisfiability, and a {e sound}
    containment test — a homomorphism on the ordinary subgoals under
    which the container's comparisons are implied by the containee's.
    Containment of CQs with comparisons is Π{_2}{^p}-complete in general;
    the sound test can miss containments that require case analysis over
    variable orderings, and the documentation of each entry point says
    so. *)

open Vplan_cq
open Vplan_relational

val is_comparison : Atom.t -> bool

(** [constr_of_atom a] interprets a reserved-predicate atom. *)
val constr_of_atom : Atom.t -> Order_constraint.constr option

(** [split q] separates ordinary subgoals from comparison constraints. *)
val split : Query.t -> Atom.t list * Order_constraint.constr list

(** [validate q] checks range-restriction: every variable of a comparison
    must occur in an ordinary subgoal. *)
val validate : Query.t -> (unit, string) result

(** [is_satisfiable q] — the comparison part admits a solution. *)
val is_satisfiable : Query.t -> bool

(** [answers db q] evaluates the ordinary part and filters by the
    comparisons.  Raises [Invalid_argument] on a non-range-restricted
    query. *)
val answers : Database.t -> Query.t -> Relation.t

(** [is_contained q1 q2] — {e sound, incomplete}: [true] guarantees
    [q1 ⊑ q2]; [false] is inconclusive when comparisons are involved. *)
val is_contained : Query.t -> Query.t -> bool

(** [equivalent q1 q2] — sound in both directions. *)
val equivalent : Query.t -> Query.t -> bool

(** [is_equivalent_rewriting ~views ~query p] — expansion equivalence
    with comparison-aware (sound) containment. *)
val is_equivalent_rewriting :
  views:Vplan_views.View.t list -> query:Query.t -> Query.t -> bool
