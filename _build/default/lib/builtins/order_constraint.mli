(** Conjunctions of order constraints over variables and integer
    constants: satisfiability and implication.

    Constraints are the comparisons [t1 <= t2], [t1 < t2], [t1 = t2]
    appearing as built-in subgoals.  Reasoning is by transitive closure
    over the constraint graph (Floyd–Warshall with strictness
    propagation), with the natural order on integer constants added.

    Implication is decided for a {e dense} order: [C ⊨ X < Y] holds only
    when derivable by transitivity.  Over the integers this is sound but
    not complete (it cannot derive [X < Y] from [X <= Y - 1]); soundness
    is all the containment test needs. *)

open Vplan_cq

type relation =
  | Le
  | Lt
  | Eq

type constr = {
  rel : relation;
  left : Term.t;
  right : Term.t;  (** terms are variables or [Int] constants *)
}

type t
(** a closed conjunction of constraints *)

val pp_constr : Format.formatter -> constr -> unit

(** [of_list cs] closes the conjunction; [Error `Unsatisfiable] when the
    constraints admit no integer (equivalently rational) solution. *)
val of_list : constr list -> (t, [ `Unsatisfiable ]) result

(** [implies t c] — every assignment satisfying [t] satisfies [c]
    (dense-order derivability). *)
val implies : t -> constr -> bool

val implies_all : t -> constr list -> bool

(** [entailed_equalities t] lists variable pairs forced equal. *)
val entailed_equalities : t -> (string * string) list

(** [satisfies_ground rel c1 c2] evaluates a comparison on constants;
    ordered comparisons are defined on integers only ([Eq] on any equal
    constants). *)
val satisfies_ground : relation -> Term.const -> Term.const -> bool
