lib/builtins/ccq.ml: Atom Eval List Names Order_constraint Query Relation String Subst Term Vplan_containment Vplan_cq Vplan_relational Vplan_views
