lib/builtins/order_constraint.ml: Array Format Hashtbl List Term Vplan_cq
