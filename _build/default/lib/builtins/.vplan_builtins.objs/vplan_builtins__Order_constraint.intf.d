lib/builtins/order_constraint.mli: Format Term Vplan_cq
