lib/builtins/ccq.mli: Atom Database Order_constraint Query Relation Vplan_cq Vplan_relational Vplan_views
