open Vplan_cq

type relation =
  | Le
  | Lt
  | Eq

type constr = {
  rel : relation;
  left : Term.t;
  right : Term.t;
}

let pp_constr ppf c =
  let op = match c.rel with Le -> "<=" | Lt -> "<" | Eq -> "=" in
  Format.fprintf ppf "%a %s %a" Term.pp c.left op Term.pp c.right

(* Closure representation: nodes are the distinct terms; [edge.(i).(j)]
   is [None] (no relation known), [Some false] (<=) or [Some true] (<). *)
type t = {
  nodes : Term.t array;
  index : (Term.t, int) Hashtbl.t;
  edge : bool option array array;
}

let satisfies_ground rel c1 c2 =
  match rel with
  | Eq -> Term.equal_const c1 c2
  | Le -> ( match (c1, c2) with Term.Int a, Term.Int b -> a <= b | _ -> false)
  | Lt -> ( match (c1, c2) with Term.Int a, Term.Int b -> a < b | _ -> false)

let combine e1 e2 =
  match (e1, e2) with
  | None, _ | _, None -> None
  | Some s1, Some s2 -> Some (s1 || s2)

let stronger current candidate =
  match (current, candidate) with
  | None, c -> c
  | Some s, Some s' -> Some (s || s')
  | Some s, None -> Some s

let of_list constraints =
  (* collect nodes *)
  let terms =
    List.concat_map (fun c -> [ c.left; c.right ]) constraints
    |> List.sort_uniq Term.compare
  in
  let nodes = Array.of_list terms in
  let n = Array.length nodes in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i t -> Hashtbl.replace index t i) nodes;
  let edge = Array.make_matrix n n None in
  let add i j strict = edge.(i).(j) <- stronger edge.(i).(j) (Some strict) in
  (* the constraints themselves *)
  List.iter
    (fun c ->
      let i = Hashtbl.find index c.left and j = Hashtbl.find index c.right in
      match c.rel with
      | Le -> add i j false
      | Lt -> add i j true
      | Eq ->
          add i j false;
          add j i false)
    constraints;
  (* the natural order on the integer constants present *)
  Array.iteri
    (fun i t1 ->
      Array.iteri
        (fun j t2 ->
          match (t1, t2) with
          | Term.Cst (Term.Int a), Term.Cst (Term.Int b) ->
              if a < b then add i j true else if a = b && i <> j then add i j false
          | _ -> ())
        nodes)
    nodes;
  (* Floyd-Warshall with strictness propagation *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        match combine edge.(i).(k) edge.(k).(j) with
        | None -> ()
        | Some _ as via -> edge.(i).(j) <- stronger edge.(i).(j) via
      done
    done
  done;
  (* unsatisfiable iff some strict cycle exists *)
  let unsat = ref false in
  for i = 0 to n - 1 do
    if edge.(i).(i) = Some true then unsat := true
  done;
  (* also: distinct string constants forced equal *)
  List.iter
    (fun c ->
      match (c.rel, c.left, c.right) with
      | Eq, Term.Cst a, Term.Cst b when not (Term.equal_const a b) -> unsat := true
      | (Le | Lt), Term.Cst (Term.Str _), _ | (Le | Lt), _, Term.Cst (Term.Str _) ->
          (* ordered comparisons are undefined on symbolic constants *)
          unsat := true
      | _ -> ())
    constraints;
  if !unsat then Error `Unsatisfiable else Ok { nodes; index; edge }

let lookup t term = Hashtbl.find_opt t.index term

(* Strongest known relation between two terms.  A queried integer
   constant need not be a node: X <= 3 must imply X <= 5, so bounds are
   also sought through the integer constants that are in the graph. *)
let relation_between t t1 t2 =
  if Term.equal t1 t2 then Some false
  else
    match (t1, t2) with
    | Term.Cst (Term.Int a), Term.Cst (Term.Int b) ->
        if a < b then Some true else if a = b then Some false else None
    | _ ->
        let direct =
          match (lookup t t1, lookup t t2) with
          | Some i, Some j -> t.edge.(i).(j)
          | _ -> None
        in
        (* t1 <= some constant c in the graph, with c <= b *)
        let via_upper =
          match (t2, lookup t t1) with
          | Term.Cst (Term.Int b), Some i ->
              Array.to_list t.nodes
              |> List.mapi (fun j node -> (j, node))
              |> List.fold_left
                   (fun acc (j, node) ->
                     match node with
                     | Term.Cst (Term.Int c) when c <= b -> (
                         match t.edge.(i).(j) with
                         | None -> acc
                         | Some s -> stronger acc (Some (s || c < b)))
                     | _ -> acc)
                   None
          | _ -> None
        in
        (* a <= some constant c in the graph, with c <= t2 *)
        let via_lower =
          match (t1, lookup t t2) with
          | Term.Cst (Term.Int a), Some j ->
              Array.to_list t.nodes
              |> List.mapi (fun i node -> (i, node))
              |> List.fold_left
                   (fun acc (i, node) ->
                     match node with
                     | Term.Cst (Term.Int c) when a <= c -> (
                         match t.edge.(i).(j) with
                         | None -> acc
                         | Some s -> stronger acc (Some (s || a < c)))
                     | _ -> acc)
                   None
          | _ -> None
        in
        stronger (stronger direct via_upper) via_lower

let implies t c =
  match c.rel with
  | Le -> relation_between t c.left c.right <> None
  | Lt -> relation_between t c.left c.right = Some true
  | Eq ->
      (* both directions weakly related; a strict edge either way would
         have made the closure unsatisfiable *)
      relation_between t c.left c.right = Some false
      && relation_between t c.right c.left = Some false

let implies_all t cs = List.for_all (implies t) cs

let entailed_equalities t =
  let n = Array.length t.nodes in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if t.edge.(i).(j) = Some false && t.edge.(j).(i) = Some false then
        match (t.nodes.(i), t.nodes.(j)) with
        | Term.Var x, Term.Var y -> acc := (x, y) :: !acc
        | _ -> ()
    done
  done;
  !acc
