let union_of sets indices = List.fold_left (fun acc i -> acc lor sets.(i)) 0 indices

let is_cover ~universe sets indices = union_of sets indices land universe = universe

let is_irredundant ~universe sets indices =
  is_cover ~universe sets indices
  && List.for_all
       (fun i -> not (is_cover ~universe sets (List.filter (fun j -> j <> i) indices)))
       indices

let lowest_uncovered ~universe covered =
  let remaining = universe land lnot covered in
  if remaining = 0 then None
  else
    let rec find bit = if remaining land (1 lsl bit) <> 0 then bit else find (bit + 1) in
    Some (find 0)

module Cover_set = Set.Make (struct
  type t = int list

  let compare = List.compare Int.compare
end)

(* Enumerate covers by always branching on the lowest uncovered subgoal.
   Every irredundant cover admits an ordering in which each chosen set
   covers the then-lowest uncovered subgoal, so this enumeration reaches
   all of them; results are deduplicated as sorted index lists. *)
let enumerate ~universe sets ~size_bound ~keep ~max_results =
  let n = Array.length sets in
  let results = ref Cover_set.empty in
  let rec go chosen covered depth =
    if Cover_set.cardinal !results >= max_results then ()
    else
      match lowest_uncovered ~universe covered with
      | None ->
          let cover = List.sort Int.compare chosen in
          if keep cover then results := Cover_set.add cover !results
      | Some bit ->
          if depth < size_bound then
            for i = 0 to n - 1 do
              if sets.(i) land (1 lsl bit) <> 0 && not (List.mem i chosen) then
                go (i :: chosen) (covered lor sets.(i)) (depth + 1)
            done
  in
  go [] 0 0;
  Cover_set.elements !results

let minimum_covers ~universe sets =
  if universe = 0 then [ [] ]
  else
    let n = Array.length sets in
    let rec try_size k =
      if k > n then []
      else
        match
          enumerate ~universe sets ~size_bound:k
            ~keep:(fun cover -> List.length cover = k)
            ~max_results:max_int
        with
        | [] -> try_size (k + 1)
        | covers -> covers
    in
    try_size 1

let irredundant_covers ?(max_results = max_int) ~universe sets =
  if universe = 0 then [ [] ]
  else
    enumerate ~universe sets ~size_bound:(Array.length sets)
      ~keep:(is_irredundant ~universe sets)
      ~max_results
