lib/rewrite/set_cover.mli:
