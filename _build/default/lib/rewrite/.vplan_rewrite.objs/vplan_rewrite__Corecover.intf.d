lib/rewrite/corecover.mli: Query Tuple_core View View_tuple Vplan_cq Vplan_views
