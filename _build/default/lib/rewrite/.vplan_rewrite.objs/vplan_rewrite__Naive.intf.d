lib/rewrite/naive.mli: Query View Vplan_cq Vplan_views
