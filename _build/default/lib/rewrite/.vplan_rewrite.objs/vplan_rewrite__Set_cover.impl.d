lib/rewrite/set_cover.ml: Array Int List Set
