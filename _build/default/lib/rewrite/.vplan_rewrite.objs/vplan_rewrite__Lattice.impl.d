lib/rewrite/lattice.ml: Array Atom Format Fun List Query String Vplan_containment Vplan_cq Vplan_views
