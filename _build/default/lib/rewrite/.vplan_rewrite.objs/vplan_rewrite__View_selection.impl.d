lib/rewrite/view_selection.ml: Corecover List Tuple_core View_tuple Vplan_containment Vplan_views
