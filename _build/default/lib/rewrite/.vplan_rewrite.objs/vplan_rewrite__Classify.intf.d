lib/rewrite/classify.mli: Query View Vplan_cq Vplan_views
