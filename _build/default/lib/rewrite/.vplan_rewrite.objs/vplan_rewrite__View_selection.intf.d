lib/rewrite/view_selection.mli: Query View Vplan_cq Vplan_views
