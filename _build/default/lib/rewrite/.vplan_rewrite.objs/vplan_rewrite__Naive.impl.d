lib/rewrite/naive.ml: Expansion List Query View_tuple Vplan_containment Vplan_cq Vplan_views
