lib/rewrite/tuple_core.mli: Atom Format Query Subst View_tuple Vplan_cq Vplan_views
