lib/rewrite/corecover.ml: Array Equiv_class Expansion Format List Query Set_cover Tuple_core View View_tuple Vplan_containment Vplan_cq Vplan_views
