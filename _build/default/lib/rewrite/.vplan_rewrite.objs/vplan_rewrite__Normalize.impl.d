lib/rewrite/normalize.ml: Expansion Query Vplan_containment Vplan_cq Vplan_views
