lib/rewrite/normalize.mli: Query View Vplan_cq Vplan_views
