lib/rewrite/tuple_core.ml: Array Atom Format List Names Query String Subst Term View_tuple Vplan_cq Vplan_views
