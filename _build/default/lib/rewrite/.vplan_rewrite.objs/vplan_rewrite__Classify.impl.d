lib/rewrite/classify.ml: Expansion Fun List Query Vplan_containment Vplan_cq Vplan_views
