lib/rewrite/lattice.mli: Format Query Vplan_cq Vplan_views
