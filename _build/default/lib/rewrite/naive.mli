(** The naive GMR search of Theorem 3.1 — the test oracle for CoreCover.

    Compute all view tuples, then try every combination of [1, 2, ...]
    view tuples as a candidate body, testing expansion-equivalence with the
    query; stop at the first cardinality that yields rewritings.  If the
    query has a rewriting, it has one with at most as many subgoals as the
    query (Levy et al. 1995), so the search is bounded. *)

open Vplan_cq
open Vplan_views

(** [gmrs ~query ~views] returns all globally-minimal rewritings over view
    tuples, deduplicated up to variable renaming.  Exponential in the
    number of view tuples — use on small instances only. *)
val gmrs : query:Query.t -> views:View.t list -> Query.t list

(** [rewritings_of_size ~query ~views k] returns all equivalent rewritings
    whose body consists of exactly [k] distinct view tuples. *)
val rewritings_of_size : query:Query.t -> views:View.t list -> int -> Query.t list
