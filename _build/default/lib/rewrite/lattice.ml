open Vplan_cq
module Containment = Vplan_containment.Containment

type t = {
  nodes : Query.t array;
  edges : (int * int) list;
}

let dedup_isomorphic queries =
  List.fold_left
    (fun acc q -> if List.exists (Containment.isomorphic q) acc then acc else q :: acc)
    [] queries
  |> List.rev

(* Replace every view predicate by its equivalence-class representative so
   that rewritings over equivalent views become comparable. *)
let canonicalize_view_preds views (p : Query.t) =
  let classes = Vplan_views.Equiv_class.group_views views in
  let rename pred =
    let cls =
      List.find_opt
        (List.exists (fun v -> String.equal (Vplan_views.View.name v) pred))
        classes
    in
    match cls with
    | Some (rep :: _) -> Vplan_views.View.name rep
    | Some [] | None -> pred
  in
  Query.make_exn p.head
    (List.map (fun (a : Atom.t) -> Atom.make (rename a.pred) a.args) p.body)

let of_lmrs ?views lmrs =
  let lmrs =
    match views with
    | None -> lmrs
    | Some views -> List.map (canonicalize_view_preds views) lmrs
  in
  let nodes = Array.of_list (dedup_isomorphic lmrs) in
  let n = Array.length nodes in
  let proper = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then proper.(i).(j) <- Containment.properly_contained nodes.(j) nodes.(i)
      (* edge direction: i (upper) properly contains j (lower) *)
    done
  done;
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if proper.(i).(j) then begin
        let covered =
          not
            (List.exists
               (fun k -> k <> i && k <> j && proper.(i).(k) && proper.(k).(j))
               (List.init n Fun.id))
        in
        if covered then edges := (i, j) :: !edges
      end
    done
  done;
  { nodes; edges = List.rev !edges }

(* A bottom (minimal) element properly contains nothing, i.e. it is never
   the upper end of a Hasse edge. *)
let bottoms t =
  List.filter
    (fun i -> not (List.exists (fun (upper, _) -> upper = i) t.edges))
    (List.init (Array.length t.nodes) Fun.id)

let is_chain t =
  let n = Array.length t.nodes in
  n <= 1
  ||
  (* a finite order is a chain iff every pair is comparable *)
  let comparable i j =
    let reaches a b =
      (* transitive closure over Hasse edges *)
      let rec dfs visited frontier =
        if List.mem b frontier then true
        else
          let next =
            List.concat_map
              (fun u -> List.filter_map (fun (x, y) -> if x = u then Some y else None) t.edges)
              frontier
            |> List.filter (fun v -> not (List.mem v visited))
          in
          next <> [] && dfs (visited @ next) next
      in
      dfs [ a ] [ a ]
    in
    i = j || reaches i j || reaches j i
  in
  List.for_all
    (fun i -> List.for_all (fun j -> comparable i j) (List.init n Fun.id))
    (List.init n Fun.id)

let pp ppf t =
  Array.iteri (fun i q -> Format.fprintf ppf "[%d] %a@." i Query.pp q) t.nodes;
  List.iter
    (fun (upper, lower) -> Format.fprintf ppf "  [%d] properly contains [%d]@." upper lower)
    t.edges
