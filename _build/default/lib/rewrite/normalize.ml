open Vplan_cq
open Vplan_views
module Containment = Vplan_containment.Containment

let to_view_tuple_form ~views ~query (p : Query.t) =
  if not (Expansion.is_equivalent_rewriting ~views ~query p) then None
  else
    match Expansion.expand ~views p with
    | Error `Unsatisfiable -> None
    | Ok pexp -> (
        (* a containment mapping from P^exp to Q exists by equivalence;
           restricting it to P's variables rewrites every view atom into
           a view tuple *)
        match Containment.mapping ~from_q:pexp ~to_q:query with
        | None -> None
        | Some phi ->
            let p' = Query.dedup_body (Query.apply phi p) in
            Some p')
