(** The partial order of locally-minimal rewritings (Figure 2).

    LMRs of a query are partially ordered by containment as queries; by
    Lemma 3.1 the order respects subgoal counts (a contained LMR never has
    more subgoals).  The bottom elements are the containment-minimal
    rewritings. *)

open Vplan_cq

type t = {
  nodes : Query.t array;
  edges : (int * int) list;
      (** Hasse edges [(upper, lower)]: node [upper] properly contains
          node [lower] as queries, with no node strictly between. *)
}

(** [of_lmrs ?views lmrs] builds the Hasse diagram of the containment
    order.  Isomorphic duplicates are collapsed first.  When [views] is
    given, equivalent views are identified first: each view predicate is
    replaced by its equivalence-class representative, so that e.g. [P5]
    (using [v5]) compares against [P2] (using the equivalent [v1]) as in
    Figure 2(a). *)
val of_lmrs : ?views:Vplan_views.View.t list -> Query.t list -> t

(** Indices of the bottom elements (the CMRs). *)
val bottoms : t -> int list

(** [is_chain t] — the order is total. *)
val is_chain : t -> bool

val pp : Format.formatter -> t -> unit
