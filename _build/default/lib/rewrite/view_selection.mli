(** Minimizing view sets without losing query-answering power — the
    companion work the paper cites as [18] (Li–Bawa–Ullman, ICDT 2001).

    Given a query and a view set, find a subset of the views that still
    admits an equivalent rewriting.  Useful both as storage optimization
    (drop materializations that buy nothing) and to focus the optimizer's
    search. *)

open Vplan_cq
open Vplan_views

(** [relevant_views ~query ~views] — views contributing at least one view
    tuple with a nonempty tuple-core; only these can participate in a
    rewriting's covering part. *)
val relevant_views : query:Query.t -> views:View.t list -> View.t list

(** [minimal_answering_set ~query ~views] — a minimal (greedily computed)
    subset of [views] that still admits an equivalent rewriting; [None]
    when even the full set admits none. *)
val minimal_answering_set : query:Query.t -> views:View.t list -> View.t list option

(** [is_answering_set ~query views] — the subset admits an equivalent
    rewriting. *)
val is_answering_set : query:Query.t -> View.t list -> bool
