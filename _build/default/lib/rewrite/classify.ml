open Vplan_cq
open Vplan_views
module Containment = Vplan_containment.Containment
module Minimize = Vplan_containment.Minimize

let is_rewriting = Expansion.is_equivalent_rewriting
let is_minimal_query p = Minimize.is_minimal p

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let removable ~views ~query (p : Query.t) i =
  match Query.with_body p (remove_nth p.body i) with
  | Error _ -> false
  | Ok p' -> p'.Query.body <> [] && is_rewriting ~views ~query p'

let is_lmr ~views ~query (p : Query.t) =
  is_rewriting ~views ~query p
  && not (List.exists (fun i -> removable ~views ~query p i) (List.init (List.length p.body) Fun.id))

let lmr_of ~views ~query p =
  if not (is_rewriting ~views ~query p) then
    invalid_arg "Classify.lmr_of: input is not an equivalent rewriting";
  let rec loop (p : Query.t) =
    let n = List.length p.body in
    let rec try_remove i =
      if i >= n then p
      else if removable ~views ~query p i then
        loop (Query.make_exn p.head (remove_nth p.body i))
      else try_remove (i + 1)
    in
    try_remove 0
  in
  loop (Query.dedup_body p)

let is_cmr_among ~lmrs p =
  not
    (List.exists
       (fun other ->
         (not (Containment.isomorphic other p)) && Containment.properly_contained other p)
       lmrs)

let is_gmr_among ~candidates p =
  let size (q : Query.t) = List.length q.body in
  List.for_all (fun other -> size p <= size other) candidates
