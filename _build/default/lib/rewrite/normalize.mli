(** Lemma 3.2's constructive transformation: any equivalent rewriting can
    be turned into one, at least as contained, that uses only view tuples
    of [T(Q,V)].

    The proof is the algorithm: take a containment mapping φ from the
    rewriting's expansion to the query and replace every variable [X] of
    the rewriting by its target [φ(X)]; after deduplication the body
    atoms are view tuples.  The paper's worked instance turns [P1] of the
    car-loc-part example into [P2]. *)

open Vplan_cq
open Vplan_views

(** [to_view_tuple_form ~views ~query p] — [None] when [p] is not an
    equivalent rewriting of [query].  The result is an equivalent
    rewriting contained in [p] whose atoms are view tuples. *)
val to_view_tuple_form :
  views:View.t list -> query:Query.t -> Query.t -> Query.t option
