open Vplan_relational

let views base vs =
  List.fold_left
    (fun db view -> Database.add_relation (View.name view) (Eval.answers base view) db)
    Database.empty vs

let answers_via_rewriting view_db p = Eval.answers view_db p
