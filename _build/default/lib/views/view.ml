open Vplan_cq

type t = Query.t

let name (v : t) = v.head.Atom.pred
let of_query q = q

let validate_set views =
  let rec loop seen = function
    | [] -> Ok ()
    | v :: rest ->
        let n = name v in
        if Names.Sset.mem n seen then Error ("duplicate view name " ^ n)
        else loop (Names.Sset.add n seen) rest
  in
  loop Names.Sset.empty views

let find views n = List.find_opt (fun v -> String.equal (name v) n) views

let find_exn views n =
  match find views n with
  | Some v -> v
  | None -> invalid_arg ("View.find_exn: unknown view " ^ n)

let uses_only_views views (q : Query.t) =
  List.for_all
    (fun (a : Atom.t) ->
      match find views a.pred with
      | Some v -> Atom.arity v.Query.head = Atom.arity a
      | None -> false)
    q.body
