(** Equivalence-class grouping (Section 5.2).

    With many views, [T(Q,V)] can be large even though few of its members
    are genuinely different.  The paper groups (a) views that are
    equivalent as queries and (b) view tuples with identical tuple-cores,
    running CoreCover on one representative per class.  The number of
    representative view tuples is then bounded by the number of query
    subgoals, independent of the number of views — the key to the
    scalability results of Section 7 (Figures 7 and 9). *)

(** [group ~eq xs] partitions [xs] into classes of the (assumed
    transitive) relation [eq], preserving first-occurrence order of class
    representatives.  Quadratic in the number of classes. *)
val group : eq:('a -> 'a -> bool) -> 'a list -> 'a list list

(** [representatives groups] takes the first member of each class. *)
val representatives : 'a list list -> 'a list

(** [group_views views] groups views equivalent as queries (ignoring their
    distinct head predicate names: [v1 ≡ v5] in the car-loc-part example). *)
val group_views : View.t list -> View.t list list
