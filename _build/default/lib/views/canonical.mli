(** The canonical database of a query (Section 3.3).

    [D_Q] is obtained by {e freezing} the query: every variable is replaced
    by a distinct fresh constant and each body atom becomes a fact.
    Applying the view definitions to [D_Q] and {e thawing} the frozen
    constants back to the original variables yields the view tuples
    [T(Q,V)]. *)

open Vplan_cq
open Vplan_relational

type t

(** [freeze q] builds the canonical database of [q].  Frozen constants use
    a reserved spelling that cannot clash with parsed constants. *)
val freeze : Query.t -> t

val database : t -> Database.t

(** [thaw_const t c] maps a frozen constant back to its variable; genuine
    constants of the query pass through unchanged. *)
val thaw_const : t -> Term.const -> Term.t

(** [thaw_tuple t tuple] thaws every component. *)
val thaw_tuple : t -> Relation.tuple -> Term.t list

(** [frozen_term t term] is the frozen image of a term: variables become
    their frozen constants, constants stay. *)
val frozen_term : t -> Term.t -> Term.const
