(** View definitions.

    A view is a safe conjunctive query over the base relations whose head
    predicate is the view's name.  Under the closed-world assumption the
    view relation is exactly the answer of this query on the (hidden) base
    database. *)

open Vplan_cq

type t = Query.t

val name : t -> string

(** [of_query q] validates a query as a view definition (safety is already
    guaranteed by {!Query.make}). *)
val of_query : Query.t -> t

(** [validate_set views] checks that view names are pairwise distinct and
    arities consistent; returns the offending name on failure. *)
val validate_set : t list -> (unit, string) result

(** [find views name] looks a view up by name. *)
val find : t list -> string -> t option

val find_exn : t list -> string -> t

(** [uses_only_views views q] holds when every body predicate of [q] is
    the name of one of [views] (with matching arity) — the shape required
    of a rewriting. *)
val uses_only_views : t list -> Query.t -> bool
