open Vplan_cq

let group ~eq xs =
  (* Classes are kept in reverse insertion order internally; each class
     stores members reversed.  The relation is assumed transitive, so a
     single comparison against each class representative suffices. *)
  let classes =
    List.fold_left
      (fun classes x ->
        let rec insert = function
          | [] -> [ [ x ] ]
          | cls :: rest -> (
              match cls with
              | rep :: _ when eq rep x -> (x :: cls) :: rest
              | _ -> cls :: insert rest)
        in
        insert classes)
      [] xs
  in
  List.map List.rev classes

let representatives groups = List.filter_map (function x :: _ -> Some x | [] -> None) groups

(* Views have distinct head predicates, so plain query equivalence would
   never hold; compare with the head predicate name erased. *)
let erase_head_pred (v : Query.t) =
  Query.make_exn (Atom.make "__view" v.head.Atom.args) v.body

let group_views views =
  group
    ~eq:(fun v1 v2 ->
      Vplan_containment.Containment.equivalent (erase_head_pred v1) (erase_head_pred v2))
    views
