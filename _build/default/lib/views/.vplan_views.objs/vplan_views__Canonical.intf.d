lib/views/canonical.mli: Database Query Relation Term Vplan_cq Vplan_relational
