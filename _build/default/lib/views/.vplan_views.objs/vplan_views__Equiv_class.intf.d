lib/views/equiv_class.mli: View
