lib/views/canonical.ml: Atom Database List Names Query Term Vplan_cq Vplan_relational
