lib/views/view_tuple.ml: Atom Canonical Eval List Names Query Relation Subst Term View Vplan_cq Vplan_relational
