lib/views/view.ml: Atom List Names Query String Vplan_cq
