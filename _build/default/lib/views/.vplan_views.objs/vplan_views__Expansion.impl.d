lib/views/expansion.ml: Atom List Names Query Subst Ucq Unify View Vplan_containment Vplan_cq
