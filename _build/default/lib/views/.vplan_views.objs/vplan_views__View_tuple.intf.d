lib/views/view_tuple.mli: Atom Format Names Query View Vplan_cq
