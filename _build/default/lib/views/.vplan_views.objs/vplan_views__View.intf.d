lib/views/view.mli: Query Vplan_cq
