lib/views/expansion.mli: Query Ucq View Vplan_cq
