lib/views/equiv_class.ml: Atom List Query Vplan_containment Vplan_cq
