lib/views/materialize.ml: Database Eval List View Vplan_relational
