lib/views/materialize.mli: Database Query Relation View Vplan_cq Vplan_relational
