open Vplan_cq
open Vplan_relational

(* Frozen constants are spelled "@x" for variable x.  The parser accepts
   neither '@' in identifiers nor variables starting lower-case, so frozen
   constants cannot collide with constants present in queries or views. *)
let freeze_prefix = "@"

type t = {
  db : Database.t;
  back : Term.t Names.Smap.t; (* frozen spelling -> original variable *)
}

let frozen_of_var x = Term.Str (freeze_prefix ^ x)

let frozen_term _t = function
  | Term.Cst c -> c
  | Term.Var x -> frozen_of_var x

let freeze (q : Query.t) =
  let back =
    List.fold_left
      (fun m x -> Names.Smap.add (freeze_prefix ^ x) (Term.Var x) m)
      Names.Smap.empty (Query.vars q)
  in
  let db =
    List.fold_left
      (fun db (a : Atom.t) ->
        let tuple =
          List.map (function Term.Cst c -> c | Term.Var x -> frozen_of_var x) a.args
        in
        Database.add_fact a.pred tuple db)
      Database.empty q.body
  in
  { db; back }

let database t = t.db

let thaw_const t c =
  match c with
  | Term.Str s -> (
      match Names.Smap.find_opt s t.back with Some v -> v | None -> Term.Cst c)
  | Term.Int _ -> Term.Cst c

let thaw_tuple t tuple = List.map (thaw_const t) tuple
