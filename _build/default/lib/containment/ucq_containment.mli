(** Containment and equivalence of unions of conjunctive queries
    (Sagiv–Yannakakis 1980).

    [U1 ⊑ U2] iff every disjunct of [U1] is contained in some disjunct of
    [U2].  This extends the rewriting machinery to the Section 8 setting
    where maximally-contained rewritings are unions. *)

open Vplan_cq

val is_contained : Ucq.t -> Ucq.t -> bool
val equivalent : Ucq.t -> Ucq.t -> bool

(** [minimize u] removes redundant disjuncts (those contained in another
    disjunct) and minimizes each survivor as a conjunctive query; the
    result is equivalent to [u]. *)
val minimize : Ucq.t -> Ucq.t
