open Vplan_cq

let is_contained u1 u2 =
  List.for_all
    (fun d1 -> List.exists (fun d2 -> Containment.is_contained d1 d2) (Ucq.disjuncts u2))
    (Ucq.disjuncts u1)

let equivalent u1 u2 = is_contained u1 u2 && is_contained u2 u1

let minimize u =
  let ds = List.map Minimize.minimize (Ucq.disjuncts u) in
  (* keep a disjunct only if it is not contained in another kept (or
     later) disjunct; scanning left to right with the classic "contained
     in some OTHER member" rule, breaking ties by keeping the earlier
     one *)
  let rec keep acc = function
    | [] -> List.rev acc
    | d :: rest ->
        let redundant =
          List.exists (fun other -> Containment.is_contained d other) acc
          || List.exists (fun other -> Containment.is_contained d other) rest
        in
        if redundant then keep acc rest else keep (d :: acc) rest
  in
  match keep [] ds with
  | [] ->
      (* all disjuncts pairwise equivalent: keep one *)
      Ucq.make_exn [ List.hd ds ]
  | kept -> Ucq.make_exn kept
