lib/containment/homomorphism.ml: Atom List Names Subst Term Vplan_cq
