lib/containment/ucq_containment.ml: Containment List Minimize Ucq Vplan_cq
