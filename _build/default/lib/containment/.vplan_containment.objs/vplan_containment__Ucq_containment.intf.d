lib/containment/ucq_containment.mli: Ucq Vplan_cq
