lib/containment/containment.ml: Atom Homomorphism List Query Subst Term Vplan_cq
