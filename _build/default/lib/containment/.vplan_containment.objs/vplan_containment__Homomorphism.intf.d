lib/containment/homomorphism.mli: Atom Subst Vplan_cq
