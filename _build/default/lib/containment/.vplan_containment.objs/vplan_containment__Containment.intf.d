lib/containment/containment.mli: Query Subst Vplan_cq
