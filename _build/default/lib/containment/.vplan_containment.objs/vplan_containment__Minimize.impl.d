lib/containment/minimize.ml: Containment List Query Vplan_cq
