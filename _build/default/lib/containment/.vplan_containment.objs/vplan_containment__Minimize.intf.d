lib/containment/minimize.mli: Atom Query Vplan_cq
