lib/baselines/inverse_rules.ml: Atom Database Eval List Names Printf Query Relation String Term View Vplan_cq Vplan_relational Vplan_views
