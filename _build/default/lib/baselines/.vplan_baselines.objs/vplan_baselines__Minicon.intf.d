lib/baselines/minicon.mli: Atom Format Query Ucq View Vplan_cq Vplan_views
