lib/baselines/bucket.mli: Atom Query View Vplan_cq Vplan_views
