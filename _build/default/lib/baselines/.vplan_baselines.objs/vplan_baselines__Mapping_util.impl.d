lib/baselines/mapping_util.ml: Atom Hashtbl List Names Query String Subst Term Unify Vplan_cq
