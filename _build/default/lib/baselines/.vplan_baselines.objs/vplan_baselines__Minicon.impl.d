lib/baselines/minicon.ml: Array Atom Expansion Format Hashtbl List Mapping_util Names Option Query String Subst Term Ucq Unify View Vplan_containment Vplan_cq Vplan_views
