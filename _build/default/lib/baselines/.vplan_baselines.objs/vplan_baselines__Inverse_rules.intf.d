lib/baselines/inverse_rules.mli: Atom Database Query Relation Term View Vplan_cq Vplan_relational Vplan_views
