lib/baselines/bucket.ml: Atom Expansion List Mapping_util Printf Query Subst Unify Vplan_containment Vplan_cq Vplan_views
