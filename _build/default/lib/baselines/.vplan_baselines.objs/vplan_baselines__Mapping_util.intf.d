lib/baselines/mapping_util.mli: Atom Names Query Subst Term Vplan_cq
